"""Façade speedup floors: TamperEvidentStore batch ops, engine vs engine.

The acceptance criterion of the ``repro.api`` redesign: the façade's
batch operations (``seal_many``, ``audit``) must hit the PR 1-2
span/batched engines *by default* — the same whole-store flow run
under ``with repro.engine("scalar"):`` (the paper's literal per-dot
protocol, selected purely through the lazy policy, no code changes)
must be massively slower.  Floors are deliberately conservative; the
span-engine benches show the per-layer gaps are far larger.

Results are also written to ``BENCH_api_store.json`` at the repo root
so the perf trajectory stays machine-readable.
"""

import json
import time
from pathlib import Path

import repro
from repro.analysis.report import format_table

REPO_ROOT = Path(__file__).resolve().parents[1]

TOTAL_BLOCKS = 96
N_OBJECTS = 6
OBJECT_BYTES = 700

FLOORS = {
    "seal_many": 3.0,
    "audit": 5.0,
}


def _best(fn, repeat):
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _flow():
    """Provision a store, seal a batch, audit it; return timings and
    the receipts/verdicts for the equivalence assertion."""
    t0 = time.perf_counter()
    store = repro.TamperEvidentStore.create(total_blocks=TOTAL_BLOCKS,
                                            format_scan=False)
    paths = []
    for i in range(N_OBJECTS):
        path = f"/obj-{i}"
        store.put(path, bytes([i + 1]) * OBJECT_BYTES)
        paths.append(path)
    t_setup = time.perf_counter() - t0

    t0 = time.perf_counter()
    receipts = store.seal_many(paths, timestamp=1)
    t_seal = time.perf_counter() - t0

    t_audit, report = _best(store.audit, repeat=3)
    return {
        "engine": store.engine,
        "setup_s": t_setup,
        "seal_many_s": t_seal,
        "audit_s": t_audit,
        "receipts": receipts,
        "report": report,
    }


def test_facade_batch_ops_hit_fast_engines(benchmark, show):
    fast = benchmark.pedantic(_flow, rounds=1, iterations=1)
    assert fast["engine"] == "vectorized"  # the default grain

    with repro.engine("scalar"):
        slow = _flow()
    assert slow["engine"] == "scalar"

    # identical service semantics on both engines
    assert [r.line_hash for r in fast["receipts"]] == \
        [r.line_hash for r in slow["receipts"]]
    assert [r.status for r in fast["report"]] == \
        [r.status for r in slow["report"]]
    assert fast["report"].clean and slow["report"].clean

    speedups = {
        "seal_many": slow["seal_many_s"] / fast["seal_many_s"],
        "audit": slow["audit_s"] / fast["audit_s"],
    }
    rows = [[op, slow[f"{op}_s"] * 1e3, fast[f"{op}_s"] * 1e3,
             speedups[op]] for op in ("seal_many", "audit")]
    show(format_table(
        ["operation", "scalar [ms]", "vectorized [ms]", "speedup"],
        [[r[0], round(r[1], 2), round(r[2], 2), round(r[3], 1)]
         for r in rows],
        title=f"TamperEvidentStore batch ops — {N_OBJECTS} objects, "
              f"one engine switch via the lazy policy"))

    payload = {
        "bench": "api_store",
        "objects": N_OBJECTS,
        "object_bytes": OBJECT_BYTES,
        "rows": [{"operation": r[0], "scalar_ms": round(r[1], 3),
                  "vectorized_ms": round(r[2], 3),
                  "speedup": round(r[3], 1)} for r in rows],
        "floors": FLOORS,
    }
    (REPO_ROOT / "BENCH_api_store.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    for op, floor in FLOORS.items():
        assert speedups[op] >= floor, (
            f"{op}: {speedups[op]:.1f}x < {floor}x floor — the façade "
            f"is not hitting the batched engines by default")
