"""Batched-engine speedup baseline: scalar reference vs batched paths.

PR 1's span engine vectorized the per-dot electrical protocol; this
bench covers the layers batched on top of it:

* **format** — ``scan_for_defects`` classifying the whole medium with
  numpy instead of dot-by-dot Python (floor: >= 20x on a
  default-geometry medium);
* **physics** — the Fig 7/8/9 sweeps evaluating a whole temperature
  grid as :class:`FilmEnsemble` array passes instead of one
  anneal/measurement per point (floor: >= 10x each);
* **audit** — level-at-a-time venti tree builds and the batched
  ``verify_lines`` sweep (reported; the equivalence is asserted in
  ``tests/test_batched_engine.py``);
* **fleet** — aggregate format+audit throughput over a multi-device
  fleet (reported).

Results are also written to ``BENCH_batched_engine.json`` at the repo
root so the perf trajectory stays machine-readable.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.report import format_table
from repro.device.sector import DOTS_PER_BLOCK
from repro.device.sero import DeviceConfig, SERODevice
from repro.integrity.venti import VentiStore
from repro.medium.defects import scan_for_defects
from repro.medium.geometry import geometry_for_blocks
from repro.medium.medium import MediumConfig, PatternedMedium
from repro.physics.anisotropy import calibrated_model
from repro.physics.annealing import FilmEnsemble, FilmState, anneal
from repro.physics.constants import AS_GROWN_K
from repro.physics.torque import measure_anisotropy, measure_anisotropy_batch
from repro.physics.xrd import (
    high_angle_scan,
    high_angle_scan_set,
    low_angle_scan,
    low_angle_scan_set,
)
from repro.workloads.fleet import FleetScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]
PAYLOAD = bytes(range(256)) * 2
SCAN_BLOCKS = 32
SWEEP_POINTS = 256
SWEEP_GRID_C = np.linspace(25.0, 700.0, SWEEP_POINTS)

FLOORS = {
    "scan_for_defects": 20.0,
    "fig7 anisotropy sweep": 10.0,
    "fig8 low-angle sweep": 10.0,
    "fig9 high-angle sweep": 10.0,
}


def _best(fn, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _scan_medium(seed: int = 17) -> PatternedMedium:
    geometry = geometry_for_blocks(SCAN_BLOCKS, DOTS_PER_BLOCK)
    return PatternedMedium(geometry, MediumConfig(switching_sigma=0.12,
                                                  write_field=1.5,
                                                  seed=seed))


def _measure_defect_scan():
    scalar, scalar_report = _best(
        lambda: scan_for_defects(_scan_medium(), vectorized=False), repeat=1)
    batched, batched_report = _best(
        lambda: scan_for_defects(_scan_medium(), vectorized=True), repeat=3)
    assert batched_report.bad_blocks == scalar_report.bad_blocks
    assert batched_report.fragile_blocks == scalar_report.fragile_blocks
    return scalar, batched


def _fig7_scalar():
    model = calibrated_model(AS_GROWN_K)
    out = []
    for t in SWEEP_GRID_C:
        state = anneal(FilmState(), float(t), 1800.0)
        k_true = model.k_eff(state.sharpness, state.crystalline_fraction)
        out.append(measure_anisotropy(k_true).k_measured)
    return np.asarray(out)


def _fig7_batched():
    model = calibrated_model(AS_GROWN_K)
    ensemble = FilmEnsemble.fresh(SWEEP_POINTS).anneal(SWEEP_GRID_C, 1800.0)
    k_true = model.k_eff_array(ensemble.sharpness,
                               ensemble.crystalline_fraction)
    return measure_anisotropy_batch(k_true)


def _sweep_ensemble() -> FilmEnsemble:
    return FilmEnsemble.fresh(SWEEP_POINTS).anneal(SWEEP_GRID_C, 1800.0)


def _measure_physics_sweeps():
    rows = {}
    _fig7_batched()  # warm-up: first-call numpy allocations
    scalar, k_scalar = _best(_fig7_scalar, repeat=2)
    batched, k_batched = _best(_fig7_batched, repeat=8)
    np.testing.assert_allclose(k_batched, k_scalar, rtol=1e-8)
    rows["fig7 anisotropy sweep"] = (scalar, batched)

    def _per_point_states():
        # the old per-point bench protocol: one fresh anneal per sample
        return [anneal(FilmState(), float(t), 1800.0) for t in SWEEP_GRID_C]

    scalar, low_ref = _best(
        lambda: [low_angle_scan(s) for s in _per_point_states()], repeat=1)
    batched, low_set = _best(
        lambda: low_angle_scan_set(_sweep_ensemble()), repeat=5)
    np.testing.assert_allclose(low_set.intensity,
                               [s.intensity for s in low_ref], rtol=1e-9)
    rows["fig8 low-angle sweep"] = (scalar, batched)

    scalar, high_ref = _best(
        lambda: [high_angle_scan(s) for s in _per_point_states()], repeat=3)
    batched, high_set = _best(
        lambda: high_angle_scan_set(_sweep_ensemble()), repeat=8)
    np.testing.assert_allclose(high_set.intensity,
                               [s.intensity for s in high_ref], rtol=1e-9)
    rows["fig9 high-angle sweep"] = (scalar, batched)
    return rows


def _venti_data() -> bytes:
    return np.random.default_rng(5).integers(
        0, 256, size=120_000, dtype=np.uint8).tobytes()


def _measure_venti():
    data = _venti_data()

    def build(batched):
        device = SERODevice.create(512)
        store = VentiStore(device=device, arena_start=0, arena_blocks=512,
                           batched=batched)
        return store.put_stream(data)

    scalar, root_seq = _best(lambda: build(False), repeat=2)
    batched, root_bat = _best(lambda: build(True), repeat=3)
    assert root_bat == root_seq  # byte-identical scores
    return scalar, batched


def _audit_device() -> SERODevice:
    device = SERODevice.create(64, config=DeviceConfig(span_engine=True))
    for start in range(0, 64, 8):
        for pba in range(start + 1, start + 8):
            device.write_block(pba, PAYLOAD)
        device.heat_line(start, 8, timestamp=start)
    return device


def _measure_verify_lines():
    # NB: the baseline here is the *per-line span-engine* loop, not the
    # scalar reference protocol (bench_span_engine covers that gap) —
    # this row isolates the increment from batching across lines.
    device = _audit_device()
    starts = [rec.start for rec in device.heated_lines]
    scalar, _ = _best(lambda: [device.verify_line(s) for s in starts],
                      repeat=2)
    batched, results = _best(lambda: device.verify_lines(starts), repeat=3)
    assert len(results) == len(starts)
    return scalar, batched


def _measure_fleet():
    fleet = FleetScheduler.build(4, SCAN_BLOCKS, switching_sigma=0.02)
    formatted = fleet.format_fleet()
    for device in fleet.devices:
        start = next(s for s in range(0, SCAN_BLOCKS, 2)
                     if s not in device.bad_blocks
                     and s not in device.fragile_blocks
                     and s + 1 not in device.bad_blocks)
        device.write_block(start + 1, PAYLOAD)
        device.heat_line(start, 2)
    audited = fleet.audit_fleet()
    return formatted, audited


def _sweep():
    rows = {}
    rows["scan_for_defects"] = _measure_defect_scan()
    rows.update(_measure_physics_sweeps())
    rows["venti put_stream"] = _measure_venti()
    rows["verify_lines (8 lines, vs per-line span loop)"] = _measure_verify_lines()
    return rows


def test_batched_engine_speedups(benchmark, show):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    formatted, audited = _measure_fleet()
    table = [[op, scalar * 1e3, batched * 1e3, scalar / batched]
             for op, (scalar, batched) in rows.items()]
    show(format_table(
        ["operation", "scalar [ms]", "batched [ms]", "speedup"],
        [[r[0], round(r[1], 2), round(r[2], 2), round(r[3], 1)]
         for r in table],
        title="batched engine — scalar reference vs batched wall clock"))
    show(f"fleet: formatted {formatted.blocks_processed} blocks on "
         f"{formatted.device_count} devices at "
         f"{formatted.blocks_per_second:.0f} blocks/s; audited "
         f"{audited.lines_verified} lines "
         f"({audited.intact_lines} intact)")

    payload = {
        "bench": "batched_engine",
        "rows": [{"operation": r[0], "scalar_ms": round(r[1], 3),
                  "batched_ms": round(r[2], 3),
                  "speedup": round(r[3], 1)} for r in table],
        "floors": FLOORS,
        "fleet": {
            "devices": formatted.device_count,
            "blocks_formatted": formatted.blocks_processed,
            "format_blocks_per_second": round(formatted.blocks_per_second, 1),
            "lines_audited": audited.lines_verified,
            "intact_lines": audited.intact_lines,
        },
    }
    (REPO_ROOT / "BENCH_batched_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    by_op = {r[0]: r[3] for r in table}
    for op, floor in FLOORS.items():
        assert by_op[op] >= floor, f"{op}: {by_op[op]:.1f}x < {floor}x floor"
