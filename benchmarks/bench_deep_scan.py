"""Deep-scan recovery: span-batched pointer walk vs per-block reads.

Section 5.2's "albeit slowly" recovery scan spends its block reads on
the recovered files' pointer walks — historically one ``read_block``
(seek + decode) per pointer.  Log-structured writes lay a file's
blocks out consecutively inside its heated line, so the walk now
groups each file's pointers into runs and reads them as medium spans
(``SERODevice.read_block_run``), the same batching ``verify_lines``
applies to erb probing.  This bench:

* asserts recovery equivalence — batched and per-block scans of
  identically prepared devices recover the same files, contents and
  verdicts, with identical simulated device time;
* floors the pointer-walk speedup and records it (with the full-scan
  walls) in ``BENCH_deep_scan.json``.
"""

import io
import json
import pickle
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.device.sero import SERODevice
from repro.fs.fsck import _pointer_runs, _read_pointers, deep_scan
from repro.fs.lfs import SeroFS
from repro.security.attacks import clear_directory

REPO_ROOT = Path(__file__).resolve().parents[1]
TOTAL_BLOCKS = 512
N_FILES = 10
FILE_BYTES = 6200  # ~13 data blocks: heats a 16-block line per file
FLOORS = {"pointer_walk_speedup": 2.0}


def _prepared_device() -> SERODevice:
    """A device holding heated files with their directory wiped — the
    Section 5.2 recovery scenario."""
    device = SERODevice.create(TOTAL_BLOCKS)
    device.format()
    fs = SeroFS.format(device)
    for i in range(N_FILES):
        fs.create(f"/f{i}", bytes([i % 251]) * FILE_BYTES)
        fs.heat_file(f"/f{i}")
    fs.checkpoint()
    clear_directory(fs)
    return device


def _clone(device: SERODevice) -> SERODevice:
    buffer = io.BytesIO()
    pickle.dump(device, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    buffer.seek(0)
    return pickle.load(buffer)


def _scan_wall(device: SERODevice, batch: bool):
    t0 = time.perf_counter()
    report = deep_scan(device, batch_pointer_reads=batch)
    return report, time.perf_counter() - t0


def _walk_wall(device: SERODevice, pointer_sets, batch: bool) -> float:
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for pointers in pointer_sets:
            _read_pointers(device, pointers, batch)
        best = min(best, time.perf_counter() - t0)
    return best


def test_deep_scan_batched_pointer_walk(benchmark, show):
    master = _prepared_device()
    scalar_report, scalar_wall = _scan_wall(_clone(master), batch=False)
    batched_report, batched_wall = benchmark.pedantic(
        lambda: _scan_wall(_clone(master), batch=True),
        rounds=1, iterations=1)

    def digest(report):
        return [(f.line_start, f.ino, f.name_hint, f.size, f.data,
                 f.verification.status) for f in report.recovered]

    assert digest(batched_report) == digest(scalar_report)
    assert len(batched_report.recovered) == N_FILES
    # span reads draw per-run instead of per-block on heated data
    # dots (the established scalar-vs-span convention), so simulated
    # time agrees to the per-pass randomness, not bit-exactly
    assert abs(batched_report.device_seconds -
               scalar_report.device_seconds) \
        <= 1e-3 * scalar_report.device_seconds

    # isolate the pointer walk: same recovered pointer runs, read
    # per-block vs as spans (clones: reads advance the device RNG)
    pointer_sets = []
    for record in master.heated_lines:
        pointers = list(range(record.start + 2,
                              record.start + record.n_blocks))
        pointer_sets.append(pointers)
        assert len(_pointer_runs(pointers)) == 1  # consecutive layout
    per_block = _walk_wall(_clone(master), pointer_sets, batch=False)
    span = _walk_wall(_clone(master), pointer_sets, batch=True)
    speedup = per_block / span

    show(format_table(
        ["path", "wall [ms]"],
        [["deep_scan per-block", round(scalar_wall * 1e3, 2)],
         ["deep_scan batched", round(batched_wall * 1e3, 2)],
         ["pointer walk per-block", round(per_block * 1e3, 2)],
         ["pointer walk batched", round(span * 1e3, 2)],
         ["walk speedup", round(speedup, 1)]],
        title="deep scan — span-batched pointer walk"))

    payload = {
        "bench": "deep_scan",
        "total_blocks": TOTAL_BLOCKS,
        "files_recovered": N_FILES,
        "scan_wall_per_block_s": round(scalar_wall, 4),
        "scan_wall_batched_s": round(batched_wall, 4),
        "walk_wall_per_block_s": round(per_block, 4),
        "walk_wall_batched_s": round(span, 4),
        "walk_speedup": round(speedup, 1),
        "device_seconds_rel_err": round(
            abs(batched_report.device_seconds -
                scalar_report.device_seconds) /
            scalar_report.device_seconds, 6),
        "floors": FLOORS,
    }
    (REPO_ROOT / "BENCH_deep_scan.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    assert speedup >= FLOORS["pointer_walk_speedup"]
