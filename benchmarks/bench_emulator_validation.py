"""Section 9 — emulator validation and the shred extension.

The paper's own evaluation plan: "develop a time-accurate emulator for
the device ... to validate the simulation results", built on anti-fuse
write-once memory.  This bench replays an identical scenario against
the patterned-medium simulator and the anti-fuse emulator and demands
identical verdict sequences and identical line hashes; it also
exercises the Section 8 shred extension, showing that a shred destroys
data while remaining distinguishable from hostile tampering.
"""

from repro.analysis.report import format_table
from repro.device.antifuse import AntifuseSEROEmulator
from repro.device.sero import SERODevice
from repro.device.shred import classify_destroyed_line, shred_line
from repro.security import attacks


def _scenario(device):
    verdicts = []
    for pba in range(1, 8):
        device.write_block(pba, bytes([pba]) * 512)
    record = device.heat_line(0, 8, timestamp=1)
    verdicts.append(("after heat", device.verify_line(0).status.value))
    if isinstance(device, AntifuseSEROEmulator):
        device.tamper_rewrite_data(3, b"FORGED")
    else:
        attacks.mwb_data(device, 0, target_offset=3, forged=b"FORGED")
    verdicts.append(("after data rewrite", device.verify_line(0).status.value))
    return record.line_hash, verdicts


def test_emulator_validates_simulator(benchmark, show):
    def both():
        return (_scenario(SERODevice.create(64)),
                _scenario(AntifuseSEROEmulator(total_blocks=64)))

    (sim_hash, sim_verdicts), (emu_hash, emu_verdicts) = benchmark.pedantic(
        both, rounds=1, iterations=1)
    rows = [[stage, sim, emu, "yes" if sim == emu else "NO"]
            for (stage, sim), (_stage, emu) in zip(sim_verdicts, emu_verdicts)]
    rows.append(["line hash", sim_hash.hex()[:12] + "…",
                 emu_hash.hex()[:12] + "…",
                 "yes" if sim_hash == emu_hash else "NO"])
    show(format_table(
        ["stage", "patterned-medium simulator", "anti-fuse emulator",
         "agree"],
        rows, title="Section 9 — emulator cross-validation"))
    assert sim_hash == emu_hash
    assert sim_verdicts == emu_verdicts


def test_shred_vs_tamper_classification(benchmark, show):
    def classify():
        rows = []
        for action in ("none", "ewb tamper", "shred"):
            device = SERODevice.create(32)
            for pba in range(1, 4):
                device.write_block(pba, b"\x33" * 512)
            device.heat_line(0, 4)
            if action == "ewb tamper":
                attacks.ewb_data(device, 0, n_dots=64)
            elif action == "shred":
                shred_line(device, 0)
            rows.append([action, classify_destroyed_line(device, 0),
                         device.verify_line(0).status.value])
        return rows

    rows = benchmark.pedantic(classify, rounds=1, iterations=1)
    show(format_table(["action", "classification", "verify status"], rows,
                      title="Section 8 — shred is loud and distinguishable"))
    table = {r[0]: r[1] for r in rows}
    assert table["none"] == "intact"
    assert table["ewb tamper"] == "tampered"
    assert table["shred"] == "shredded"
