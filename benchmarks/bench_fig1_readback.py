"""Fig 1 — read-back signal over magnetised and destroyed dots.

Regenerates both halves of Fig 1: three dots magnetised up/down/up
give +/-/+ peaks; after the last dot is heated its peak disappears.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.physics.mfm import detect_bits, healthy_peak_amplitude, scan_dots


def _fig1_rows():
    healthy = scan_dots([(1, False), (-1, False), (1, False)])
    damaged = scan_dots([(1, False), (-1, False), (1, True)])
    reference = healthy_peak_amplitude()
    rows = []
    for label, line in (("as written", healthy), ("last dot heated", damaged)):
        pitch = 200e-9
        peaks = [line.peak_at(i * pitch, 0.3 * pitch) / reference
                 for i in range(3)]
        bits = detect_bits(line, 3)
        rows.append([label] + [f"{p:+.2f}" for p in peaks] + ["".join(bits)])
    return rows


def test_fig1_readback_signal(benchmark, show):
    rows = benchmark(_fig1_rows)
    show(format_table(
        ["medium state", "peak@dot0", "peak@dot1", "peak@dot2", "detected"],
        rows,
        title="Fig 1 — MFM read-back (peaks normalised to a healthy dot)"))
    assert rows[0][4] == "101"
    assert rows[1][4] == "10H"
