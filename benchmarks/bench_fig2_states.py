"""Fig 2 — the state transitions of one bit.

Exhaustively drives one dot through every edge of the Fig 2 diagram
and prints the observed transition table: mwb toggles 0 <-> 1, ewb is
a one-way edge into H from either state, and on a heated dot mwb has
no effect while mrb returns "a more or less random result".
"""

from repro.analysis.report import format_table
from repro.device.bitops import BitOps
from repro.medium.geometry import MediumGeometry
from repro.medium.medium import PatternedMedium


def _state(ops: BitOps, index: int) -> str:
    if ops.medium.is_heated(index):
        return "H"
    return str(ops.mrb(index))


def _transition_rows():
    geom = MediumGeometry(cols=64, rows=1, dots_per_block=16)
    rows = []
    dot = 0
    for start_bit, op, arg in [
        (0, "mwb", 1), (1, "mwb", 0), (0, "mwb", 0), (1, "mwb", 1),
        (0, "ewb", None), (1, "ewb", None),
    ]:
        ops = BitOps(PatternedMedium(geom))
        ops.mwb(dot, start_bit)
        before = _state(ops, dot)
        if op == "mwb":
            ops.mwb(dot, arg)
            label = f"mwb {arg}"
        else:
            ops.ewb(dot)
            label = "ewb"
        rows.append([before, label, _state(ops, dot)])
    # edges out of H
    ops = BitOps(PatternedMedium(geom))
    ops.ewb(dot)
    ops.mwb(dot, 1)
    rows.append(["H", "mwb 0/1", _state(ops, dot)])
    ops.ewb(dot)
    rows.append(["H", "ewb", _state(ops, dot)])
    reads = {ops.mrb(dot) for _ in range(32)}
    rows.append(["H", "mrb", "random " + "/".join(map(str, sorted(reads)))])
    return rows


def test_fig2_state_machine(benchmark, show):
    rows = benchmark(_transition_rows)
    show(format_table(["state", "operation", "state'"], rows,
                      title="Fig 2 — observed bit state transitions"))
    table = {(r[0], r[1]): r[2] for r in rows}
    assert table[("0", "mwb 1")] == "1"
    assert table[("1", "mwb 0")] == "0"
    assert table[("0", "ewb")] == "H"
    assert table[("1", "ewb")] == "H"
    assert table[("H", "mwb 0/1")] == "H"  # no way back
    assert table[("H", "ewb")] == "H"
    assert table[("H", "mrb")].startswith("random")
