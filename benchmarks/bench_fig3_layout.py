"""Fig 3 — sample medium layout of a heated line.

Heats an 8-block line and dumps the on-dot layout exactly as Fig 3
draws it: block 0 is Manchester-coded electrical cells (HU/UH), blocks
1..2^N-1 are ordinary magnetic 0/1 data.
"""

from repro.analysis.report import format_table
from repro.device.sector import E_REGION_DOTS
from repro.device.sero import SERODevice


def _build_line():
    device = SERODevice.create(16)
    for pba in range(1, 8):
        device.write_block(pba, bytes([pba]) * 512)
    device.heat_line(0, 8, timestamp=1)
    return device


def _layout_rows(device):
    rows = []
    # block 0: classify the first cells + count the rest
    start, _ = device.geometry.block_span(0)
    heated = device.medium.image_heated(range(start, start + E_REGION_DOTS))
    cells = ["".join("H" if heated[2 * c + k] else "U" for k in (0, 1))
             for c in range(8)]
    n_h = int(heated.sum())
    rows.append(["0", " ".join(cells) + " ...",
                 f"hash+meta. ({n_h} H dots of {E_REGION_DOTS})"])
    for pba in (1, 2, 7):
        s, _ = device.geometry.block_span(pba)
        bits = "".join(device.medium.snapshot_states(s, s + 16))
        rows.append([str(pba), bits + " ...", "512B data"])
    return rows


def test_fig3_heated_line_layout(benchmark, show):
    device = _build_line()
    rows = benchmark(_layout_rows, device)
    show(format_table(["block", "first dots", "purpose"], rows,
                      title="Fig 3 — heated line layout (N=3)"))
    # block 0's cells are valid Manchester: exactly one H per cell
    for cell in rows[0][1].split()[:8]:
        assert cell in ("HU", "UH")
    # data blocks contain no heated dots
    for row in rows[1:]:
        assert "H" not in row[1]
    # exactly half the electrical region dots are heated (one per cell)
    assert f"{E_REGION_DOTS // 2} H dots" in rows[0][2]
