"""Fig 7 — perpendicular anisotropy vs annealing temperature.

Reproduces the full measurement pipeline: six samples annealed at
six temperatures, torque curves at 1350 kA/m, Fourier extraction of K.
Expected shape: K ~ 80 kJ/m^3 flat up to 500 C, collapsing above 600 C.
"""

from repro.analysis.report import format_series
from repro.physics.anisotropy import calibrated_model
from repro.physics.annealing import anneal_series
from repro.physics.constants import AS_GROWN_K
from repro.physics.torque import measure_anisotropy

TEMPERATURES_C = [25, 300, 400, 500, 600, 700]


def _fig7_series():
    model = calibrated_model(AS_GROWN_K)
    samples = anneal_series(TEMPERATURES_C, duration_s=1800.0)
    points = []
    for temp, sample in zip(TEMPERATURES_C, samples):
        k_true = model.k_eff(sample.sharpness, sample.crystalline_fraction)
        k_meas = measure_anisotropy(k_true).k_measured
        points.append((temp, k_meas / 1e3))
    return points


def test_fig7_anisotropy_vs_annealing(benchmark, show):
    points = benchmark(_fig7_series)
    show(format_series("anneal T [C]", "K [kJ/m^3] (torque-curve Fourier)",
                       points, title="Fig 7 — perpendicular anisotropy"))
    k = dict(points)
    # paper: "80 kJ/m^3 ... maintained up to an annealing temperature
    # of 500 C. Above 600 C the value of K drops dramatically."
    assert abs(k[25] - 80.0) < 2.0
    assert k[300] > 0.97 * k[25]
    assert k[400] > 0.95 * k[25]
    assert k[500] > 0.9 * k[25]
    assert k[600] < 0.75 * k[25]
    assert k[700] < 0.1 * k[25]
