"""Fig 7 — perpendicular anisotropy vs annealing temperature.

Reproduces the full measurement pipeline on a whole temperature grid:
a :class:`FilmEnsemble` anneals every sample in one array pass, the
effective anisotropies evaluate as one ``k_eff_array`` expression and
the torque-magnetometry Fourier extraction runs batched over all
states (``measure_anisotropy_batch``) — a handful of array ops instead
of one anneal + 360-angle Newton loop per temperature point.
Expected shape: K ~ 80 kJ/m^3 flat up to 500 C, collapsing above 600 C.
"""

import numpy as np

from repro.analysis.report import format_series
from repro.physics.anisotropy import calibrated_model
from repro.physics.annealing import FilmEnsemble
from repro.physics.constants import AS_GROWN_K
from repro.physics.torque import measure_anisotropy_batch

TEMPERATURES_C = [25, 300, 400, 500, 600, 700]
GRID_C = np.union1d(np.linspace(25.0, 700.0, 128),
                    np.asarray(TEMPERATURES_C, dtype=float))


def _fig7_series():
    model = calibrated_model(AS_GROWN_K)
    ensemble = FilmEnsemble.fresh(GRID_C.size).anneal(GRID_C,
                                                      duration_s=1800.0)
    k_true = model.k_eff_array(ensemble.sharpness,
                               ensemble.crystalline_fraction)
    k_meas = measure_anisotropy_batch(k_true)
    return [(float(t), float(k) / 1e3) for t, k in zip(GRID_C, k_meas)]


def test_fig7_anisotropy_vs_annealing(benchmark, show):
    points = benchmark(_fig7_series)
    paper_points = [p for p in points if p[0] in TEMPERATURES_C]
    show(format_series("anneal T [C]", "K [kJ/m^3] (torque-curve Fourier)",
                       paper_points, title="Fig 7 — perpendicular anisotropy"))
    k = dict(points)
    # paper: "80 kJ/m^3 ... maintained up to an annealing temperature
    # of 500 C. Above 600 C the value of K drops dramatically."
    assert abs(k[25] - 80.0) < 2.0
    assert k[300] > 0.97 * k[25]
    assert k[400] > 0.95 * k[25]
    assert k[500] > 0.9 * k[25]
    assert k[600] < 0.75 * k[25]
    assert k[700] < 0.1 * k[25]
    # the dense grid is monotonically collapsing through the transition
    in_window = [v for t, v in points if 500.0 <= t <= 700.0]
    assert all(a >= b - 1e-9 for a, b in zip(in_window, in_window[1:]))
