"""Fig 8 — low-angle XRD of as-grown vs annealed films.

The superlattice peak near 2-theta = 8 degrees (the 0.55 nm Co/Pt
multilayer periodicity) must be present as grown and vanish after a
700 C anneal — the direct structural proof that heating destroys the
interfaces.  The bench evaluates a whole anneal-temperature grid as
one :func:`low_angle_scan_set` broadcast (the as-grown state rides
along as sample 0) instead of synthesising one density profile and
phase matrix per temperature.
"""

import numpy as np

from repro.analysis.report import format_series
from repro.physics.annealing import FilmEnsemble
from repro.physics.xrd import low_angle_scan_set, multilayer_peak_visible

GRID_C = np.linspace(100.0, 700.0, 61)


def _fig8_scan_set():
    annealed = FilmEnsemble.fresh(GRID_C.size).anneal(GRID_C, 1800.0)
    ensemble = FilmEnsemble(
        sharpness=np.concatenate([[1.0], annealed.sharpness]),
        crystalline_fraction=np.concatenate(
            [[0.0], annealed.crystalline_fraction]))
    return low_angle_scan_set(ensemble)


def _downsample(scan, n=16):
    idx = np.linspace(0, len(scan.two_theta_deg) - 1, n).astype(int)
    peak = scan.intensity.max()
    return [(round(float(scan.two_theta_deg[i]), 1),
             float(scan.intensity[i]) / peak) for i in idx]


def test_fig8_low_angle_xrd(benchmark, show):
    scans = benchmark(_fig8_scan_set)
    as_grown = scans.scan(0)
    annealed = scans.scan(len(scans) - 1)  # the 700 C sample
    show(format_series("2theta [deg]", "I/I_max (as grown)",
                       _downsample(as_grown),
                       title="Fig 8 — low-angle XRD, as grown"))
    scale = as_grown.intensity.max()
    show(format_series("2theta [deg]", "I (annealed, same scale)",
                       [(t, float(v)) for t, v in _downsample(annealed)],
                       title="Fig 8 — low-angle XRD, annealed 700 C"))
    assert multilayer_peak_visible(as_grown)
    assert not multilayer_peak_visible(annealed)
    assert abs(as_grown.peak_two_theta(6.0, 10.0) - 8.0) < 0.5
    # the annealed film's response in the peak window collapses
    ratio = annealed.peak_intensity(6, 10) / as_grown.peak_intensity(6, 10)
    assert ratio < 1e-3
    # across the grid the peak decays monotonically with anneal T
    peaks = [scans.scan(i).peak_intensity(6, 10)
             for i in range(1, len(scans))]
    assert all(a >= b - 1e-12 * scale for a, b in zip(peaks, peaks[1:]))