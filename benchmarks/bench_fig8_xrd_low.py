"""Fig 8 — low-angle XRD of as-grown vs annealed films.

The superlattice peak near 2-theta = 8 degrees (the 0.55 nm Co/Pt
multilayer periodicity) must be present as grown and vanish after a
700 C anneal — the direct structural proof that heating destroys the
interfaces.
"""

import numpy as np

from repro.analysis.report import format_series
from repro.physics.annealing import FilmState, anneal
from repro.physics.xrd import low_angle_scan, multilayer_peak_visible


def _fig8_scans():
    as_grown = low_angle_scan()
    annealed_state = anneal(FilmState(), 700.0, 1800.0)
    annealed = low_angle_scan(annealed_state)
    return as_grown, annealed


def _downsample(scan, n=16):
    idx = np.linspace(0, len(scan.two_theta_deg) - 1, n).astype(int)
    peak = scan.intensity.max()
    return [(round(float(scan.two_theta_deg[i]), 1),
             float(scan.intensity[i]) / peak) for i in idx]


def test_fig8_low_angle_xrd(benchmark, show):
    as_grown, annealed = benchmark(_fig8_scans)
    show(format_series("2theta [deg]", "I/I_max (as grown)",
                       _downsample(as_grown),
                       title="Fig 8 — low-angle XRD, as grown"))
    scale = as_grown.intensity.max()
    pts = [(t, i * (annealed.intensity.max() / scale) / max(i, 1e-12) * i)
           for t, i in _downsample(annealed)]
    show(format_series("2theta [deg]", "I (annealed, same scale)",
                       [(t, float(v)) for t, v in pts],
                       title="Fig 8 — low-angle XRD, annealed 700 C"))
    assert multilayer_peak_visible(as_grown)
    assert not multilayer_peak_visible(annealed)
    assert abs(as_grown.peak_two_theta(6.0, 10.0) - 8.0) < 0.5
    # the annealed film's response in the peak window collapses
    ratio = annealed.peak_intensity(6, 10) / as_grown.peak_intensity(6, 10)
    assert ratio < 1e-3
