"""Fig 9 — high-angle XRD of the same two samples.

After the 700 C anneal a sharp fct CoPt (111) reflection appears at
2-theta = 41.7 degrees; the as-grown film shows only broad weak humps.
The tilted easy axis of that crystal phase is why "there is no risk
that after excessive heating the perpendicular anisotropy can be
restored by crystallisation".  As for Fig 8, the bench evaluates a
whole anneal-temperature grid as one :func:`high_angle_scan_set`
broadcast with the as-grown state as sample 0.
"""

import numpy as np

from repro.analysis.report import format_series
from repro.physics.annealing import FilmEnsemble
from repro.physics.xrd import high_angle_scan_set

GRID_C = np.linspace(100.0, 700.0, 61)


def _fig9_scan_set():
    annealed = FilmEnsemble.fresh(GRID_C.size).anneal(GRID_C, 1800.0)
    ensemble = FilmEnsemble(
        sharpness=np.concatenate([[1.0], annealed.sharpness]),
        crystalline_fraction=np.concatenate(
            [[0.0], annealed.crystalline_fraction]))
    return high_angle_scan_set(ensemble)


def _series(scan, n=18):
    idx = np.linspace(0, len(scan.two_theta_deg) - 1, n).astype(int)
    return [(round(float(scan.two_theta_deg[i]), 1),
             float(scan.intensity[i])) for i in idx]


def test_fig9_high_angle_xrd(benchmark, show):
    scans = benchmark(_fig9_scan_set)
    as_grown = scans.scan(0)
    annealed = scans.scan(len(scans) - 1)  # the 700 C sample
    show(format_series("2theta [deg]", "I (as grown)", _series(as_grown),
                       title="Fig 9 — high-angle XRD, as grown"))
    show(format_series("2theta [deg]", "I (annealed)", _series(annealed),
                       title="Fig 9 — high-angle XRD, annealed 700 C"))
    assert abs(annealed.peak_two_theta(38.0, 46.0) - 41.7) < 0.2
    window = (40.5, 43.0)
    assert annealed.peak_intensity(*window) > \
        20 * as_grown.peak_intensity(*window)
    # the CoPt (111) peak grows monotonically with anneal temperature
    peaks = [scans.scan(i).peak_intensity(*window)
             for i in range(1, len(scans))]
    # (small relative slack: the broad multilayer humps fade slightly
    # before the crystal peak dominates the window)
    assert all(b >= a * (1.0 - 1e-4) for a, b in zip(peaks, peaks[1:]))