"""Fig 9 — high-angle XRD of the same two samples.

After the 700 C anneal a sharp fct CoPt (111) reflection appears at
2-theta = 41.7 degrees; the as-grown film shows only broad weak humps.
The tilted easy axis of that crystal phase is why "there is no risk
that after excessive heating the perpendicular anisotropy can be
restored by crystallisation".
"""

import numpy as np

from repro.analysis.report import format_series
from repro.physics.annealing import FilmState, anneal
from repro.physics.xrd import high_angle_scan


def _fig9_scans():
    as_grown = high_angle_scan()
    annealed_state = anneal(FilmState(), 700.0, 1800.0)
    annealed = high_angle_scan(annealed_state)
    return as_grown, annealed


def _series(scan, n=18):
    idx = np.linspace(0, len(scan.two_theta_deg) - 1, n).astype(int)
    return [(round(float(scan.two_theta_deg[i]), 1),
             float(scan.intensity[i])) for i in idx]


def test_fig9_high_angle_xrd(benchmark, show):
    as_grown, annealed = benchmark(_fig9_scans)
    show(format_series("2theta [deg]", "I (as grown)", _series(as_grown),
                       title="Fig 9 — high-angle XRD, as grown"))
    show(format_series("2theta [deg]", "I (annealed)", _series(annealed),
                       title="Fig 9 — high-angle XRD, annealed 700 C"))
    assert abs(annealed.peak_two_theta(38.0, 46.0) - 41.7) < 0.2
    window = (40.5, 43.0)
    assert annealed.peak_intensity(*window) > \
        20 * as_grown.peak_intensity(*window)
