"""Fleet executor floors: parallel dispatch vs the serial reference.

The scale-out acceptance criterion: an 8-device fleet audit dispatched
on the ``thread`` or ``process`` executor must beat the ``serial``
reference —

* **simulated rack makespan** (always enforced): with one worker per
  device the rack finishes when its slowest member does, so the
  simulated completion time must drop ≥ :data:`MAKESPAN_FLOOR`× vs
  serial.  This is deterministic device-time accounting, independent
  of host hardware;
* **host wall-clock** (enforced on machines with ≥
  :data:`WALL_FLOOR_MIN_CPUS` cores, i.e. every CI runner): the best
  parallel executor must audit ≥ :data:`WALL_FLOOR`× faster than
  serial.  On smaller hosts the measurement is recorded in the JSON
  but a 2× wall speedup is physically impossible on one core, so the
  floor does not apply;

and, always, the per-device reports must be **byte-identical** across
all three executors — parallel dispatch must not change a single
verdict, hash or simulated-time figure.

Results land in ``BENCH_fleet.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.workloads.fleet import FleetScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]

N_DEVICES = 8
BLOCKS_PER_DEVICE = 128
#: Short, densely packed lines: the erb-heavy audit profile, which is
#: both the paper's integrity hot path and the most compute per byte
#: of member snapshot a process worker has to ingest.
LINES_PER_DEVICE = 60
LINE_BLOCKS = 2

#: Simulated rack-makespan speedup floor (8 workers over 8 devices
#: should approach 8x; 2x leaves room for imbalanced media).
MAKESPAN_FLOOR = 2.0

#: Host wall-clock speedup floor for the best parallel executor.
WALL_FLOOR = 2.0

#: Cores below which the wall floor is recorded but not enforced.
WALL_FLOOR_MIN_CPUS = 4


def _provisioned_fleet(executor):
    fleet = FleetScheduler.build(N_DEVICES, BLOCKS_PER_DEVICE,
                                 switching_sigma=0.02,
                                 executor=executor, max_workers=N_DEVICES)
    fleet.format_fleet()
    fleet.seal_fleet(lines_per_device=LINES_PER_DEVICE,
                     line_blocks=LINE_BLOCKS)
    return fleet


def _measure(executor):
    """Provision under ``executor`` and time its audit pass (best wall
    of three: pool startup and page-cache noise must not decide
    floors).  The *first* pass's report is returned for the
    byte-equivalence assertion — repeated audits advance each device's
    RNG, so reports are comparable across executors only at the same
    pass index."""
    fleet = _provisioned_fleet(executor)
    first = None
    best_wall = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        report = fleet.audit_fleet()
        best_wall = min(best_wall, time.perf_counter() - t0)
        if first is None:
            first = report
    return best_wall, first, fleet


def test_fleet_parallel_audit_floors(benchmark, show):
    serial_wall, serial_report, _ = benchmark.pedantic(
        lambda: _measure("serial"), rounds=1, iterations=1)
    results = {"serial": (serial_wall, serial_report)}
    for name in ("thread", "process"):
        wall, report, _fleet = _measure(name)
        results[name] = (wall, report)

    # parallel dispatch must not change a single per-device byte
    for name in ("thread", "process"):
        assert results[name][1].fingerprints() == \
            serial_report.fingerprints(), f"{name} diverged from serial"

    serial_makespan = serial_report.simulated_makespan_seconds
    rows = []
    for name, (wall, report) in results.items():
        rows.append({
            "executor": name,
            "workers": report.workers,
            "wall_s": wall,
            "wall_speedup": serial_wall / wall if wall > 0 else 0.0,
            "makespan_s": report.simulated_makespan_seconds,
            "makespan_speedup": (
                serial_makespan / report.simulated_makespan_seconds
                if report.simulated_makespan_seconds > 0 else 0.0),
        })
    show(format_table(
        ["executor", "workers", "wall [ms]", "wall x", "sim makespan [ms]",
         "makespan x"],
        [[r["executor"], r["workers"], round(r["wall_s"] * 1e3, 1),
          round(r["wall_speedup"], 2), round(r["makespan_s"] * 1e3, 3),
          round(r["makespan_speedup"], 2)] for r in rows],
        title=f"fleet audit, {N_DEVICES} devices x {BLOCKS_PER_DEVICE} "
              f"blocks, {LINES_PER_DEVICE} sealed lines each"))

    cpus = os.cpu_count() or 1
    best_makespan = max(r["makespan_speedup"] for r in rows
                        if r["executor"] != "serial")
    best_wall = max(r["wall_speedup"] for r in rows
                    if r["executor"] != "serial")
    wall_floor_enforced = cpus >= WALL_FLOOR_MIN_CPUS

    payload = {
        "bench": "fleet",
        "devices": N_DEVICES,
        "blocks_per_device": BLOCKS_PER_DEVICE,
        "lines_audited": serial_report.lines_verified,
        "cpu_count": cpus,
        "rows": [{k: (round(v, 6) if isinstance(v, float) else v)
                  for k, v in r.items()} for r in rows],
        "floors": {
            "makespan_speedup": MAKESPAN_FLOOR,
            "wall_speedup": WALL_FLOOR,
            "wall_floor_min_cpus": WALL_FLOOR_MIN_CPUS,
            "wall_floor_enforced": wall_floor_enforced,
        },
        "best_makespan_speedup": round(best_makespan, 2),
        "best_wall_speedup": round(best_wall, 2),
    }
    (REPO_ROOT / "BENCH_fleet.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    assert serial_report.lines_verified == N_DEVICES * LINES_PER_DEVICE
    assert best_makespan >= MAKESPAN_FLOOR, (
        f"simulated makespan speedup {best_makespan:.2f}x under floor "
        f"{MAKESPAN_FLOOR}x")
    if wall_floor_enforced:
        assert best_wall >= WALL_FLOOR, (
            f"parallel wall speedup {best_wall:.2f}x under floor "
            f"{WALL_FLOOR}x on {cpus} cores")
    else:
        show(f"wall floor not enforced: {cpus} cpu(s) < "
             f"{WALL_FLOOR_MIN_CPUS} (best parallel wall "
             f"{best_wall:.2f}x)")
