"""Section 4.2 — fossilised index on SERO storage.

Inserts a stream of record hashes and reports how nodes fill, seal
(heat) and keep answering deterministic lookups — "making copying the
completed node to the WORM unnecessary".
"""

from repro.analysis.report import format_table
from repro.crypto.sha256 import sha256_digest
from repro.device.sero import SERODevice, VerifyStatus
from repro.integrity.fossil import FossilizedIndex


def _grow(checkpoints=(8, 32, 128, 256)):
    device = SERODevice.create(4096)
    index = FossilizedIndex(device, arena_start=16, arena_blocks=4000)
    rows = []
    inserted = []
    for target in checkpoints:
        while len(inserted) < target:
            h = sha256_digest(len(inserted).to_bytes(4, "big"))
            index.insert(h)
            inserted.append(h)
        lookups_ok = all(index.contains(h) for h in inserted)
        sealed_ok = all(
            r.status is VerifyStatus.INTACT
            for r in index.verify_sealed().values())
        rows.append([target, index.node_count, len(index.sealed_nodes),
                     lookups_ok and sealed_ok])
    return rows


def test_fossil_index_growth(benchmark, show):
    rows = benchmark.pedantic(_grow, rounds=1, iterations=1)
    show(format_table(
        ["records", "nodes", "sealed (heated) nodes", "verified"],
        rows, title="Section 4.2 — fossilised index growth"))
    assert all(r[3] for r in rows)
    sealed = [r[2] for r in rows]
    assert sealed[-1] > 0           # full nodes do seal
    assert sealed == sorted(sealed)  # sealing is monotone (irreversible)


def test_fossil_insert_latency(benchmark):
    device = SERODevice.create(2048)
    index = FossilizedIndex(device, arena_start=16, arena_blocks=2000)
    counter = [0]

    def insert_one():
        h = sha256_digest(counter[0].to_bytes(8, "big"), b"bench")
        counter[0] += 1
        index.insert(h)

    benchmark.pedantic(insert_one, rounds=50, iterations=1)
