"""Gateway service floor: multi-tenant throughput over real HTTP.

Two phases against one live :class:`~repro.gateway.GatewayServer`:

* **byte-identity** (the hard floor) — a deterministic single-tenant
  sequence issued through :class:`~repro.gateway.GatewayClient` must
  return receipts, verdicts, and audit reports ``==`` to the same
  sequence run directly on an identically seeded in-process
  ``FleetStore`` twin, and leave every member store at the identical
  :func:`~repro.parallel.session.store_fingerprint` — the HTTP edge
  adds authentication and JSON, never drift;
* **concurrent hammer** — N simulated tenants, each on its own
  connection and thread, hammer put/seal_many/verify while an admin
  client interleaves full-fleet audits.  The gateway serialises fleet
  passes on one lock, so the floor is honest: sustained operations
  per second through the whole HTTP + auth + schema stack, floored
  at :data:`FLOORS`, with every receipt intact and the final audit
  clean.

Results land in ``BENCH_gateway.json`` at the repo root.
"""

import json
import threading
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.api.fleet import FleetStore
from repro.api.store import StoreConfig
from repro.gateway import (
    GatewayApp,
    GatewayClient,
    GatewayServer,
    TokenTable,
    confine,
)
from repro.parallel.session import store_fingerprint

REPO_ROOT = Path(__file__).resolve().parents[1]

N_MEMBERS = 3
N_TENANTS = 4
OBJECTS_PER_TENANT = 6
PAYLOAD = b"ledger entry " * 8
FLOORS = {"byte_identity": True, "gateway_ops_per_second": 5.0}

CONFIG = StoreConfig(total_blocks=1024, audit_log=True)


def _spec():
    entries = ["admin-tok=admin"]
    entries += [f"tok-tenant{i}=tenant{i}:rw" for i in range(N_TENANTS)]
    return ";".join(entries)


def _fingerprints(fleet):
    return [store_fingerprint(member) for member in fleet.members]


def _identity_phase(address, twin):
    """Deterministic sequence through HTTP vs the in-process twin."""
    client = GatewayClient(address, "tok-tenant0", tenant="tenant0")
    paths = [f"/ident/{i}" for i in range(4)]
    for i, path in enumerate(paths):
        info = client.put(path, PAYLOAD + bytes([i]))
        assert info == twin.put(confine("tenant0", path),
                                PAYLOAD + bytes([i]),
                                make_parents=True)
    receipts = client.seal_many(paths, timestamp=11)
    assert receipts == twin.seal_many(
        [confine("tenant0", p) for p in paths], timestamp=11)
    for path in paths:
        assert client.verify(path) == \
            twin.verify(confine("tenant0", path))
    admin = GatewayClient(address, "admin-tok")
    assert admin.audit() == twin.audit()
    client.close()
    admin.close()


def _tenant_worker(address, index, errors):
    try:
        tenant = f"tenant{index}"
        client = GatewayClient(address, f"tok-{tenant}", tenant=tenant)
        paths = [f"/load/{j}" for j in range(OBJECTS_PER_TENANT)]
        ops = 0
        for j, path in enumerate(paths):
            client.put(path, PAYLOAD + bytes([index, j]))
            ops += 1
        receipts = client.seal_many(paths, timestamp=100 + index)
        ops += 1
        assert len(receipts) == len(paths)
        for path in paths:
            verdict = client.verify(path)
            assert verdict.status.value == "intact", verdict
            ops += 1
        client.close()
        return ops
    except Exception as exc:  # surfaced by the main thread
        errors.append(f"tenant{index}: {exc!r}")
        return 0


def _hammer(address):
    """All tenants concurrently + interleaved admin audits; returns
    (total ops, audit reports)."""
    errors = []
    counts = [0] * N_TENANTS
    threads = []
    for i in range(N_TENANTS):
        def work(i=i):
            counts[i] = _tenant_worker(address, i, errors)
        threads.append(threading.Thread(target=work))
    admin = GatewayClient(address, "admin-tok")
    for thread in threads:
        thread.start()
    audits = [admin.audit()]  # races the tenant load by design
    for thread in threads:
        thread.join()
    audits.append(admin.audit())
    admin.close()
    assert not errors, errors
    return sum(counts) + len(audits), audits


def test_gateway_multi_tenant_throughput(benchmark, show):
    fleet = FleetStore.create(N_MEMBERS, CONFIG)
    twin = FleetStore.create(N_MEMBERS, CONFIG)
    app = GatewayApp(fleet, TokenTable.from_spec(_spec()))
    with GatewayServer(app) as server:
        address = server.address

        _identity_phase(address, twin)
        assert _fingerprints(fleet) == _fingerprints(twin), \
            "HTTP edge drifted from the in-process twin"

        t0 = time.perf_counter()
        ops, audits = benchmark.pedantic(
            lambda: _hammer(address), rounds=1, iterations=1)
        wall = time.perf_counter() - t0
        ops_per_second = ops / wall
        assert audits[-1].clean, audits[-1].fs_errors
        assert ops_per_second >= FLOORS["gateway_ops_per_second"], (
            f"gateway throughput {ops_per_second:.2f} ops/s under the "
            f"{FLOORS['gateway_ops_per_second']} floor")

    show(format_table(
        ["phase", "value", "note"],
        [["identity", "byte-identical",
          "receipts/verdicts/audit == twin"],
         ["tenants", N_TENANTS,
          f"{OBJECTS_PER_TENANT} objects each, own connection"],
         ["hammer ops", ops, "put + seal_many + verify + audit"],
         ["wall [s]", round(wall, 3), "-"],
         ["ops/s", round(ops_per_second, 2),
          f"floor {FLOORS['gateway_ops_per_second']}"]],
        title=f"multi-tenant gateway over loopback HTTP, "
              f"{N_MEMBERS} members"))

    payload = {
        "bench": "gateway",
        "members": N_MEMBERS,
        "tenants": N_TENANTS,
        "objects_per_tenant": OBJECTS_PER_TENANT,
        "byte_identity": True,
        "hammer_ops": ops,
        "hammer_wall_s": round(wall, 6),
        "ops_per_second": round(ops_per_second, 3),
        "final_audit_clean": bool(audits[-1].clean),
        "floors": FLOORS,
    }
    (REPO_ROOT / "BENCH_gateway.json").write_text(
        json.dumps(payload, indent=2) + "\n")
