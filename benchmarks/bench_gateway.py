"""Gateway service floors: byte-identity, throughput, and the
shard-lock concurrency speedup over real HTTP.

Three phases against live :class:`~repro.gateway.GatewayServer`
deployments:

* **byte-identity** (the hard floor) — a deterministic single-tenant
  sequence issued through :class:`~repro.gateway.GatewayClient` must
  return receipts, verdicts, and audit reports ``==`` to the same
  sequence run directly on an identically seeded in-process
  ``FleetStore`` twin, and leave every member store at the identical
  :func:`~repro.parallel.session.store_fingerprint` — the HTTP edge
  adds authentication and JSON, never drift;
* **shard-parallel hammer** — one tenant per member, each on its own
  connection and thread, with every object pinned (by ring probing)
  to its tenant's member: under ``lock_mode="shard"`` the member
  footprints are disjoint, so the gateway overlaps the entire
  workload across cores.  After the threads join, the members must be
  fingerprint-identical to a serialized twin that replays each
  tenant's exact sequence — interleaving across members must not
  change a single bit of any member's state;
* **forced single-lock baseline** — the identical workload against a
  fresh ``lock_mode="single"`` deployment (the pre-shard gateway).
  On hosts with ≥ :data:`SPEEDUP_MIN_CPUS` cores the shard gateway
  must sustain ≥ :data:`FLOORS` ``shard_speedup`` × the baseline's
  ops/s; on smaller hosts a wall-clock speedup is physically
  impossible, so the ratio is recorded in the JSON but not enforced
  (``cpu_count`` says which happened).

Results land in ``BENCH_gateway.json`` at the repo root.
"""

import json
import os
import threading
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.api.fleet import FleetStore
from repro.api.store import StoreConfig
from repro.gateway import (
    GatewayApp,
    GatewayClient,
    GatewayServer,
    TokenTable,
    confine,
)
from repro.parallel.session import store_fingerprint

REPO_ROOT = Path(__file__).resolve().parents[1]

N_MEMBERS = 4
N_TENANTS = 4  # one per member: disjoint footprints, full overlap
OBJECTS_PER_TENANT = 4
#: Large objects shift the work into the span engine's vectorised
#: device passes — the regions that actually overlap across threads.
PAYLOAD_BYTES = 24 * 1024
FLOORS = {"byte_identity": True, "gateway_ops_per_second": 5.0,
          "shard_speedup": 2.0}

#: Cores below which the shard-speedup floor is recorded, not enforced.
SPEEDUP_MIN_CPUS = 4

CONFIG = StoreConfig(total_blocks=4096, audit_log=True)


def _spec():
    entries = ["admin-tok=admin"]
    entries += [f"tok-tenant{i}=tenant{i}:rw" for i in range(N_TENANTS)]
    return ";".join(entries)


def _fingerprints(fleet):
    return [store_fingerprint(member) for member in fleet.members]


def _payload(index):
    return bytes([index + 1]) * PAYLOAD_BYTES


def _pin_names(fleet):
    """Tenant-relative object names routed to each tenant's own
    member, probed off the hash ring: tenant i's whole footprint is
    member i, so shard locking makes the tenants fully disjoint."""
    pinned = {i: [] for i in range(N_TENANTS)}
    for i in range(N_TENANTS):
        j = 0
        while len(pinned[i]) < OBJECTS_PER_TENANT:
            name = f"/load/{j}"
            if fleet.route(confine(f"tenant{i}", name)) == i:
                pinned[i].append(name)
            j += 1
            assert j < 10_000, "ring never hit the pinned member"
    return pinned


def _identity_phase(address, twin):
    """Deterministic sequence through HTTP vs the in-process twin."""
    client = GatewayClient(address, "tok-tenant0", tenant="tenant0")
    paths = [f"/ident/{i}" for i in range(4)]
    for i, path in enumerate(paths):
        info = client.put(path, _payload(0) + bytes([i]))
        assert info == twin.put(confine("tenant0", path),
                                _payload(0) + bytes([i]),
                                make_parents=True)
    receipts = client.seal_many(paths, timestamp=11)
    assert receipts == twin.seal_many(
        [confine("tenant0", p) for p in paths], timestamp=11)
    for path in paths:
        assert client.verify(path) == \
            twin.verify(confine("tenant0", path))
    admin = GatewayClient(address, "admin-tok")
    assert admin.audit() == twin.audit()
    client.close()
    admin.close()


def _tenant_sequence(client, index, names):
    """One tenant's exact op sequence; returns the op count."""
    ops = 0
    payload = _payload(index)
    for name in names:
        client.put(name, payload)
        ops += 1
    receipts = client.seal_many(names, timestamp=100 + index)
    assert len(receipts) == len(names)
    ops += 1
    for name in names:
        verdict = client.verify(name)
        assert verdict.status.value == "intact", verdict
        ops += 1
        assert client.get(name) == payload
        ops += 1
    return ops


def _replay_on_twin(twin, index, names):
    """The serialized-twin replay of :func:`_tenant_sequence`."""
    tenant = f"tenant{index}"
    payload = _payload(index)
    for name in names:
        twin.put(confine(tenant, name), payload, make_parents=True)
    twin.seal_many([confine(tenant, n) for n in names],
                   timestamp=100 + index)
    for name in names:
        assert twin.verify(confine(tenant, name)).status.value == \
            "intact"
        assert twin.get(confine(tenant, name)) == payload


def _hammer(address, pinned):
    """All tenants concurrently, own connections, barrier-aligned.
    Returns (total ops, wall seconds)."""
    errors = []
    counts = [0] * N_TENANTS
    barrier = threading.Barrier(N_TENANTS)

    def work(i):
        try:
            tenant = f"tenant{i}"
            client = GatewayClient(address, f"tok-{tenant}",
                                   tenant=tenant)
            barrier.wait(timeout=30)
            counts[i] = _tenant_sequence(client, i, pinned[i])
            client.close()
        except Exception as exc:  # surfaced by the main thread
            errors.append(f"tenant{i}: {exc!r}")

    threads = [threading.Thread(target=work, args=(i,))
               for i in range(N_TENANTS)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    assert not errors, errors
    return sum(counts), wall


def _run_mode(lock_mode, pinned):
    """Fresh identically seeded deployment, full hammer; returns
    (ops, wall, fleet)."""
    fleet = FleetStore.create(N_MEMBERS, CONFIG, lock_mode=lock_mode)
    app = GatewayApp(fleet, TokenTable.from_spec(_spec()),
                     lock_mode=lock_mode)
    with GatewayServer(app) as server:
        ops, wall = _hammer(server.address, pinned)
        admin = GatewayClient(server.address, "admin-tok")
        report = admin.audit()
        assert report.clean, report.fs_errors
        admin.close()
    return ops, wall, fleet


def test_gateway_shard_parallel_throughput(benchmark, show):
    fleet = FleetStore.create(N_MEMBERS, CONFIG)
    twin = FleetStore.create(N_MEMBERS, CONFIG)
    app = GatewayApp(fleet, TokenTable.from_spec(_spec()))
    with GatewayServer(app) as server:
        _identity_phase(server.address, twin)
        assert _fingerprints(fleet) == _fingerprints(twin), \
            "HTTP edge drifted from the in-process twin"
    pinned = _pin_names(twin)

    # shard mode (measured by the benchmark fixture) ...
    result = {}

    def shard_run():
        result["shard"] = _run_mode("shard", pinned)

    benchmark.pedantic(shard_run, rounds=1, iterations=1)
    shard_ops, shard_wall, shard_fleet = result["shard"]

    # ... must be fingerprint-identical to a serialized twin replay
    concurrent_twin = FleetStore.create(N_MEMBERS, CONFIG)
    for i in range(N_TENANTS):
        _replay_on_twin(concurrent_twin, i, pinned[i])
    concurrent_twin.audit()  # _run_mode's closing admin audit
    assert _fingerprints(shard_fleet) == _fingerprints(concurrent_twin), \
        "concurrent shard interleaving drifted from the serialized twin"

    # forced single-lock baseline, identical workload
    single_ops, single_wall, _ = _run_mode("single", pinned)
    assert single_ops == shard_ops

    shard_ops_s = shard_ops / shard_wall
    single_ops_s = single_ops / single_wall
    speedup = shard_ops_s / single_ops_s
    cpus = os.cpu_count() or 1
    speedup_enforced = cpus >= SPEEDUP_MIN_CPUS

    assert shard_ops_s >= FLOORS["gateway_ops_per_second"], (
        f"gateway throughput {shard_ops_s:.2f} ops/s under the "
        f"{FLOORS['gateway_ops_per_second']} floor")
    if speedup_enforced:
        assert speedup >= FLOORS["shard_speedup"], (
            f"shard-lock speedup {speedup:.2f}x under the "
            f"{FLOORS['shard_speedup']}x floor on {cpus} cores")

    show(format_table(
        ["phase", "value", "note"],
        [["identity", "byte-identical",
          "receipts/verdicts/audit == twin"],
         ["tenants", N_TENANTS,
          f"{OBJECTS_PER_TENANT} x {PAYLOAD_BYTES >> 10} KiB each, "
          "member-pinned"],
         ["shard ops/s", round(shard_ops_s, 2),
          f"floor {FLOORS['gateway_ops_per_second']}"],
         ["single ops/s", round(single_ops_s, 2),
          "forced single-lock baseline"],
         ["speedup", round(speedup, 2),
          f"floor {FLOORS['shard_speedup']}x"
          + ("" if speedup_enforced
             else f" (recorded only: {cpus} < "
                  f"{SPEEDUP_MIN_CPUS} cpus)")],
         ["concurrent identity", "byte-identical",
          "member fingerprints == serialized twin"]],
        title=f"shard-parallel gateway over loopback HTTP, "
              f"{N_MEMBERS} members, {cpus} cpus"))

    payload = {
        "bench": "gateway",
        "members": N_MEMBERS,
        "tenants": N_TENANTS,
        "objects_per_tenant": OBJECTS_PER_TENANT,
        "payload_bytes": PAYLOAD_BYTES,
        "cpu_count": cpus,
        "byte_identity": True,
        "concurrent_byte_identity": True,
        "shard_ops": shard_ops,
        "shard_wall_s": round(shard_wall, 6),
        "shard_ops_per_second": round(shard_ops_s, 3),
        "single_wall_s": round(single_wall, 6),
        "single_ops_per_second": round(single_ops_s, 3),
        "shard_speedup": round(speedup, 3),
        "shard_speedup_enforced": speedup_enforced,
        "speedup_min_cpus": SPEEDUP_MIN_CPUS,
        "final_audit_clean": True,
        "floors": FLOORS,
    }
    (REPO_ROOT / "BENCH_gateway.json").write_text(
        json.dumps(payload, indent=2) + "\n")
