"""Section 3 / 8 — heat-line space overhead and cost vs line size N.

"For large N the amount of space wasted is negligible (1 block out of
2^N), but the price to pay is lack of flexibility."  The sweep prints
both sides of that tradeoff: hash-block overhead 1/2^N and the WO time
per protected byte, which amortises with N.
"""

from repro.analysis.report import format_table
from repro.device.sero import SERODevice


def _sweep(max_n: int = 6):
    rows = []
    for n_log2 in range(1, max_n + 1):
        n_blocks = 1 << n_log2
        device = SERODevice.create(max(2 * n_blocks, 16))
        for pba in range(1, n_blocks):
            device.write_block(pba, bytes([pba & 0xFF]) * 512)
        device.account.reset()
        device.heat_line(0, n_blocks, timestamp=1)
        heat_time = device.account.elapsed
        protected = (n_blocks - 1) * 512
        rows.append([
            f"2^{n_log2}", n_blocks, f"{100.0 / n_blocks:.1f}%",
            round(heat_time * 1e3, 2),
            round(heat_time * 1e6 / max(protected, 1), 2),
        ])
    return rows


def test_heatline_overhead_vs_n(benchmark, show):
    rows = benchmark(_sweep)
    show(format_table(
        ["line", "blocks", "space overhead", "heat time [ms]",
         "heat cost [us/byte]"],
        rows, title="Sections 3/8 — heat-line overhead vs N"))
    overheads = [100.0 / r[1] for r in rows]
    per_byte = [r[4] for r in rows]
    # overhead halves with each N; per-byte WO cost amortises
    for a, b in zip(overheads, overheads[1:]):
        assert b == a / 2
    assert per_byte[-1] < per_byte[0] / 3
