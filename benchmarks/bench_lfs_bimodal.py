"""Section 4.1 — cleaner policies and bimodality under aging.

Ages identical file systems under the same recorded trace while the
heated fraction grows, once per cleaner policy and placement policy.
Expected shape: the SERO-aware cleaner reclaims comparable space while
touching far fewer heated segments than heat-blind policies, and the
*cluster* placement keeps the heated-segment distribution bimodal
while *naive* placement creates mixed segments.
"""

from repro.analysis.report import format_table
from repro.device.sero import SERODevice
from repro.fs.bimodal import bimodality
from repro.fs.cleaner import run_cleaner, select_victim
from repro.fs.lfs import FSConfig, SeroFS
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.traces import record_workload

TRACE = record_workload(SyntheticWorkload(
    n_files=14, n_ops=130, mean_size=700, p_heat=0.2, p_delete=0.02,
    seed=2008))


def _age(policy: str, placement: str):
    fs = SeroFS.format(SERODevice.create(1024),
                       FSConfig(cleaner_policy=policy,
                                heat_placement=placement,
                                auto_clean=False))
    TRACE.replay(fs, ignore_errors=True)
    heated_touched = 0
    reclaimed = 0
    for _ in range(6):
        victim = select_victim(fs, policy=policy)
        if victim is None:
            break
        if victim.heated > 0:
            heated_touched += 1
        from repro.fs.cleaner import clean_segment

        reclaimed += clean_segment(fs, victim)
    report = bimodality(fs)
    return {
        "fs": fs,
        "reclaimed": reclaimed,
        "heated_victims": heated_touched,
        "bimodality": report.index,
        "mixed_segments": report.mixed,
    }


def test_cleaner_policy_comparison(benchmark, show):
    # the stress case: *naive* placement mixes heated lines into the
    # log, so heat-blind policies waste cleaning passes on segments
    # they can never fully reclaim, while the SERO policy skips them
    def sweep():
        return {policy: _age(policy, "naive")
                for policy in ("greedy", "cost-benefit", "sero")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[p, r["reclaimed"], r["heated_victims"],
             round(r["bimodality"], 3)] for p, r in results.items()]
    show(format_table(
        ["cleaner policy", "blocks reclaimed", "heated victims",
         "bimodality"],
        rows, title="Section 4.1 — cleaner policies under a heating "
        "workload (naive placement stress case)"))
    sero = results["sero"]
    assert sero["heated_victims"] == 0  # "skips over heated segments"
    assert sero["reclaimed"] > 0
    blind_victims = results["greedy"]["heated_victims"] + \
        results["cost-benefit"]["heated_victims"]
    assert blind_victims >= sero["heated_victims"]


def test_placement_policy_bimodality(benchmark, show):
    def sweep():
        return {placement: _age("sero", placement)
                for placement in ("cluster", "naive")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[p, round(r["bimodality"], 3), r["mixed_segments"]]
            for p, r in results.items()]
    show(format_table(
        ["heat placement", "bimodality index", "mixed segments"],
        rows, title="Section 4.1 — heated-line placement and bimodality"))
    assert results["cluster"]["bimodality"] >= results["naive"]["bimodality"]
    assert results["cluster"]["mixed_segments"] <= \
        results["naive"]["mixed_segments"]


def test_sequential_log_writes_beat_random(benchmark, show):
    """The Rosenblum/Ousterhout premise the design rests on."""

    def measure():
        fs = SeroFS.format(SERODevice.create(512))
        fs.device.account.reset()
        fs.create("/seq", b"x" * (30 * 512))
        seq_time = fs.device.account.elapsed
        # random single-block reads of the same file
        fs.device.account.reset()
        import random

        rng = random.Random(1)
        ino = fs.stat("/seq").ino
        inode = fs._read_inode(ino)
        pointers, _ = fs._load_pointers(inode)
        for _ in range(30):
            fs.device.read_block(rng.choice(pointers))
        rand_time = fs.device.account.elapsed
        return seq_time, rand_time

    seq_time, rand_time = benchmark.pedantic(measure, rounds=1, iterations=1)
    show(format_table(
        ["access pattern", "device time [ms] (30 blocks)"],
        [["clustered log write", round(seq_time * 1e3, 2)],
         ["random block reads", round(rand_time * 1e3, 2)]],
        title="Section 4.1 — why the FS clusters writes"))
    assert rand_time > 2 * seq_time
