"""Section 8 — device lifetime under a compliance workload.

"Over the lifetime of the device, the read/write area gradually
shrinks, and the read-only area grows, until the device has become a
pure read-only device."  The compliance archive seals one batch per
period until the device fills; the series prints the WMRM/RO split
over time, and every sealed batch stays verifiable to the end.
"""

from repro.analysis.report import format_series, format_table
from repro.device.sero import SERODevice, VerifyStatus
from repro.fs.lfs import SeroFS
from repro.workloads.archival import ComplianceArchive


def _run_to_end_of_life():
    device = SERODevice.create(1024)
    fs = SeroFS.format(device)
    archive = ComplianceArchive(fs, batch_bytes=3000)
    series = []
    from repro.errors import NoSpaceError

    period = 0
    while True:
        try:
            archive.run_period(period)
        except NoSpaceError:
            break
        if period % 5 == 0:
            report = device.capacity_report()
            series.append((period, report["writable_blocks"]))
        period += 1
    final = device.capacity_report()
    audits = archive.audit()
    return series, final, audits, period


def test_device_lifetime(benchmark, show):
    series, final, audits, periods = benchmark.pedantic(
        _run_to_end_of_life, rounds=1, iterations=1)
    show(format_series("period", "writable (WMRM) blocks", series,
                       title="Section 8 — WMRM area over device life"))
    show(format_table(
        ["metric", "value"],
        [["periods until full", periods],
         ["final writable blocks", final["writable_blocks"]],
         ["final heated (RO) blocks", final["heated_blocks"]],
         ["sealed batches still verifiable",
          sum(1 for r in audits.values()
              if r.status is VerifyStatus.INTACT)],
         ["sealed batches total", len(audits)]],
        title="Section 8 — end-of-life accounting"))
    writable = [w for _p, w in series]
    assert all(a >= b for a, b in zip(writable, writable[1:]))  # monotone
    assert final["heated_blocks"] > final["writable_blocks"]
    assert all(r.status is VerifyStatus.INTACT for r in audits.values())
    assert periods > 20
