"""Remote RPC executor floor: byte-identity over real loopback workers.

The hard acceptance criterion for remote dispatch is not speed — a
loopback round trip pays pickling plus TCP for work another process
could do in place — it is *fidelity*: every fleet pass (format / seal /
audit / fsck) dispatched on the ``rpc`` executor must produce
per-member reports **byte-identical** to the ``serial`` reference,
including line hashes and simulated device time.  That is the floor
this bench enforces, against two real worker daemons spawned on
loopback — in the classic snapshot mode *and* in the session-pinned,
pipelined mode (``RpcExecutor(sessions=True)``).

Alongside it, the bench records the quantities an operator sizes a
real deployment with:

* **transport bytes** — the compact member snapshot a mutating pass
  ships each way, the ~kB :class:`StoreStatePatch` a read-only pass
  sends home, and the measured steady-state audit traffic in session
  mode (descriptor out, patch back) vs snapshot mode — floored at a
  >= 50x bytes-out reduction;
* **walls** — serial vs rpc audit wall clock, pipelined vs blocking
  session dispatch (floored: pipelining must not be slower), and the
  simulated rack makespan under per-host dispatch.

Results land in ``BENCH_rpc.json`` at the repo root.
"""

import json
import pickle
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.api.store import StoreStatePatch
from repro.parallel import RpcExecutor, close_connection_pools, \
    spawn_local_worker
from repro.workloads.fleet import FleetScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]

N_DEVICES = 6
BLOCKS_PER_DEVICE = 64
LINES_PER_DEVICE = 20
LINE_BLOCKS = 2
N_WORKERS = 2
FLOORS = {"byte_identity": True,
          "session_audit_bytes_out_reduction": 50.0,
          "pipelined_not_slower_tolerance": 1.10}


def _fleet(executor):
    return FleetScheduler.build(N_DEVICES, BLOCKS_PER_DEVICE,
                                switching_sigma=0.02, executor=executor)


def _drive(fleet):
    """The four passes; returns (fingerprints per pass, audit report)."""
    formatted = fleet.format_fleet()
    sealed = fleet.seal_fleet(lines_per_device=LINES_PER_DEVICE,
                              line_blocks=LINE_BLOCKS)
    audited = fleet.audit_fleet()
    fscked = fleet.fsck_fleet()
    return {
        "format": formatted.fingerprints(),
        "seal": sealed.fingerprints(),
        "audit": audited.fingerprints(),
        "fsck": fscked.fingerprints(),
    }, audited


def _best_audit_wall(fleet, rounds=3):
    best = float("inf")
    last = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        last = fleet.audit_fleet()
        best = min(best, time.perf_counter() - t0)
    return best, last


def test_rpc_byte_identity_floor(benchmark, show):
    workers = [spawn_local_worker() for _ in range(N_WORKERS)]
    hosts = [w.address for w in workers]
    try:
        serial = _fleet("serial")
        serial_prints, serial_audit = _drive(serial)

        remote = _fleet(RpcExecutor(hosts))
        remote_prints, remote_audit = benchmark.pedantic(
            lambda: _drive(remote), rounds=1, iterations=1)

        session = _fleet(RpcExecutor(hosts, sessions=True))
        session_prints, _session_audit = _drive(session)

        blocking = _fleet(RpcExecutor(hosts, sessions=True,
                                      pipeline=False))
        blocking_prints, _blocking_audit = _drive(blocking)

        # THE floor: remote dispatch — snapshot, session+pipelined and
        # session+blocking alike — must not change a single byte of
        # any per-member report, across all four passes
        for op in ("format", "seal", "audit", "fsck"):
            assert remote_prints[op] == serial_prints[op], \
                f"rpc {op} pass diverged from the serial reference"
            assert session_prints[op] == serial_prints[op], \
                f"session {op} pass diverged from the serial reference"
            assert blocking_prints[op] == serial_prints[op], \
                f"blocking-session {op} pass diverged from serial"

        serial_wall, _ = _best_audit_wall(serial)
        rpc_wall, snap_steady = _best_audit_wall(remote)
        session_wall, sess_steady = _best_audit_wall(session)
        blocking_wall, _ = _best_audit_wall(blocking)

        # steady-state wire traffic: pins are warm, so a session audit
        # sends task descriptors where snapshot mode re-ships members
        snap_out = sum(snap_steady.bytes_out.values())
        snap_back = sum(snap_steady.bytes_back.values())
        sess_out = sum(sess_steady.bytes_out.values())
        sess_back = sum(sess_steady.bytes_back.values())
        out_reduction = snap_out / max(sess_out, 1)

        # transport accounting on a provisioned member
        member = remote.stores[0]
        snapshot_bytes = len(pickle.dumps(member,
                                          pickle.HIGHEST_PROTOCOL))
        patch_bytes = len(pickle.dumps(StoreStatePatch.capture(member),
                                       pickle.HIGHEST_PROTOCOL))

        rows = [
            ["serial", 1, round(serial_wall * 1e3, 2), "-", "-"],
            [f"rpc snapshot x{len(hosts)}", remote_audit.workers,
             round(rpc_wall * 1e3, 2), snap_out, snap_back],
            [f"rpc session x{len(hosts)}", sess_steady.workers,
             round(session_wall * 1e3, 2), sess_out, sess_back],
            [f"rpc session (blocking) x{len(hosts)}", sess_steady.workers,
             round(blocking_wall * 1e3, 2), "-", "-"],
        ]
        show(format_table(
            ["dispatch", "workers", "audit wall [ms]",
             "bytes out", "bytes back"],
            rows,
            title=f"rpc fleet audit, {N_DEVICES} devices x "
                  f"{BLOCKS_PER_DEVICE} blocks over {len(hosts)} "
                  f"loopback workers (steady state)"))
        show(f"transport per member: snapshot out "
             f"{snapshot_bytes / 1024:.1f} kB, read-only patch back "
             f"{patch_bytes / 1024:.1f} kB "
             f"({snapshot_bytes / max(patch_bytes, 1):.0f}x asymmetry); "
             f"steady-state audit bytes-out reduction "
             f"{out_reduction:.0f}x (session vs snapshot)")

        payload = {
            "bench": "rpc",
            "devices": N_DEVICES,
            "blocks_per_device": BLOCKS_PER_DEVICE,
            "lines_audited": serial_audit.lines_verified,
            "workers": len(hosts),
            "hosts": sorted(hosts),
            "byte_identical_passes": ["format", "seal", "audit", "fsck"],
            "byte_identical_modes": ["snapshot", "session_pipelined",
                                     "session_blocking"],
            "serial_audit_wall_s": round(serial_wall, 6),
            "rpc_audit_wall_s": round(rpc_wall, 6),
            "session_audit_wall_s": round(session_wall, 6),
            "session_blocking_audit_wall_s": round(blocking_wall, 6),
            "serial_makespan_s": round(
                serial_audit.simulated_makespan_seconds, 6),
            "rpc_makespan_s": round(
                remote_audit.simulated_makespan_seconds, 6),
            "snapshot_out_bytes": snapshot_bytes,
            "patch_back_bytes": patch_bytes,
            "steady_audit_out_bytes_snapshot": snap_out,
            "steady_audit_back_bytes_snapshot": snap_back,
            "steady_audit_out_bytes_session": sess_out,
            "steady_audit_back_bytes_session": sess_back,
            "steady_audit_out_reduction": round(out_reduction, 1),
            "floors": FLOORS,
        }
        (REPO_ROOT / "BENCH_rpc.json").write_text(
            json.dumps(payload, indent=2) + "\n")

        assert serial_audit.lines_verified == N_DEVICES * LINES_PER_DEVICE
        assert remote_audit.hosts == tuple(sorted(hosts))
        # the read-only return leg must stay orders smaller than the
        # outbound snapshot (the network-shaped property PR 4 built)
        assert patch_bytes * 10 < snapshot_bytes
        # the session floor: steady-state audit traffic out drops by
        # >= 50x once members are pinned
        assert out_reduction >= \
            FLOORS["session_audit_bytes_out_reduction"]
        # pipelining must not lose to one-round-trip-at-a-time
        # dispatch (tolerance for loopback wall noise)
        assert session_wall <= blocking_wall * \
            FLOORS["pipelined_not_slower_tolerance"]
    finally:
        for worker in workers:
            worker.stop()
        close_connection_pools()


def test_rpc_failover_floor(benchmark, show):
    """The recovery floor (ISSUE 7): SIGKILL one of three workers
    mid-sequence — the next pass, running with a retry budget in
    ``on_failure="raise"`` mode, must absorb the dead host and stay
    byte-identical to the serial reference.  Records the cost of that
    recovery: the first post-kill pass pays failure detection, backoff
    and re-dispatch; once the host's breaker is open, subsequent
    passes return to near-clean walls."""
    from repro.parallel import HashRing, parse_hosts, reset_host_health

    workers = [spawn_local_worker() for _ in range(3)]
    hosts = [w.address for w in workers]
    # kill a host the ring actually placed members on (placement is a
    # pure function of the host set, so the bench can compute it)
    victim_addr = HashRing(parse_hosts(hosts)).lookup("member-0")
    reset_host_health()
    try:
        # audits mutate member state (RNG, counters, cost account), so
        # the serial twin is driven in lockstep, pass for pass
        serial = _fleet("serial")
        fleet = _fleet(RpcExecutor(hosts, retries=2))
        assert fleet.format_fleet().fingerprints() == \
            serial.format_fleet().fingerprints()
        assert fleet.seal_fleet(
            lines_per_device=LINES_PER_DEVICE,
            line_blocks=LINE_BLOCKS).fingerprints() == \
            serial.seal_fleet(lines_per_device=LINES_PER_DEVICE,
                              line_blocks=LINE_BLOCKS).fingerprints()
        clean_wall, clean = _best_audit_wall(fleet)  # 3 audits
        serial.audit_fleet()
        serial.audit_fleet()
        assert clean.fingerprints() == \
            serial.audit_fleet().fingerprints()

        victim = next(w for w in workers if w.address == victim_addr)
        victim.kill()
        t0 = time.perf_counter()
        audited = benchmark.pedantic(fleet.audit_fleet,
                                     rounds=1, iterations=1)
        failover_wall = time.perf_counter() - t0
        # THE floor: the recovered pass is byte-identical to serial
        assert audited.fingerprints() == \
            serial.audit_fleet().fingerprints(), \
            "failover audit pass diverged from the serial reference"
        assert sum(audited.retries.values()) >= 1
        # breaker now open: the next pass routes around the dead host
        steady_wall, steady = _best_audit_wall(fleet)
        serial.audit_fleet()
        serial.audit_fleet()
        assert steady.fingerprints() == \
            serial.audit_fleet().fingerprints()
        assert fleet.fsck_fleet().fingerprints() == \
            serial.fsck_fleet().fingerprints()

        show(format_table(
            ["pass", "wall [ms]", "note"],
            [["clean (3 workers)", round(clean_wall * 1e3, 2), "-"],
             ["failover (1 killed)", round(failover_wall * 1e3, 2),
              f"{sum(audited.retries.values())} re-dispatches"],
             ["steady (breaker open)", round(steady_wall * 1e3, 2),
              "dead host skipped"]],
            title="rpc failover recovery cost, audit pass, "
                  f"{N_DEVICES} devices over 3 -> 2 loopback workers"))

        path = REPO_ROOT / "BENCH_rpc.json"
        payload = json.loads(path.read_text()) if path.exists() else {
            "bench": "rpc"}
        payload.update({
            "failover_byte_identical": True,
            "failover_mode": "raise+retries=2",
            "failover_clean_audit_wall_s": round(clean_wall, 6),
            "failover_recovery_audit_wall_s": round(failover_wall, 6),
            "failover_steady_audit_wall_s": round(steady_wall, 6),
            "failover_redispatches": sum(audited.retries.values()),
            "failover_recovery_overhead_x": round(
                failover_wall / max(clean_wall, 1e-9), 2),
        })
        path.write_text(json.dumps(payload, indent=2) + "\n")
    finally:
        for worker in workers:
            worker.stop()
        close_connection_pools()
        reset_host_health()
