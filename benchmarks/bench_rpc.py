"""Remote RPC executor floor: byte-identity over real loopback workers.

The hard acceptance criterion for remote dispatch is not speed — a
loopback round trip pays pickling plus TCP for work another process
could do in place — it is *fidelity*: every fleet pass (format / seal /
audit / fsck) dispatched on the ``rpc`` executor must produce
per-member reports **byte-identical** to the ``serial`` reference,
including line hashes and simulated device time.  That is the floor
this bench enforces, against two real worker daemons spawned on
loopback.

Alongside it, the bench records the quantities an operator sizes a
real deployment with:

* **transport bytes** — the compact member snapshot a mutating pass
  ships each way, and the ~kB :class:`StoreStatePatch` a read-only
  pass sends home (the asymmetry that makes audit fleets
  network-friendly);
* **walls** — serial vs rpc audit wall clock and the simulated rack
  makespan under per-host dispatch (recorded, not floored: loopback
  wall is hardware noise, and ring skew over two hosts is expected).

Results land in ``BENCH_rpc.json`` at the repo root.
"""

import json
import pickle
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.api.store import StoreStatePatch
from repro.parallel import RpcExecutor, close_connection_pools, \
    spawn_local_worker
from repro.workloads.fleet import FleetScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]

N_DEVICES = 6
BLOCKS_PER_DEVICE = 64
LINES_PER_DEVICE = 20
LINE_BLOCKS = 2
N_WORKERS = 2


def _fleet(executor):
    return FleetScheduler.build(N_DEVICES, BLOCKS_PER_DEVICE,
                                switching_sigma=0.02, executor=executor)


def _drive(fleet):
    """The four passes; returns (fingerprints per pass, audit report)."""
    formatted = fleet.format_fleet()
    sealed = fleet.seal_fleet(lines_per_device=LINES_PER_DEVICE,
                              line_blocks=LINE_BLOCKS)
    audited = fleet.audit_fleet()
    fscked = fleet.fsck_fleet()
    return {
        "format": formatted.fingerprints(),
        "seal": sealed.fingerprints(),
        "audit": audited.fingerprints(),
        "fsck": fscked.fingerprints(),
    }, audited


def _best_audit_wall(fleet, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fleet.audit_fleet()
        best = min(best, time.perf_counter() - t0)
    return best


def test_rpc_byte_identity_floor(benchmark, show):
    workers = [spawn_local_worker() for _ in range(N_WORKERS)]
    hosts = [w.address for w in workers]
    try:
        serial = _fleet("serial")
        serial_prints, serial_audit = _drive(serial)

        remote = _fleet(RpcExecutor(hosts))
        remote_prints, remote_audit = benchmark.pedantic(
            lambda: _drive(remote), rounds=1, iterations=1)

        # THE floor: remote dispatch must not change a single byte of
        # any per-member report, across all four passes
        for op in ("format", "seal", "audit", "fsck"):
            assert remote_prints[op] == serial_prints[op], \
                f"rpc {op} pass diverged from the serial reference"

        serial_wall = _best_audit_wall(serial)
        rpc_wall = _best_audit_wall(remote)

        # transport accounting on a provisioned member
        member = remote.stores[0]
        snapshot_bytes = len(pickle.dumps(member,
                                          pickle.HIGHEST_PROTOCOL))
        patch_bytes = len(pickle.dumps(StoreStatePatch.capture(member),
                                       pickle.HIGHEST_PROTOCOL))

        rows = [
            ["serial", 1, round(serial_wall * 1e3, 2),
             round(serial_audit.simulated_makespan_seconds * 1e3, 3)],
            [f"rpc x{len(hosts)} hosts", remote_audit.workers,
             round(rpc_wall * 1e3, 2),
             round(remote_audit.simulated_makespan_seconds * 1e3, 3)],
        ]
        show(format_table(
            ["dispatch", "workers", "audit wall [ms]", "sim makespan [ms]"],
            rows,
            title=f"rpc fleet audit, {N_DEVICES} devices x "
                  f"{BLOCKS_PER_DEVICE} blocks over {len(hosts)} "
                  f"loopback workers"))
        show(f"transport per member: snapshot out "
             f"{snapshot_bytes / 1024:.1f} kB, read-only patch back "
             f"{patch_bytes / 1024:.1f} kB "
             f"({snapshot_bytes / max(patch_bytes, 1):.0f}x asymmetry)")

        payload = {
            "bench": "rpc",
            "devices": N_DEVICES,
            "blocks_per_device": BLOCKS_PER_DEVICE,
            "lines_audited": serial_audit.lines_verified,
            "workers": len(hosts),
            "hosts": sorted(hosts),
            "byte_identical_passes": ["format", "seal", "audit", "fsck"],
            "serial_audit_wall_s": round(serial_wall, 6),
            "rpc_audit_wall_s": round(rpc_wall, 6),
            "serial_makespan_s": round(
                serial_audit.simulated_makespan_seconds, 6),
            "rpc_makespan_s": round(
                remote_audit.simulated_makespan_seconds, 6),
            "snapshot_out_bytes": snapshot_bytes,
            "patch_back_bytes": patch_bytes,
            "floors": {"byte_identity": True},
        }
        (REPO_ROOT / "BENCH_rpc.json").write_text(
            json.dumps(payload, indent=2) + "\n")

        assert serial_audit.lines_verified == N_DEVICES * LINES_PER_DEVICE
        assert remote_audit.hosts == tuple(sorted(hosts))
        # the read-only return leg must stay orders smaller than the
        # outbound snapshot (the network-shaped property PR 4 built)
        assert patch_bytes * 10 < snapshot_bytes
    finally:
        for worker in workers:
            worker.stop()
        close_connection_pools()
