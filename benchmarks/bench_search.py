"""Evidence-index floors: indexed queries must beat the full scan by
an order of magnitude, and the incrementally maintained index must be
byte-identical to a cold journal rebuild.

One synthetic evidence corpus driven straight through
:class:`~repro.search.EvidenceIndex` (real
:class:`~repro.api.SealReceipt` / :class:`~repro.api.VerifyReport`
dataclasses, no fleet in the loop so the numbers isolate the index):

* **ingest** — ~3k journaled events (puts, seals, deletes, audit
  passes with per-member verdict records) across four tenants and
  four members, timed as sustained events/s;
* **query floor** — a selective tenant+field query and a free-term
  query answered via the inverted index vs :func:`scan_search`, the
  naive oracle over the same documents.  Both paths share
  ``assemble_result``, so the results must be ``==`` and the indexed
  path must run ≥ :data:`FLOORS` ``indexed_speedup`` × faster
  (best-of-:data:`REPEATS` each);
* **rebuild identity** — ``rebuild()`` replays the hash-chained
  journal into a byte-identical index, and the chain verifies.

Results land in ``BENCH_search.json`` at the repo root.
"""

import json
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.api import AuditReport, MemberVerdictRecord, SealReceipt
from repro.api.store import VerifyReport
from repro.device.sero import VerifyStatus
from repro.search import EvidenceIndex, scan_search

REPO_ROOT = Path(__file__).resolve().parents[1]

N_OBJECTS = 1536
N_TENANTS = 4
N_MEMBERS = 4
SEAL_EVERY = 10   # 9 of 10 objects sealed, the rest stay mutable
DELETE_EVERY = 20  # every 20th unsealed object leaves again
N_AUDITS = 2
REPEATS = 5

QUERIES = (
    ("path:/t/t1/ledger/entry-0013", ()),
    ("tenant:t1 sealed:true", ("member", "verdict")),
    ("verdict:intact tenant:t2", ("member",)),
    ("ledger", ("tenant",)),
)

FLOORS = {"indexed_speedup": 10.0, "rebuild_identity": True,
          "oracle_equality": True}


def _build_corpus():
    """~3k journaled events; returns (index, sealed receipts)."""
    index = EvidenceIndex()
    index.register_alert("tamper", "tampered:true")
    sealed = []
    for i in range(N_OBJECTS):
        tenant = f"t{i % N_TENANTS}"
        member = i % N_MEMBERS
        path = f"/t/{tenant}/ledger/entry-{i:04d}"
        index.note_put(path, size=64 + i % 512, member=member)
        if i % SEAL_EVERY == 0:
            if i % DELETE_EVERY == 0:
                index.note_delete(path)
            continue
        receipt = SealReceipt(path=path, line_start=i, n_blocks=1,
                              line_hash=bytes([i % 256]) * 32,
                              timestamp=i)
        index.note_seal(receipt, member=member)
        sealed.append((member, receipt))
    for _ in range(N_AUDITS):
        records = [
            MemberVerdictRecord(member=member, report=VerifyReport(
                status=VerifyStatus.INTACT,
                line_start=receipt.line_start,
                tamper_evident=False, label=receipt.path))
            for member, receipt in sealed
        ]
        index.note_audit(AuditReport(member_records=records))
    return index, sealed


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_indexed_search_beats_full_scan(show):
    t0 = time.perf_counter()
    index, sealed = _build_corpus()
    ingest_wall = time.perf_counter() - t0
    events = len(index.journal)
    assert events > 1500, events

    rows = []
    speedups = []
    for q, facets in QUERIES:
        indexed, t_indexed = _best_of(
            lambda q=q, facets=facets: index.search(q, facets=facets))
        scanned, t_scan = _best_of(
            lambda q=q, facets=facets: scan_search(
                index.documents, q, facets=facets))
        assert indexed == scanned, q  # shared assemble_result: ==
        assert indexed.total > 0, q   # a floor over an empty query
        speedup = t_scan / t_indexed
        speedups.append(speedup)
        rows.append([q, indexed.total, round(t_indexed * 1e6, 1),
                     round(t_scan * 1e6, 1), round(speedup, 1)])

    # the floor holds for the selective queries the gateway serves
    assert max(speedups) >= FLOORS["indexed_speedup"], speedups

    index.verify_journal()
    rebuilt, rebuild_wall = _best_of(index.rebuild, repeats=1)
    assert rebuilt.canonical_bytes() == index.canonical_bytes()
    assert index.alerts == []  # intact corpus: no standing query fired

    show(format_table(
        ["query", "hits", "indexed us", "scan us", "speedup"],
        rows,
        title=f"evidence index vs full scan, {len(index.documents)} "
              f"docs, {events} journaled events"))

    payload = {
        "bench": "search",
        "documents": len(index.documents),
        "journal_events": events,
        "sealed_objects": len(sealed),
        "ingest_wall_s": round(ingest_wall, 6),
        "ingest_events_per_second": round(events / ingest_wall, 1),
        "queries": [
            {"q": q, "hits": hits, "indexed_us": indexed_us,
             "scan_us": scan_us, "speedup": speedup}
            for q, hits, indexed_us, scan_us, speedup in rows
        ],
        "best_speedup": round(max(speedups), 2),
        "rebuild_wall_s": round(rebuild_wall, 6),
        "rebuild_identity": True,
        "oracle_equality": True,
        "floors": FLOORS,
    }
    (REPO_ROOT / "BENCH_search.json").write_text(
        json.dumps(payload, indent=2) + "\n")
