"""Section 5 — the complete security case matrix.

Runs every attack scenario of the Section 5 analysis and prints the
case table the paper walks through in prose, plus the address-binding
ablation (DESIGN.md): without physical addresses in the line hash the
copy-masking attack succeeds.
"""

from repro.analysis.report import format_table
from repro.security.analysis import run_attack_matrix, scenario_copy_mask


def test_section5_matrix(benchmark, show):
    report = benchmark.pedantic(run_attack_matrix, rounds=1, iterations=1)
    rows = [list(r) for r in report.rows()]
    show(format_table(
        ["attack", "paper predicts", "matches", "verify status"],
        rows, title="Section 5 — security case matrix"))
    assert report.all_achieved, [r for r in rows if r[2] != "yes"]
    assert len(rows) == 10


def test_address_binding_ablation(benchmark, show):
    def both():
        return (scenario_copy_mask(include_addresses=True),
                scenario_copy_mask(include_addresses=False))

    with_addr, without_addr = benchmark.pedantic(both, rounds=1, iterations=1)
    show(format_table(
        ["hash construction", "copy distinguishable from original?"],
        [["with physical addresses (paper)",
          "yes" if with_addr.achieved else "NO"],
         ["without addresses (ablation)",
          "no — attack succeeds" if without_addr.achieved else "?"]],
        title="DESIGN.md ablation — why addresses belong in the hash"))
    assert with_addr.achieved and without_addr.achieved
