"""Span-engine speedup baseline: scalar reference vs vectorized paths.

The electrical hot paths (``ers_block``, ``heat_line``'s verify-back,
``verify_line``, ``scan_lines``) historically executed the five-step
erb protocol one dot at a time in Python — a single 8-block
``heat_line`` issued ~270k scalar ``read_mag``/``write_mag`` calls.
This bench runs every hot path in both modes on identically-seeded
devices, prints the before/after wall-clock baseline, and enforces the
PR's acceptance floor: >= 8x on ``ers_block`` and >= 5x end-to-end on
``heat_line`` + ``verify_line`` + ``scan_lines``.

(The verdict equivalence of the two modes is asserted separately in
``tests/test_span_engine.py``; this file only measures.)
"""

import json
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.device.sero import DeviceConfig, SERODevice

REPO_ROOT = Path(__file__).resolve().parents[1]
PAYLOAD = bytes(range(256)) * 2
TOTAL_BLOCKS = 32
FLOORS = {"ers_block (written)": 8.0, "ers_block (virgin)": 8.0,
          "end-to-end": 5.0}


def _device(span: bool) -> SERODevice:
    device = SERODevice.create(
        TOTAL_BLOCKS, config=DeviceConfig(span_engine=span))
    for pba in range(1, 8):
        device.write_block(pba, PAYLOAD)
    return device


def _best(fn, repeat=3) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(span: bool) -> dict:
    device = _device(span)

    # heat_line: each repetition heats a fresh line of the device
    heats = []
    for i, start in enumerate((0, 8, 16)):
        for pba in range(start + 1, start + 8):
            if pba > 7:  # blocks 1..7 already written
                device.write_block(pba, PAYLOAD)
        t0 = time.perf_counter()
        device.heat_line(start, 8, timestamp=i)
        heats.append(time.perf_counter() - t0)
    times = {"heat_line": min(heats)}

    times["ers_block (written)"] = _best(lambda: device.ers_block(0))
    times["ers_block (virgin)"] = _best(lambda: device.ers_block(24))
    times["verify_line"] = _best(lambda: device.verify_line(0))
    times["scan_lines"] = _best(device.scan_lines)
    return times


def _sweep():
    scalar = _measure(span=False)
    span = _measure(span=True)
    rows = [[op, scalar[op] * 1e3, span[op] * 1e3, scalar[op] / span[op]]
            for op in scalar]
    return rows


def test_span_engine_speedups(benchmark, show):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    show(format_table(
        ["operation", "scalar [ms]", "span [ms]", "speedup"],
        [[r[0], round(r[1], 2), round(r[2], 2), round(r[3], 1)]
         for r in rows],
        title="span engine — scalar reference vs vectorized wall clock"))
    by_op = {r[0]: r for r in rows}
    e2e_ops = ("heat_line", "verify_line", "scan_lines")
    e2e = sum(by_op[op][1] for op in e2e_ops) / \
        sum(by_op[op][2] for op in e2e_ops)
    payload = {
        "bench": "span_engine",
        "rows": [{"operation": r[0], "scalar_ms": round(r[1], 3),
                  "span_ms": round(r[2], 3), "speedup": round(r[3], 1)}
                 for r in rows],
        "end_to_end_speedup": round(e2e, 1),
        "floors": FLOORS,
    }
    (REPO_ROOT / "BENCH_span_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    assert by_op["ers_block (written)"][3] >= FLOORS["ers_block (written)"]
    assert by_op["ers_block (virgin)"][3] >= FLOORS["ers_block (virgin)"]
    assert e2e >= FLOORS["end-to-end"]
