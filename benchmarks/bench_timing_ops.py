"""Section 3 — operation cost structure (and the erb ablation).

Regenerates the cost relations the paper states: erb is the five-step
mrb/mwb sequence (>= 5x mrb), ewb is two orders slower than mwb, and
the device-level sector operations inherit those ratios.  The ablation
compares the paper's double-inversion erb against a hypothetical
direct in-plane read (1 bit-op), quantifying what the elliptic-dot
alternative of Section 3 would buy.
"""

from repro.analysis.report import format_table
from repro.device.sero import SERODevice
from repro.device.timing import TimingModel


def _op_cost_rows():
    timing = TimingModel()
    rows = [
        ["mrb", timing.t_mrb * 1e6, 1.0],
        ["mwb", timing.t_mwb * 1e6, timing.t_mwb / timing.t_mrb],
        ["erb (5-step)", timing.t_erb * 1e6, timing.t_erb / timing.t_mrb],
        ["erb (direct in-plane, ablation)", timing.t_mrb * 1e6, 1.0],
        ["ewb", timing.t_ewb * 1e6, timing.t_ewb / timing.t_mrb],
    ]
    return rows


def _sector_cost_rows():
    device = SERODevice.create(32)
    for pba in range(1, 4):
        device.write_block(pba, bytes([pba]) * 512)
    device.account.reset()
    device.read_block(1)
    mrs = device.account.elapsed
    device.account.reset()
    device.write_block(5, b"\x00" * 512)
    mws = device.account.elapsed
    device.account.reset()
    device.heat_line(0, 4)
    heat = device.account.elapsed
    device.account.reset()
    device.verify_line(0)
    verify = device.account.elapsed
    return [
        ["mrs (sector read)", mrs * 1e3, 1.0],
        ["mws (sector write)", mws * 1e3, mws / mrs],
        ["heat_line (4 blocks)", heat * 1e3, heat / mrs],
        ["verify_line (4 blocks)", verify * 1e3, verify / mrs],
    ]


def test_bit_op_costs(benchmark, show):
    rows = benchmark(_op_cost_rows)
    show(format_table(["operation", "latency [us/bit]", "x mrb"], rows,
                      title="Section 3 — bit operation cost structure"))
    costs = {r[0]: r[2] for r in rows}
    assert costs["erb (5-step)"] >= 5.0  # "at least 5 times slower"
    assert costs["ewb"] >= 50.0          # heating is slow
    assert costs["erb (direct in-plane, ablation)"] == 1.0


def test_sector_op_costs(benchmark, show):
    rows = benchmark(_sector_cost_rows)
    show(format_table(["operation", "latency [ms]", "x mrs"], rows,
                      title="Section 3 — sector operation costs"))
    costs = {r[0]: r[2] for r in rows}
    # the WO operation is far more expensive than ordinary I/O even
    # for a tiny 4-block line (the gap widens with line size because
    # every heated dot pays the 100 us pulse): use it sparingly
    assert costs["heat_line (4 blocks)"] > 2 * costs["mws (sector write)"]
