"""Section 4.2 — Venti hierarchies with heated roots.

Sweeps archive sizes: however deep the hash tree grows, sealing it
costs O(1) heated lines (the root + the snapshot record), and the
whole hierarchy verifies through the sealed root.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.device.sero import SERODevice, VerifyStatus
from repro.integrity.venti import NODE_PAYLOAD, VentiStore


def _archive(size_bytes: int):
    device = SERODevice.create(2048)
    store = VentiStore(device, arena_start=16, arena_blocks=2000)
    data = bytes(np.random.default_rng(size_bytes).integers(
        0, 256, size_bytes, dtype=np.uint8))
    heated_before = device.heated_block_count()
    root = store.snapshot("audit", data, timestamp=1)
    heated_after = device.heated_block_count()
    nodes = len(store._index)
    ok = store.read_stream(root) == data and store.verify_tree(root) == []
    sealed = store.verify_sealed(root).status is VerifyStatus.INTACT
    return [size_bytes, nodes, heated_after - heated_before, ok and sealed]


def test_venti_snapshot_scaling(benchmark, show):
    sizes = [400, 4_000, 40_000, 200_000]

    def sweep():
        return [_archive(s) for s in sizes]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(format_table(
        ["archive bytes", "tree nodes", "heated blocks for seal",
         "verified"],
        rows, title="Section 4.2 — Venti snapshots: seal cost is O(1)"))
    heat_costs = [r[2] for r in rows]
    assert all(r[3] for r in rows)
    # the WO cost does not grow with archive size
    assert max(heat_costs) == min(heat_costs)
    # while the tree itself does
    assert rows[-1][1] > rows[0][1]


def test_venti_tamper_detection_through_root(benchmark, show):
    def attack():
        device = SERODevice.create(512)
        store = VentiStore(device, arena_start=16, arena_blocks=480)
        data = b"ledger row " * 400
        root = store.snapshot("day-1", data, timestamp=1)
        leaf = store.put(data[:NODE_PAYLOAD])  # dedups to existing node
        pba, _ = store._index[leaf]
        device.write_block(pba, b"\x00" * 512)
        bad = store.verify_tree(root)
        return len(bad)

    bad_nodes = benchmark.pedantic(attack, rounds=1, iterations=1)
    show(format_table(
        ["scenario", "nodes flagged"],
        [["leaf overwritten under sealed root", bad_nodes]],
        title="Section 4.2 — tampering below a sealed root is caught"))
    assert bad_nodes >= 1
