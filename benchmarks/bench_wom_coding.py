"""Section 8 — Manchester vs WOM coding of the hash block.

"For small values of N we could employ more efficient coding
techniques [33]": the Rivest-Shamir <2,2>/3 WOM code stores the same
256-bit hash in 3/4 of the dots Manchester needs, or alternatively
supports a second write generation in the same dots.
"""

from repro.analysis.report import format_table
from repro.crypto import manchester, wom
from repro.crypto.manchester import bytes_to_bits
from repro.crypto.sha256 import sha256_digest


def _coding_rows():
    digest = sha256_digest(b"the line hash")
    bits = bytes_to_bits(digest)
    manchester_dots = len(manchester.encode_bits(bits))
    wom_dots = len(wom.encode_bits(bits))
    rows = [
        ["Manchester (paper)", manchester_dots,
         manchester_dots / len(bits), 1, "yes (HH)"],
        ["Rivest-Shamir WOM", wom_dots, wom_dots / len(bits), 2,
         "yes (invalid word)"],
    ]
    return rows


def test_wom_vs_manchester(benchmark, show):
    rows = benchmark(_coding_rows)
    show(format_table(
        ["code", "dots for 256-bit hash", "dots/bit", "write generations",
         "tamper-evident"],
        rows, title="Section 8 — hash-block coding comparison"))
    manch, womc = rows
    assert womc[1] == 0.75 * manch[1]  # 384 vs 512 dots
    assert womc[3] == 2  # the WOM code buys a second generation


def test_wom_second_generation_roundtrip(benchmark):
    """The extra capability: rewrite the stored value once."""

    def roundtrip():
        block = wom.WOMBlock.blank(128)
        first = bytes_to_bits(sha256_digest(b"gen1"))
        second = bytes_to_bits(sha256_digest(b"gen2"))
        block.write(first)
        assert block.read() == first
        block.write(second)
        assert block.read() == second
        return True

    assert benchmark(roundtrip)
