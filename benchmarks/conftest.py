"""Benchmark harness configuration.

Every bench prints the rows/series of the paper artifact it
regenerates (run with ``-s`` to see them) and times a representative
operation with pytest-benchmark.
"""

import pytest


@pytest.fixture
def show():
    """Print helper that always reaches the terminal."""
    import sys

    def _show(text: str) -> None:
        sys.stderr.write("\n" + text + "\n")

    return _show
