#!/usr/bin/env python3
"""SOX-style compliance retention on a tamper-evident store (Sections 2, 8).

One record batch is sealed per period until the device's WMRM area is
exhausted — the paper's device-lifetime story: "the read/write area
gradually shrinks ... until the device has become a pure read-only
device", at which point it is decommissioned once all retention
periods have expired.

Run:  python examples/compliance_archive.py
"""

import repro
from repro import VerifyStatus
from repro.workloads.archival import ComplianceArchive


def main() -> None:
    # one store, with a content-addressed archive arena for the Venti
    # variant at the end
    store = repro.TamperEvidentStore.create(total_blocks=512,
                                            archive_blocks=480)
    archive = ComplianceArchive(store.fs, batch_bytes=2048,
                                retention_periods=30)

    periods = archive.run_until_full(max_periods=1000)
    print(f"device absorbed {periods} periods of sealed batches")

    capacity = store.capacity()
    print(f"capacity: {capacity['writable_blocks']} writable, "
          f"{capacity['heated_blocks']} heated (read-only), "
          f"{capacity['bad_blocks']} bad")

    # every sealed batch remains verifiable to the end of device life —
    # one batched audit sweep over the whole store
    report = store.audit()
    print(f"audit: {report.intact_count}/{report.lines_verified} "
          f"batches verify INTACT (clean: {report.clean})")

    # retention-driven decommissioning
    for now in (periods // 2, periods + 30):
        expired = len(archive.expired(now))
        print(f"at period {now}: {expired}/{len(archive.batches)} batches "
              f"expired; decommissionable: "
              f"{archive.decommissionable(now)}")

    # the Venti variant: a daily snapshot tree whose root is sealed
    receipt = store.archive("2008-02-26", b"end of day state " * 100,
                            timestamp=20080226)
    print(f"\nVenti daily snapshot sealed; root "
          f"{receipt.root_score.hex()[:16]}…, "
          f"round-trips intact: "
          f"{store.retrieve('2008-02-26') == b'end of day state ' * 100}")
    archive_report = store.audit()
    assert all(r.status is VerifyStatus.INTACT for r in archive_report)
    print(f"store-wide audit after snapshot: "
          f"{archive_report.intact_count}/{archive_report.lines_verified} "
          f"lines intact")


if __name__ == "__main__":
    main()
