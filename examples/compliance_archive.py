#!/usr/bin/env python3
"""SOX-style compliance retention on a SERO device (Sections 2 and 8).

One record batch is sealed per period until the device's WMRM area is
exhausted — the paper's device-lifetime story: "the read/write area
gradually shrinks ... until the device has become a pure read-only
device", at which point it is decommissioned once all retention
periods have expired.

Run:  python examples/compliance_archive.py
"""

from repro import SERODevice, SeroFS, VerifyStatus
from repro.workloads.archival import ComplianceArchive


def main() -> None:
    device = SERODevice.create(total_blocks=512)
    fs = SeroFS.format(device)
    archive = ComplianceArchive(fs, batch_bytes=2048, retention_periods=30)

    periods = archive.run_until_full(max_periods=1000)
    print(f"device absorbed {periods} periods of sealed batches")

    capacity = device.capacity_report()
    print(f"capacity: {capacity['writable_blocks']} writable, "
          f"{capacity['heated_blocks']} heated (read-only), "
          f"{capacity['bad_blocks']} bad")

    # every sealed batch remains verifiable to the end of device life
    audit = archive.audit()
    intact = sum(1 for r in audit.values()
                 if r.status is VerifyStatus.INTACT)
    print(f"audit: {intact}/{len(audit)} batches verify INTACT")

    # retention-driven decommissioning
    for now in (periods // 2, periods + 30):
        expired = len(archive.expired(now))
        print(f"at period {now}: {expired}/{len(archive.batches)} batches "
              f"expired; decommissionable: "
              f"{archive.decommissionable(now)}")

    # the Venti variant: a daily snapshot tree whose root is sealed
    from repro.integrity.venti import VentiStore

    device2 = SERODevice.create(512)
    store = VentiStore(device2, arena_start=16, arena_blocks=480)
    root = store.snapshot("2008-02-26", b"end of day state " * 100,
                          timestamp=20080226)
    print(f"\nVenti daily snapshot sealed; root {root.hex()[:16]}…, "
          f"tree verifies clean: {store.verify_tree(root) == []}")


if __name__ == "__main__":
    main()
