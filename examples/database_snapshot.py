#!/usr/bin/env python3
"""The paper's motivating workload: a live database with audit snapshots.

Section 1: databases need efficient random writes, but auditors need
frozen, tamper-evident snapshots.  On one SERO device the live table
stays WMRM while each snapshot is heated in place — no separate WORM
jukebox, no copying.

Run:  python examples/database_snapshot.py
"""

from repro import SERODevice, SeroFS, VerifyStatus
from repro.security import attacks
from repro.workloads.database import SimpleDatabase, oltp_then_snapshot


def main() -> None:
    device = SERODevice.create(total_blocks=1024)
    fs = SeroFS.format(device)
    db = SimpleDatabase(fs)

    # quarter 1: transactions with a snapshot every 25 commits
    records = oltp_then_snapshot(db, n_transactions=75, n_records=40,
                                 snapshot_every=25)
    print(f"{len(db)} live records, {len(db.snapshots())} snapshots "
          f"({sum(r.n_blocks for r in records)} blocks heated)")

    # the live table keeps absorbing random updates at magnetic speed
    db.put(7, b"updated after the audit")
    print("live record 7:", db.get(7))

    # snapshots are frozen history: still readable, never writable
    snap = db.read_snapshot("t25")
    print(f"snapshot t25 holds {len(snap)} records")

    # a CEO with a laptop rewrites one snapshot's blocks on the medium
    target_ino = fs.stat("/db/snapshot-t50").ino
    attacks.mwb_data(device, fs.line_of_ino[target_ino])

    # the quarterly audit sweep
    print("\naudit sweep:")
    for name in ("t25", "t50", "t75"):
        status = db.verify_snapshot(name).status
        marker = "OK " if status is VerifyStatus.INTACT else "!!!"
        print(f"  {marker} snapshot {name}: {status.value}")

    capacity = device.capacity_report()
    print(f"\ncapacity: {capacity['writable_blocks']} WMRM / "
          f"{capacity['heated_blocks']} RO of {capacity['total_blocks']}")


if __name__ == "__main__":
    main()
