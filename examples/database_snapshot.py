#!/usr/bin/env python3
"""The paper's motivating workload: a live database with audit snapshots.

Section 1: databases need efficient random writes, but auditors need
frozen, tamper-evident snapshots.  On one tamper-evident store the
live table stays WMRM while each snapshot is sealed in place — no
separate WORM jukebox, no copying.

Run:  python examples/database_snapshot.py
"""

import repro
from repro import VerifyStatus
from repro.security import attacks
from repro.workloads.database import SimpleDatabase, oltp_then_snapshot


def main() -> None:
    store = repro.TamperEvidentStore.create(total_blocks=1024)
    db = SimpleDatabase(store.fs)

    # quarter 1: transactions with a snapshot every 25 commits
    records = oltp_then_snapshot(db, n_transactions=75, n_records=40,
                                 snapshot_every=25)
    print(f"{len(db)} live records, {len(db.snapshots())} snapshots "
          f"({sum(r.n_blocks for r in records)} blocks sealed)")

    # the live table keeps absorbing random updates at magnetic speed
    db.put(7, b"updated after the audit")
    print("live record 7:", db.get(7))

    # snapshots are frozen history: still readable, never writable
    snap = db.read_snapshot("t25")
    print(f"snapshot t25 holds {len(snap)} records")

    # a CEO with a laptop rewrites one snapshot's blocks on the medium
    target = store.info("/db/snapshot-t50")
    attacks.mwb_data(store.device, target.line_start)

    # the quarterly audit: one batched sweep over every sealed line
    print("\naudit sweep:")
    report = store.audit()
    for verdict in report:
        marker = "OK " if verdict.status is VerifyStatus.INTACT else "!!!"
        print(f"  {marker} {verdict.label}: {verdict.status.value}")
    assert len(report.tampered) == 1

    capacity = store.capacity()
    print(f"\ncapacity: {capacity['writable_blocks']} WMRM / "
          f"{capacity['heated_blocks']} RO of {capacity['total_blocks']}")


if __name__ == "__main__":
    main()
