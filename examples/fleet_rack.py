#!/usr/bin/env python3
"""Fleet rack walkthrough: shard, seal, parallelise, audit, tamper.

A compliance service runs *racks* of tamper-evident devices, not one.
This example drives the two rack-scale façades end to end:

* :class:`repro.FleetStore` — one store-shaped front door over many
  member stores; objects shard across members by content-addressed
  consistent hashing, and fleet-wide passes fan out on the resolved
  executor;
* :class:`~repro.workloads.fleet.FleetScheduler` — the device-grain
  provisioning/audit passes (format → seal → audit → fsck), with
  per-worker reporting and byte-identical results whichever executor
  dispatched them.

Run:  python examples/fleet_rack.py
"""

import repro
from repro.security import attacks
from repro.workloads.fleet import FleetScheduler


def sharded_store() -> None:
    print("== FleetStore: one store surface, rack-sized")
    fleet = repro.FleetStore.create(3, total_blocks=192, seed=2008)

    # objects shard by path hash: no central index, stable routing
    paths = [f"/ledger-{year}" for year in range(2000, 2008)]
    for path in paths:
        fleet.put(path, f"entries of {path}".encode() * 8)
    spread = [fleet.route(path) for path in paths]
    print(f"   {len(paths)} objects over {fleet.member_count} members: "
          f"routes {spread}")

    # fleet-wide seal + audit, fanned out on the thread executor
    with repro.engine(executor="thread"):
        receipts = fleet.seal_many(paths, timestamp=20080226)
        report = fleet.audit()
    print(f"   sealed {len(receipts)}, audited {report.lines_verified} "
          f"lines via {fleet.last_op.executor} x{fleet.last_op.workers} "
          f"-> clean={report.clean}")

    # an insider rewrites one sealed line on one member device
    victim = fleet.member_for(paths[0])
    attacks.mwb_data(victim.device, receipts[0].line_start)
    report = fleet.audit()
    culprit = next(r for r in report.reports if r.tamper_evident)
    print(f"   tampered member exposed: {culprit.label} -> "
          f"{culprit.status.value}")
    assert not report.clean


def provision(n_devices: int = 4, blocks: int = 32) -> FleetScheduler:
    rack = FleetScheduler.build(n_devices, blocks, switching_sigma=0.02)
    formatted = rack.format_fleet()
    sealed = rack.seal_fleet(lines_per_device=2, line_blocks=4,
                             timestamp=20080226)
    print(f"   formatted {formatted.blocks_processed} blocks on "
          f"{formatted.device_count} devices, sealed "
          f"{sealed.lines_sealed} lines ({formatted.executor} executor)")
    return rack


def rack_scheduler() -> None:
    print("== FleetScheduler: provision and audit a rack")
    rack = provision()

    # the same audit under serial and parallel dispatch: identical
    # per-device reports, the parallel rack just finishes sooner (two
    # identically provisioned racks — each device consumes its own
    # random sequence, so reports compare at the same pass index)
    serial = rack.audit_fleet()
    twin = provision()
    with repro.engine(executor="process", max_workers=4):
        parallel = twin.audit_fleet()
    assert serial.fingerprints() == parallel.fingerprints()
    print(f"   audit x{serial.lines_verified} lines: serial makespan "
          f"{serial.simulated_makespan_seconds * 1e3:.1f}ms, "
          f"{parallel.executor} x{parallel.workers} makespan "
          f"{parallel.simulated_makespan_seconds * 1e3:.1f}ms "
          f"(byte-identical reports)")

    checked = rack.fsck_fleet()
    print(f"   fsck: {checked.lines_verified} lines re-verified, "
          f"{checked.fs_errors} errors")

    policy = repro.api.describe_policy()
    print(f"   policy: executor={policy['executor']} "
          f"(decided by {policy['executor_source']}), "
          f"engine={policy['engine']}")


def main() -> None:
    sharded_store()
    rack_scheduler()
    print("rack walkthrough complete.")


if __name__ == "__main__":
    main()
