#!/usr/bin/env python3
"""Remote fleet walkthrough: two worker daemons, one rack, zero drift.

The ``rpc`` executor ships fleet members to worker daemons over TCP —
the compact medium snapshot out, the mutated state (or a ~kB read-only
patch) back — and the per-member results stay byte-identical to the
serial reference.  This example:

* spins up two loopback workers (or, when ``REPRO_FLEET_HOSTS`` is
  already exported — e.g. by the CI job — uses those instead);
* provisions and audits a rack through :class:`FleetScheduler` on the
  ``rpc`` executor, and proves the reports match a serially driven
  twin byte for byte;
* seals and audits sharded objects through :class:`repro.FleetStore`
  over the same workers, reading the per-host wall breakdown back out
  of the report.

Run:  python examples/fleet_remote.py
"""

import os

import repro
from repro.parallel import close_connection_pools, spawn_local_worker
from repro.workloads.fleet import FleetScheduler


def provision(executor=None):
    rack = FleetScheduler.build(3, 32, switching_sigma=0.02,
                                executor=executor)
    rack.format_fleet()
    rack.seal_fleet(lines_per_device=2, line_blocks=4,
                    timestamp=20080226)
    return rack


def main() -> None:
    preset = os.environ.get("REPRO_FLEET_HOSTS", "").strip()
    workers = []
    if preset:
        hosts = tuple(item.strip() for item in preset.split(",") if item)
        print(f"== using exported REPRO_FLEET_HOSTS ({len(hosts)} workers)")
    else:
        workers = [spawn_local_worker() for _ in range(2)]
        hosts = tuple(w.address for w in workers)
        print(f"== spawned {len(hosts)} loopback workers: "
              f"{', '.join(hosts)}")

    try:
        with repro.engine(executor="rpc", fleet_hosts=hosts):
            policy = repro.api.describe_policy()
            print(f"   policy: executor={policy['executor']} "
                  f"(decided by {policy['executor_source']}), hosts by "
                  f"{policy['fleet_hosts_source']}")

            print("== FleetScheduler over rpc: provision + audit")
            remote_rack = provision()
            audited = remote_rack.audit_fleet()
        serial_rack = provision(executor="serial")
        reference = serial_rack.audit_fleet()
        assert audited.fingerprints() == reference.fingerprints()
        print(f"   audited {audited.lines_verified} lines on "
              f"{audited.executor} x{audited.workers} over hosts "
              f"{list(audited.hosts)} — byte-identical to serial")
        for wall in audited.worker_walls:
            print(f"     {wall.worker}: {wall.tasks} member(s), "
                  f"{wall.wall_seconds * 1e3:.1f} ms")

        print("== FleetStore over rpc: sharded seal + audit")
        fleet = repro.FleetStore.create(2, total_blocks=192, seed=2008)
        paths = [f"/ledger-{year}" for year in range(2000, 2008)]
        for path in paths:
            fleet.put(path, f"entries of {path}".encode() * 8)
        with repro.engine(executor="rpc", fleet_hosts=hosts):
            receipts = fleet.seal_many(paths, timestamp=20080226)
            report = fleet.audit()
        print(f"   sealed {len(receipts)}, audited "
              f"{report.lines_verified} lines via "
              f"{fleet.last_op.executor} over "
              f"{len(fleet.last_op.hosts)} hosts -> "
              f"clean={report.clean}")
        assert report.clean
    finally:
        for worker in workers:
            worker.stop()
        close_connection_pools()
    print("remote fleet walkthrough complete.")


if __name__ == "__main__":
    main()
