#!/usr/bin/env python3
"""Forensic evidence export and worst-case recovery (Sections 5.2 and 8).

An investigator seals exhibits in place through the façade's
``export_evidence`` (no disk imaging); the insider then wipes the
directory tree and finally bulk-erases the medium.  The deep scan
recovers every sealed file after the wipe, and after the degauss the
heated pattern itself — a structural, not magnetic, property — still
testifies that evidence existed and was destroyed.

Run:  python examples/forensics_recovery.py
"""

import repro
from repro.fs.fsck import deep_scan
from repro.security import attacks


def main() -> None:
    store = repro.TamperEvidentStore.create(total_blocks=512)

    # 1. live forensics: seal exhibits without stopping the server
    export = store.export_evidence("case-2008-041", {
        "access.log": b"03:14 root login from 203.0.113.7\n" * 25,
        "payroll.diff": b"-salary: 100000\n+salary: 900000\n" * 20,
    }, timestamp=20080226)
    print(f"sealed {len(export.items)} exhibits + manifest under "
          f"{export.directory}; bag intact: {export.intact}")

    # 2. the insider strikes: every path to the evidence is destroyed
    attacks.clear_directory(store.fs)
    print("\nattacker wiped the directory tree and checkpoints")

    # 3. the fsck-style deep scan "would definitely recover (albeit
    #    slowly) all the heated files" — it takes the façade directly
    report = deep_scan(store)
    print(f"deep scan recovered {len(report.recovered)} sealed files "
          f"({report.intact_count} verify INTACT):")
    for item in report.recovered:
        preview = (item.data or b"?")[:32]
        print(f"  ino {item.ino:3d} {item.name_hint!r:16} "
              f"{item.size:5d} B  {item.verification.status.value:14} "
              f"{preview!r}")

    # 4. scorched earth: a proper bulk erase of the whole medium
    attacks.bulk_erase(store.device)
    print("\nattacker bulk-erased the medium")
    report2 = deep_scan(store)
    findable = len(report2.recovered) + len(report2.unparseable_lines)
    tampered = sum(1 for f in report2.recovered
                   if f.verification.tamper_evident)
    print(f"heated lines still announcing themselves: {findable}")
    print(f"all surviving lines are tamper-evident: "
          f"{tampered == len(report2.recovered)}")
    print("\nthe data is gone, but the destruction cannot be hidden —")
    print("exactly the guarantee the paper's SERO medium provides.")


if __name__ == "__main__":
    main()
