#!/usr/bin/env python3
"""Gateway walkthrough: the fleet as an authenticated HTTP service.

Everything the other examples do in-process, this one does through
the network edge: a :class:`~repro.gateway.GatewayServer` fronting a
shared :class:`~repro.FleetStore`, bearer tokens resolving to
per-tenant read/write grants, and typed JSON schemas whose decoded
results compare ``==`` against the in-process calls they proxy.

The walkthrough:

* starts a gateway on an ephemeral loopback port with three
  credentials (an admin, a read/write tenant, a read-only colleague);
* stores, seals, and verifies a ledger through
  :class:`~repro.gateway.GatewayClient`, proving the receipts are
  byte-identical to a directly driven in-process twin;
* shows the authorization matrix saying no: a read-only token cannot
  seal (403), a foreign tenant's namespace does not even exist
  (404 — indistinguishable from a missing object), a bad token gets
  one uniform 401;
* finishes with an admin-scoped fleet audit and the per-member
  self-securing instruction logs, then drains the service cleanly.

When ``REPRO_FLEET_HOSTS`` and ``REPRO_FLEET_EXECUTOR=rpc`` are
exported (e.g. by the CI gateway job), every fleet pass behind the
gateway fans out to those remote workers — the gateway needs zero
extra wiring for that; the policy chain resolves per pass.

Run:  python examples/gateway_service.py
"""

import os

from repro.api.fleet import FleetStore
from repro.api.store import StoreConfig
from repro.gateway import (
    GatewayApp,
    GatewayClient,
    GatewayHTTPError,
    GatewayServer,
    TokenTable,
    confine,
)

TOKENS = ("ops-root-2008=admin;"
          "acme-writer-1=acme:rw;"
          "acme-reader-1=acme:r")


def expect(status: int, call, *args, **kwargs) -> None:
    try:
        call(*args, **kwargs)
    except GatewayHTTPError as error:
        assert error.status == status, (error.status, status)
        print(f"   denied as expected: HTTP {error.status} "
              f"({error.code})")
    else:
        raise AssertionError(f"expected HTTP {status}, got success")


def main() -> None:
    config = StoreConfig(total_blocks=512, audit_log=True)
    fleet = FleetStore.create(3, config)
    twin = FleetStore.create(3, config)
    app = GatewayApp(fleet, TokenTable.from_spec(TOKENS))
    remote = os.environ.get("REPRO_FLEET_EXECUTOR") == "rpc"

    with GatewayServer(app) as server:
        print(f"== gateway listening on {server.address}"
              + (" (fleet passes dispatch to remote rpc workers)"
                 if remote else ""))

        print("== tenant 'acme' stores and seals a ledger over HTTP")
        writer = GatewayClient(server.address, "acme-writer-1",
                               tenant="acme")
        paths = [f"/ledger/{year}" for year in (2006, 2007, 2008)]
        for path in paths:
            writer.put(path, f"entries of {path}".encode() * 6)
        receipts = writer.seal_many(paths, timestamp=20080226)
        verdict = writer.verify(paths[0])
        print(f"   sealed {len(receipts)} objects; verify -> "
              f"{verdict.status.value}")

        print("== the HTTP edge adds auth, never drift")
        for path in paths:
            twin.put(confine("acme", path),
                     f"entries of {path}".encode() * 6,
                     make_parents=True)
        twin_receipts = twin.seal_many(
            [confine("acme", p) for p in paths], timestamp=20080226)
        assert receipts == twin_receipts
        assert verdict == twin.verify(confine("acme", paths[0]))
        print("   receipts and verdicts == the in-process twin")

        print("== the authorization matrix says no")
        reader = GatewayClient(server.address, "acme-reader-1",
                               tenant="acme")
        assert reader.get(paths[0]) == writer.get(paths[0])
        expect(403, reader.seal, paths[0])          # no write grant
        expect(404, reader.get, "/x", tenant="globex")  # hidden tenant
        expect(401, GatewayClient(server.address, "stolen-token",
                                  tenant="acme").get, paths[0])
        expect(403, reader.audit)                   # admin-scoped

        print("== admin: fleet-wide audit + instruction logs")
        admin = GatewayClient(server.address, "ops-root-2008")
        report = admin.audit()
        logs = admin.history()
        print(f"   audit clean={report.clean} over "
              f"{len(report.reports)} sealed lines; "
              f"{sum(len(log) for log in logs)} log records across "
              f"{len(logs)} members")
        # (no twin comparison here: the auth-matrix reads above
        # advanced the live fleet's device clocks past the twin's)
        assert report.clean

    print("gateway walkthrough complete (drained and closed).")


if __name__ == "__main__":
    main()
