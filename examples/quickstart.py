#!/usr/bin/env python3
"""Quickstart: a SERO device and file system in ten lines of real use.

Creates a device, formats SeroFS, writes a file, heats it (the
write-once operation), demonstrates immutability, simulates an attack
and shows the verify operation catching it.

Run:  python examples/quickstart.py
"""

from repro import SERODevice, SeroFS, VerifyStatus
from repro.errors import ImmutableFileError
from repro.security import attacks


def main() -> None:
    # a small device: 256 blocks of 512 bytes
    device = SERODevice.create(total_blocks=256)
    fs = SeroFS.format(device)

    # ordinary WMRM use — this is just a file system
    fs.create("/ledger.csv", b"2008-02-26,acme,1000000\n")
    fs.append("/ledger.csv", b"2008-02-27,acme,-999999\n")
    print("ledger:", fs.read("/ledger.csv").decode().strip().splitlines())

    # the auditors arrive: freeze the ledger
    record = fs.heat_file("/ledger.csv", timestamp=20080228)
    print(f"heated line at block {record.start} "
          f"({record.n_blocks} blocks), hash {record.line_hash.hex()[:16]}…")

    # heated files stay readable at full magnetic speed...
    assert fs.read("/ledger.csv").startswith(b"2008-02-26")

    # ...but can no longer be modified through any sanctioned path
    for operation in (lambda: fs.write("/ledger.csv", b"cooked books"),
                      lambda: fs.unlink("/ledger.csv")):
        try:
            operation()
        except ImmutableFileError as exc:
            print("refused:", exc)

    # a dishonest insider bypasses the driver and rewrites the medium
    attacks.mwb_data(device, record.start)

    # the verify operation exposes it
    result = fs.verify_file("/ledger.csv")
    print("verification:", result.status.value)
    assert result.status is VerifyStatus.HASH_MISMATCH
    print("tampering detected — the evidence is physical and permanent.")


if __name__ == "__main__":
    main()
