#!/usr/bin/env python3
"""Quickstart: the tamper-evident storage service in ten lines of real use.

Creates a :class:`TamperEvidentStore` (device + file system behind one
façade), writes an object, seals it (the write-once heat operation),
demonstrates immutability, simulates an attack and shows the audit
sweep catching it.

Run:  python examples/quickstart.py
"""

import repro
from repro.errors import ImmutableFileError
from repro.security import attacks


def main() -> None:
    # a small store: 256 blocks of 512 bytes, formatted and mounted
    store = repro.TamperEvidentStore.create(total_blocks=256)

    # ordinary WMRM use — this is just storage
    store.put("/ledger.csv", b"2008-02-26,acme,1000000\n")
    store.put("/ledger.csv",
              store.get("/ledger.csv") + b"2008-02-27,acme,-999999\n",
              overwrite=True)
    print("ledger:", store.get("/ledger.csv").decode().strip().splitlines())

    # the auditors arrive: freeze the ledger
    receipt = store.seal("/ledger.csv", timestamp=20080228)
    print(f"sealed line at block {receipt.line_start} "
          f"({receipt.n_blocks} blocks), hash {receipt.line_hash.hex()[:16]}…")

    # sealed objects stay readable at full magnetic speed...
    assert store.get("/ledger.csv").startswith(b"2008-02-26")

    # ...but can no longer be modified through any sanctioned path
    for operation in (lambda: store.put("/ledger.csv", b"cooked books",
                                        overwrite=True),
                      lambda: store.delete("/ledger.csv")):
        try:
            operation()
        except ImmutableFileError as exc:
            print("refused:", exc)

    # a dishonest insider bypasses the service and rewrites the medium
    attacks.mwb_data(store.device, receipt.line_start)

    # the batched audit sweep exposes it
    report = store.audit()
    verdict = next(iter(report))
    print(f"audit: {report.lines_verified} line(s), "
          f"{report.intact_count} intact — {verdict.label}: "
          f"{verdict.status.value}")
    assert not report.clean
    assert verdict.status is repro.VerifyStatus.HASH_MISMATCH
    print("tampering detected — the evidence is physical and permanent.")


if __name__ == "__main__":
    main()
