"""Compatibility shim: all metadata lives in ``pyproject.toml``.

Modern toolchains need only ``pip install -e .``.  Environments whose
setuptools predates native wheel support (< 70, no ``wheel`` package,
no network for build isolation) can still get an editable install with
``python setup.py develop --user`` — or simply run from the tree with
``PYTHONPATH=src``, which every documented command keeps supporting.
"""

from setuptools import setup

setup()
