"""repro — a reproduction of *Towards Tamper-evident Storage on
Patterned Media* (Hartel, Abelmann, Khatib; FAST 2008).

The package builds the paper's whole stack in simulation:

* :mod:`repro.physics` — Co/Pt multilayer anisotropy, annealing
  kinetics, torque magnetometry, XRD, tip heating, MFM read-back
  (Sections 6-7, Figs 1 and 7-9);
* :mod:`repro.medium` — the heatable patterned-dot medium;
* :mod:`repro.device` — the SERO block device: mwb/mrb/ewb/erb,
  sector framing with ECC, heat_line / verify_line (Section 3);
* :mod:`repro.fs` — SeroFS, the SERO-aware log-structured file system
  with heat-aware cleaning and forensic recovery (Section 4);
* :mod:`repro.integrity` — Venti hash trees, the fossilised index and
  evidence bags on SERO storage (Sections 4.2, 8);
* :mod:`repro.security` — the Section 5 threat model and attack matrix;
* :mod:`repro.crypto`, :mod:`repro.workloads`, :mod:`repro.analysis` —
  supporting substrates.

Quick start::

    from repro import SERODevice, SeroFS

    device = SERODevice.create(total_blocks=512)
    fs = SeroFS.format(device)
    fs.create("/ledger", b"audit me")
    fs.heat_file("/ledger")              # now tamper-evident
    assert fs.verify_file("/ledger").status.value == "intact"
"""

from .device.sero import DeviceConfig, LineRecord, SERODevice, VerifyStatus
from .errors import ReproError, TamperEvidentError
from .fs.lfs import FSConfig, SeroFS
from .integrity.evidence import EvidenceBag
from .integrity.fossil import FossilizedIndex
from .integrity.venti import VentiStore

__version__ = "1.0.0"

__all__ = [
    "SERODevice",
    "DeviceConfig",
    "LineRecord",
    "VerifyStatus",
    "SeroFS",
    "FSConfig",
    "VentiStore",
    "FossilizedIndex",
    "EvidenceBag",
    "ReproError",
    "TamperEvidentError",
    "__version__",
]
