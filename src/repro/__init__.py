"""repro — a reproduction of *Towards Tamper-evident Storage on
Patterned Media* (Hartel, Abelmann, Khatib; FAST 2008).

The package builds the paper's whole stack in simulation:

* :mod:`repro.physics` — Co/Pt multilayer anisotropy, annealing
  kinetics, torque magnetometry, XRD, tip heating, MFM read-back
  (Sections 6-7, Figs 1 and 7-9);
* :mod:`repro.medium` — the heatable patterned-dot medium;
* :mod:`repro.device` — the SERO block device: mwb/mrb/ewb/erb,
  sector framing with ECC, heat_line / verify_line (Section 3);
* :mod:`repro.fs` — SeroFS, the SERO-aware log-structured file system
  with heat-aware cleaning and forensic recovery (Section 4);
* :mod:`repro.integrity` — Venti hash trees, the fossilised index and
  evidence bags on SERO storage (Sections 4.2, 8);
* :mod:`repro.security` — the Section 5 threat model and attack matrix;
* :mod:`repro.crypto`, :mod:`repro.workloads`, :mod:`repro.analysis` —
  supporting substrates;
* :mod:`repro.api` — the v1 public surface: the
  :class:`TamperEvidentStore` façade, the rack-scale
  :class:`~repro.api.FleetStore` shard façade and the
  :class:`~repro.api.ExecutionPolicy` engine/executor registry;
* :mod:`repro.parallel` — the fleet execution layer: named
  serial/thread/process executors and the consistent-hash shard ring.

Quick start (the façade drives the whole stack)::

    import repro

    store = repro.TamperEvidentStore.create(total_blocks=512)
    store.put("/ledger", b"audit me")
    receipt = store.seal("/ledger")          # now tamper-evident
    assert store.verify("/ledger").intact
    assert store.audit().clean               # batched whole-store sweep

Engine selection is one lazy resolution order — explicit argument >
``with repro.engine("scalar"):`` context > installed policy >
``REPRO_SPAN_ENGINE`` (read at call time)::

    with repro.engine("scalar"):             # the paper's literal protocol
        store = repro.TamperEvidentStore.create(total_blocks=64)

The pre-façade building blocks (:class:`SERODevice`, :class:`SeroFS`,
:class:`VentiStore`, ...) remain fully supported public API.
"""

from .api import (
    AuditReport,
    EngineSpec,
    ExecutionPolicy,
    FleetStore,
    ObjectInfo,
    SealReceipt,
    StoreConfig,
    TamperEvidentStore,
    VerifyReport,
    engine,
)
from .device.sero import DeviceConfig, LineRecord, SERODevice, VerifyStatus
from .errors import ReproError, TamperEvidentError
from .fs.lfs import FSConfig, SeroFS
from .integrity.evidence import EvidenceBag
from .integrity.fossil import FossilizedIndex
from .integrity.venti import VentiStore

__version__ = "2.1.0"

__all__ = [
    # v1 façade + policy
    "TamperEvidentStore",
    "StoreConfig",
    "ObjectInfo",
    "SealReceipt",
    "VerifyReport",
    "AuditReport",
    "FleetStore",
    "ExecutionPolicy",
    "EngineSpec",
    "engine",
    # building blocks
    "SERODevice",
    "DeviceConfig",
    "LineRecord",
    "VerifyStatus",
    "SeroFS",
    "FSConfig",
    "VentiStore",
    "FossilizedIndex",
    "EvidenceBag",
    "ReproError",
    "TamperEvidentError",
    "__version__",
]
