"""Reporting helpers and the experiment registry."""

from .experiments import EXPERIMENTS, Experiment
from .report import format_series, format_table

__all__ = ["format_table", "format_series", "EXPERIMENTS", "Experiment"]
