"""Experiment registry: one entry per paper artifact (DESIGN.md index).

The registry binds each experiment id (figure / section) to the bench
module that regenerates it and to a one-line statement of the expected
*shape* — the reproduction target.  ``EXPERIMENTS.md`` is generated
from measured results against this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Experiment:
    """One paper artifact to reproduce."""

    exp_id: str
    artifact: str
    bench: str
    expected_shape: str


EXPERIMENTS: Dict[str, Experiment] = {
    exp.exp_id: exp for exp in (
        Experiment(
            "fig1", "Read-back signal over magnetised and destroyed dots",
            "benchmarks/bench_fig1_readback.py",
            "up/down dots give +/- peaks; heated dot's peak disappears"),
        Experiment(
            "fig2", "Bit state-transition diagram",
            "benchmarks/bench_fig2_states.py",
            "mwb toggles 0<->1; ewb is one-way into H; mwb/mrb on H is "
            "ineffective/random"),
        Experiment(
            "fig3", "Heated-line medium layout",
            "benchmarks/bench_fig3_layout.py",
            "block 0 = Manchester HU/UH cells (hash+meta), blocks "
            "1..2^N-1 = ordinary 0/1 data"),
        Experiment(
            "fig7", "Perpendicular anisotropy vs annealing temperature",
            "benchmarks/bench_fig7_anisotropy.py",
            "K ~ 80 kJ/m^3 flat up to 500 C, collapses above 600 C"),
        Experiment(
            "fig8", "Low-angle XRD, as-grown vs annealed",
            "benchmarks/bench_fig8_xrd_low.py",
            "superlattice peak near 2theta = 8 deg vanishes after a "
            "700 C anneal"),
        Experiment(
            "fig9", "High-angle XRD, as-grown vs annealed",
            "benchmarks/bench_fig9_xrd_high.py",
            "sharp fct CoPt (111) peak at 41.7 deg appears after anneal"),
        Experiment(
            "sec3-erb", "erb/ewb cost structure",
            "benchmarks/bench_timing_ops.py",
            "erb costs exactly 5 bit-ops (>= 5x mrb); ewb ~100x mwb"),
        Experiment(
            "sec3-heat", "Heat-line overhead vs line size",
            "benchmarks/bench_heatline_overhead.py",
            "space overhead = 1/2^N; heat cost amortises with N"),
        Experiment(
            "sec4-lfs", "Cleaner policies and bimodality under aging",
            "benchmarks/bench_lfs_bimodal.py",
            "SERO-aware cleaning beats heat-blind policies as heated "
            "fraction grows; cluster placement keeps bimodality ~1"),
        Experiment(
            "sec4-venti", "Venti hierarchy with heated roots",
            "benchmarks/bench_venti.py",
            "sealing the root protects the whole tree; per-snapshot WO "
            "cost is O(1) lines"),
        Experiment(
            "sec4-fossil", "Fossilised index",
            "benchmarks/bench_fossil.py",
            "nodes seal as they fill; lookups stay deterministic; "
            "sealed nodes verify INTACT"),
        Experiment(
            "sec5", "Security case matrix",
            "benchmarks/bench_security_matrix.py",
            "all Section 5 attacks detected/harmless/rejected/recovered "
            "as the paper claims"),
        Experiment(
            "sec8-life", "Device lifetime under compliance load",
            "benchmarks/bench_lifetime.py",
            "WMRM area shrinks monotonically to zero; device ends life "
            "read-only"),
        Experiment(
            "sec8-wom", "Manchester vs WOM hash coding",
            "benchmarks/bench_wom_coding.py",
            "WOM code stores the hash in 3/4 of the Manchester dots"),
        Experiment(
            "sec9-emu", "Anti-fuse emulator cross-validation + shred",
            "benchmarks/bench_emulator_validation.py",
            "emulator and simulator agree on hashes and verdicts; "
            "shredded lines are distinguishable from tampered ones"),
    )
}
