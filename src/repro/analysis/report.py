"""Plain-text tables and series for the benchmark harness.

The benchmarks print "the same rows/series the paper reports"; these
helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x_label: str, y_label: str,
                  points: Iterable[Sequence], title: Optional[str] = None,
                  bar_width: int = 40) -> str:
    """Render an (x, y) series with a proportional ASCII bar per row."""
    pts = [(str(_fmt(x)), float(y)) for x, y in points]
    peak = max((abs(y) for _x, y in pts), default=1.0) or 1.0
    xw = max([len(x_label)] + [len(x) for x, _y in pts])
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{x_label.ljust(xw)} | {y_label}")
    for x, y in pts:
        bar = "#" * int(round(abs(y) / peak * bar_width))
        lines.append(f"{x.ljust(xw)} | {_fmt(y):>12} {bar}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
