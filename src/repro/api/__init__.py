"""``repro.api`` — the package's v1 public surface.

Two pieces:

* :mod:`repro.api.policy` — the :class:`ExecutionPolicy` / engine
  registry that gives every scalar-vs-vectorized (and SHA-256 backend)
  switch one lazy resolution order: explicit argument > context
  override (``with repro.engine("scalar"):``) > installed policy >
  environment variable > default;
* :mod:`repro.api.store` — :class:`TamperEvidentStore`, the façade
  that drives the whole stack (device, file system, integrity layers)
  through typed request/response objects whose native grain is the
  batched fast path (``seal_many``, ``audit`` → :class:`AuditReport`);
* :mod:`repro.api.fleet` — :class:`FleetStore`, the rack-scale façade:
  the same store surface sharded across member stores by
  content-addressed consistent hashing, with fleet-wide passes fanned
  out on the named executors of :mod:`repro.parallel` (``serial`` /
  ``thread`` / ``process`` / ``rpc``, selected through the same policy
  chain via ``repro.engine(executor=...)`` / ``REPRO_FLEET_EXECUTOR``;
  the remote executor's worker hosts resolve the same way via
  ``repro.engine(fleet_hosts=...)`` / ``REPRO_FLEET_HOSTS``).

``repro.api.__all__`` is the frozen public surface; a snapshot test
(``tests/test_api_surface.py``) fails when it changes without an
explicit update.
"""

from __future__ import annotations

from .policy import (
    DEFAULT_EXECUTOR,
    DEFAULT_GATEWAY_BIND,
    ENGINE_ENV_VAR,
    EXECUTOR_ENV_VAR,
    FLEET_HOSTS_ENV_VAR,
    FLEET_ON_FAILURE_ENV_VAR,
    FLEET_ON_FAILURE_MODES,
    FLEET_RETRIES_ENV_VAR,
    FLEET_SECRET_ENV_VAR,
    FLEET_SESSIONS_ENV_VAR,
    FLEET_TIMEOUT_ENV_VAR,
    FLEET_WORKERS_ENV_VAR,
    GATEWAY_BIND_ENV_VAR,
    GATEWAY_TOKEN_FILE_ENV_VAR,
    GATEWAY_TOKENS_ENV_VAR,
    SEARCH_FRAGMENT_COUNT_ENV_VAR,
    SEARCH_FRAGMENT_SIZE_ENV_VAR,
    SEARCH_MAX_HITS_ENV_VAR,
    SHA256_BACKENDS,
    SHA256_ENV_VAR,
    EngineSpec,
    ExecutionPolicy,
    available_engines,
    describe_policy,
    engine,
    get_engine,
    get_policy,
    register_engine,
    resolve_engine,
    resolve_executor_name,
    resolve_fleet_hosts,
    resolve_fleet_on_failure,
    resolve_fleet_retries,
    resolve_fleet_secret,
    resolve_fleet_sessions,
    resolve_fleet_timeout,
    resolve_gateway_bind,
    resolve_gateway_token_file,
    resolve_max_workers,
    resolve_search_fragment_count,
    resolve_search_fragment_size,
    resolve_search_max_hits,
    resolve_sha256_backend,
    resolve_vectorized,
    set_policy,
    unregister_engine,
)
from ..parallel import (
    ExecutorSpec,
    FleetExecutor,
    MemberFailure,
    available_executors,
    get_executor_spec,
    register_executor,
    resolve_fleet_executor,
    unregister_executor,
)

#: Store-layer names, imported lazily (PEP 562) so that the policy
#: layer stays importable from the bottom of the package's import
#: graph (``repro.vectorize`` and ``repro.crypto`` resolve through it
#: while the device/fs modules the store needs are still loading).
_STORE_EXPORTS = (
    "TamperEvidentStore",
    "StoreConfig",
    "ObjectInfo",
    "SealReceipt",
    "VerifyReport",
    "AuditReport",
    "MemberVerdictRecord",
    "ArchiveReceipt",
    "EvidenceExport",
    "FormatReport",
)

#: Fleet-layer names, lazily imported for the same reason (the fleet
#: façade sits on top of the store machinery).
_FLEET_EXPORTS = (
    "FleetStore",
    "FleetEvidenceExport",
    "FleetOpStats",
    "MigrationReport",
    "coerce_member",
)

__all__ = [
    # policy
    "ExecutionPolicy",
    "EngineSpec",
    "engine",
    "set_policy",
    "get_policy",
    "describe_policy",
    "register_engine",
    "unregister_engine",
    "available_engines",
    "get_engine",
    "resolve_engine",
    "resolve_vectorized",
    "resolve_sha256_backend",
    "ENGINE_ENV_VAR",
    "SHA256_ENV_VAR",
    "SHA256_BACKENDS",
    # fleet executors
    "ExecutorSpec",
    "FleetExecutor",
    "MemberFailure",
    "register_executor",
    "unregister_executor",
    "available_executors",
    "get_executor_spec",
    "resolve_executor_name",
    "resolve_fleet_hosts",
    "resolve_fleet_on_failure",
    "resolve_fleet_retries",
    "resolve_fleet_secret",
    "resolve_fleet_sessions",
    "resolve_fleet_timeout",
    "resolve_max_workers",
    "resolve_fleet_executor",
    "EXECUTOR_ENV_VAR",
    "FLEET_HOSTS_ENV_VAR",
    "FLEET_ON_FAILURE_ENV_VAR",
    "FLEET_ON_FAILURE_MODES",
    "FLEET_RETRIES_ENV_VAR",
    "FLEET_SECRET_ENV_VAR",
    "FLEET_SESSIONS_ENV_VAR",
    "FLEET_TIMEOUT_ENV_VAR",
    "FLEET_WORKERS_ENV_VAR",
    "DEFAULT_EXECUTOR",
    # gateway config (the gateway itself lives in repro.gateway)
    "resolve_gateway_bind",
    "resolve_gateway_token_file",
    "GATEWAY_BIND_ENV_VAR",
    "GATEWAY_TOKENS_ENV_VAR",
    "GATEWAY_TOKEN_FILE_ENV_VAR",
    "DEFAULT_GATEWAY_BIND",
    # evidence search config (the index itself lives in repro.search)
    "resolve_search_fragment_size",
    "resolve_search_fragment_count",
    "resolve_search_max_hits",
    "SEARCH_FRAGMENT_SIZE_ENV_VAR",
    "SEARCH_FRAGMENT_COUNT_ENV_VAR",
    "SEARCH_MAX_HITS_ENV_VAR",
    # store façade
    *_STORE_EXPORTS,
    # fleet façade
    *_FLEET_EXPORTS,
]


def __getattr__(name: str):
    if name in _STORE_EXPORTS:
        from . import store as _store

        value = getattr(_store, name)
        globals()[name] = value
        return value
    if name in _FLEET_EXPORTS:
        from . import fleet as _fleet

        value = getattr(_fleet, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_STORE_EXPORTS) | set(_FLEET_EXPORTS))
