"""The :class:`FleetStore` façade — one tamper-evident store, rack-sized.

The paper's service is per-device; the ROADMAP's north star is
rack-scale compliance traffic.  This module closes the gap: a
:class:`FleetStore` fronts many member
:class:`~repro.api.store.TamperEvidentStore` instances behind the
*same* typed request/response surface as a single store, sharding
objects across members by content-addressed consistent hashing
(:class:`~repro.parallel.ring.HashRing` over each path's SHA-256) and
fanning whole-fleet passes (``seal_many``, ``audit``,
``export_evidence``, ``format_devices``) out on the resolved fleet
executor (:func:`repro.parallel.resolve_fleet_executor`: explicit arg
> ``with repro.engine(executor=...)`` > installed policy >
``REPRO_FLEET_EXECUTOR``, read at dispatch time).

Routing properties worth knowing:

* **deterministic** — the member that stored ``/ledger/2026/07`` is a
  pure function of the path and the member list, so a million-object
  workload spreads without any central index;
* **rebalance-stable** — :meth:`FleetStore.add_member` remaps only
  ~1/(n+1) of the keyspace (the hash ring's arc the new member
  claims).  Objects already written stay where they are; lookups fall
  back to a member scan when the primary route misses, so growth
  never strands a sealed object (sealed lines are immutable and
  cannot migrate by design).  A background
  :meth:`FleetStore.migrate_unsealed` pass moves the *unsealed*
  remapped objects to their ring-correct members and, when no sealed
  object is stranded, switches exact O(1) routing back on.

Concurrency: every operation declares its *member footprint* and runs
under shard-grained locks (:class:`~repro.parallel.MemberLockSet`) —
object-grain calls lock the holding member, batch calls lock their
per-member groups in ascending index order, and whole-fleet passes
(``audit``/``format_devices``/``add_member``/``migrate_unsealed``)
take an exclusive mode that excludes everything.  Calls on disjoint
members therefore overlap on real cores while per-member results stay
byte-identical to a serialized run; ``lock_mode="single"`` forces the
old one-big-lock behaviour for baseline measurements.

The per-member fan-out functions live at module level so the
``process`` executor can pickle them.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..device.sero import SERODevice
from ..errors import ConfigurationError, FileExistsError_, FileNotFoundError_
from ..fs.inode import FileType
from ..medium.medium import MediumConfig
from ..parallel import (
    FleetExecutor,
    HashRing,
    MemberFailure,
    MemberLockSet,
    WorkerWall,
    resolve_fleet_executor,
    shard_key,
)
from .store import (
    AuditReport,
    EvidenceExport,
    FormatReport,
    MemberVerdictRecord,
    ObjectInfo,
    SealReceipt,
    StoreConfig,
    StoreStatePatch,
    TamperEvidentStore,
    VerifyReport,
)


def fold_member_state(original: TamperEvidentStore, state: object) -> None:
    """Fold one member's post-pass state back into ``original``.

    The executor contract: a member task returns either the member
    itself (in-process dispatch — nothing to do), a
    :class:`StoreStatePatch` (read-only pass across a process
    boundary — applied in place), or a mutated snapshot (mutating
    pass across a process boundary — absorbed in place via
    :meth:`TamperEvidentStore.adopt_state` so caller-held references
    stay live).  One helper, shared by :class:`FleetStore` and
    :class:`~repro.workloads.fleet.FleetScheduler`, so the absorption
    protocol cannot diverge between the two fleet surfaces.
    """
    if isinstance(state, StoreStatePatch):
        state.apply(original)
    elif state is not original:
        original.adopt_state(state)


def coerce_member(member: Union[TamperEvidentStore, SERODevice], *,
                  owner: str = "the fleet") -> TamperEvidentStore:
    """Normalise one fleet member to a :class:`TamperEvidentStore`.

    Bare :class:`SERODevice` members are wrapped in device-grain
    stores — still supported, but deprecated (one warning path shared
    by :class:`FleetStore` and
    :class:`~repro.workloads.fleet.FleetScheduler`).
    """
    if isinstance(member, TamperEvidentStore):
        return member
    if isinstance(member, SERODevice):
        warnings.warn(
            f"passing bare SERODevice objects to {owner} is deprecated; "
            "pass TamperEvidentStore members (e.g. "
            "TamperEvidentStore.attach(device))",
            DeprecationWarning, stacklevel=3)
        return TamperEvidentStore.attach(member)
    raise TypeError(
        f"fleet members must be TamperEvidentStore or SERODevice, "
        f"got {type(member).__name__}")


# ---------------------------------------------------------------------------
# Typed fleet responses


@dataclass(frozen=True)
class FleetEvidenceExport:
    """A rack-wide evidence bag: one sealed sub-bag per sharded member.

    Attributes:
        case: case name the exhibits were filed under.
        exports: per-member :class:`EvidenceExport` bags (members that
            received no exhibits produce none), member order.
        intact: every sub-bag verified intact.
    """

    case: str
    exports: Tuple[EvidenceExport, ...]
    intact: bool

    @property
    def items(self) -> Tuple:
        """All exhibit items across sub-bags."""
        return tuple(item for export in self.exports
                     for item in export.items)

    @property
    def reports(self) -> Tuple[VerifyReport, ...]:
        """All fresh verdicts across sub-bags."""
        return tuple(report for export in self.exports
                     for report in export.reports)


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one :meth:`FleetStore.migrate_unsealed` pass.

    Attributes:
        examined: objects inspected across the fleet.
        moved: unsealed objects relocated to their ring-correct member.
        sealed_kept: sealed objects found off their current route and
            left in place (a sealed line is physically immovable — the
            lookup fallback keeps covering them).
        routing_exact: True when, after the pass, every object lives on
            its routed member — primary-route lookups are exact again
            (O(1), no fallback scans).
    """

    examined: int
    moved: int
    sealed_kept: int
    routing_exact: bool


@dataclass
class FleetOpStats:
    """How the last fleet-wide pass was dispatched (diagnostics).

    ``hosts`` names the remote workers an ``rpc`` pass fanned out to
    (empty for in-host executors); ``worker_walls`` carries the
    per-worker — for rpc, per-host — wall breakdown.  ``bytes_out`` /
    ``bytes_back`` record the wire payload per remote host, which is
    where the session transport's snapshot→descriptor win shows up.
    ``failures`` holds the :class:`~repro.parallel.MemberFailure`
    records of a degraded rpc pass (members that folded nothing);
    ``retries`` / ``timeouts`` count failover re-dispatches and
    request-deadline expiries per remote host.
    """

    operation: str = ""
    executor: str = "serial"
    workers: int = 1
    wall_seconds: float = 0.0
    worker_walls: List[WorkerWall] = field(default_factory=list)
    hosts: Tuple[str, ...] = ()
    bytes_out: Dict[str, int] = field(default_factory=dict)
    bytes_back: Dict[str, int] = field(default_factory=dict)
    failures: List[MemberFailure] = field(default_factory=list)
    retries: Dict[str, int] = field(default_factory=dict)
    timeouts: Dict[str, int] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """Whether the pass completed without some of its members."""
        return bool(self.failures)


# ---------------------------------------------------------------------------
# Per-member fan-out tasks (module level: the process executor pickles
# them by reference)


def _audit_member(store: TamperEvidentStore, deep: bool,
                  patch_return: bool = False) -> Tuple[AuditReport, object]:
    report = store.audit(deep=deep)
    state = StoreStatePatch.capture(store) if patch_return else store
    return report, state


def _seal_many_member(store: TamperEvidentStore, paths: Tuple[str, ...],
                      timestamp: Optional[int]
                      ) -> Tuple[List[SealReceipt], TamperEvidentStore]:
    return store.seal_many(paths, timestamp=timestamp), store


def _export_member(store: TamperEvidentStore, case: str,
                   exhibits: Dict[str, bytes],
                   timestamp: Optional[int]
                   ) -> Tuple[EvidenceExport, TamperEvidentStore]:
    return store.export_evidence(case, exhibits, timestamp=timestamp), store


def _format_member(store: TamperEvidentStore
                   ) -> Tuple[FormatReport, TamperEvidentStore]:
    return store.format_device(), store


class FleetStore:
    """Many tamper-evident stores behind one store-shaped front door.

    Args:
        members: the fleet — :class:`TamperEvidentStore` instances
            (bare devices are wrapped with a deprecation warning).
        executor: fleet dispatch pin — a registered executor name or a
            ready :class:`~repro.parallel.FleetExecutor`; None resolves
            through the lazy policy chain *at each fleet-wide call*.
        max_workers: worker bound for pool executors (None resolves
            through the chain / one per core).
        replicas: virtual nodes per member on the hash ring.
        lock_mode: ``"shard"`` (default) locks each operation's member
            footprint only, so concurrent calls on disjoint members
            overlap; ``"single"`` serialises every call on the
            whole-fleet exclusive mode — the pre-shard behaviour, kept
            selectable as the concurrency bench's baseline.
    """

    #: Operations' member footprints, for the docs and the curious:
    #: object-grain calls lock the holding member; ``seal_many`` /
    #: ``export_evidence`` lock their per-member groups in ascending
    #: index order; ``audit`` / ``format_devices`` / ``add_member`` /
    #: ``migrate_unsealed`` / ``capacity`` take the exclusive mode.
    LOCK_MODES = ("shard", "single")

    def __init__(self, members: Sequence[Union[TamperEvidentStore,
                                               SERODevice]], *,
                 executor: Union[None, str, FleetExecutor] = None,
                 max_workers: Optional[int] = None,
                 replicas: int = 64,
                 lock_mode: str = "shard") -> None:
        if not members:
            raise ConfigurationError("a FleetStore needs at least one member")
        if lock_mode not in self.LOCK_MODES:
            raise ConfigurationError(
                f"lock_mode must be one of {self.LOCK_MODES}, "
                f"got {lock_mode!r}")
        self.members: List[TamperEvidentStore] = []
        for member in members:  # plain loop: the deprecation warning
            # must attribute to the caller on every Python version
            self.members.append(coerce_member(member, owner="FleetStore"))
        self._executor = executor
        self._max_workers = max_workers
        self._ring = HashRing([self._node_name(i)
                               for i in range(len(self.members))],
                              replicas=replicas)
        # ring topology is read on every route and mutated by
        # add_member; successors() is lazy, so walks materialise under
        # this mutex (never held together with member locks)
        self._ring_lock = threading.Lock()
        self.lock_mode = lock_mode
        self._locks = MemberLockSet(len(self.members),
                                    serialize=lock_mode == "single")
        self._archive_homes: Dict[str, int] = {}
        self._grown = False
        # dispatch stats are per handler thread: two concurrent passes
        # must each read their *own* degraded flag, not the other's
        self._last_op_local = threading.local()
        self._last_op_fallback = FleetOpStats()
        # optional evidence indexer (repro.search.EvidenceIndex shape,
        # duck-typed so the api layer never imports repro.search):
        # notified with payloads each op already computed — index
        # maintenance costs no extra fleet traffic
        self._indexer = None

    @property
    def last_op(self) -> FleetOpStats:
        """Dispatch stats of the calling thread's most recent fleet
        pass (falling back to the newest pass fleet-wide for threads
        that never dispatched one)."""
        return getattr(self._last_op_local, "value",
                       self._last_op_fallback)

    @last_op.setter
    def last_op(self, stats: FleetOpStats) -> None:
        self._last_op_local.value = stats
        self._last_op_fallback = stats

    def exclusive(self):
        """Context manager: hold the whole fleet exclusively (what
        ``audit``/``format_devices`` take internally) — for callers
        composing multi-call invariants, e.g. the gateway's
        ``history`` endpoint reading every member's log coherently."""
        return self._locks.exclusive()

    def attach_indexer(self, indexer) -> None:
        """Attach an evidence indexer (``repro.search.EvidenceIndex``
        or anything with its ``note_*`` hooks).  Every subsequent
        put/seal/delete/export/audit feeds the indexer the typed
        payloads the operation already produced; pass ``None`` to
        detach."""
        self._indexer = indexer

    @staticmethod
    def _node_name(index: int) -> str:
        return f"m{index}"

    # -- construction -----------------------------------------------------------

    @classmethod
    def create(cls, n_members: int,
               config: Optional[StoreConfig] = None, *,
               seed: int = 2008,
               executor: Union[None, str, FleetExecutor] = None,
               max_workers: Optional[int] = None,
               replicas: int = 64,
               lock_mode: str = "shard",
               **overrides) -> "FleetStore":
        """Provision ``n_members`` fresh full stores.

        Each member gets a distinct medium seed (``seed + i``: every
        device is an independent physical sample); remaining keyword
        overrides are :class:`StoreConfig` fields, exactly as
        :meth:`TamperEvidentStore.create` takes them.
        """
        if n_members < 1:
            raise ConfigurationError("n_members must be >= 1")
        base = config or StoreConfig()
        if overrides:
            base = dataclasses.replace(base, **overrides)
        members = []
        for i in range(n_members):
            medium_config = base.medium_config or MediumConfig()
            medium_config = dataclasses.replace(medium_config, seed=seed + i)
            members.append(TamperEvidentStore.create(
                dataclasses.replace(base, medium_config=medium_config)))
        return cls(members, executor=executor, max_workers=max_workers,
                   replicas=replicas, lock_mode=lock_mode)

    # -- routing -----------------------------------------------------------------

    @property
    def member_count(self) -> int:
        return len(self.members)

    def route(self, path: str) -> int:
        """Member index the ring assigns ``path`` to (deterministic).

        Object routing walks the ring to the nearest *object-capable*
        (file-system-backed) member, so a mixed fleet with device-grain
        members still routes every path somewhere that can hold it —
        deterministically and rebalance-stably, like the primary arc.
        """
        with self._ring_lock:
            names = list(self._ring.successors(path))
        for name in names:
            index = int(name[1:])
            if self.members[index].fs is not None:
                return index
        raise ConfigurationError(
            "no object-capable member: every FleetStore member wraps a "
            "bare device (object operations need file-system-backed "
            "members, e.g. TamperEvidentStore.create(...))")

    def member_for(self, path: str) -> TamperEvidentStore:
        """The member store that owns ``path``."""
        return self.members[self.route(path)]

    def add_member(self, member: Union[TamperEvidentStore, SERODevice]) -> int:
        """Grow the fleet by one member; returns its index.

        Only ~1/(n+1) of the keyspace remaps to the newcomer (hash-ring
        arc transfer); everything else keeps routing where it already
        lives.  Objects stored under a remapped path remain readable
        through the lookup fallback.

        Growth is a whole-fleet exclusive operation: no shard-grained
        call observes a half-grown fleet (new member appended, lock
        and ring arc not yet).
        """
        coerced = coerce_member(member, owner="FleetStore")
        with self._locks.exclusive():
            index = len(self.members)
            self.members.append(coerced)
            self._locks.grow()
            with self._ring_lock:
                self._ring.add_node(self._node_name(index))
            self._grown = True  # lookups must fall back from now on
        return index

    @staticmethod
    def _member_local_roots(store: TamperEvidentStore) -> Tuple[str, ...]:
        """Subtrees that belong to the *member*, not the fleet keyspace.

        Evidence bags live where their member sealed them (exhibits
        route by ``case/name``, not by their storage path), and the
        self-securing instruction log chronicles its own member's
        instructions — neither is a ring-routed fleet object, so the
        rebalance pass must neither move them nor count them as
        stranded.
        """
        roots = [store.config.evidence_root]
        if store.audit_log is not None:
            roots.append(store.audit_log.path)
        return tuple(root.rstrip("/") for root in roots)

    @classmethod
    def _walk_objects(cls, store: TamperEvidentStore,
                      root: str = "/") -> List[str]:
        """Every *fleet-routed* regular-file path on one member, depth
        first (member-local subtrees pruned)."""
        fs = store.fs
        skip = cls._member_local_roots(store)
        paths: List[str] = []
        pending = [root]
        while pending:
            directory = pending.pop()
            prefix = directory.rstrip("/")
            for name in fs.listdir(directory):
                child = f"{prefix}/{name}"
                if child in skip:
                    continue
                if fs.stat(child).ftype is FileType.DIRECTORY:
                    pending.append(child)
                else:
                    paths.append(child)
        return paths

    @staticmethod
    def _ensure_parents(store: TamperEvidentStore, path: str) -> None:
        """Create the directory chain ``path`` needs on ``store``."""
        parts = path.strip("/").split("/")[:-1]
        prefix = ""
        for part in parts:
            prefix = f"{prefix}/{part}"
            try:
                store.fs.mkdir(prefix)
            except FileExistsError_:
                pass

    def migrate_unsealed(self) -> MigrationReport:
        """Background rebalance: restore exact routing after growth.

        :meth:`add_member` deliberately moves no data — only ~1/(n+1)
        of the keyspace remaps, and remapped objects stay readable
        through the lookup fallback.  This pass finishes the job: every
        *unsealed* object whose current member is no longer its ring
        route is copied to the routed member and unlinked from its old
        home.  Sealed objects are refused by construction — a sealed
        line is a physical property of its medium and cannot move — so
        they stay where they were sealed, covered by the fallback
        forever.  Member-local subtrees (evidence bags under the
        configured evidence root, instruction-log chunks) are not
        fleet-routed objects and are skipped entirely.

        When the pass ends with every object on its route, the fleet
        returns to exact O(1) routing: lookups stop scanning other
        members, writes route directly (the state a never-grown fleet
        is in).  One stranded sealed object keeps the fallback on.

        Idempotent; run it after each growth step (or batch several
        ``add_member`` calls and run it once).  Whole-fleet exclusive:
        objects must not move while shard-grained calls are probing.
        """
        with self._locks.exclusive():
            return self._migrate_unsealed_locked()

    def _migrate_unsealed_locked(self) -> MigrationReport:
        examined = moved = sealed_kept = 0
        # snapshot the walks first: an object moved to a later member
        # must not be examined a second time on arrival
        walks = [(index, store, self._walk_objects(store))
                 for index, store in enumerate(self.members)
                 if store.fs is not None]
        for index, store, paths in walks:
            for path in paths:
                examined += 1
                target = self.route(path)
                if target == index:
                    continue
                if store.info(path).sealed:
                    sealed_kept += 1
                    continue
                destination = self.members[target]
                self._ensure_parents(destination, path)
                destination.put(path, store.get(path))
                store.delete(path)
                moved += 1
        routing_exact = sealed_kept == 0
        if routing_exact:
            self._grown = False  # primary-route lookups are exact again
        return MigrationReport(examined=examined, moved=moved,
                               sealed_kept=sealed_kept,
                               routing_exact=routing_exact)

    def _locate(self, path: str) -> Tuple[int, TamperEvidentStore]:
        """Member actually holding ``path``: primary route first, then
        — only once the fleet has grown — the fallback scan (an object
        written before a rebalance may live off its current route; a
        never-grown fleet routes exactly, so no other member is ever
        read).  Caller must hold the member locks (or the exclusive
        mode); concurrent paths go through :meth:`_held_holder`."""
        primary = self.route(path)
        order = [primary]
        if self._grown:
            order += [i for i in range(len(self.members)) if i != primary]
        for index in order:
            store = self.members[index]
            if store.fs is None:
                continue
            try:
                store.info(path)
                return index, store
            except FileNotFoundError_:
                continue
        raise FileNotFoundError_(f"no fleet member holds {path!r}")

    # -- footprint locking -------------------------------------------------------

    def _acquire_holder(self, path: str) -> Tuple[int, TamperEvidentStore]:
        """The lock-step ``_locate`` walk: probe members in
        ``_locate``'s exact order, holding at most one member lock at
        any moment (deadlock-free regardless of probe order), and
        return with the found member's lock *held*.  Caller holds the
        shared gate and releases the member lock."""
        primary = self.route(path)
        order = [primary]
        if self._grown:
            order += [i for i in range(len(self.members)) if i != primary]
        for index in order:
            store = self.members[index]
            if store.fs is None:
                continue
            self._locks.acquire_member(index)
            try:
                store.info(path)
                return index, store
            except FileNotFoundError_:
                self._locks.release_member(index)
            except BaseException:
                self._locks.release_member(index)
                raise
        raise FileNotFoundError_(f"no fleet member holds {path!r}")

    @contextmanager
    def _held_holder(self, path: str
                     ) -> Iterator[Tuple[int, TamperEvidentStore]]:
        """Shared gate + the holding member's lock, for one read-grain
        operation on ``path``."""
        with self._locks.shared():
            index, store = self._acquire_holder(path)
            try:
                yield index, store
            finally:
                self._locks.release_member(index)

    @contextmanager
    def _held_write_target(self, path: str
                           ) -> Iterator[Tuple[int, TamperEvidentStore]]:
        """Shared gate + the lock of the member a write to ``path``
        must land on: wherever the object already lives (so a
        post-growth write never forks a second divergent copy off its
        pre-rebalance home), else the routed member.  On a never-grown
        fleet this is the routed member directly — no fallback
        probes."""
        with self._locks.shared():
            index: Optional[int] = None
            if self._grown:
                try:
                    index, _store = self._acquire_holder(path)
                except FileNotFoundError_:
                    index = None
            if index is None:
                index = self.route(path)
                self._locks.acquire_member(index)
            try:
                yield index, self.members[index]
            finally:
                self._locks.release_member(index)

    # -- dispatch ----------------------------------------------------------------

    def _fan_out(self, operation: str, member_indices: Sequence[int],
                 make_tasks) -> List:
        """Run ``make_tasks(patch_return)`` on the resolved executor,
        fold the returned member states back in (full snapshots are
        reinstalled, read-only :class:`StoreStatePatch` results are
        applied in place), record dispatch stats, and return the
        per-task payloads (task order)."""
        executor = resolve_fleet_executor(self._executor, self._max_workers)
        tasks = make_tasks(executor.crosses_process)
        t0 = time.perf_counter()
        outcome = executor.run(tasks)
        wall = time.perf_counter() - t0
        payloads = []
        failures: List[MemberFailure] = []
        for index, result in zip(member_indices, outcome.results):
            if isinstance(result, MemberFailure):
                # degraded rpc pass: the member folded nothing — its
                # store is untouched and the failure record *is* the
                # payload, for the caller to surface.  Re-key the
                # record from task position to fleet member index
                # (the pass may cover a subset of members).
                failure = dataclasses.replace(result, index=index)
                failures.append(failure)
                payloads.append(failure)
                continue
            payload, state = result
            fold_member_state(self.members[index], state)
            payloads.append(payload)
        self.last_op = FleetOpStats(
            operation=operation, executor=executor.name,
            workers=outcome.workers, wall_seconds=wall,
            worker_walls=outcome.worker_walls, hosts=outcome.hosts,
            bytes_out=dict(outcome.bytes_out),
            bytes_back=dict(outcome.bytes_back),
            failures=failures,
            retries=dict(outcome.retries),
            timeouts=dict(outcome.timeouts))
        return payloads

    # -- object grain ------------------------------------------------------------

    def put(self, path: str, data: bytes = b"", *,
            overwrite: bool = False,
            make_parents: bool = False) -> ObjectInfo:
        """Store one object on its owning (or, when new, routed)
        member.  ``make_parents`` creates the directory chain on that
        member first, like :meth:`TamperEvidentStore.put`."""
        with self._held_write_target(path) as (index, store):
            info = store.put(path, data, overwrite=overwrite,
                             make_parents=make_parents)
        if self._indexer is not None:
            self._indexer.note_put(path, size=info.size, member=index)
        return info

    def get(self, path: str) -> bytes:
        """Read one object (fallback scan after rebalances)."""
        with self._held_holder(path) as (_index, store):
            return store.get(path)

    def delete(self, path: str) -> None:
        """Remove an unsealed object wherever it lives."""
        with self._held_holder(path) as (_index, store):
            store.delete(path)
        if self._indexer is not None:
            self._indexer.note_delete(path)

    def info(self, path: str) -> ObjectInfo:
        """Metadata of one object."""
        with self._held_holder(path) as (_index, store):
            return store.info(path)

    # -- the write-once operation -------------------------------------------------

    def seal(self, path: str, *,
             timestamp: Optional[int] = None) -> SealReceipt:
        """Seal one object on the member that holds it."""
        with self._held_holder(path) as (index, store):
            receipt = store.seal(path, timestamp=timestamp)
        if self._indexer is not None:
            self._indexer.note_seal(receipt, member=index)
        return receipt

    def put_sealed(self, path: str, data: bytes, *,
                   timestamp: Optional[int] = None) -> SealReceipt:
        """Store and immediately seal on the owning/routed member."""
        with self._held_write_target(path) as (index, store):
            receipt = store.put_sealed(path, data, timestamp=timestamp)
        if self._indexer is not None:
            self._indexer.note_put(path, size=len(data), member=index)
            self._indexer.note_seal(receipt, member=index)
        return receipt

    def seal_many(self, paths: Sequence[str], *,
                  timestamp: Optional[int] = None) -> List[SealReceipt]:
        """Seal a batch of objects, fleet-wide.

        Paths group by owning member and the per-member batches run on
        the resolved executor; receipts come back in input order.  In
        a degraded rpc pass (``on_failure="degrade"``) a failed
        member's paths carry its :class:`~repro.parallel.MemberFailure`
        record in place of a receipt — those objects are *not* sealed
        and can be resubmitted verbatim.

        Footprint: the per-member groups' locks, acquired in ascending
        member-index order once the grouping probes (lock-step, one
        member lock at a time) settle — two batches with reversed
        footprints sort identically and cannot deadlock.
        """
        with self._locks.shared():
            groups: Dict[int, List[str]] = {}
            for path in paths:
                # exact routing while the fleet has never grown — the
                # charged probe is only needed after a rebalance
                if not self._grown:
                    index = self.route(path)
                else:
                    index, _store = self._acquire_holder(path)
                    self._locks.release_member(index)
                groups.setdefault(index, []).append(path)
            member_indices = sorted(groups)
            order = self._locks.acquire_ascending(member_indices)
            try:
                payloads = self._fan_out(
                    "seal_many", member_indices, lambda _p: [
                        partial(_seal_many_member, self.members[i],
                                tuple(groups[i]), timestamp)
                        for i in member_indices])
            finally:
                self._locks.release_descending(order)
        by_path: Dict[str, SealReceipt] = {}
        for index, receipts in zip(member_indices, payloads):
            if isinstance(receipts, MemberFailure):
                for path in groups[index]:
                    by_path[path] = receipts
                continue
            for path, receipt in zip(groups[index], receipts):
                by_path[path] = receipt
                if self._indexer is not None:
                    self._indexer.note_seal(receipt, member=index)
        return [by_path[path] for path in paths]

    # -- verification -------------------------------------------------------------

    def verify(self, path: str) -> VerifyReport:
        """Verify one sealed object on the member that holds it."""
        with self._held_holder(path) as (_index, store):
            return store.verify(path)

    def audit(self, *, deep: bool = False) -> AuditReport:
        """Audit every member, fleet-wide, merged into one report.

        Per-member sweeps run on the resolved executor; line labels
        are prefixed ``m<i>:`` so a tampered verdict names the member
        it came from, and file-system findings merge the same way.  A
        member that failed out of a degraded rpc pass contributes an
        ``fs_errors`` entry instead of line verdicts — an audit that
        could not cover the whole fleet is *not* clean.

        Whole-fleet exclusive: the sweep must observe every member
        quiescent (and its verification draws advance member RNG
        streams, which must not interleave with shard-grained ops).
        """
        with self._locks.exclusive():
            member_indices = list(range(len(self.members)))
            payloads = self._fan_out(
                "audit", member_indices, lambda patch: [
                    partial(_audit_member, self.members[i], deep, patch)
                    for i in member_indices])
        merged = AuditReport(deep=deep)
        for index, report in zip(member_indices, payloads):
            tag = self._node_name(index)
            if isinstance(report, MemberFailure):
                merged.fs_errors.append(
                    f"{tag}: member audit failed after "
                    f"{report.attempts} attempt(s): "
                    f"{report.error_type}: {report.message}")
                continue
            # typed per-member verdicts keep the *member-local* report
            # (unprefixed label) so consumers never re-parse the
            # merged strings
            merged.member_records.extend(
                MemberVerdictRecord(member=index, report=r)
                for r in report.reports)
            merged.reports.extend(
                dataclasses.replace(
                    r, label=f"{tag}:{r.label}" if r.label is not None
                    else tag)
                for r in report.reports)
            merged.fs_errors.extend(f"{tag}: {e}" for e in report.fs_errors)
            merged.fs_warnings.extend(f"{tag}: {w}"
                                      for w in report.fs_warnings)
            merged.device_seconds += report.device_seconds
        if self._indexer is not None:
            self._indexer.note_audit(merged,
                                     failures=self.last_op.failures)
        return merged

    # -- forensics ----------------------------------------------------------------

    def export_evidence(self, case: str, exhibits: Mapping[str, bytes], *,
                        timestamp: Optional[int] = None
                        ) -> FleetEvidenceExport:
        """Seal ``exhibits`` as sharded evidence bags, one per member.

        Each exhibit routes by name (under the case's namespace) to a
        member, which seals its share as an ordinary
        :meth:`TamperEvidentStore.export_evidence` bag; the fleet
        export aggregates the sub-bags.

        Footprint: the receiving members' locks, ascending.
        """
        groups: Dict[int, Dict[str, bytes]] = {}
        for name, data in exhibits.items():
            index = self.route(f"{case}/{name}")
            groups.setdefault(index, {})[name] = data
        member_indices = sorted(groups)
        with self._locks.members(member_indices):
            payloads = self._fan_out(
                "export_evidence", member_indices, lambda _p: [
                    partial(_export_member, self.members[i], case,
                            groups[i], timestamp)
                    for i in member_indices])
        # a degraded pass yields MemberFailure payloads: their
        # exhibits were never bagged, so the fleet export is not
        # intact (the sub-bags that did seal remain individually
        # valid and are kept)
        if self._indexer is not None:
            for index, payload in zip(member_indices, payloads):
                if isinstance(payload, MemberFailure):
                    continue
                self._indexer.note_export(payload, member=index,
                                          exhibits=groups[index])
        exports = tuple(p for p in payloads
                        if not isinstance(p, MemberFailure))
        return FleetEvidenceExport(
            case=case, exports=exports,
            intact=len(exports) == len(payloads)
            and all(export.intact for export in exports))

    # -- content-addressed archive -------------------------------------------------

    def _archive_home(self, name: str) -> Optional[int]:
        """Member already holding an archive called ``name``, if any."""
        index = self._archive_homes.get(name)
        if index is not None:
            return index
        for i, member in enumerate(self.members):
            if name in member.archives:
                self._archive_homes[name] = i
                return i
        return None

    def archive(self, name: str, data: bytes, *, timestamp: int = 0):
        """Snapshot ``data`` on the member its *content score* routes
        to — Venti-style content addressing at rack scale.  The walk
        stops at the nearest member with an archive arena.

        Re-archiving an existing ``name`` stays on its current home
        (the name must resolve to one snapshot rack-wide; the member's
        content-addressed arena keeps both versions' blocks).

        Footprint: the home (or chosen) member's lock.
        """
        with self._locks.shared():
            existing = self._archive_home(name)
            if existing is not None:
                self._locks.acquire_member(existing)
                try:
                    return self.members[existing].archive(
                        name, data, timestamp=timestamp)
                finally:
                    self._locks.release_member(existing)
            with self._ring_lock:
                nodes = list(self._ring.successors(shard_key(data)))
            for node in nodes:
                index = int(node[1:])
                if self.members[index].venti is None:
                    continue
                self._locks.acquire_member(index)
                try:
                    receipt = self.members[index].archive(
                        name, data, timestamp=timestamp)
                    self._archive_homes[name] = index
                    return receipt
                finally:
                    self._locks.release_member(index)
            raise ConfigurationError(
                "no archive-capable member: create members with "
                "StoreConfig(archive_blocks=...)")

    def retrieve(self, name: str) -> bytes:
        """Read an archived snapshot back from its home member.

        Falls back to scanning member archives when this façade
        instance did not issue the snapshot itself (a fresh
        ``FleetStore`` over the same rack can still retrieve).
        """
        with self._locks.shared():
            index = self._archive_home(name)
            if index is None:
                raise ConfigurationError(
                    f"no fleet archive named {name!r}")
            self._locks.acquire_member(index)
            try:
                return self.members[index].retrieve(name)
            finally:
                self._locks.release_member(index)

    # -- device grain --------------------------------------------------------------

    def format_devices(self) -> List[FormatReport]:
        """Run the format-time surface scan on every member
        (whole-fleet exclusive)."""
        with self._locks.exclusive():
            member_indices = list(range(len(self.members)))
            return self._fan_out(
                "format_devices", member_indices, lambda _p: [
                    partial(_format_member, self.members[i])
                    for i in member_indices])

    def capacity(self) -> Dict[str, int]:
        """Summed capacity accounting across the whole fleet (taken
        under the exclusive mode so the totals are one coherent
        snapshot)."""
        with self._locks.exclusive():
            totals: Dict[str, int] = {}
            for store in self.members:
                for key, value in store.capacity().items():
                    totals[key] = totals.get(key, 0) + value
            return totals

    def describe(self) -> Dict[str, object]:
        """Inspectable summary: members, routing, last dispatch."""
        return {
            "members": len(self.members),
            "ring_nodes": self._ring.nodes,
            "replicas": self._ring.replicas,
            "lock_mode": self.lock_mode,
            "executor_pin": (self._executor.name
                             if isinstance(self._executor, FleetExecutor)
                             else self._executor),
            "last_op": self.last_op.operation or None,
            "last_executor": self.last_op.executor,
            "last_workers": self.last_op.workers,
            "total_blocks": sum(s.device.total_blocks
                                for s in self.members),
            "sealed_lines": sum(len(s.device.heated_lines)
                                for s in self.members),
        }
