"""Execution policy: one lazy resolution order for every engine switch.

Before ``repro.api`` existed, engine selection was smeared across the
package: an *import-time* read of ``REPRO_SPAN_ENGINE`` pinned
``crypto.crc``/``crypto.manchester`` for the life of the process,
``DeviceConfig.span_engine`` captured another copy, and individual
calls took ``vectorized=``/``batched=`` flags.  This module replaces
all of that with a single resolution order, evaluated **lazily at each
decision point**:

1. **explicit argument** — a ``vectorized=``/``span_engine=`` flag (or
   an engine name) passed by the caller always wins;
2. **context override** — the innermost active
   ``with repro.engine("scalar"):`` block;
3. **installed policy** — the :class:`ExecutionPolicy` set with
   :func:`set_policy`;
4. **environment** — ``REPRO_SPAN_ENGINE``, read at resolution time
   (not import time), so exporting it *after* ``import repro`` works;
5. **default** — the ``vectorized`` engine.

Engines are named entries in a registry so future backends (sharded,
async, remote fleets) can register themselves and be selected through
the same chain; the built-ins are ``"vectorized"`` (the PR 1-2
span/batched fast paths) and ``"scalar"`` (the paper's literal per-dot
reference protocol).

The SHA-256 backend (``hashlib`` vs the from-scratch pure-Python
implementation) resolves through the same chain via
:attr:`ExecutionPolicy.sha256_backend` /
``repro.engine(sha256="pure")`` / ``REPRO_SHA256_BACKEND``.

The *fleet executor* — how :class:`~repro.workloads.fleet.FleetScheduler`
and :class:`~repro.api.fleet.FleetStore` dispatch per-member passes
(``serial`` / ``thread`` / ``process`` / ``rpc``, see
:mod:`repro.parallel`) — resolves through the chain too, via
:attr:`ExecutionPolicy.executor` / ``repro.engine(executor="thread")``
/ ``REPRO_FLEET_EXECUTOR``, with a worker-count bound alongside it
(:attr:`ExecutionPolicy.max_workers` / ``REPRO_FLEET_WORKERS``) and,
for the remote executor, the worker host set
(:attr:`ExecutionPolicy.fleet_hosts` /
``repro.engine(fleet_hosts=...)`` / ``REPRO_FLEET_HOSTS``).  All are
read lazily at each dispatch.

This module deliberately imports nothing from the rest of the package
at import time (it sits below every other layer in the import graph);
executor-name validation imports :mod:`repro.parallel` lazily, which
itself depends only on this module.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple, Union

#: Environment variable selecting the default engine (lazily read).
ENGINE_ENV_VAR = "REPRO_SPAN_ENGINE"

#: Environment variable selecting the default SHA-256 backend.
SHA256_ENV_VAR = "REPRO_SHA256_BACKEND"

#: Environment variable selecting the default fleet executor (lazy).
EXECUTOR_ENV_VAR = "REPRO_FLEET_EXECUTOR"

#: Environment variable bounding fleet executor workers (lazy).
FLEET_WORKERS_ENV_VAR = "REPRO_FLEET_WORKERS"

#: Environment variable naming remote fleet worker hosts for the
#: ``rpc`` executor (comma-separated ``host:port`` items, lazy).
FLEET_HOSTS_ENV_VAR = "REPRO_FLEET_HOSTS"

#: Environment variable enabling the ``rpc`` executor's session mode
#: (pin-once member snapshots + pipelined dispatch, lazy).
FLEET_SESSIONS_ENV_VAR = "REPRO_FLEET_SESSIONS"

#: Environment variable setting the ``rpc`` executor's per-request
#: socket deadline in seconds (lazy; ``0`` or negative disables).
FLEET_TIMEOUT_ENV_VAR = "REPRO_FLEET_TIMEOUT"

#: Environment variable setting the ``rpc`` executor's failover
#: re-dispatch budget (waves of re-placement on surviving hosts, lazy).
FLEET_RETRIES_ENV_VAR = "REPRO_FLEET_RETRIES"

#: Environment variable selecting the ``rpc`` executor's exhausted-
#: member handling: ``raise`` (abort the pass) or ``degrade``
#: (return typed ``MemberFailure`` records in a partial pass, lazy).
FLEET_ON_FAILURE_ENV_VAR = "REPRO_FLEET_ON_FAILURE"

#: Recognised ``fleet_on_failure`` modes.
FLEET_ON_FAILURE_MODES = ("raise", "degrade")

#: Environment variable holding the fleet's shared HMAC secret: when
#: set, every SRPC frame (client and worker side) is signed and
#: unsigned frames are rejected (lazy; empty disables).
FLEET_SECRET_ENV_VAR = "REPRO_FLEET_SECRET"

#: Environment variable naming the HTTP gateway's bind address
#: (``host:port``, lazy).
GATEWAY_BIND_ENV_VAR = "REPRO_GATEWAY_BIND"

#: Environment variable holding the gateway's inline token spec
#: (``token=grant,grant;token=...`` — see :mod:`repro.gateway.auth`).
GATEWAY_TOKENS_ENV_VAR = "REPRO_GATEWAY_TOKENS"

#: Environment variable naming the gateway's token file (one
#: ``token=grant,...`` entry per line, ``#`` comments).
GATEWAY_TOKEN_FILE_ENV_VAR = "REPRO_GATEWAY_TOKEN_FILE"

#: Gateway bind address when no layer names one: loopback only — an
#: operator must *choose* to expose the service on a real interface.
DEFAULT_GATEWAY_BIND = "127.0.0.1:8473"

#: Environment variable setting the evidence-search highlighter's
#: fragment size in characters (lazy; see :mod:`repro.search`).
SEARCH_FRAGMENT_SIZE_ENV_VAR = "REPRO_SEARCH_FRAGMENT_SIZE"

#: Environment variable setting how many highlighted fragments a
#: search hit carries (lazy; ``0`` means the whole text, highlighted).
SEARCH_FRAGMENT_COUNT_ENV_VAR = "REPRO_SEARCH_FRAGMENT_COUNT"

#: Environment variable bounding how many hits one search returns
#: (lazy; facet counts always cover the full match set).
SEARCH_MAX_HITS_ENV_VAR = "REPRO_SEARCH_MAX_HITS"

#: Highlighter fragment size when no layer sets one.
DEFAULT_SEARCH_FRAGMENT_SIZE = 80

#: Highlighted fragments per hit when no layer sets a count.
DEFAULT_SEARCH_FRAGMENT_COUNT = 3

#: Hits per search when no layer sets a bound.
DEFAULT_SEARCH_MAX_HITS = 50

#: Executor used when no layer pins one: the reference dispatch.
DEFAULT_EXECUTOR = "serial"

_FALSEY = ("0", "false", "no", "off", "scalar")

#: Recognised SHA-256 backends (see :mod:`repro.crypto.sha256`).
SHA256_BACKENDS = ("hashlib", "pure")


# ---------------------------------------------------------------------------
# Engine registry


@dataclass(frozen=True)
class EngineSpec:
    """One registered execution engine.

    Attributes:
        name: registry key, as accepted by :func:`repro.engine` and
            :attr:`ExecutionPolicy.engine`.
        vectorized: whether the span/batched numpy fast paths run.
            Every current consumer reduces an engine to this flag;
            richer backends (sharding, async dispatch) can carry more
            behaviour on subclasses while keeping the flag meaningful
            for the layers below them.
        description: one-line human description.
    """

    name: str
    vectorized: bool
    description: str = ""


_ENGINES: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec, *, replace: bool = False) -> EngineSpec:
    """Register an engine so policies and contexts can select it by name.

    Raises ``ValueError`` for a duplicate name unless ``replace``.
    """
    if not spec.name or not spec.name.isidentifier():
        raise ValueError(f"engine name must be an identifier: {spec.name!r}")
    if spec.name in _ENGINES and not replace:
        raise ValueError(f"engine {spec.name!r} already registered")
    _ENGINES[spec.name] = spec
    return spec


def unregister_engine(name: str) -> None:
    """Remove a registered engine (built-ins are protected)."""
    if name in ("vectorized", "scalar"):
        raise ValueError(f"cannot unregister built-in engine {name!r}")
    _ENGINES.pop(name, None)


def available_engines() -> Tuple[str, ...]:
    """Names of all registered engines, registration order."""
    return tuple(_ENGINES)


def get_engine(name: str) -> EngineSpec:
    """Look up a registered engine by name."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered: {', '.join(_ENGINES)}"
        ) from None


VECTORIZED_ENGINE = register_engine(EngineSpec(
    "vectorized", True,
    "numpy span/batched fast paths (protocol-identical, default)"))
SCALAR_ENGINE = register_engine(EngineSpec(
    "scalar", False,
    "the paper's literal per-dot/per-byte reference protocol"))


# ---------------------------------------------------------------------------
# Policy objects


@dataclass(frozen=True)
class ExecutionPolicy:
    """A bundle of engine choices, installable or usable as a context.

    ``None`` fields mean "defer to the next layer of the resolution
    order" — an installed ``ExecutionPolicy()`` with all defaults is
    indistinguishable from no policy at all.

    Attributes:
        engine: registered engine name (``"vectorized"``/``"scalar"``
            or a custom registration).
        sha256_backend: ``"hashlib"`` or ``"pure"``.
        executor: registered fleet executor name (``"serial"`` /
            ``"thread"`` / ``"process"`` / ``"rpc"`` or a custom
            registration in :mod:`repro.parallel`).
        max_workers: worker bound for pool executors (None = one per
            CPU core, capped at the member count).
        fleet_hosts: remote worker addresses for the ``rpc`` executor
            (``host:port`` strings, or one comma-separated string);
            stored canonicalised (validated, de-duplicated, sorted) so
            two policies naming the same hosts in different orders are
            the same policy.
        fleet_sessions: whether the ``rpc`` executor runs in session
            mode — members pinned once on their ring-assigned worker,
            task descriptors (not snapshots) per pass, pipelined
            dispatch.  A plain bool by design: resolving it must never
            load the wire-protocol module.
        fleet_timeout: per-request socket deadline in seconds for the
            ``rpc`` executor (None = no deadline; a hung worker blocks
            until the fault is external).
        fleet_retries: failover re-dispatch budget — how many waves of
            re-placement on surviving hosts a pass may attempt for
            members whose host died (None = defer; the chain's default
            is 0, fail fast).
        fleet_on_failure: ``"raise"`` or ``"degrade"`` — what an rpc
            pass does with members that exhausted their retries.
            Plain values by design, like ``fleet_sessions``: resolving
            any of the three never loads the wire-protocol module.
        fleet_secret: shared HMAC secret for the ``rpc`` executor's
            wire frames.  When any layer resolves a secret, every
            frame both directions is HMAC-SHA256-signed and unsigned
            frames are rejected (see :mod:`repro.parallel.remote`).
            A plain string by design, like ``fleet_sessions``.
        gateway_bind: ``host:port`` the HTTP gateway binds
            (:mod:`repro.gateway`); stored canonicalised.
        gateway_token_file: path to the gateway's bearer-token file
            (one ``token=grant,...`` entry per line).
        search_fragment_size: evidence-search highlighter fragment
            size in characters (:mod:`repro.search`).
        search_fragment_count: highlighted fragments per search hit
            (``0`` = the whole text, highlighted).
        search_max_hits: hits one search returns (facet counts always
            cover the full match set).
    """

    engine: Optional[str] = None
    sha256_backend: Optional[str] = None
    executor: Optional[str] = None
    max_workers: Optional[int] = None
    fleet_hosts: Optional[Tuple[str, ...]] = None
    fleet_sessions: Optional[bool] = None
    fleet_timeout: Optional[float] = None
    fleet_retries: Optional[int] = None
    fleet_on_failure: Optional[str] = None
    # repr=False: the secret must never surface in reprs, logs, or
    # describe_policy() output — only the fleet_secret_set bool does
    fleet_secret: Optional[str] = field(default=None, repr=False)
    gateway_bind: Optional[str] = None
    gateway_token_file: Optional[str] = None
    search_fragment_size: Optional[int] = None
    search_fragment_count: Optional[int] = None
    search_max_hits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.engine is not None:
            get_engine(self.engine)  # validates
        if self.sha256_backend is not None and \
                self.sha256_backend not in SHA256_BACKENDS:
            raise ValueError(
                f"unknown sha256 backend {self.sha256_backend!r}; "
                f"expected one of {SHA256_BACKENDS}")
        if self.executor is not None:
            from .. import parallel  # lazy: keeps this module at the bottom

            parallel.get_executor_spec(self.executor)  # validates
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.fleet_sessions is not None and \
                not isinstance(self.fleet_sessions, bool):
            raise TypeError("fleet_sessions must be a bool or None")
        if self.fleet_timeout is not None:
            if isinstance(self.fleet_timeout, bool) or \
                    not isinstance(self.fleet_timeout, (int, float)):
                raise TypeError("fleet_timeout must be a number or None")
            if self.fleet_timeout <= 0:
                raise ValueError("fleet_timeout must be > 0 seconds")
            object.__setattr__(self, "fleet_timeout",
                               float(self.fleet_timeout))
        if self.fleet_retries is not None:
            if isinstance(self.fleet_retries, bool) or \
                    not isinstance(self.fleet_retries, int):
                raise TypeError("fleet_retries must be an int or None")
            if self.fleet_retries < 0:
                raise ValueError("fleet_retries must be >= 0")
        if self.fleet_on_failure is not None and \
                self.fleet_on_failure not in FLEET_ON_FAILURE_MODES:
            raise ValueError(
                f"unknown fleet_on_failure mode "
                f"{self.fleet_on_failure!r}; expected one of "
                f"{FLEET_ON_FAILURE_MODES}")
        if self.fleet_secret is not None:
            if not isinstance(self.fleet_secret, str):
                raise TypeError("fleet_secret must be a str or None")
            if not self.fleet_secret:
                raise ValueError(
                    "fleet_secret must be non-empty (omit it to run "
                    "unsigned)")
        if self.gateway_token_file is not None and \
                not str(self.gateway_token_file).strip():
            raise ValueError("gateway_token_file must be a path")
        for name, minimum in (("search_fragment_size", 1),
                              ("search_fragment_count", 0),
                              ("search_max_hits", 1)):
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError(f"{name} must be an int or None")
            if value < minimum:
                raise ValueError(f"{name} must be >= {minimum}")
        if self.gateway_bind is not None:
            from ..parallel import remote  # lazy, as above

            host, port = remote.parse_host(self.gateway_bind)
            object.__setattr__(self, "gateway_bind", f"{host}:{port}")
        if self.fleet_hosts is not None:
            from ..parallel import remote  # lazy, as above

            object.__setattr__(self, "fleet_hosts",
                               remote.parse_hosts(self.fleet_hosts))

    @contextmanager
    def use(self) -> Iterator["ExecutionPolicy"]:
        """Apply this policy as a (nestable) context override."""
        token = _OVERRIDES.set(_OVERRIDES.get() + (self,))
        try:
            yield self
        finally:
            _OVERRIDES.reset(token)


#: Installed process-wide policy (layer 3 of the resolution order).
_POLICY: Optional[ExecutionPolicy] = None

#: Stack of active context overrides (layer 2); innermost last.
_OVERRIDES: ContextVar[Tuple[ExecutionPolicy, ...]] = ContextVar(
    "repro_policy_overrides", default=())


def set_policy(policy: Optional[ExecutionPolicy]) -> None:
    """Install (or with ``None`` clear) the process-wide policy."""
    global _POLICY
    if policy is not None and not isinstance(policy, ExecutionPolicy):
        raise TypeError("set_policy expects an ExecutionPolicy or None")
    _POLICY = policy


def get_policy() -> Optional[ExecutionPolicy]:
    """The installed process-wide policy (None when not set)."""
    return _POLICY


@contextmanager
def engine(name: Optional[str] = None, *,
           sha256: Optional[str] = None,
           executor: Optional[str] = None,
           max_workers: Optional[int] = None,
           fleet_hosts: Optional[Tuple[str, ...]] = None,
           fleet_sessions: Optional[bool] = None,
           fleet_timeout: Optional[float] = None,
           fleet_retries: Optional[int] = None,
           fleet_on_failure: Optional[str] = None,
           fleet_secret: Optional[str] = None,
           gateway_bind: Optional[str] = None,
           gateway_token_file: Optional[str] = None,
           search_fragment_size: Optional[int] = None,
           search_fragment_count: Optional[int] = None,
           search_max_hits: Optional[int] = None
           ) -> Iterator[ExecutionPolicy]:
    """Scoped engine override: ``with repro.engine("scalar"): ...``.

    Nested contexts stack; the innermost one that pins a given field
    wins, so ``with engine("scalar"), engine(sha256="pure"):`` runs the
    scalar engine *and* the pure hash.  Fleet dispatch scopes the same
    way: ``with repro.engine(executor="thread", max_workers=4): ...``,
    remote dispatch too: ``with repro.engine(executor="rpc",
    fleet_hosts=("db1:7401", "db2:7401")): ...``, and so does fault
    handling: ``with repro.engine(fleet_timeout=5.0, fleet_retries=2,
    fleet_on_failure="degrade"): ...``.  Thread- and async-safe
    (backed by a :class:`contextvars.ContextVar`).
    """
    with ExecutionPolicy(engine=name, sha256_backend=sha256,
                         executor=executor,
                         max_workers=max_workers,
                         fleet_hosts=fleet_hosts,
                         fleet_sessions=fleet_sessions,
                         fleet_timeout=fleet_timeout,
                         fleet_retries=fleet_retries,
                         fleet_on_failure=fleet_on_failure,
                         fleet_secret=fleet_secret,
                         gateway_bind=gateway_bind,
                         gateway_token_file=gateway_token_file,
                         search_fragment_size=search_fragment_size,
                         search_fragment_count=search_fragment_count,
                         search_max_hits=search_max_hits
                         ).use() as pol:
        yield pol


# ---------------------------------------------------------------------------
# Resolution


def _engine_from_env() -> Tuple[str, str]:
    """(engine name, source) from the environment / default layers."""
    value = os.environ.get(ENGINE_ENV_VAR)
    if value is None:
        return "vectorized", "default"
    token = value.strip().lower()
    if token in _ENGINES:
        return token, "env"
    return ("scalar" if token in _FALSEY else "vectorized"), "env"


def _resolve_engine_name(explicit: Union[None, bool, str]) -> Tuple[str, str]:
    """(engine name, source) through the four-layer chain."""
    if explicit is not None:
        if isinstance(explicit, bool):
            return ("vectorized" if explicit else "scalar"), "explicit"
        get_engine(explicit)  # validates
        return explicit, "explicit"
    for frame in reversed(_OVERRIDES.get()):
        if frame.engine is not None:
            return frame.engine, "context"
    if _POLICY is not None and _POLICY.engine is not None:
        return _POLICY.engine, "policy"
    return _engine_from_env()


def resolve_engine(explicit: Union[None, bool, str] = None) -> EngineSpec:
    """Resolve the active engine through the documented order.

    ``explicit`` may be a registered engine name, a bare bool (the
    legacy ``vectorized=``/``span_engine=`` flags map ``True`` to
    ``"vectorized"`` and ``False`` to ``"scalar"``), or None to defer
    to context / policy / environment / default.
    """
    return get_engine(_resolve_engine_name(explicit)[0])


def resolve_vectorized(explicit: Union[None, bool, str] = None) -> bool:
    """Whether the active engine runs the vectorized fast paths.

    This is the call every former ``span_engine_default()`` site goes
    through; it is evaluated lazily at each decision point.
    """
    if explicit is None:
        # fast path: no explicit pin, walk the chain inline
        # (get_engine, not a bare dict lookup, so a policy/context
        # naming a since-unregistered engine fails with the same
        # descriptive ValueError as the resolve_engine path)
        overrides = _OVERRIDES.get()
        if overrides:
            for frame in reversed(overrides):
                if frame.engine is not None:
                    return get_engine(frame.engine).vectorized
        if _POLICY is not None and _POLICY.engine is not None:
            return get_engine(_POLICY.engine).vectorized
        value = os.environ.get(ENGINE_ENV_VAR)
        if value is None:
            return True
        token = value.strip().lower()
        if token in _ENGINES:
            return _ENGINES[token].vectorized
        return token not in _FALSEY
    return resolve_engine(explicit).vectorized


def resolve_sha256_backend(explicit: Optional[str] = None) -> str:
    """Resolve the SHA-256 backend name through the same chain."""
    if explicit is not None:
        if explicit not in SHA256_BACKENDS:
            raise ValueError(f"unknown sha256 backend: {explicit!r}")
        return explicit
    for frame in reversed(_OVERRIDES.get()):
        if frame.sha256_backend is not None:
            return frame.sha256_backend
    if _POLICY is not None and _POLICY.sha256_backend is not None:
        return _POLICY.sha256_backend
    value = os.environ.get(SHA256_ENV_VAR)
    if value is not None and value.strip().lower() in SHA256_BACKENDS:
        return value.strip().lower()
    return "hashlib"


def _executor_from_env() -> Tuple[str, str]:
    """(executor name, source) from the environment / default layers.

    An env value naming an unregistered executor is ignored (like the
    engine variable's unknown-token handling, a stale export must not
    crash a fleet node) and the default dispatch applies.
    """
    value = os.environ.get(EXECUTOR_ENV_VAR)
    if value is not None:
        token = value.strip().lower()
        from .. import parallel  # lazy; registers the built-ins

        if token in parallel.available_executors():
            return token, "env"
    return DEFAULT_EXECUTOR, "default"


def resolve_executor_name(explicit: Optional[str] = None) -> Tuple[str, str]:
    """(executor name, deciding layer) through the four-layer chain.

    ``explicit`` must be a registered executor name or None; the env
    variable is read *now* (exporting ``REPRO_FLEET_EXECUTOR`` after
    ``import repro`` — or after building the scheduler — works).
    """
    if explicit is not None:
        from .. import parallel

        parallel.get_executor_spec(explicit)  # validates
        return explicit, "explicit"
    for frame in reversed(_OVERRIDES.get()):
        if frame.executor is not None:
            return frame.executor, "context"
    if _POLICY is not None and _POLICY.executor is not None:
        return _POLICY.executor, "policy"
    return _executor_from_env()


def resolve_max_workers(
        explicit: Optional[int] = None) -> Tuple[Optional[int], str]:
    """(worker bound, deciding layer); None means one per CPU core."""
    if explicit is not None:
        if explicit < 1:
            raise ValueError("max_workers must be >= 1")
        return explicit, "explicit"
    for frame in reversed(_OVERRIDES.get()):
        if frame.max_workers is not None:
            return frame.max_workers, "context"
    if _POLICY is not None and _POLICY.max_workers is not None:
        return _POLICY.max_workers, "policy"
    value = os.environ.get(FLEET_WORKERS_ENV_VAR)
    if value is not None:
        try:
            workers = int(value.strip())
        except ValueError:
            workers = 0
        if workers >= 1:
            return workers, "env"
    return None, "default"


def resolve_fleet_hosts(
        explicit: Union[None, str, Tuple[str, ...]] = None
) -> Tuple[Optional[Tuple[str, ...]], str]:
    """(canonical host tuple or None, deciding layer) for the ``rpc``
    executor's worker set.

    ``explicit`` may be a host sequence or one comma-separated string;
    None walks context > installed policy > ``REPRO_FLEET_HOSTS`` (read
    *now*, so exporting it after the scheduler exists works).  None
    with source ``"default"`` means no layer names hosts — the rpc
    executor turns that into a descriptive error at dispatch.
    """
    if explicit is not None:
        from ..parallel import remote  # lazy: only parsing needs it

        return remote.parse_hosts(explicit), "explicit"
    # context/policy values were canonicalised by ExecutionPolicy
    # validation, so these layers resolve without ever loading the
    # wire-protocol module (describe_policy() must stay cheap)
    for frame in reversed(_OVERRIDES.get()):
        if frame.fleet_hosts is not None:
            return frame.fleet_hosts, "context"
    if _POLICY is not None and _POLICY.fleet_hosts is not None:
        return _POLICY.fleet_hosts, "policy"
    value = os.environ.get(FLEET_HOSTS_ENV_VAR)
    if value is not None and value.strip():
        from ..parallel import remote  # lazy, as above

        return remote.parse_hosts(value), "env"
    return None, "default"


def resolve_fleet_sessions(
        explicit: Optional[bool] = None) -> Tuple[bool, str]:
    """(session mode on?, deciding layer) for the ``rpc`` executor.

    The value is a plain bool through every layer — resolving it (and
    therefore :func:`describe_policy`) never loads the wire-protocol
    module.  ``REPRO_FLEET_SESSIONS`` is read *now*; any value outside
    the falsey tokens enables sessions.  Default: off.
    """
    if explicit is not None:
        return bool(explicit), "explicit"
    for frame in reversed(_OVERRIDES.get()):
        if frame.fleet_sessions is not None:
            return frame.fleet_sessions, "context"
    if _POLICY is not None and _POLICY.fleet_sessions is not None:
        return _POLICY.fleet_sessions, "policy"
    value = os.environ.get(FLEET_SESSIONS_ENV_VAR)
    if value is not None and value.strip():
        return value.strip().lower() not in _FALSEY, "env"
    return False, "default"


def resolve_fleet_timeout(
        explicit: Optional[float] = None) -> Tuple[Optional[float], str]:
    """(per-request deadline in seconds or None, deciding layer) for
    the ``rpc`` executor.

    None means no deadline — a hung worker blocks until an external
    fault (peer death, connection reset) surfaces.  The env value is
    read *now*; ``REPRO_FLEET_TIMEOUT=0`` (or negative) is an explicit
    disable, an unparsable value is ignored.
    """
    if explicit is not None:
        if explicit <= 0:
            raise ValueError("fleet timeout must be > 0 seconds")
        return float(explicit), "explicit"
    for frame in reversed(_OVERRIDES.get()):
        if frame.fleet_timeout is not None:
            return frame.fleet_timeout, "context"
    if _POLICY is not None and _POLICY.fleet_timeout is not None:
        return _POLICY.fleet_timeout, "policy"
    value = os.environ.get(FLEET_TIMEOUT_ENV_VAR)
    if value is not None and value.strip():
        try:
            seconds = float(value.strip())
        except ValueError:
            return None, "default"
        return (seconds if seconds > 0 else None), "env"
    return None, "default"


def resolve_fleet_retries(
        explicit: Optional[int] = None) -> Tuple[int, str]:
    """(failover re-dispatch budget, deciding layer) for the ``rpc``
    executor.

    ``0`` (the default) keeps the fail-fast contract: the first host
    loss aborts the pass.  A negative or unparsable env value is
    ignored.
    """
    if explicit is not None:
        if isinstance(explicit, bool) or not isinstance(explicit, int):
            raise TypeError("fleet retries must be an int or None")
        if explicit < 0:
            raise ValueError("fleet retries must be >= 0")
        return explicit, "explicit"
    for frame in reversed(_OVERRIDES.get()):
        if frame.fleet_retries is not None:
            return frame.fleet_retries, "context"
    if _POLICY is not None and _POLICY.fleet_retries is not None:
        return _POLICY.fleet_retries, "policy"
    value = os.environ.get(FLEET_RETRIES_ENV_VAR)
    if value is not None and value.strip():
        try:
            waves = int(value.strip())
        except ValueError:
            waves = -1
        if waves >= 0:
            return waves, "env"
    return 0, "default"


def resolve_fleet_on_failure(
        explicit: Optional[str] = None) -> Tuple[str, str]:
    """(exhausted-member mode, deciding layer) for the ``rpc``
    executor: ``"raise"`` (default, abort the pass) or ``"degrade"``
    (partial pass with typed ``MemberFailure`` records).  An env value
    outside the recognised modes is ignored.
    """
    if explicit is not None:
        if explicit not in FLEET_ON_FAILURE_MODES:
            raise ValueError(
                f"unknown fleet on_failure mode {explicit!r}; "
                f"expected one of {FLEET_ON_FAILURE_MODES}")
        return explicit, "explicit"
    for frame in reversed(_OVERRIDES.get()):
        if frame.fleet_on_failure is not None:
            return frame.fleet_on_failure, "context"
    if _POLICY is not None and _POLICY.fleet_on_failure is not None:
        return _POLICY.fleet_on_failure, "policy"
    value = os.environ.get(FLEET_ON_FAILURE_ENV_VAR)
    if value is not None:
        token = value.strip().lower()
        if token in FLEET_ON_FAILURE_MODES:
            return token, "env"
    return "raise", "default"


def resolve_fleet_secret(
        explicit: Optional[str] = None) -> Tuple[Optional[str], str]:
    """(shared frame-signing secret or None, deciding layer) for the
    ``rpc`` executor's wire protocol.

    None means unsigned frames (the PR 5 trusted-network transport);
    any resolved secret makes both sides sign every frame and reject
    unsigned ones.  ``REPRO_FLEET_SECRET`` is read *now*; a
    whitespace-only value is an explicit disable.
    """
    if explicit is not None:
        if not isinstance(explicit, str) or not explicit:
            raise ValueError(
                "fleet secret must be a non-empty string (omit it to "
                "run unsigned)")
        return explicit, "explicit"
    for frame in reversed(_OVERRIDES.get()):
        if frame.fleet_secret is not None:
            return frame.fleet_secret, "context"
    if _POLICY is not None and _POLICY.fleet_secret is not None:
        return _POLICY.fleet_secret, "policy"
    value = os.environ.get(FLEET_SECRET_ENV_VAR)
    if value is not None and value.strip():
        return value.strip(), "env"
    return None, "default"


def resolve_gateway_bind(
        explicit: Optional[str] = None) -> Tuple[str, str]:
    """(canonical ``host:port`` bind address, deciding layer) for the
    HTTP gateway (:mod:`repro.gateway`).  Defaults to loopback
    (:data:`DEFAULT_GATEWAY_BIND`) — exposing the service on a real
    interface is always a deliberate choice."""
    if explicit is not None:
        from ..parallel.remote import parse_host  # lazy: only parsing

        host, port = parse_host(explicit)
        return f"{host}:{port}", "explicit"
    # context/policy values were canonicalised by ExecutionPolicy
    # validation; the default is literal — so describe_policy() keeps
    # its no-wire-protocol-import guarantee on those layers
    for frame in reversed(_OVERRIDES.get()):
        if frame.gateway_bind is not None:
            return frame.gateway_bind, "context"
    if _POLICY is not None and _POLICY.gateway_bind is not None:
        return _POLICY.gateway_bind, "policy"
    value = os.environ.get(GATEWAY_BIND_ENV_VAR)
    if value is not None and value.strip():
        from ..parallel.remote import parse_host  # lazy, as above

        host, port = parse_host(value)
        return f"{host}:{port}", "env"
    return DEFAULT_GATEWAY_BIND, "default"


def resolve_gateway_token_file(
        explicit: Optional[str] = None) -> Tuple[Optional[str], str]:
    """(token file path or None, deciding layer) for the HTTP
    gateway's bearer tokens.  The inline spec variable
    (:data:`GATEWAY_TOKENS_ENV_VAR`) is separate and takes precedence
    in :meth:`repro.gateway.GatewaySettings.resolve` — secret material
    itself never lives in a policy object, only a path to it may."""
    if explicit is not None:
        if not str(explicit).strip():
            raise ValueError("gateway token file must be a path")
        return str(explicit), "explicit"
    for frame in reversed(_OVERRIDES.get()):
        if frame.gateway_token_file is not None:
            return frame.gateway_token_file, "context"
    if _POLICY is not None and _POLICY.gateway_token_file is not None:
        return _POLICY.gateway_token_file, "policy"
    value = os.environ.get(GATEWAY_TOKEN_FILE_ENV_VAR)
    if value is not None and value.strip():
        return value.strip(), "env"
    return None, "default"


def _resolve_search_int(explicit: Optional[int], *, attr: str,
                        env_var: str, default: int,
                        minimum: int) -> Tuple[int, str]:
    """Shared five-layer walk for the search layer's integer knobs
    (fragment size / fragment count / max hits).  A below-minimum or
    unparsable env value is ignored, like the other fleet knobs."""
    if explicit is not None:
        if isinstance(explicit, bool) or not isinstance(explicit, int):
            raise TypeError(f"{attr} must be an int or None")
        if explicit < minimum:
            raise ValueError(f"{attr} must be >= {minimum}")
        return explicit, "explicit"
    for frame in reversed(_OVERRIDES.get()):
        value = getattr(frame, attr)
        if value is not None:
            return value, "context"
    if _POLICY is not None and getattr(_POLICY, attr) is not None:
        return getattr(_POLICY, attr), "policy"
    raw = os.environ.get(env_var)
    if raw is not None and raw.strip():
        try:
            value = int(raw.strip())
        except ValueError:
            value = minimum - 1
        if value >= minimum:
            return value, "env"
    return default, "default"


def resolve_search_fragment_size(
        explicit: Optional[int] = None) -> Tuple[int, str]:
    """(highlighter fragment size in characters, deciding layer) for
    the evidence-search layer (:mod:`repro.search`)."""
    return _resolve_search_int(
        explicit, attr="search_fragment_size",
        env_var=SEARCH_FRAGMENT_SIZE_ENV_VAR,
        default=DEFAULT_SEARCH_FRAGMENT_SIZE, minimum=1)


def resolve_search_fragment_count(
        explicit: Optional[int] = None) -> Tuple[int, str]:
    """(highlighted fragments per hit, deciding layer); ``0`` means
    the whole text, highlighted (the openaleph convention)."""
    return _resolve_search_int(
        explicit, attr="search_fragment_count",
        env_var=SEARCH_FRAGMENT_COUNT_ENV_VAR,
        default=DEFAULT_SEARCH_FRAGMENT_COUNT, minimum=0)


def resolve_search_max_hits(
        explicit: Optional[int] = None) -> Tuple[int, str]:
    """(hits one search returns, deciding layer).  Facet aggregations
    always cover the full match set regardless of this bound."""
    return _resolve_search_int(
        explicit, attr="search_max_hits",
        env_var=SEARCH_MAX_HITS_ENV_VAR,
        default=DEFAULT_SEARCH_MAX_HITS, minimum=1)


def describe_policy() -> Dict[str, object]:
    """Inspectable snapshot of the resolution: what would run now, and
    which layer decided it.  The answer an operator needs when a fleet
    node is mysteriously slow (e.g. a pinned pure SHA-256 backend)."""
    name, source = _resolve_engine_name(None)
    sha = resolve_sha256_backend()
    sha_source = "default"
    for frame in reversed(_OVERRIDES.get()):
        if frame.sha256_backend is not None:
            sha_source = "context"
            break
    else:
        if _POLICY is not None and _POLICY.sha256_backend is not None:
            sha_source = "policy"
        elif os.environ.get(SHA256_ENV_VAR, "").strip().lower() in SHA256_BACKENDS:
            sha_source = "env"
    executor, executor_source = resolve_executor_name()
    max_workers, workers_source = resolve_max_workers()
    fleet_hosts, hosts_source = resolve_fleet_hosts()
    fleet_sessions, sessions_source = resolve_fleet_sessions()
    fleet_timeout, timeout_source = resolve_fleet_timeout()
    fleet_retries, retries_source = resolve_fleet_retries()
    fleet_on_failure, on_failure_source = resolve_fleet_on_failure()
    fleet_secret, secret_source = resolve_fleet_secret()
    gateway_bind, gateway_bind_source = resolve_gateway_bind()
    token_file, token_file_source = resolve_gateway_token_file()
    fragment_size, fragment_size_source = resolve_search_fragment_size()
    fragment_count, fragment_count_source = \
        resolve_search_fragment_count()
    max_hits, max_hits_source = resolve_search_max_hits()
    from .. import parallel  # lazy; registers the built-in executors

    return {
        "engine": name,
        "engine_source": source,
        "vectorized": _ENGINES[name].vectorized,
        "sha256_backend": sha,
        "sha256_source": sha_source,
        "executor": executor,
        "executor_source": executor_source,
        "max_workers": max_workers,
        "max_workers_source": workers_source,
        "fleet_hosts": fleet_hosts,
        "fleet_hosts_source": hosts_source,
        "fleet_sessions": fleet_sessions,
        "fleet_sessions_source": sessions_source,
        "fleet_timeout": fleet_timeout,
        "fleet_timeout_source": timeout_source,
        "fleet_retries": fleet_retries,
        "fleet_retries_source": retries_source,
        "fleet_on_failure": fleet_on_failure,
        "fleet_on_failure_source": on_failure_source,
        # the secret's *presence* is operational state; its value is
        # secret material and never appears in a diagnostics dump
        "fleet_secret_set": fleet_secret is not None,
        "fleet_secret_source": secret_source,
        "gateway_bind": gateway_bind,
        "gateway_bind_source": gateway_bind_source,
        "gateway_token_file": token_file,
        "gateway_token_file_source": token_file_source,
        "search_fragment_size": fragment_size,
        "search_fragment_size_source": fragment_size_source,
        "search_fragment_count": fragment_count,
        "search_fragment_count_source": fragment_count_source,
        "search_max_hits": max_hits,
        "search_max_hits_source": max_hits_source,
        "available_engines": available_engines(),
        "available_executors": parallel.available_executors(),
        "installed_policy": _POLICY,
        "active_overrides": len(_OVERRIDES.get()),
    }
