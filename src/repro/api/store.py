"""The :class:`TamperEvidentStore` façade — one door into the stack.

The paper sells an end-to-end tamper-evident storage *service*:
device, file system and integrity layers working as one.  This module
is that service's API.  One object drives a :class:`SERODevice`, a
:class:`SeroFS`, and (optionally) a Venti archive arena, a fossilised
receipt index and a self-securing instruction log, through typed
request/response objects:

* :meth:`~TamperEvidentStore.put` / :meth:`~TamperEvidentStore.get` —
  ordinary WMRM objects (:class:`ObjectInfo`);
* :meth:`~TamperEvidentStore.seal` /
  :meth:`~TamperEvidentStore.seal_many` — the write-once heat
  operation (:class:`SealReceipt`);
* :meth:`~TamperEvidentStore.verify` /
  :meth:`~TamperEvidentStore.audit` — tamper-evidence checks
  (:class:`VerifyReport`, :class:`AuditReport`);
* :meth:`~TamperEvidentStore.export_evidence` — forensic evidence
  bags (:class:`EvidenceExport`);
* :meth:`~TamperEvidentStore.archive` /
  :meth:`~TamperEvidentStore.retrieve` — content-addressed hash-tree
  snapshots with sealed roots (:class:`ArchiveReceipt`).

The façade's native grain is the batched fast path: ``audit`` runs one
bulk :meth:`~repro.device.sero.SERODevice.verify_lines` sweep (shared
erb gather and retry waves across every sealed line), ``seal_many``
drives each line's reads/writes through the span-run engines, and the
engine itself is chosen by the lazy execution policy
(:mod:`repro.api.policy`) — per-store pins via
:attr:`StoreConfig.engine`, per-scope via ``with
repro.engine("scalar"):``.

A store can also wrap a bare device (:meth:`TamperEvidentStore.attach`
with no file system) — the device-grain operations
(``format_device``/``audit``/``verify_line``) still work, which is what
the fleet scheduler uses to format and audit whole racks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..device.sero import (
    DeviceConfig,
    DeviceStatePatch,
    LineRecord,
    SERODevice,
    VerificationResult,
    VerifyStatus,
)
from ..device.timing import TimingModel
from ..errors import (
    ConfigurationError,
    FileExistsError_,
    FileNotFoundError_,
    FossilSlotError,
    IntegrityError,
    ReadError,
)
from ..fs.lfs import FileStat, FSConfig, SeroFS
from ..integrity.evidence import EvidenceBag, EvidenceItem
from ..integrity.fossil import FossilizedIndex
from ..integrity.selfsec import AuditLog
from ..integrity.venti import VentiStore
from ..medium.medium import MediumConfig
from .policy import resolve_vectorized


# ---------------------------------------------------------------------------
# Typed request/response objects


@dataclass(frozen=True)
class StoreConfig:
    """Everything needed to provision a :class:`TamperEvidentStore`.

    Attributes:
        total_blocks: size of the primary (file system) device.
        engine: per-store engine pin (a registered engine name); None
            resolves through the ambient execution policy at creation.
        format_scan: run the format-time defect scan before building
            the file system (populates the bad-block map, as Section 3
            requires before any line may be heated).
        archive_blocks: Venti arena size on a dedicated archive
            device; 0 disables :meth:`TamperEvidentStore.archive`.
        fossil_blocks: fossilised-index arena (same archive device);
            when > 0 every seal receipt's line hash is inserted, giving
            a trustworthy non-alterable catalogue of seals.  Must be
            used with an even ``archive_blocks``.
        audit_log: keep a self-securing instruction log (one record
            per mutating façade call, incrementally heated).
        audit_rotate_bytes: log chunk size before it is sealed.
        evidence_root: directory that holds evidence bags.
        medium_config / device_config / fs_config / timing: pass-through
            knobs for the underlying layers.
        blocks_per_row: physical geometry of the primary device.
    """

    total_blocks: int = 512
    engine: Optional[str] = None
    format_scan: bool = True
    archive_blocks: int = 0
    fossil_blocks: int = 0
    audit_log: bool = False
    audit_rotate_bytes: int = 4096
    evidence_root: str = "/evidence"
    medium_config: Optional[MediumConfig] = None
    device_config: Optional[DeviceConfig] = None
    fs_config: Optional[FSConfig] = None
    timing: Optional[TimingModel] = None
    blocks_per_row: int = 8

    def __post_init__(self) -> None:
        if self.fossil_blocks and self.archive_blocks % 2:
            raise ConfigurationError(
                "fossil arena needs an even archive_blocks to start on")


@dataclass(frozen=True)
class ObjectInfo:
    """Metadata of one stored object (the façade's stat)."""

    path: str
    ino: int
    size: int
    sealed: bool
    line_start: Optional[int]
    mtime: int

    @classmethod
    def from_stat(cls, stat: FileStat) -> "ObjectInfo":
        return cls(path=stat.path, ino=stat.ino, size=stat.size,
                   sealed=stat.heated, line_start=stat.line_start,
                   mtime=stat.mtime)


@dataclass(frozen=True)
class SealReceipt:
    """Proof of one completed write-once seal."""

    path: str
    line_start: int
    n_blocks: int
    line_hash: bytes
    timestamp: int

    @classmethod
    def from_record(cls, path: str, record: LineRecord) -> "SealReceipt":
        return cls(path=path, line_start=record.start,
                   n_blocks=record.n_blocks, line_hash=record.line_hash,
                   timestamp=record.timestamp)


@dataclass(frozen=True)
class VerifyReport:
    """One line's verification verdict, labelled for humans."""

    status: VerifyStatus
    line_start: int
    tamper_evident: bool
    label: Optional[str] = None
    stored_hash: Optional[bytes] = None
    computed_hash: Optional[bytes] = None
    tampered_cells: Tuple[int, ...] = ()

    @classmethod
    def from_result(cls, result: VerificationResult,
                    label: Optional[str] = None) -> "VerifyReport":
        return cls(status=result.status, line_start=result.start,
                   tamper_evident=result.tamper_evident, label=label,
                   stored_hash=result.stored_hash,
                   computed_hash=result.computed_hash,
                   tampered_cells=tuple(result.tampered_cells))

    @property
    def intact(self) -> bool:
        return self.status is VerifyStatus.INTACT


@dataclass(frozen=True)
class MemberVerdictRecord:
    """One fleet member's verdict on one sealed line, typed.

    A fleet audit merges every member's reports into one
    :class:`AuditReport` with ``m<i>:``-prefixed labels; these records
    keep the member index and the *member-local* report (unprefixed
    label, member-local line numbering) so consumers — the evidence
    index in particular — get typed verdicts instead of re-parsing
    report strings.
    """

    member: int
    report: VerifyReport


@dataclass
class AuditReport:
    """Outcome of a whole-store audit sweep.

    ``reports`` covers every sealed line of the primary device (and of
    the archive device when one exists), produced by the batched
    ``verify_lines`` engine; ``fs_errors``/``fs_warnings`` are filled
    by a ``deep`` audit's file-system consistency pass.  Fleet audits
    additionally fill ``member_records`` with each member's typed
    per-line verdicts (single-store audits leave it empty).
    """

    reports: List[VerifyReport] = field(default_factory=list)
    fs_errors: List[str] = field(default_factory=list)
    fs_warnings: List[str] = field(default_factory=list)
    device_seconds: float = 0.0
    deep: bool = False
    member_records: List[MemberVerdictRecord] = field(
        default_factory=list)

    def __iter__(self) -> Iterator[VerifyReport]:
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)

    @property
    def lines_verified(self) -> int:
        return len(self.reports)

    @property
    def intact_count(self) -> int:
        return sum(1 for r in self.reports if r.intact)

    @property
    def tampered(self) -> List[VerifyReport]:
        """Reports that constitute evidence of tampering."""
        return [r for r in self.reports if r.tamper_evident]

    @property
    def clean(self) -> bool:
        """No tamper evidence and no consistency errors."""
        return not self.tampered and not self.fs_errors


@dataclass(frozen=True)
class FormatReport:
    """Outcome of the format-time surface scan."""

    blocks: int
    bad_blocks: int
    fragile_blocks: int
    device_seconds: float


@dataclass(frozen=True)
class ArchiveReceipt:
    """Proof of one content-addressed archive snapshot."""

    name: str
    root_score: bytes
    bytes_archived: int
    arena_blocks_used: int


@dataclass(frozen=True)
class EvidenceExport:
    """A sealed evidence bag: exhibits, manifest and fresh verdicts."""

    case: str
    directory: str
    items: Tuple[EvidenceItem, ...]
    manifest: EvidenceItem
    intact: bool
    reports: Tuple[VerifyReport, ...]


@dataclass
class StoreStatePatch:
    """Read-only-pass state of a whole store, captured portably.

    Wraps one :class:`~repro.device.sero.DeviceStatePatch` per managed
    device (primary + optional archive).  A fleet worker running an
    audit/fsck pass — which never mutates the medium — returns this
    instead of the full member snapshot; applied to the originating
    store it reproduces the pass's side effects byte for byte.
    """

    device: "DeviceStatePatch"
    archive_device: Optional["DeviceStatePatch"] = None

    @classmethod
    def capture(cls, store: "TamperEvidentStore") -> "StoreStatePatch":
        return cls(
            device=store.device.state_patch(),
            archive_device=(store.archive_device.state_patch()
                            if store.archive_device is not None else None))

    def apply(self, store: "TamperEvidentStore") -> None:
        self.device.apply(store.device)
        if self.archive_device is not None:
            self.archive_device.apply(store.archive_device)


# ---------------------------------------------------------------------------
# The façade


class TamperEvidentStore:
    """One tamper-evident storage service over SERO hardware.

    Build one with :meth:`create` (fresh device + file system and, per
    :class:`StoreConfig`, archive/fossil arenas and an instruction
    log), or wrap existing components with :meth:`attach`.  The
    underlying layers stay reachable (:attr:`device`, :attr:`fs`,
    :attr:`venti`, :attr:`fossil`, :attr:`audit_log`) — the façade is
    a front door, not a wall.
    """

    def __init__(self, device: SERODevice, fs: Optional[SeroFS] = None, *,
                 venti: Optional[VentiStore] = None,
                 fossil: Optional[FossilizedIndex] = None,
                 audit_log: Optional[AuditLog] = None,
                 archive_device: Optional[SERODevice] = None,
                 config: Optional[StoreConfig] = None) -> None:
        self.device = device
        self.fs = fs
        self.venti = venti
        self.fossil = fossil
        self.audit_log = audit_log
        self.archive_device = archive_device
        self.config = config or StoreConfig(total_blocks=device.total_blocks)
        self._archives: Dict[str, bytes] = {}
        self._receipts: Dict[str, SealReceipt] = {}
        self._tick = 0

    # -- construction -----------------------------------------------------------

    @classmethod
    def create(cls, config: Optional[StoreConfig] = None,
               **overrides) -> "TamperEvidentStore":
        """Provision a fresh store.

        Keyword overrides are :class:`StoreConfig` fields, so the
        short forms read naturally::

            store = TamperEvidentStore.create(total_blocks=256)
            store = TamperEvidentStore.create(total_blocks=256,
                                              engine="scalar",
                                              audit_log=True)
        """
        config = dataclasses.replace(config or StoreConfig(), **overrides) \
            if overrides else (config or StoreConfig())
        device_config = config.device_config or DeviceConfig()
        if config.engine is not None:
            device_config = dataclasses.replace(
                device_config,
                span_engine=resolve_vectorized(config.engine))
        device = SERODevice.create(config.total_blocks,
                                   medium_config=config.medium_config,
                                   timing=config.timing,
                                   config=device_config,
                                   blocks_per_row=config.blocks_per_row)
        if config.format_scan:
            device.format()
        fs = SeroFS.format(device, config.fs_config)

        venti = fossil = None
        archive_device = None
        if config.archive_blocks or config.fossil_blocks:
            archive_device = SERODevice.create(
                config.archive_blocks + config.fossil_blocks,
                medium_config=config.medium_config,
                timing=config.timing,
                config=dataclasses.replace(device_config))
            if config.format_scan:
                archive_device.format()
            if config.archive_blocks:
                venti = VentiStore(archive_device, arena_start=0,
                                   arena_blocks=config.archive_blocks,
                                   batched=device_config.span_engine)
            if config.fossil_blocks:
                fossil = FossilizedIndex(archive_device,
                                         arena_start=config.archive_blocks,
                                         arena_blocks=config.fossil_blocks)

        audit_log = AuditLog(fs, rotate_bytes=config.audit_rotate_bytes) \
            if config.audit_log else None
        return cls(device, fs, venti=venti, fossil=fossil,
                   audit_log=audit_log, archive_device=archive_device,
                   config=config)

    @classmethod
    def attach(cls, device: SERODevice, fs: Optional[SeroFS] = None,
               **components) -> "TamperEvidentStore":
        """Wrap existing components (no formatting, nothing created).

        With ``fs=None`` the store is device-grain only: ``put`` and
        friends raise, but ``format_device``/``audit``/``verify_line``
        work — the mode the fleet scheduler runs whole racks in.
        """
        return cls(device, fs, **components)

    @classmethod
    def mount(cls, device: SERODevice,
              fs_config: Optional[FSConfig] = None,
              **components) -> "TamperEvidentStore":
        """Reopen the file system already on ``device``."""
        return cls(device, SeroFS.mount(device, fs_config), **components)

    # -- plumbing ---------------------------------------------------------------

    def adopt_state(self, other: "TamperEvidentStore") -> None:
        """Absorb ``other``'s state *in place*.

        ``other`` is a state-equivalent copy of this store that lived
        elsewhere — typically the snapshot a fleet process worker
        mutated and shipped home.  Every object identity a caller may
        hold (the store, ``.device``, ``.device.medium``, ``.fs``,
        ``.venti``, ...) is preserved; only the state moves, so the
        original graph ends the pass exactly as if it had run the work
        itself.

        Every component absorbs the whole ``__dict__`` of its
        counterpart and then re-anchors the references that must keep
        pointing inside *this* graph — so a field added to any layer
        later is picked up automatically rather than silently dropped
        by a hand-maintained copy list.
        """
        pairs = [(self.device, other.device)]
        if self.archive_device is not None and \
                other.archive_device is not None:
            pairs.append((self.archive_device, other.archive_device))
        for mine, new in pairs:
            geometry = mine.geometry  # the identity the graph keeps
            mine.medium.__dict__.clear()
            mine.medium.__dict__.update(new.medium.__dict__)
            mine.medium.geometry = geometry
            mine.account.__dict__.clear()
            mine.account.__dict__.update(new.account.__dict__)
            scanner_anchors = {"geometry": geometry,
                               "timing": mine.timing,
                               "account": mine.account}
            mine.scanner.__dict__.clear()
            mine.scanner.__dict__.update(new.scanner.__dict__)
            mine.scanner.__dict__.update(scanner_anchors)
            device_anchors = {"medium": mine.medium,
                              "geometry": geometry,
                              "timing": mine.timing,
                              "account": mine.account,
                              "scanner": mine.scanner,
                              "bitops": mine.bitops}
            mine.__dict__.clear()
            mine.__dict__.update(new.__dict__)
            mine.__dict__.update(device_anchors)
        for attr, anchor in (("fs", "device"), ("venti", "device"),
                             ("fossil", "device"), ("audit_log", "fs")):
            mine_component = getattr(self, attr)
            new_component = getattr(other, attr)
            if mine_component is None or new_component is None:
                continue
            anchor_obj = getattr(mine_component, anchor)  # original ref
            mine_component.__dict__.clear()
            mine_component.__dict__.update(new_component.__dict__)
            setattr(mine_component, anchor, anchor_obj)
        store_anchors = {"device": self.device, "fs": self.fs,
                         "venti": self.venti, "fossil": self.fossil,
                         "audit_log": self.audit_log,
                         "archive_device": self.archive_device}
        self.__dict__.clear()
        self.__dict__.update(other.__dict__)
        self.__dict__.update(store_anchors)

    def _require_fs(self) -> SeroFS:
        if self.fs is None:
            raise ConfigurationError(
                "this TamperEvidentStore wraps a bare device; object-grain "
                "operations need a file system (use create(), mount(), or "
                "attach(device, fs))")
        return self.fs

    def _record(self, op: str, *args: str) -> None:
        """Self-securing discipline: log the instruction *before*
        executing it (the log must not trust the host afterwards)."""
        self._tick += 1
        if self.audit_log is not None:
            line = " ".join((op,) + args).encode("utf-8")
            self.audit_log.log(self._tick, line)

    @property
    def engine(self) -> str:
        """Name of the engine the device layer runs on."""
        return "vectorized" if self.device.config.span_engine else "scalar"

    # -- object grain -----------------------------------------------------------

    def put(self, path: str, data: bytes = b"", *,
            overwrite: bool = False,
            make_parents: bool = False) -> ObjectInfo:
        """Store (or with ``overwrite`` replace) one WMRM object.

        ``make_parents`` creates the missing directory chain first
        (``mkdir -p``), the grain service callers like the HTTP
        gateway need — a tenant writing ``/invoices/2026/q3`` should
        not have to issue three mkdirs over the wire.
        """
        fs = self._require_fs()
        if make_parents:
            prefix = ""
            for part in path.strip("/").split("/")[:-1]:
                prefix = f"{prefix}/{part}"
                try:
                    fs.mkdir(prefix)
                except FileExistsError_:
                    pass
        self._record("put", path, str(len(data)))
        try:
            stat = fs.create(path, data)
        except FileExistsError_:
            if not overwrite:
                raise
            stat = fs.write(path, data)
        return ObjectInfo.from_stat(stat)

    def get(self, path: str) -> bytes:
        """Read one object (sealed objects read at magnetic speed)."""
        return self._require_fs().read(path)

    def delete(self, path: str) -> None:
        """Remove an unsealed object (sealing makes objects immutable)."""
        self._record("delete", path)
        self._require_fs().unlink(path)

    def info(self, path: str) -> ObjectInfo:
        """Metadata of one object."""
        return ObjectInfo.from_stat(self._require_fs().stat(path))

    def list(self, path: str = "/") -> List[str]:
        """Names inside a directory."""
        return self._require_fs().listdir(path)

    # -- the write-once operation ------------------------------------------------

    def seal(self, path: str, *,
             timestamp: Optional[int] = None) -> SealReceipt:
        """Make one object tamper-evident (cluster + heat its line)."""
        fs = self._require_fs()
        self._record("seal", path)
        record = fs.heat_file(path, timestamp=timestamp)
        receipt = SealReceipt.from_record(path, record)
        self._receipts[path] = receipt
        if self.fossil is not None:
            try:
                self.fossil.insert(record.line_hash,
                                   timestamp=record.timestamp)
            except FossilSlotError:
                pass  # identical line content re-sealed: already catalogued
        return receipt

    def seal_many(self, paths: Sequence[str], *,
                  timestamp: Optional[int] = None) -> List[SealReceipt]:
        """Seal a batch of objects.

        Each line's protocol (span mrs run, bulk ews, span ers
        read-back) runs on the batched engines; the per-line iteration
        is the protocol's own grain — a heat is atomic per line.  When
        the *pure* SHA-256 backend is active, the batch's line hashes
        additionally run through :func:`~repro.crypto.hashutil.
        line_hash_many` lanes (:meth:`~repro.fs.lfs.SeroFS.heat_files`)
        — bit-identical digests, one set of compression rounds per
        group of equal-length lines.  The hashlib backend keeps the
        plain loop: hashlib is already C, lanes would only add
        overhead.
        """
        from ..crypto.sha256 import get_backend

        paths = list(paths)
        if len(paths) <= 1 or get_backend() != "pure":
            return [self.seal(path, timestamp=timestamp)
                    for path in paths]
        fs = self._require_fs()
        receipts: List[SealReceipt] = []

        def on_heated(path: str, record) -> None:
            receipt = SealReceipt.from_record(path, record)
            self._receipts[path] = receipt
            if self.fossil is not None:
                try:
                    self.fossil.insert(record.line_hash,
                                       timestamp=record.timestamp)
                except FossilSlotError:
                    pass  # identical line content re-sealed
            receipts.append(receipt)

        fs.heat_files(
            paths, timestamp=timestamp,
            before_each=lambda path: self._record("seal", path),
            on_heated=on_heated)
        return receipts

    def put_sealed(self, path: str, data: bytes, *,
                   timestamp: Optional[int] = None) -> SealReceipt:
        """Store and immediately seal (the evidence-bag idiom)."""
        self.put(path, data)
        return self.seal(path, timestamp=timestamp)

    @property
    def receipts(self) -> Dict[str, SealReceipt]:
        """Seal receipts issued through this façade, by path."""
        return dict(self._receipts)

    # -- verification ------------------------------------------------------------

    def verify(self, path: str) -> VerifyReport:
        """Verify one sealed object against its stored line hash."""
        result = self._require_fs().verify_file(path)
        return VerifyReport.from_result(result, label=path)

    def verify_line(self, start: int) -> VerifyReport:
        """Device-grain verify of the line starting at ``start``."""
        return VerifyReport.from_result(self.device.verify_line(start))

    def audit(self, *, deep: bool = False) -> AuditReport:
        """Verify every sealed line in one batched sweep.

        The device's :meth:`~repro.device.sero.SERODevice.verify_lines`
        reads all lines' electrical regions in a single bulk erb gather
        with shared retry waves — the fleet-scale audit hot path.  With
        ``deep`` the file system's consistency check (imap, block
        ownership, directory tree) runs too.
        """
        report = AuditReport(deep=deep)
        labels = self._line_labels()
        before = self.device.account.elapsed
        results = self.device.verify_all()
        report.device_seconds += self.device.account.elapsed - before
        report.reports.extend(
            VerifyReport.from_result(res, label=labels.get(res.start))
            for res in results)
        if self.archive_device is not None:
            before = self.archive_device.account.elapsed
            for res in self.archive_device.verify_all():
                report.reports.append(VerifyReport.from_result(
                    res, label=f"archive:{res.start}"))
            report.device_seconds += \
                self.archive_device.account.elapsed - before
        if deep and self.fs is not None:
            from ..fs.fsck import fsck

            fsck_report = fsck(self.fs, verify_lines=False)
            report.fs_errors.extend(fsck_report.errors)
            report.fs_warnings.extend(fsck_report.warnings)
        return report

    def _line_labels(self) -> Dict[int, str]:
        """Best-effort human labels for sealed lines: receipt paths
        where this façade issued the seal, inode name hints otherwise.
        Lines covered by a receipt are labelled without touching the
        device — the inode read (a real magnetic block read that
        charges the scanner) only happens for lines sealed below the
        façade."""
        labels: Dict[int, str] = {
            receipt.line_start: path
            for path, receipt in self._receipts.items()}
        if self.fs is not None:
            for ino, start in self.fs.line_of_ino.items():
                if start in labels:
                    continue
                try:
                    hint = self.fs._read_inode(ino).name_hint
                except (FileNotFoundError_, ReadError):
                    hint = "?"
                labels[start] = f"{ino}:{hint}"
        return labels

    # -- forensics ----------------------------------------------------------------

    def export_evidence(self, case: str,
                        exhibits: Mapping[str, bytes], *,
                        timestamp: Optional[int] = None) -> EvidenceExport:
        """Seal ``exhibits`` in place as a closed evidence bag.

        Each exhibit is written and heated immediately (no imaging
        copy), then a heated manifest binds the item list together.
        """
        fs = self._require_fs()
        self._record("export_evidence", case, str(len(exhibits)))
        try:
            fs.mkdir(self.config.evidence_root)
        except FileExistsError_:
            pass
        directory = f"{self.config.evidence_root}/{case}"
        bag = EvidenceBag(fs, directory)
        for name, data in exhibits.items():
            bag.add(name, data, timestamp=timestamp)
        manifest = bag.close(timestamp=timestamp)
        verdicts = bag.audit()
        reports = tuple(
            VerifyReport.from_result(result, label=f"{directory}/{name}")
            for name, result in verdicts.items())
        intact = all(r.status is VerifyStatus.INTACT
                     for r in verdicts.values())
        return EvidenceExport(case=case, directory=directory,
                              items=tuple(bag.items), manifest=manifest,
                              intact=intact, reports=reports)

    # -- content-addressed archive --------------------------------------------------

    def _require_venti(self) -> VentiStore:
        if self.venti is None:
            raise ConfigurationError(
                "no archive arena configured; create the store with "
                "StoreConfig(archive_blocks=...)")
        return self.venti

    def archive(self, name: str, data: bytes, *,
                timestamp: int = 0) -> ArchiveReceipt:
        """Snapshot ``data`` as a hash tree and seal its root."""
        venti = self._require_venti()
        self._record("archive", name, str(len(data)))
        before = venti.blocks_used()
        root = venti.snapshot(name, data, timestamp=timestamp)
        self._archives[name] = root
        if self.fossil is not None:
            try:
                self.fossil.insert(root, timestamp=timestamp)
            except FossilSlotError:
                pass  # identical content re-archived
        return ArchiveReceipt(name=name, root_score=root,
                              bytes_archived=len(data),
                              arena_blocks_used=venti.blocks_used() - before)

    def retrieve(self, name: str) -> bytes:
        """Read an archived snapshot back, re-verifying every node."""
        venti = self._require_venti()
        root = self._archives.get(name)
        if root is None:
            raise IntegrityError(f"no archive named {name!r}")
        return venti.read_stream(root)

    @property
    def archives(self) -> Dict[str, bytes]:
        """Archived snapshot names mapped to their root scores."""
        return dict(self._archives)

    # -- instruction log --------------------------------------------------------------

    def history(self) -> List[Tuple[int, bytes]]:
        """The self-securing instruction log (empty when disabled)."""
        if self.audit_log is None:
            return []
        return self.audit_log.history()

    def seal_log(self) -> Optional[str]:
        """Rotate and heat the instruction log's active tail."""
        if self.audit_log is None:
            raise ConfigurationError(
                "no instruction log configured; create the store with "
                "StoreConfig(audit_log=True)")
        return self.audit_log.rotate(timestamp=self._tick)

    # -- device grain -----------------------------------------------------------------

    def format_device(self) -> FormatReport:
        """Run the format-time surface scan (bad-block discovery)."""
        before = self.device.account.elapsed
        self.device.format()
        return FormatReport(
            blocks=self.device.total_blocks,
            bad_blocks=len(self.device.bad_blocks),
            fragile_blocks=len(self.device.fragile_blocks),
            device_seconds=self.device.account.elapsed - before)

    def capacity(self) -> Dict[str, int]:
        """Capacity accounting across every managed device/arena."""
        out = dict(self.device.capacity_report())
        if self.venti is not None:
            out["archive_blocks_used"] = self.venti.blocks_used()
            out["archive_blocks_total"] = self.venti.arena_blocks
        if self.fossil is not None:
            out["fossil_nodes"] = self.fossil.node_count
            out["fossil_records"] = self.fossil.records
        return out

    def describe(self) -> Dict[str, object]:
        """Inspectable summary: engine, components, usage."""
        return {
            "engine": self.engine,
            "total_blocks": self.device.total_blocks,
            "sealed_lines": len(self.device.heated_lines),
            "filesystem": self.fs is not None,
            "archive": self.venti is not None,
            "fossil_index": self.fossil is not None,
            "instruction_log": self.audit_log is not None,
            "receipts": len(self._receipts),
        }
