"""Cryptographic and coding primitives (all implemented from scratch).

* :mod:`repro.crypto.sha256` — FIPS 180-4 SHA-256 (pure Python, with a
  hashlib fast path).
* :mod:`repro.crypto.crc` — CRC-32 / CRC-16-CCITT for the sector codec.
* :mod:`repro.crypto.manchester` — the paper's two-dots-per-bit
  write-once cell coding (``HU``/``UH``; ``HH`` = tamper evidence).
* :mod:`repro.crypto.wom` — Rivest–Shamir write-once-memory code, the
  "more efficient coding" alternative of Section 8.
* :mod:`repro.crypto.hashutil` — the line-hash construction binding
  block data to physical addresses.
"""

from .crc import crc16_ccitt, crc32
from .hashutil import HASH_SIZE, LINE_HASH_DOMAIN, line_hash
from .manchester import (
    CellState,
    DecodeResult,
    bits_to_bytes,
    bytes_to_bits,
    classify_cell,
    decode_bytes,
    decode_pattern,
    encode_bits,
    encode_bytes,
)
from .sha256 import SHA256, sha256_digest, sha256_hexdigest, set_backend

__all__ = [
    "SHA256",
    "sha256_digest",
    "sha256_hexdigest",
    "set_backend",
    "crc32",
    "crc16_ccitt",
    "CellState",
    "DecodeResult",
    "classify_cell",
    "encode_bits",
    "encode_bytes",
    "decode_pattern",
    "decode_bytes",
    "bytes_to_bits",
    "bits_to_bytes",
    "line_hash",
    "LINE_HASH_DOMAIN",
    "HASH_SIZE",
]
