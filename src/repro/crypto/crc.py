"""Cyclic redundancy checks used by the sector format.

The paper assumes ~15% sector overhead "for the sector header, error
correction, and cyclic redundancy check" (Section 3, following Pozidis
et al.).  We implement the two CRCs used by the sector codec:

* CRC-32 (IEEE 802.3 reflected polynomial) protecting the sector
  payload, and
* CRC-16-CCITT protecting the small sector header.

Both are table-driven and implemented from scratch.  The hot path is
the 536-byte frame check behind every sector read/write, so CRC-32
uses the *slicing-by-eight* construction (Intel's chunked multi-table
variant): eight 256-entry tables, built with vectorized numpy
polynomial algebra, let the main loop consume eight input bytes per
iteration instead of one.  CRC-16 uses the analogous slicing-by-two.
The classic byte-at-a-time loops remain as the reference
implementation; each call resolves which path runs through the lazy
execution policy (:func:`repro.api.resolve_vectorized` — explicit pin
> ``repro.engine(...)`` context > policy > ``REPRO_SPAN_ENGINE``, read
at call time, so flipping the switch after import works).  Setting the
module flag ``USE_VECTORIZED`` to True/False pins this module
explicitly; ``None`` (the default) defers to the policy.
"""

from __future__ import annotations

import struct
from typing import List, Optional

import numpy as np

from ..api.policy import resolve_vectorized

#: Tri-state module pin: True/False force the fast/reference paths,
#: None defers to the execution policy (resolved lazily per call).
USE_VECTORIZED: Optional[bool] = None


def _use_vectorized() -> bool:
    flag = USE_VECTORIZED
    return resolve_vectorized() if flag is None else bool(flag)

_CRC32_POLY = 0xEDB88320  # reflected 0x04C11DB7


def _build_crc32_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC32_POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_CRC32_TABLE = _build_crc32_table()


def _build_crc32_slices(n: int = 8) -> List[List[int]]:
    """Slicing tables: ``T[k][b]`` advances byte ``b`` past ``k`` extra
    zero bytes, so eight lookups process an eight-byte chunk at once.
    Built with numpy: each table is the previous one advanced by one
    byte (``T[k] = (T[k-1] >> 8) ^ T0[T[k-1] & 0xFF]``), vectorized
    over all 256 entries.
    """
    base = np.asarray(_CRC32_TABLE, dtype=np.uint32)
    tables = [base]
    for _ in range(1, n):
        prev = tables[-1]
        tables.append((prev >> 8) ^ base[prev & 0xFF])
    return [t.tolist() for t in tables]


(_CRC32_T0, _CRC32_T1, _CRC32_T2, _CRC32_T3,
 _CRC32_T4, _CRC32_T5, _CRC32_T6, _CRC32_T7) = _build_crc32_slices()


def _crc32_scalar(data: bytes, crc: int) -> int:
    """Byte-at-a-time reference implementation (pre-inverted state)."""
    for byte in data:
        crc = (crc >> 8) ^ _CRC32_TABLE[(crc ^ byte) & 0xFF]
    return crc


_U32_PAIR = struct.Struct("<II")

#: Cached per-length position tables for the fully vectorized path.
#: For a message of n bytes, entry j of the cached (n, 256) table maps
#: byte value b at offset j to its contribution A^(n-1-j)(T0[b]) to
#: the final register, where A is the one-byte zero-advance operator.
#: CRC is GF(2)-linear, so the checksum is just the XOR-reduce of one
#: table gather — two numpy ops per call.  Sector frames come in a
#: handful of fixed sizes, so the cache stays tiny.
_CRC32_POS_TABLES: dict = {}
_POS_TABLE_MIN_BYTES = 64
#: Above this length the (n, 256) table costs more to build and hold
#: than the slicing-by-eight loop costs to run; long one-off inputs
#: (e.g. whole-checkpoint bodies) fall through to slicing instead.
_POS_TABLE_MAX_BYTES = 4096
_POS_TABLE_MAX_ENTRIES = 32


def _crc32_pos_table(n: int):
    """(flat position table, flat gather offsets) for length ``n``."""
    entry = _CRC32_POS_TABLES.get(n)
    if entry is None:
        if len(_CRC32_POS_TABLES) >= _POS_TABLE_MAX_ENTRIES:
            return None
        base = np.asarray(_CRC32_TABLE, dtype=np.uint32)
        rows = np.empty((n, 256), dtype=np.uint32)
        rows[0] = base
        for k in range(1, n):
            prev = rows[k - 1]
            rows[k] = (prev >> 8) ^ base[prev & 0xFF]
        table = np.ascontiguousarray(rows[::-1])
        entry = (table.reshape(-1), np.arange(n, dtype=np.intp) * 256, table)
        _CRC32_POS_TABLES[n] = entry
    return entry


def crc32(data: bytes, crc: int = 0) -> int:
    """CRC-32/IEEE of ``data``; ``crc`` seeds continuation."""
    crc ^= 0xFFFFFFFF
    if not _use_vectorized():
        return _crc32_scalar(data, crc) ^ 0xFFFFFFFF
    n = len(data)
    if _POS_TABLE_MIN_BYTES <= n <= _POS_TABLE_MAX_BYTES:
        entry = _crc32_pos_table(n)
        if entry is not None:
            flat, offsets, table = entry
            arr = np.frombuffer(data, dtype=np.uint8)
            acc = int(np.bitwise_xor.reduce(
                flat.take(offsets + arr)))
            # fold the seeded register through the n-byte advance:
            # register byte i still has n-i zero bytes to pass, i.e.
            # position row i of the reversed table
            for i in range(4):
                acc ^= int(table[i, (crc >> (8 * i)) & 0xFF])
            return acc ^ 0xFFFFFFFF
    n8 = len(data) - len(data) % 8
    t0, t1, t2, t3 = _CRC32_T0, _CRC32_T1, _CRC32_T2, _CRC32_T3
    t4, t5, t6, t7 = _CRC32_T4, _CRC32_T5, _CRC32_T6, _CRC32_T7
    for lo, hi in _U32_PAIR.iter_unpack(data[:n8]):
        crc ^= lo
        crc = (t7[crc & 0xFF]
               ^ t6[(crc >> 8) & 0xFF]
               ^ t5[(crc >> 16) & 0xFF]
               ^ t4[crc >> 24]
               ^ t3[hi & 0xFF]
               ^ t2[(hi >> 8) & 0xFF]
               ^ t1[(hi >> 16) & 0xFF]
               ^ t0[hi >> 24])
    return _crc32_scalar(data[n8:], crc) ^ 0xFFFFFFFF


_CRC16_POLY = 0x1021  # CCITT


def _build_crc16_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_CRC16_TABLE = _build_crc16_table()


def _build_crc16_slice() -> List[int]:
    """Slicing-by-two companion table: ``T1[b]`` is ``T0[b]`` advanced
    past one extra zero byte (numpy-vectorized over all entries)."""
    base = np.asarray(_CRC16_TABLE, dtype=np.uint32)
    t1 = ((base << 8) & 0xFFFF) ^ base[base >> 8]
    return t1.tolist()


_CRC16_T1 = _build_crc16_slice()


def _crc16_scalar(data: bytes, crc: int) -> int:
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def crc16_ccitt(data: bytes, crc: int = 0xFFFF) -> int:
    """CRC-16-CCITT (init 0xFFFF) of ``data``."""
    if not _use_vectorized():
        return _crc16_scalar(data, crc)
    n2 = len(data) - len(data) % 2
    for i in range(0, n2, 2):
        crc = (_CRC16_T1[((crc >> 8) ^ data[i]) & 0xFF]
               ^ _CRC16_TABLE[((crc & 0xFF) ^ data[i + 1]) & 0xFF])
    return _crc16_scalar(data[n2:], crc)
