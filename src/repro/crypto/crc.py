"""Cyclic redundancy checks used by the sector format.

The paper assumes ~15% sector overhead "for the sector header, error
correction, and cyclic redundancy check" (Section 3, following Pozidis
et al.).  We implement the two CRCs used by the sector codec:

* CRC-32 (IEEE 802.3 reflected polynomial) protecting the sector
  payload, and
* CRC-16-CCITT protecting the small sector header.

Both are table-driven and implemented from scratch.
"""

from __future__ import annotations

from typing import List

_CRC32_POLY = 0xEDB88320  # reflected 0x04C11DB7


def _build_crc32_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC32_POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_CRC32_TABLE = _build_crc32_table()


def crc32(data: bytes, crc: int = 0) -> int:
    """CRC-32/IEEE of ``data``; ``crc`` seeds continuation."""
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC32_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


_CRC16_POLY = 0x1021  # CCITT


def _build_crc16_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_CRC16_TABLE = _build_crc16_table()


def crc16_ccitt(data: bytes, crc: int = 0xFFFF) -> int:
    """CRC-16-CCITT (init 0xFFFF) of ``data``."""
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc
