"""Line-hash computation for the heat operation.

Section 3 ("Heat a line") prescribes hashing "the blocks and their
addresses just read"; Section 5.2 relies on the physical addresses
being part of the hash to defeat copy-masking ("a copy can always be
distinguished from an original").  This module fixes the exact byte
layout so device and verifier agree:

``H = SHA-256( DOMAIN || u64(pba_0) || block_0 || u64(pba_1) || ... )``

where ``pba_i`` are the *physical* block addresses (big-endian 64-bit)
of the data blocks of the line (block 0 — the hash block itself — is
excluded) and ``DOMAIN`` is a fixed tag preventing cross-protocol
collisions.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

from .sha256 import DIGEST_SIZE, sha256_iter, sha256_many

LINE_HASH_DOMAIN = b"sero-line-hash-v1"
"""Domain-separation prefix for line hashes."""

HASH_SIZE = DIGEST_SIZE
"""Line-hash length in bytes (SHA-256)."""


def line_hash(
    addresses: Sequence[int],
    blocks: Sequence[bytes],
    include_addresses: bool = True,
) -> bytes:
    """Hash of a line's data blocks bound to their physical addresses.

    Args:
        addresses: physical block addresses of the data blocks.
        blocks: the corresponding block payloads.
        include_addresses: when False the addresses are omitted — this
            deliberately weakened mode exists only so the security
            benchmarks can demonstrate that copy-masking succeeds
            without address binding (DESIGN.md ablation).

    Returns:
        The 32-byte SHA-256 digest.
    """
    if len(addresses) != len(blocks):
        raise ValueError("addresses and blocks must have equal length")

    def chunks():
        yield LINE_HASH_DOMAIN
        for address, block in zip(addresses, blocks):
            if include_addresses:
                if address < 0:
                    raise ValueError("physical block address must be >= 0")
                yield struct.pack(">Q", address)
            yield bytes(block)

    return sha256_iter(chunks())


def line_hash_many(
    lines: Iterable[Tuple[Sequence[int], Sequence[bytes]]],
    include_addresses: bool = True,
) -> List[bytes]:
    """Line hashes for many lines in one batched digest pass.

    Semantically ``[line_hash(a, b) for a, b in lines]`` — the byte
    layout per line is exactly :func:`line_hash`'s — but the digests
    are computed through :func:`~repro.crypto.sha256.sha256_many`, so
    on the pure backend all equal-length lines (the common case: a
    fleet's lines share one geometry) compress array-parallel instead
    of one at a time.
    """
    messages: List[bytes] = []
    for addresses, blocks in lines:
        if len(addresses) != len(blocks):
            raise ValueError("addresses and blocks must have equal length")
        parts: List[bytes] = [LINE_HASH_DOMAIN]
        for address, block in zip(addresses, blocks):
            if include_addresses:
                if address < 0:
                    raise ValueError("physical block address must be >= 0")
                parts.append(struct.pack(">Q", address))
            parts.append(bytes(block))
        messages.append(b"".join(parts))
    return sha256_many(messages)
