"""Manchester cell coding for electrically written (heated) data.

Following Molnar et al. (transplanted from PROM to magnetic dots by the
paper), each logical bit occupies a *cell* of two physical dots whose
only write-once property is "heated" (``H``) or "unheated" (``U``):

====== =================== =========================================
cell    meaning             notes
====== =================== =========================================
``UU``  unused              every cell starts out unheated
``HU``  logical 0           (Fig 3 caption)
``UH``  logical 1           (Fig 3 caption)
``HH``  evidence of tamper  the only reachable state from 0 or 1
====== =================== =========================================

Because heating is irreversible, the only way to alter a written cell
is to heat its other dot, which produces the illegal ``HH``.  The
encoding also guarantees that a heated dot has at most one heated
neighbour inside a cell, which spreads heat-damage risk (Section 3).

The codec below works on sequences of booleans where ``True`` means
*heated*.  Decoding classifies every cell and never silently accepts
an illegal pattern.

The byte-level entry points (:func:`encode_bytes`, :func:`decode_bytes`,
:func:`bytes_to_bits`, :func:`bits_to_bytes`) are vectorized with
numpy (``unpackbits``/``packbits`` plus strided cell classification);
each call resolves which path runs through the lazy execution policy
(:func:`repro.api.resolve_vectorized` — explicit pin >
``repro.engine(...)`` context > policy > ``REPRO_SPAN_ENGINE``, read
at call time, so flipping the switch after import works).  Setting the
module flag ``USE_VECTORIZED`` to True/False pins this module
explicitly; ``None`` (the default) defers to the policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..api.policy import resolve_vectorized
from ..errors import InvalidCellError

#: Tri-state module pin: True/False force the numpy/reference codec,
#: None defers to the execution policy (resolved lazily per call).
USE_VECTORIZED: Optional[bool] = None


def _use_vectorized() -> bool:
    flag = USE_VECTORIZED
    return resolve_vectorized() if flag is None else bool(flag)


class CellState(enum.Enum):
    """Decoded state of one two-dot Manchester cell."""

    UNUSED = "UU"
    ZERO = "HU"
    ONE = "UH"
    TAMPERED = "HH"


#: Number of physical dots used per logical bit.
CELL_SIZE = 2

#: Expansion factor of the code (physical bits per logical bit).
EXPANSION = 2.0


def encode_bits(bits: Sequence[int]) -> List[bool]:
    """Encode logical ``bits`` (0/1) into a heated-dot pattern.

    Returns a list twice as long where ``True`` marks a dot that must
    be heated.  Logical 0 -> ``HU`` (heat the first dot of the cell),
    logical 1 -> ``UH`` (heat the second dot).
    """
    pattern: List[bool] = []
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"logical bit must be 0 or 1, got {bit!r}")
        if bit == 0:
            pattern.extend((True, False))
        else:
            pattern.extend((False, True))
    return pattern


def encode_bytes(data: bytes) -> Sequence[bool]:
    """Encode ``data`` MSB-first into a heated-dot pattern.

    The vectorized path returns a bool ndarray, the scalar reference a
    list; both behave identically under ``len``/indexing/iteration.
    """
    if not _use_vectorized():
        return encode_bits(bytes_to_bits(data))
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    pattern = np.zeros(bits.size * CELL_SIZE, dtype=bool)
    pattern[0::2] = bits == 0
    pattern[1::2] = bits == 1
    return pattern


def classify_cell(first: bool, second: bool) -> CellState:
    """Classify one cell given the heated flags of its two dots."""
    if first and second:
        return CellState.TAMPERED
    if first:
        return CellState.ZERO
    if second:
        return CellState.ONE
    return CellState.UNUSED


@dataclass
class DecodeResult:
    """Outcome of decoding a heated-dot pattern.

    Attributes:
        bits: decoded logical bits; tampered or unused cells contribute
            ``None`` placeholders so positions stay aligned.
        tampered_cells: indices of cells decoding to ``HH``.
        unused_cells: indices of cells decoding to ``UU``.
    """

    bits: List  # List[Optional[int]]
    tampered_cells: List[int]
    unused_cells: List[int]

    @property
    def is_tampered(self) -> bool:
        """True when at least one cell shows the illegal ``HH``."""
        return bool(self.tampered_cells)

    @property
    def is_complete(self) -> bool:
        """True when every cell holds a valid logical 0 or 1."""
        return not self.tampered_cells and not self.unused_cells

    def to_bytes(self) -> bytes:
        """Pack the decoded bits into bytes (requires completeness)."""
        if not self.is_complete:
            raise InvalidCellError(
                "cannot pack an incomplete/tampered Manchester pattern: "
                f"{len(self.tampered_cells)} tampered, "
                f"{len(self.unused_cells)} unused cells"
            )
        return bits_to_bytes(self.bits)


def decode_pattern(pattern: Sequence[bool]) -> DecodeResult:
    """Decode a heated-dot ``pattern`` into logical bits.

    The pattern length must be even (whole cells).
    """
    if len(pattern) % CELL_SIZE:
        raise ValueError("Manchester pattern length must be even")
    if not _use_vectorized():
        return _decode_pattern_scalar(pattern)
    arr = np.asarray(pattern, dtype=bool)
    first = arr[0::2]
    second = arr[1::2]
    tampered = np.flatnonzero(first & second)
    unused = np.flatnonzero(~first & ~second)
    # 1 where ONE, 0 where ZERO, placeholder elsewhere
    bits: List = second.astype(np.int64).tolist()
    for index in tampered:
        bits[index] = None
    for index in unused:
        bits[index] = None
    return DecodeResult(bits=bits, tampered_cells=tampered.tolist(),
                        unused_cells=unused.tolist())


def _decode_pattern_scalar(pattern: Sequence[bool]) -> DecodeResult:
    """Per-cell reference decoder."""
    bits: List = []
    tampered: List[int] = []
    unused: List[int] = []
    for index in range(0, len(pattern), CELL_SIZE):
        state = classify_cell(pattern[index], pattern[index + 1])
        if state is CellState.ZERO:
            bits.append(0)
        elif state is CellState.ONE:
            bits.append(1)
        elif state is CellState.TAMPERED:
            bits.append(None)
            tampered.append(index // CELL_SIZE)
        else:
            bits.append(None)
            unused.append(index // CELL_SIZE)
    return DecodeResult(bits=bits, tampered_cells=tampered, unused_cells=unused)


def decode_bytes(pattern: Sequence[bool]) -> bytes:
    """Decode a pattern straight to bytes, raising on tamper/unused."""
    if not _use_vectorized():
        return _decode_pattern_scalar(pattern).to_bytes()
    arr = np.asarray(pattern, dtype=bool)
    if arr.size % CELL_SIZE:
        raise ValueError("Manchester pattern length must be even")
    first = arr[0::2]
    second = arr[1::2]
    if (first == second).any():
        # tampered (HH) or unused (UU) cells: fall back for the
        # detailed error message
        return decode_pattern(pattern).to_bytes()
    # every cell holds exactly one heated dot: the bit is dot two
    return bits_to_bytes(second)


# -- bit packing helpers -----------------------------------------------------


def bytes_to_bits(data: bytes) -> List[int]:
    """Unpack bytes into a list of bits, most significant bit first."""
    if _use_vectorized():
        return np.unpackbits(np.frombuffer(data, dtype=np.uint8)).tolist()
    bits: List[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Pack an MSB-first bit sequence (multiple of 8 long) into bytes."""
    if len(bits) % 8:
        raise ValueError("bit sequence length must be a multiple of 8")
    if _use_vectorized():
        arr = np.asarray(bits, dtype=np.uint8) & 1
        return np.packbits(arr).tobytes()
    out = bytearray()
    for index in range(0, len(bits), 8):
        byte = 0
        for bit in bits[index:index + 8]:
            byte = (byte << 1) | (bit & 1)
        out.append(byte)
    return bytes(out)
