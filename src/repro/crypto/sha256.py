"""Pure-Python SHA-256 (FIPS 180-4).

The paper's heat-line operation stores "a secure hash (e.g. SHA-256)"
of a line in the write-once block.  The reproduction implements the
hash from scratch so the whole stack is self-contained; the
implementation is verified against :mod:`hashlib` in the test suite.
The rest of the library goes through :func:`sha256_digest`, which
resolves its backend through the execution policy
(:func:`repro.api.resolve_sha256_backend`): a module pin via
:func:`set_backend` wins, then ``repro.engine(sha256="pure")``
contexts, then :attr:`~repro.api.ExecutionPolicy.sha256_backend`, then
the ``REPRO_SHA256_BACKEND`` environment variable, defaulting to the
(~100x faster) ``hashlib`` backend.  A pinned pure backend is thereby
an explicit, inspectable choice (``repro.api.describe_policy()``) —
it is the first fleet-scale ``heat_line`` throughput bottleneck when
active.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Optional, Union

from ..api.policy import resolve_sha256_backend

_BytesLike = Union[bytes, bytearray, memoryview]

# First 32 bits of the fractional parts of the cube roots of the first
# 64 prime numbers (FIPS 180-4 section 4.2.2).
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

# First 32 bits of the fractional parts of the square roots of the
# first 8 primes (initial hash value, FIPS 180-4 section 5.3.3).
_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_MASK32 = 0xFFFFFFFF

DIGEST_SIZE = 32
"""SHA-256 digest length in bytes."""

DIGEST_BITS = DIGEST_SIZE * 8
"""SHA-256 digest length in bits (256 — half a hash block's 512 cells
after Manchester encoding)."""


def _rotr(x: int, n: int) -> int:
    """Rotate the 32-bit value ``x`` right by ``n`` bits."""
    return ((x >> n) | (x << (32 - n))) & _MASK32


def _compress(state: list, block: bytes) -> None:
    """Apply the SHA-256 compression function to one 64-byte block."""
    w = list(struct.unpack(">16I", block))
    for t in range(16, 64):
        s0 = _rotr(w[t - 15], 7) ^ _rotr(w[t - 15], 18) ^ (w[t - 15] >> 3)
        s1 = _rotr(w[t - 2], 17) ^ _rotr(w[t - 2], 19) ^ (w[t - 2] >> 10)
        w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK32)

    a, b, c, d, e, f, g, h = state
    for t in range(64):
        big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        t1 = (h + big_s1 + ch + _K[t] + w[t]) & _MASK32
        big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        t2 = (big_s0 + maj) & _MASK32
        h, g, f, e = g, f, e, (d + t1) & _MASK32
        d, c, b, a = c, b, a, (t1 + t2) & _MASK32

    state[0] = (state[0] + a) & _MASK32
    state[1] = (state[1] + b) & _MASK32
    state[2] = (state[2] + c) & _MASK32
    state[3] = (state[3] + d) & _MASK32
    state[4] = (state[4] + e) & _MASK32
    state[5] = (state[5] + f) & _MASK32
    state[6] = (state[6] + g) & _MASK32
    state[7] = (state[7] + h) & _MASK32


class SHA256:
    """Incremental pure-Python SHA-256, mirroring the hashlib API."""

    digest_size = DIGEST_SIZE
    block_size = 64
    name = "sha256"

    def __init__(self, data: _BytesLike = b"") -> None:
        self._state = list(_H0)
        self._buffer = bytearray()
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: _BytesLike) -> None:
        """Absorb more message bytes."""
        self._buffer.extend(data)
        self._length += len(data)
        while len(self._buffer) >= 64:
            _compress(self._state, bytes(self._buffer[:64]))
            del self._buffer[:64]

    def copy(self) -> "SHA256":
        """Return an independent copy of the running hash state."""
        clone = SHA256()
        clone._state = list(self._state)
        clone._buffer = bytearray(self._buffer)
        clone._length = self._length
        return clone

    def digest(self) -> bytes:
        """Return the 32-byte digest of the data absorbed so far."""
        # Pad a copy so that update() can continue afterwards.
        state = list(self._state)
        buffer = bytearray(self._buffer)
        bit_length = self._length * 8
        buffer.append(0x80)
        while len(buffer) % 64 != 56:
            buffer.append(0x00)
        buffer += struct.pack(">Q", bit_length)
        for offset in range(0, len(buffer), 64):
            _compress(state, bytes(buffer[offset:offset + 64]))
        return struct.pack(">8I", *state)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()


_PURE_BACKEND = "pure"
_HASHLIB_BACKEND = "hashlib"

#: Module-level pin: an explicit :func:`set_backend` choice.  ``None``
#: (the default) defers to the execution policy, resolved lazily per
#: digest so contexts and the environment variable work after import.
_backend: Optional[str] = None


def set_backend(name: Optional[str]) -> None:
    """Pin the SHA-256 backend: ``"hashlib"`` or ``"pure"``.

    The pure backend exercises the from-scratch implementation above;
    the hashlib backend is bit-identical and ~100x faster.  A pin
    overrides the execution policy; ``set_backend(None)`` (or the
    ``"auto"`` token) removes the pin and defers to the policy again.

    To save and restore the pin state, round-trip through
    :func:`get_pinned_backend` (which may be None), not
    :func:`get_backend` — the latter returns the *resolved* backend,
    and restoring a resolved name would install a pin that silently
    overrides every later policy/context.
    """
    global _backend
    if name in (None, "auto"):
        _backend = None
        return
    if name not in (_PURE_BACKEND, _HASHLIB_BACKEND):
        raise ValueError(f"unknown sha256 backend: {name!r}")
    _backend = name


def get_backend() -> str:
    """Name of the backend a digest started now would use (resolved
    through pin > context > policy > environment > ``"hashlib"``)."""
    return resolve_sha256_backend(_backend)


def get_pinned_backend() -> Optional[str]:
    """The explicit :func:`set_backend` pin (None when deferring to
    the execution policy).  Pass the return value straight back to
    :func:`set_backend` to restore the pin state."""
    return _backend


def _new_hash() -> "SHA256 | hashlib._Hash":
    if resolve_sha256_backend(_backend) == _PURE_BACKEND:
        return SHA256()
    return hashlib.sha256()


def sha256_digest(*chunks: _BytesLike) -> bytes:
    """Digest the concatenation of ``chunks`` with the active backend."""
    h = _new_hash()
    for chunk in chunks:
        h.update(chunk)
    return h.digest()


def sha256_hexdigest(*chunks: _BytesLike) -> str:
    """Hex digest of the concatenation of ``chunks``."""
    return sha256_digest(*chunks).hex()


def sha256_iter(chunks: Iterable[_BytesLike]) -> bytes:
    """Digest an iterable of byte chunks (streaming interface)."""
    h = _new_hash()
    for chunk in chunks:
        h.update(chunk)
    return h.digest()


# ---------------------------------------------------------------------------
# Batched multi-message digests


def _sha256_pad(message: bytes) -> bytes:
    """``message`` with its FIPS 180-4 padding appended (a multiple of
    64 bytes; messages of equal length pad identically)."""
    return message + b"\x80" + b"\x00" * ((55 - len(message)) % 64) \
        + struct.pack(">Q", len(message) * 8)


def _sha256_many_pure(messages: "list[bytes]") -> "list[bytes]":
    """Pure-backend digests of many independent messages.

    Messages of equal length share a padded block count, so each
    length group runs the 64 compression rounds *once* with numpy
    ``uint32`` lanes across the whole group (native modular
    arithmetic) instead of once per message — the round count stops
    scaling with the group size, which is what keeps a pinned pure
    backend usable for fleet seal/audit passes.  Singleton groups (and
    a missing numpy) fall back to the scalar :class:`SHA256`.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy ships with the repo
        return [SHA256(m).digest() for m in messages]

    def rotr(x, n):  # lanes-wide rotate; uint32 shifts drop high bits
        return (x >> np.uint32(n)) | (x << np.uint32(32 - n))

    digests: "list[Optional[bytes]]" = [None] * len(messages)
    groups: "dict[int, list[int]]" = {}
    for i, message in enumerate(messages):
        groups.setdefault(len(message), []).append(i)
    for indices in groups.values():
        if len(indices) == 1:
            i = indices[0]
            digests[i] = SHA256(messages[i]).digest()
            continue
        padded = np.frombuffer(
            b"".join(_sha256_pad(messages[i]) for i in indices),
            dtype=">u4").reshape(len(indices), -1).astype(np.uint32)
        state = [np.full(len(indices), word, dtype=np.uint32)
                 for word in _H0]
        for blk in range(padded.shape[1] // 16):
            w = [padded[:, blk * 16 + t] for t in range(16)]
            for t in range(16, 64):
                x15, x2 = w[t - 15], w[t - 2]
                s0 = rotr(x15, 7) ^ rotr(x15, 18) ^ (x15 >> np.uint32(3))
                s1 = rotr(x2, 17) ^ rotr(x2, 19) ^ (x2 >> np.uint32(10))
                w.append(w[t - 16] + s0 + w[t - 7] + s1)
            a, b, c, d, e, f, g, h = state
            for t in range(64):
                big_s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
                ch = (e & f) ^ (~e & g)
                t1 = h + big_s1 + ch + np.uint32(_K[t]) + w[t]
                big_s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
                maj = (a & b) ^ (a & c) ^ (b & c)
                t2 = big_s0 + maj
                h, g, f, e = g, f, e, d + t1
                d, c, b, a = c, b, a, t1 + t2
            state = [s + v for s, v in
                     zip(state, (a, b, c, d, e, f, g, h))]
        packed = np.stack(state, axis=1).astype(">u4").tobytes()
        for row, i in enumerate(indices):
            digests[i] = packed[row * DIGEST_SIZE:(row + 1) * DIGEST_SIZE]
    return digests  # type: ignore[return-value]


def sha256_many(messages: "Iterable[_BytesLike]") -> "list[bytes]":
    """Digests of many *independent* messages with the active backend.

    Semantically ``[sha256_digest(m) for m in messages]``; on the pure
    backend, messages of equal length are processed as array-parallel
    rounds (:func:`_sha256_many_pure`), so hashing a fleet pass's
    lines costs one set of rounds per line *length*, not per line.
    """
    flat = [bytes(m) for m in messages]
    if resolve_sha256_backend(_backend) == _PURE_BACKEND:
        return _sha256_many_pure(flat)
    return [hashlib.sha256(m).digest() for m in flat]
