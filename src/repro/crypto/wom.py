"""Write-once-memory (WOM) codes.

Section 8 of the paper notes that the Manchester encoding wastes space
for small line sizes N and that "more efficient coding techniques"
(Moran, Naor, Segev [33]) could be employed.  The classic example —
and the one we implement — is the Rivest–Shamir ``<2,2>/3`` WOM code:
two *generations* of a 2-bit value can be stored in only 3 write-once
bits, because the second write may only turn more bits on.

Generation 1 codewords and their generation-2 complements:

====== ============ ============
value   1st write    2nd write
====== ============ ============
00      000          111
01      001          110
10      010          101
11      100          011
====== ============ ============

Decoding: a codeword of weight <= 1 belongs to generation 1, weight
>= 2 to generation 2.  For the SERO hash block only a single
generation is needed, which gives a rate of 2/3 logical bits per
physical dot versus Manchester's 1/2 — the comparison reproduced by
``benchmarks/bench_wom_coding.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import InvalidCellError

_GEN1 = {
    (0, 0): (0, 0, 0),
    (0, 1): (0, 0, 1),
    (1, 0): (0, 1, 0),
    (1, 1): (1, 0, 0),
}
_GEN2 = {value: tuple(1 - bit for bit in word) for value, word in _GEN1.items()}
_DECODE1 = {word: value for value, word in _GEN1.items()}
_DECODE2 = {word: value for value, word in _GEN2.items()}

#: Physical bits per 2-bit symbol.
SYMBOL_SIZE = 3

#: Single-generation expansion factor (physical bits per logical bit).
EXPANSION = 1.5


def encode_pair(value: Tuple[int, int], generation: int = 1) -> Tuple[int, ...]:
    """Encode a 2-bit ``value`` for the given ``generation`` (1 or 2)."""
    if generation == 1:
        return _GEN1[value]
    if generation == 2:
        return _GEN2[value]
    raise ValueError("WOM code supports generations 1 and 2 only")


def decode_word(word: Sequence[int]) -> Tuple[Tuple[int, int], int]:
    """Decode a 3-bit codeword, returning ``(value, generation)``."""
    key = tuple(int(bool(b)) for b in word)
    if len(key) != SYMBOL_SIZE:
        raise ValueError("WOM codeword must be 3 bits")
    weight = sum(key)
    if weight <= 1:
        return _DECODE1[key], 1
    if key in _DECODE2:
        return _DECODE2[key], 2
    raise InvalidCellError(f"invalid WOM codeword {key}")


def rewrite_word(word: Sequence[int], value: Tuple[int, int]) -> Tuple[int, ...]:
    """Overwrite a generation-1 codeword with ``value`` (generation 2).

    Rewriting the *same* value is a no-op (the stored codeword already
    decodes to it).  Raises :class:`InvalidCellError` if the word is
    already generation 2 — a write-once violation, i.e. evidence of
    tampering.
    """
    stored, generation = decode_word(word)
    if stored == value:
        return tuple(int(bool(b)) for b in word)
    if generation != 1:
        raise InvalidCellError("WOM word already at final generation")
    new = encode_pair(value, generation=2)
    if any(o and not n for o, n in zip(word, new)):
        # Should be impossible by construction (gen2 = complement of a
        # weight<=1 word), but guard the write-once invariant anyway.
        raise InvalidCellError("WOM rewrite would clear a set bit")
    return new


@dataclass
class WOMBlock:
    """A sequence of 3-bit WOM words supporting two write generations."""

    words: List[Tuple[int, ...]]

    @classmethod
    def blank(cls, nsymbols: int) -> "WOMBlock":
        """An all-zero block able to hold ``nsymbols`` 2-bit symbols."""
        return cls(words=[(0, 0, 0)] * nsymbols)

    def write(self, bits: Sequence[int]) -> None:
        """Write logical ``bits`` (even count) as the next generation."""
        if len(bits) % 2:
            raise ValueError("WOM block writes whole 2-bit symbols")
        if len(bits) // 2 > len(self.words):
            raise ValueError("WOM block too small for payload")
        for index in range(0, len(bits), 2):
            value = (bits[index], bits[index + 1])
            word = self.words[index // 2]
            if word == (0, 0, 0) and value == (0, 0):
                # fresh word storing 00 stays 000 (generation 1)
                continue
            _, generation = decode_word(word)
            if generation == 1 and word == encode_pair(value, 1):
                continue
            if generation == 1 and sum(word) == 0:
                self.words[index // 2] = encode_pair(value, 1)
            else:
                self.words[index // 2] = rewrite_word(word, value)

    def read(self) -> List[int]:
        """Decode all symbols back to a flat logical bit list."""
        bits: List[int] = []
        for word in self.words:
            value, _ = decode_word(word)
            bits.extend(value)
        return bits


def encode_bits(bits: Sequence[int]) -> List[int]:
    """One-shot generation-1 encoding of a flat bit sequence."""
    if len(bits) % 2:
        raise ValueError("WOM encoding works on whole 2-bit symbols")
    out: List[int] = []
    for index in range(0, len(bits), 2):
        out.extend(encode_pair((bits[index], bits[index + 1]), 1))
    return out


def decode_bits(physical: Sequence[int]) -> List[int]:
    """Decode a flat physical bit sequence produced by any generation."""
    if len(physical) % SYMBOL_SIZE:
        raise ValueError("physical length must be a multiple of 3")
    bits: List[int] = []
    for index in range(0, len(physical), SYMBOL_SIZE):
        value, _ = decode_word(physical[index:index + SYMBOL_SIZE])
        bits.extend(value)
    return bits
