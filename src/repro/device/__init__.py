"""The SERO probe-storage device (Section 3 of the paper).

* :mod:`~repro.device.bitops` — mwb/mrb/ewb and the five-step erb.
* :mod:`~repro.device.ecc` — Hamming(72,64) SECDED sector protection.
* :mod:`~repro.device.sector` — 512-byte frames and the electrical
  (Fig 3) hash-block payload format.
* :mod:`~repro.device.scanner` — uSPAM sled seeks and probe-array
  transfers.
* :mod:`~repro.device.timing` — latency model and cost accounting.
* :mod:`~repro.device.sero` — :class:`SERODevice` with heat_line /
  verify_line and the line registry.
"""

from .antifuse import AntifuseArray, AntifuseSEROEmulator
from .bitops import BitOps
from .sector import (
    BLOCK_SIZE,
    DOTS_PER_BLOCK,
    E_PAYLOAD_BYTES,
    ElectricalPayload,
    decode_frame,
    encode_frame,
)
from .sero import (
    DeviceConfig,
    LineRecord,
    SERODevice,
    VerificationResult,
    VerifyStatus,
)
from .shred import classify_destroyed_line, is_line_shredded, shred_line
from .timing import CostAccount, TimingModel

__all__ = [
    "BitOps",
    "AntifuseArray",
    "AntifuseSEROEmulator",
    "shred_line",
    "is_line_shredded",
    "classify_destroyed_line",
    "BLOCK_SIZE",
    "DOTS_PER_BLOCK",
    "E_PAYLOAD_BYTES",
    "ElectricalPayload",
    "encode_frame",
    "decode_frame",
    "SERODevice",
    "DeviceConfig",
    "LineRecord",
    "VerifyStatus",
    "VerificationResult",
    "TimingModel",
    "CostAccount",
]
