"""Anti-fuse write-once memory emulator (Section 9 future work).

"The next step would be to develop a time-accurate emulator for the
device ... The time-accurate emulator could probably be built using
anti-fuse based write once semiconductor memory technology as used in
FPGAs."

This module builds that emulator in software: an anti-fuse bit starts
at 0 and can only ever be *blown* to 1 — electrically the opposite
polarity of our magnetic dots (which start un-heated), but the same
one-way lattice, so the Molnar PROM-style Manchester cells carry over
with ``00`` = unused, ``10`` = 0, ``01`` = 1 and ``11`` = tamper.

:class:`AntifuseSEROEmulator` exposes the same operational subset as
:class:`~repro.device.sero.SERODevice` — ``read_block`` /
``write_block`` / ``heat_line`` / ``verify_line`` — with WMRM blocks
in ordinary RAM and the write-once hash blocks in anti-fuse cells.
The cross-validation test suite replays identical workloads against
the simulator and the emulator and requires identical verify
verdicts, which is exactly the validation role the paper assigns to
the emulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..crypto.hashutil import line_hash
from ..crypto.manchester import bytes_to_bits
from ..errors import AlignmentError, HeatError, ReadError, WriteError
from ..units import is_power_of_two
from .sector import BLOCK_SIZE, E_PAYLOAD_BYTES, ElectricalPayload
from .sero import LineRecord, VerificationResult, VerifyStatus


class AntifuseArray:
    """A bank of one-way bits: 0 -> 1 transitions only.

    The physical contract of anti-fuse memory — there is deliberately
    no API that can clear a bit.
    """

    def __init__(self, nbits: int) -> None:
        self._bits = np.zeros(nbits, dtype=np.uint8)

    def __len__(self) -> int:
        return len(self._bits)

    def blow(self, index: int) -> None:
        """Blow fuse ``index`` (idempotent, irreversible)."""
        if not 0 <= index < len(self._bits):
            raise IndexError(f"fuse index {index} out of range")
        self._bits[index] = 1

    def read(self, index: int) -> int:
        """Read one fuse."""
        if not 0 <= index < len(self._bits):
            raise IndexError(f"fuse index {index} out of range")
        return int(self._bits[index])

    def read_span(self, start: int, end: int) -> np.ndarray:
        """Read fuses [start, end)."""
        if not 0 <= start <= end <= len(self._bits):
            raise IndexError("fuse span out of range")
        return self._bits[start:end].copy()

    def blown_count(self) -> int:
        """Total blown fuses."""
        return int(self._bits.sum())


#: Manchester-over-antifuse cell meanings (1 = blown).
_CELL_UNUSED = (0, 0)
_CELL_ZERO = (1, 0)
_CELL_ONE = (0, 1)
_CELL_TAMPERED = (1, 1)


@dataclass
class AntifuseSEROEmulator:
    """SERO semantics over RAM blocks + anti-fuse hash cells.

    Args:
        total_blocks: emulated device capacity.
    """

    total_blocks: int
    include_addresses_in_hash: bool = True
    _ram: Dict[int, bytes] = field(default_factory=dict)
    _lines: Dict[int, LineRecord] = field(default_factory=dict)
    _block_to_line: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # one anti-fuse cell pair per electrical payload bit, per block
        self._fuses = AntifuseArray(self.total_blocks * E_PAYLOAD_BYTES * 8 * 2)

    # -- WMRM blocks ------------------------------------------------------------

    def _check(self, pba: int) -> None:
        if not 0 <= pba < self.total_blocks:
            raise ReadError(f"block {pba} out of range")

    def read_block(self, pba: int) -> bytes:
        """Read a 512-byte block."""
        self._check(pba)
        line = self.line_of_block(pba)
        if line is not None and pba == line.start:
            raise ReadError("block 0 of a line lives in anti-fuse cells")
        if pba not in self._ram:
            raise ReadError(f"block {pba} never written")
        return self._ram[pba]

    def write_block(self, pba: int, payload: bytes) -> None:
        """Write a 512-byte block (refused inside heated lines)."""
        self._check(pba)
        if len(payload) != BLOCK_SIZE:
            raise WriteError(f"payload must be {BLOCK_SIZE} bytes")
        if self.is_block_heated(pba):
            raise WriteError(f"block {pba} is inside a write-once line")
        self._ram[pba] = bytes(payload)

    def is_block_heated(self, pba: int) -> bool:
        """True inside a sealed line."""
        return pba in self._block_to_line

    def line_of_block(self, pba: int) -> Optional[LineRecord]:
        """The sealed line containing ``pba``, if any."""
        start = self._block_to_line.get(pba)
        return self._lines.get(start) if start is not None else None

    @property
    def heated_lines(self):
        """Sealed lines in start order."""
        return tuple(self._lines[k] for k in sorted(self._lines))

    # -- anti-fuse hash cells -----------------------------------------------------

    def _cell_base(self, pba: int) -> int:
        return pba * E_PAYLOAD_BYTES * 8 * 2

    def _write_cells(self, pba: int, payload: bytes) -> None:
        base = self._cell_base(pba)
        for i, bit in enumerate(bytes_to_bits(payload)):
            cell = base + 2 * i
            # blow exactly one fuse per cell: first for 0, second for 1
            self._fuses.blow(cell if bit == 0 else cell + 1)

    def _read_cells(self, pba: int):
        base = self._cell_base(pba)
        nbits = E_PAYLOAD_BYTES * 8
        raw = self._fuses.read_span(base, base + 2 * nbits)
        bits: List[Optional[int]] = []
        tampered: List[int] = []
        unused = 0
        for i in range(nbits):
            pair = (int(raw[2 * i]), int(raw[2 * i + 1]))
            if pair == _CELL_ZERO:
                bits.append(0)
            elif pair == _CELL_ONE:
                bits.append(1)
            elif pair == _CELL_TAMPERED:
                bits.append(None)
                tampered.append(i)
            else:
                bits.append(None)
                unused += 1
        return bits, tampered, unused == nbits

    # -- the SERO operations ----------------------------------------------------------

    def heat_line(self, start: int, n_blocks: int, timestamp: int = 0) -> LineRecord:
        """Seal a line: hash the data blocks, blow the hash into fuses."""
        if n_blocks < 2 or not is_power_of_two(n_blocks):
            raise AlignmentError("line length must be a power of two >= 2")
        if start % n_blocks:
            raise AlignmentError("line start must be aligned")
        if start + n_blocks > self.total_blocks:
            raise AlignmentError("line extends past end of device")
        for pba in range(start, start + n_blocks):
            existing = self.line_of_block(pba)
            if existing is not None and (existing.start != start or
                                         existing.n_blocks != n_blocks):
                raise AlignmentError("line overlaps an existing line")
        addresses = list(range(start + 1, start + n_blocks))
        blocks = [self.read_block(pba) for pba in addresses]
        digest = line_hash(addresses, blocks,
                           include_addresses=self.include_addresses_in_hash)
        payload = ElectricalPayload(
            line_start=start, n_blocks_log2=n_blocks.bit_length() - 1,
            line_hash=digest, timestamp=timestamp).pack()
        self._write_cells(start, payload)
        bits, tampered, _virgin = self._read_cells(start)
        if tampered or None in bits:
            raise HeatError("anti-fuse verify failed (line re-sealed with "
                            "different data?)")
        record = LineRecord(start=start, n_blocks=n_blocks,
                            line_hash=digest, timestamp=timestamp)
        self._lines[start] = record
        for pba in range(start, start + n_blocks):
            self._block_to_line[pba] = start
        return record

    def verify_line(self, start: int) -> VerificationResult:
        """Verify a sealed line, with the same verdict taxonomy as the
        patterned-medium device."""
        bits, tampered, virgin = self._read_cells(start)
        if tampered:
            return VerificationResult(status=VerifyStatus.CELL_TAMPERED,
                                      start=start, tampered_cells=tampered)
        if virgin:
            return VerificationResult(status=VerifyStatus.NOT_A_LINE,
                                      start=start)
        if None in bits:
            return VerificationResult(status=VerifyStatus.UNREADABLE,
                                      start=start)
        out = bytearray()
        for i in range(0, len(bits), 8):
            byte = 0
            for bit in bits[i:i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        try:
            meta = ElectricalPayload.unpack(bytes(out))
        except ReadError:
            return VerificationResult(status=VerifyStatus.UNREADABLE,
                                      start=start)
        n_blocks = 1 << meta.n_blocks_log2
        addresses = list(range(start + 1, start + n_blocks))
        try:
            blocks = [self.read_block(pba) for pba in addresses]
        except ReadError:
            return VerificationResult(status=VerifyStatus.UNREADABLE,
                                      start=start, stored_hash=meta.line_hash)
        digest = line_hash(addresses, blocks,
                           include_addresses=self.include_addresses_in_hash)
        if digest != meta.line_hash:
            return VerificationResult(status=VerifyStatus.HASH_MISMATCH,
                                      start=start, stored_hash=meta.line_hash,
                                      computed_hash=digest)
        return VerificationResult(status=VerifyStatus.INTACT, start=start,
                                  stored_hash=meta.line_hash,
                                  computed_hash=digest)

    # -- attacker surface ----------------------------------------------------------

    def tamper_blow_hash_fuse(self, start: int, cell: int) -> None:
        """Attacker primitive: blow the *other* fuse of hash cell
        ``cell``, producing the illegal ``11`` pattern (or a silent
        flip if the cell was unused)."""
        base = self._cell_base(start) + 2 * cell
        if self._fuses.read(base):
            self._fuses.blow(base + 1)
        else:
            self._fuses.blow(base)

    def tamper_rewrite_data(self, pba: int, payload: bytes) -> None:
        """Attacker primitive: overwrite RAM behind the write protect."""
        self._ram[pba] = (payload + b"\x00" * BLOCK_SIZE)[:BLOCK_SIZE]
