"""The four low-level bit operations of Section 3.

``mwb``/``mrb`` are thin passthroughs to the medium.  ``ewb`` heats a
dot.  ``erb`` is *not* a primitive: it "is built out of magnetic read
and write operations" as the atomic five-step sequence the paper
specifies, and this module implements exactly that sequence:

1. ``mrb`` the original bit,
2. ``mwb`` the inverse,
3. ``mrb`` to verify the inverse reads back,
4. ``mwb`` the original again,
5. ``mrb`` to verify the original reads back.

If either verification fails the dot "has lost its out-of-plane
property" and ``erb`` returns ``H``, else ``U``.  On a heated dot each
verification read is a coin flip, so a single sequence misses the dot
with probability 1/4; the ``rounds`` parameter repeats steps 2-5 to
drive the miss rate to (1/4)^rounds (the sector layer adds retries on
top, see :mod:`repro.device.sector`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..medium.medium import PatternedMedium

#: erb miss probability per verification round on a heated dot.
ERB_MISS_PER_ROUND = 0.25


@dataclass
class BitOps:
    """Bit-level operations over one medium."""

    medium: PatternedMedium

    def mrb(self, index: int) -> int:
        """Magnetic read bit: stored bit (random for a heated dot)."""
        return self.medium.read_mag(index)

    def mwb(self, index: int, bit: int) -> None:
        """Magnetic write bit."""
        self.medium.write_mag(index, bit)

    def ewb(self, index: int) -> None:
        """Electrical write bit: heat the dot (irreversible)."""
        self.medium.heat_dot(index)

    def erb(self, index: int, rounds: int = 1) -> str:
        """Electrical read bit via the five-step magnetic sequence.

        Returns ``"H"`` when the dot fails a verification (heated) and
        ``"U"`` otherwise.  ``rounds`` repeats the invert/verify pair;
        each extra round costs 4 more bit operations.
        """
        if rounds < 1:
            raise ValueError("erb needs at least one verification round")
        original = self.mrb(index)
        inverse = 1 - original
        for _ in range(rounds):
            self.mwb(index, inverse)
            if self.mrb(index) != inverse:
                return "H"
            self.mwb(index, original)
            if self.mrb(index) != original:
                return "H"
        return "U"

    def erb_span(self, start: int, end: int, rounds: int = 1) -> np.ndarray:
        """Vectorised erb over dots [start, end).

        Returns a bool array where True corresponds to the scalar
        :meth:`erb` verdict ``"H"``.  Protocol semantics (miss
        probability, counter increments, early exit on the first
        failed verification) match the scalar sequence exactly; only
        the RNG consumption order differs.
        """
        return self.medium.erb_span(start, end, rounds)

    def erb_at(self, indices: Sequence[int], rounds: int = 1) -> np.ndarray:
        """Vectorised erb at scattered (unique) dot ``indices``."""
        return self.medium.erb_at(indices, rounds)

    def bit_cost(self, rounds: int = 1) -> int:
        """Number of magnetic bit ops one erb consumes (5 for the
        paper's single-round sequence)."""
        return 1 + 4 * rounds
