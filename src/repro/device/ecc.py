"""SECDED Hamming(72,64) error correction for sector frames.

Section 3 budgets ~15% sector overhead for "the sector header, error
correction, and cyclic redundancy check ... taking error correction
appropriate to the medium, the tips, etc. into account".  Patterned
media fail as isolated dot errors (a defective or disturbed dot), so a
single-error-correcting, double-error-detecting Hamming code over
64-bit words — the classic DRAM/disk-header choice — is appropriate.

The codec is vectorised with numpy (parity = bit-matrix product mod 2)
so whole blocks encode/decode in a handful of array operations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ReadError

DATA_BITS = 64
PARITY_BITS = 8  # 7 Hamming + 1 overall (SECDED)
CODE_BITS = DATA_BITS + PARITY_BITS
DATA_BYTES = DATA_BITS // 8


def _build_matrices() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Construct the codeword layout.

    Codeword positions 1..71 follow the standard Hamming convention:
    positions that are powers of two hold parity, the rest hold data.
    Position 0 holds the overall parity bit.  Returns:

    * ``data_positions`` — codeword index of each of the 64 data bits,
    * ``parity_masks`` — (64, 7) 0/1 matrix: data bit i participates in
      Hamming parity j,
    * ``syndrome_to_codeword`` — length-128 map from Hamming syndrome
      to codeword position (0 where the syndrome is unused).
    """
    parity_positions = [1, 2, 4, 8, 16, 32, 64]
    data_positions = [p for p in range(1, CODE_BITS) if p not in parity_positions]
    assert len(data_positions) == DATA_BITS
    masks = np.zeros((DATA_BITS, 7), dtype=np.uint8)
    for i, pos in enumerate(data_positions):
        for j in range(7):
            if pos & (1 << j):
                masks[i, j] = 1
    syndrome_map = np.zeros(128, dtype=np.int64)
    for pos in range(1, CODE_BITS):
        syndrome_map[pos] = pos
    return np.asarray(data_positions, dtype=np.int64), masks, syndrome_map


_DATA_POSITIONS, _PARITY_MASKS, _SYNDROME_MAP = _build_matrices()
_PARITY_POSITIONS = np.asarray([1, 2, 4, 8, 16, 32, 64], dtype=np.int64)


def _bytes_to_words(data: bytes) -> np.ndarray:
    """Unpack bytes into an (nwords, 64) bit matrix, MSB-first."""
    if len(data) % DATA_BYTES:
        raise ValueError("payload must be a multiple of 8 bytes")
    raw = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(raw)
    return bits.reshape(-1, DATA_BITS)


def _words_to_bytes(words: np.ndarray) -> bytes:
    """Pack an (nwords, 64) bit matrix back into bytes."""
    return np.packbits(words.reshape(-1)).tobytes()


def encode(data: bytes) -> np.ndarray:
    """Encode ``data`` (multiple of 8 bytes) into a flat bit array.

    Returns a uint8 array of length ``len(data)//8 * 72`` laid out as
    consecutive 72-bit codewords.
    """
    words = _bytes_to_words(data)
    nwords = words.shape[0]
    hamming = (words @ _PARITY_MASKS) % 2  # (nwords, 7)
    code = np.zeros((nwords, CODE_BITS), dtype=np.uint8)
    code[:, _DATA_POSITIONS] = words
    code[:, _PARITY_POSITIONS] = hamming
    code[:, 0] = code[:, 1:].sum(axis=1) % 2  # overall parity
    return code.reshape(-1)


class ECCResult:
    """Decode outcome: the payload plus correction statistics.

    Attributes:
        data: corrected payload bytes.
        corrected: number of single-bit corrections applied.
    """

    __slots__ = ("data", "corrected")

    def __init__(self, data: bytes, corrected: int) -> None:
        self.data = data
        self.corrected = corrected


def decode(bits: np.ndarray) -> ECCResult:
    """Decode a flat codeword bit array produced by :func:`encode`.

    Corrects any single-bit error per 72-bit word; raises
    :class:`~repro.errors.ReadError` on an uncorrectable (double)
    error.
    """
    arr = np.asarray(bits, dtype=np.uint8).reshape(-1, CODE_BITS)
    # Hamming syndrome: for each parity bit j, XOR of all positions
    # with bit j set in their index (including the parity bit itself).
    syndromes = np.zeros(arr.shape[0], dtype=np.int64)
    for j in range(7):
        positions = [p for p in range(1, CODE_BITS) if p & (1 << j)]
        parity = arr[:, positions].sum(axis=1) % 2
        syndromes |= parity.astype(np.int64) << j
    overall = arr.sum(axis=1) % 2

    bad = syndromes != 0
    if bad.any():
        # single error iff overall parity also trips; double otherwise
        double = bad & (overall == 0)
        if double.any():
            raise ReadError(
                f"uncorrectable ECC error in {int(double.sum())} word(s)")
        rows = np.nonzero(bad)[0]
        cols = _SYNDROME_MAP[syndromes[rows]]
        if (cols >= CODE_BITS).any():
            raise ReadError("invalid ECC syndrome")
        arr = arr.copy()
        arr[rows, cols] ^= 1
        corrected = int(len(rows))
    else:
        corrected = 0
        # a flipped overall-parity bit alone is also a single error
        # (position 0); it does not affect the data, so just count it.
        corrected += int((overall == 1).sum())

    data_words = arr[:, _DATA_POSITIONS]
    return ECCResult(data=_words_to_bytes(data_words), corrected=corrected)


def codeword_length(payload_bytes: int) -> int:
    """Encoded bit length for a payload of ``payload_bytes`` bytes."""
    if payload_bytes % DATA_BYTES:
        raise ValueError("payload must be a multiple of 8 bytes")
    return payload_bytes // DATA_BYTES * CODE_BITS
