"""uSPAM scanner: the moving-sled actuator of Section 6.

The Twente uSPAM moves the *medium* under a fixed probe array with an
electrostatic stepper (uWalker / Harmonica drive).  For the storage
stack the actuator matters as a latency source: accessing a block means
sliding the sled so the block's dot field sits under the probes, then
streaming bits through the probe array.

The scanner tracks the sled position and converts block accesses into
seek + transfer charges on the device's :class:`CostAccount`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..medium.geometry import MediumGeometry
from .timing import CostAccount, TimingModel


@dataclass
class Scanner:
    """Sled position tracker and latency charger.

    Every probe serves its own small *field* of the medium and the
    sled only ever moves within one field span (all probes move
    together relative to their fields), so the seek distance to a
    block is its position *within* the probe field, not its absolute
    position on the medium — this is what keeps probe-storage seeks in
    the millisecond range despite Terabit capacities.

    Attributes:
        geometry: the medium's dot matrix.
        timing: latency parameters.
        account: the device clock being charged.
        field_span: probe field edge length [m].
    """

    geometry: MediumGeometry
    timing: TimingModel
    account: CostAccount
    field_span: float = 100e-6

    def __post_init__(self) -> None:
        self._x = 0.0
        self._y = 0.0
        self._last_block = None

    @property
    def position(self) -> tuple:
        """Current sled position within the probe field (x, y) [m]."""
        return (self._x, self._y)

    def _field_position(self, pba: int) -> tuple:
        # A block's bits are striped across the probe array, so each
        # probe holds dots_per_block/parallelism dots of it; block pba
        # therefore starts at that per-probe offset along the field's
        # serpentine scan path.
        pitch = self.geometry.dot.pitch_x
        dots_per_field_row = max(int(self.field_span / pitch), 1)
        per_probe = max(self.geometry.dots_per_block // self.timing.parallelism, 1)
        offset = pba * per_probe
        col = offset % dots_per_field_row
        row = (offset // dots_per_field_row) % dots_per_field_row
        return (col * pitch, row * self.geometry.dot.pitch_y)

    def seek_to_block(self, pba: int) -> float:
        """Move the sled to block ``pba``; returns the seek time charged.

        Accessing the block after the previous one continues the scan
        motion (the probes stream while the sled keeps moving), so a
        sequential continuation costs no seek — this is what makes
        clustered log writes cheap (Section 4.1).
        """
        if self._last_block is not None and pba == self._last_block + 1:
            self._last_block = pba
            self._x, self._y = self._field_position(pba)
            return 0.0
        x, y = self._field_position(pba)
        distance = max(abs(x - self._x), abs(y - self._y))
        self._last_block = pba
        self._x, self._y = x, y
        if distance == 0.0:
            return 0.0  # already on target: no mechanical motion
        seek = self.timing.seek_time(distance)
        self.account.charge("seek", seek)
        return seek

    def transfer(self, nbits: int, kind: str,
                 per_bit: Optional[float] = None) -> float:
        """Charge a transfer of ``nbits`` of the given kind.

        Args:
            nbits: bit count moved under the probe array.
            kind: one of ``"mrb"``, ``"mwb"``, ``"ewb"``, ``"erb"``.
            per_bit: per-bit time override.  erb transfers pass
                :meth:`~repro.device.timing.TimingModel.t_erb_for` here
                so multi-round electrical reads are charged their true
                ``1 + 4*rounds`` bit-operation cost (the default
                ``t_erb`` covers only the single-round sequence).
        """
        if per_bit is None:
            per_bit = {
                "mrb": self.timing.t_mrb,
                "mwb": self.timing.t_mwb,
                "ewb": self.timing.t_ewb,
                "erb": self.timing.t_erb,
            }[kind]
        t = self.timing.transfer_time(nbits, per_bit)
        self.account.charge(kind, t, ops=nbits)
        return t
