"""Sector framing: 512-byte blocks with header, CRC and ECC.

Magnetic frames (Section 3, "Sector operations"): a block is one
512-byte sector wrapped with

* a 14-byte header — magic, the block's own *physical* address (so a
  frame copied elsewhere is self-evidently out of place, see the
  addressing discussion of Sections 3 and 5.2), flags, header CRC-16;
* a CRC-32 over header+payload;
* Hamming(72,64) SECDED over the whole padded frame.

The framed sector occupies 4824 dots — 17.8% overhead over the 4096
payload bits, the paper's "about 15%" budget.

Electrical (hash) blocks use a different on-dot format: the first 4096
dots of the block span hold 2048 Manchester cells = 256 bytes of
write-once payload (Fig 3: 512 bits of Manchester-encoded SHA-256 +
3584 bits of metadata space).  The payload layout is defined by
:class:`ElectricalPayload`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..crypto.crc import crc16_ccitt, crc32
from ..crypto.hashutil import HASH_SIZE
from ..errors import ReadError, WriteError
from . import ecc

BLOCK_SIZE = 512
"""Sector payload size [bytes]."""

HEADER_MAGIC = 0x5E20  # "SERO"
HEADER_BYTES = 14
_PAD_BYTES = 6
FRAME_BYTES = HEADER_BYTES + BLOCK_SIZE + 4 + _PAD_BYTES  # 536
FRAME_BITS = ecc.codeword_length(FRAME_BYTES)  # 4824
DOTS_PER_BLOCK = FRAME_BITS
"""Physical dots one block consumes (payload + 17.8% overhead)."""

E_REGION_DOTS = 4096
"""Dots of the block span used by an electrical (hash) block."""

E_CELLS = E_REGION_DOTS // 2
E_PAYLOAD_BYTES = E_CELLS // 8  # 256
E_MAGIC = 0xE5E0


def _frame_bytes(pba: int, payload: bytes) -> bytes:
    """The raw (pre-ECC) frame bytes for block ``pba``."""
    if len(payload) != BLOCK_SIZE:
        raise WriteError(f"payload must be {BLOCK_SIZE} bytes, got {len(payload)}")
    if pba < 0:
        raise WriteError("physical block address must be non-negative")
    header_wo_crc = struct.pack(">HQH", HEADER_MAGIC, pba, 0)
    hcrc = crc16_ccitt(header_wo_crc)
    header = header_wo_crc + struct.pack(">H", hcrc)
    body = header + payload
    pcrc = crc32(body)
    frame = body + struct.pack(">I", pcrc) + b"\x00" * _PAD_BYTES
    assert len(frame) == FRAME_BYTES
    return frame


def encode_frame(pba: int, payload: bytes) -> np.ndarray:
    """Encode a magnetic sector frame for block ``pba``.

    Returns the 4824-element 0/1 dot pattern.
    """
    return ecc.encode(_frame_bytes(pba, payload))


def encode_frame_run(first_pba: int, payloads: "list[bytes]") -> np.ndarray:
    """Encode frames for consecutive blocks starting at ``first_pba``.

    The SECDED code treats every 8-byte word independently, so one ECC
    pass over the joined frame bytes is bit-identical to per-frame
    :func:`encode_frame` calls; returns the concatenated dot pattern.
    """
    frames = b"".join(_frame_bytes(first_pba + i, payload)
                      for i, payload in enumerate(payloads))
    return ecc.encode(frames)


@dataclass
class DecodedFrame:
    """A successfully decoded magnetic frame.

    Attributes:
        pba: physical block address stored in the header.
        payload: the 512-byte sector payload.
        corrected_bits: ECC corrections applied during decode.
    """

    pba: int
    payload: bytes
    corrected_bits: int


def _parse_frame(frame: bytes, corrected: int,
                 expected_pba: Optional[int]) -> DecodedFrame:
    """Validate decoded frame bytes (magic, CRCs, address binding)."""
    magic, pba, _flags = struct.unpack(">HQH", frame[:12])
    (hcrc,) = struct.unpack(">H", frame[12:14])
    if magic != HEADER_MAGIC:
        raise ReadError("bad sector magic (unwritten, erased or heated block?)")
    if crc16_ccitt(frame[:12]) != hcrc:
        raise ReadError("sector header CRC mismatch")
    payload = frame[HEADER_BYTES:HEADER_BYTES + BLOCK_SIZE]
    (pcrc,) = struct.unpack(
        ">I", frame[HEADER_BYTES + BLOCK_SIZE:HEADER_BYTES + BLOCK_SIZE + 4])
    if crc32(frame[:HEADER_BYTES + BLOCK_SIZE]) != pcrc:
        raise ReadError("sector payload CRC mismatch")
    if expected_pba is not None and pba != expected_pba:
        raise ReadError(
            f"sector address mismatch: header says {pba}, device read "
            f"from {expected_pba} (data is not in the right place)")
    return DecodedFrame(pba=pba, payload=payload, corrected_bits=corrected)


def decode_frame(bits: np.ndarray, expected_pba: Optional[int] = None) -> DecodedFrame:
    """Decode a dot pattern back to a sector frame.

    Raises :class:`~repro.errors.ReadError` on ECC/CRC/magic failure or
    when the header address disagrees with ``expected_pba`` — the check
    that lets the file system "recognize when data is in the right
    place" (Section 3).
    """
    if len(bits) != FRAME_BITS:
        raise ReadError(f"frame must be {FRAME_BITS} bits, got {len(bits)}")
    result = ecc.decode(bits)
    return _parse_frame(result.data, result.corrected, expected_pba)


def decode_frame_run(bits: np.ndarray, first_pba: int) -> "list[DecodedFrame]":
    """Decode the dot pattern of a run of consecutive blocks.

    One ECC pass over all frames (codewords are independent 8-byte
    words), then the per-frame header/CRC/address checks.  Any ECC,
    framing or address failure raises :class:`~repro.errors.ReadError`,
    exactly as the first failing per-block :func:`decode_frame` would.
    Each returned frame's ``corrected_bits`` carries the *run-wide*
    correction count (the ECC pass is shared).
    """
    if len(bits) % FRAME_BITS:
        raise ReadError(f"run must be a multiple of {FRAME_BITS} bits")
    result = ecc.decode(bits)
    count = len(bits) // FRAME_BITS
    return [_parse_frame(
        result.data[i * FRAME_BYTES:(i + 1) * FRAME_BYTES],
        result.corrected, first_pba + i) for i in range(count)]


# ---------------------------------------------------------------------------
# Electrical (write-once) payload format


@dataclass
class ElectricalPayload:
    """Contents of a heated line's block 0 (Fig 3).

    Attributes:
        line_start: PBA of the line's first block (this block).
        n_blocks_log2: line length exponent N (the line spans
            ``2**N`` blocks).
        line_hash: SHA-256 over the line's data blocks + addresses.
        timestamp: heat time [integer seconds] recorded in metadata.
        flags: reserved metadata flags.
    """

    line_start: int
    n_blocks_log2: int
    line_hash: bytes
    timestamp: int = 0
    flags: int = 0

    _HEAD = ">HBBQQH"  # magic, version, n_log2, line_start, timestamp, flags
    _VERSION = 1

    def pack(self) -> bytes:
        """Serialise to the fixed 256-byte electrical payload."""
        if len(self.line_hash) != HASH_SIZE:
            raise WriteError(f"line hash must be {HASH_SIZE} bytes")
        head = struct.pack(self._HEAD, E_MAGIC, self._VERSION,
                           self.n_blocks_log2, self.line_start,
                           self.timestamp, self.flags)
        body = head + self.line_hash
        free = E_PAYLOAD_BYTES - len(body) - 4
        body += b"\x00" * free
        body += struct.pack(">I", crc32(body))
        assert len(body) == E_PAYLOAD_BYTES
        return body

    @classmethod
    def unpack(cls, payload: bytes) -> "ElectricalPayload":
        """Parse a 256-byte electrical payload.

        Raises :class:`~repro.errors.ReadError` on bad magic/CRC.
        """
        if len(payload) != E_PAYLOAD_BYTES:
            raise ReadError(f"electrical payload must be {E_PAYLOAD_BYTES} bytes")
        (stored_crc,) = struct.unpack(">I", payload[-4:])
        if crc32(payload[:-4]) != stored_crc:
            raise ReadError("electrical payload CRC mismatch")
        head_size = struct.calcsize(cls._HEAD)
        magic, version, n_log2, line_start, timestamp, flags = struct.unpack(
            cls._HEAD, payload[:head_size])
        if magic != E_MAGIC:
            raise ReadError("bad electrical payload magic")
        if version != cls._VERSION:
            raise ReadError(f"unsupported electrical payload version {version}")
        line_hash = payload[head_size:head_size + HASH_SIZE]
        return cls(line_start=line_start, n_blocks_log2=n_log2,
                   line_hash=line_hash, timestamp=timestamp, flags=flags)
