"""The SERO device: WMRM block storage with a write-once heat operation.

This class is the paper's Section 3 in executable form.  It offers the
six high-level sector operations built from the four bit operations:

* ``read_block`` / ``write_block`` — magnetic sector ops (mrs / mws),
* ``ers_block`` / ``ews_block`` — electrical sector ops (ers / ews),
* ``heat_line`` — the atomic WO operation: hash 2**N - 1 data blocks
  (bound to their physical addresses) and burn the Manchester-encoded
  hash into block 0,
* ``verify_line`` — recompute and compare, classifying the result as
  intact or as one of the tamper-evidence conditions.

Driver policy (what a well-behaved host does) is enforced here: writes
to heated lines are refused, electrically written blocks are never read
magnetically, physical addressing is used throughout.  Attackers do not
go through this class — :mod:`repro.security.attacks` manipulates the
medium directly, exactly like the paper's insider who connects the
device to a laptop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..crypto.hashutil import line_hash, line_hash_many
from ..crypto.manchester import CellState, classify_cell, encode_bytes
from ..errors import (
    AlignmentError,
    BadBlockError,
    HeatedBlockError,
    HeatError,
    ReadError,
    WriteError,
)
from ..medium.defects import scan_for_defects
from ..medium.geometry import MediumGeometry, geometry_for_blocks
from ..medium.medium import MediumConfig, PatternedMedium
from ..api.policy import resolve_vectorized
from ..units import is_power_of_two
from .bitops import BitOps
from .sector import (
    BLOCK_SIZE,
    DOTS_PER_BLOCK,
    E_CELLS,
    E_PAYLOAD_BYTES,
    E_REGION_DOTS,
    ElectricalPayload,
    decode_frame,
    decode_frame_run,
    encode_frame,
    encode_frame_run,
)
from .scanner import Scanner
from .timing import CostAccount, TimingModel


@dataclass
class DeviceConfig:
    """Driver policy and reliability knobs.

    Attributes:
        erb_rounds: invert/verify rounds per erb (miss rate per heated
            dot is (1/4)**rounds; 2 keeps single-read ers reliable).
        ers_cell_retries: re-reads of cells that decode as unused
            before believing they are genuinely unused.
        include_addresses_in_hash: bind block PBAs into line hashes
            (True per the paper; False only for the security ablation).
        defect_tolerance: defective dots a block may contain before it
            is marked bad at format time (must stay below the ECC
            correction budget per frame).
        enforce_write_protect: refuse magnetic writes into heated lines.
        verify_retries: extra ers passes verify_line may take when the
            electrical payload reads back inconsistent.  A tampered
            (HH) cell escapes one pass as a plausible bit with ~12%
            probability; re-reading makes the CELL_TAMPERED verdict —
            rather than the weaker UNREADABLE — near-certain.
        span_engine: run the electrical paths (ers_block, probing,
            payload decode) on the vectorized span engine instead of
            the scalar per-dot reference protocol.  The default is
            resolved through the execution policy at construction time
            (:func:`repro.api.resolve_vectorized`: ``repro.engine``
            context > installed policy > ``REPRO_SPAN_ENGINE``, read
            lazily).  Both paths implement identical protocol
            semantics; the scalar one is kept as the executable
            reference for equivalence tests.
    """

    erb_rounds: int = 2
    ers_cell_retries: int = 6
    include_addresses_in_hash: bool = True
    defect_tolerance: int = 4
    enforce_write_protect: bool = True
    verify_retries: int = 3
    span_engine: bool = field(default_factory=resolve_vectorized)


#: Manchester cell codes used by the span engine:
#: ``2 * first_dot_heated + second_dot_heated``.
_CODE_UNUSED, _CODE_ONE, _CODE_ZERO, _CODE_TAMPERED = 0, 1, 2, 3
_CODE_TO_STATE = (CellState.UNUSED, CellState.ONE,
                  CellState.ZERO, CellState.TAMPERED)
_CODE_TO_BIT = (None, 1, 0, None)


@dataclass(frozen=True)
class LineRecord:
    """Registry entry for one heated line."""

    start: int
    n_blocks: int
    line_hash: bytes
    timestamp: int


@dataclass
class DeviceStatePatch:
    """The state a *read-only* device pass advances, captured portably.

    An audit or fsck never writes the medium — its only side effects
    are the RNG position (heated-dot read noise), the operation
    counters, the cost account and the sled position.  A fleet worker
    that ran such a pass can therefore send this ~1 kB patch home
    instead of re-shipping the whole member snapshot; applying it to
    the originating device leaves that device byte-identical to having
    run the pass locally.
    """

    rng_state: dict
    counters: Dict[str, int]
    account_elapsed: float
    account_by_category: Dict[str, float]
    account_op_counts: Dict[str, int]
    scanner_x: float
    scanner_y: float
    scanner_last_block: Optional[int]

    @classmethod
    def capture(cls, device: "SERODevice") -> "DeviceStatePatch":
        return cls(
            rng_state=device.medium._rng.bit_generator.state,
            counters=dict(device.medium.counters),
            account_elapsed=device.account.elapsed,
            account_by_category=dict(device.account.by_category),
            account_op_counts=dict(device.account.op_counts),
            scanner_x=device.scanner._x,
            scanner_y=device.scanner._y,
            scanner_last_block=device.scanner._last_block,
        )

    def apply(self, device: "SERODevice") -> None:
        device.medium._rng.bit_generator.state = self.rng_state
        device.medium.counters.clear()
        device.medium.counters.update(self.counters)
        device.account.elapsed = self.account_elapsed
        device.account.by_category = dict(self.account_by_category)
        device.account.op_counts = dict(self.account_op_counts)
        device.scanner._x = self.scanner_x
        device.scanner._y = self.scanner_y
        device.scanner._last_block = self.scanner_last_block


class VerifyStatus(enum.Enum):
    """Outcome classes of :meth:`SERODevice.verify_line`."""

    INTACT = "intact"
    HASH_MISMATCH = "hash-mismatch"
    CELL_TAMPERED = "cell-tampered"
    UNREADABLE = "unreadable"
    NOT_A_LINE = "not-a-line"


@dataclass
class VerificationResult:
    """Result of verifying one line.

    Attributes:
        status: the verdict.
        start: line start PBA.
        stored_hash: hash recovered from the electrical block (None
            when unreadable).
        computed_hash: freshly computed hash over the data blocks.
        tampered_cells: Manchester cell indices that decoded to ``HH``.
    """

    status: VerifyStatus
    start: int
    stored_hash: Optional[bytes] = None
    computed_hash: Optional[bytes] = None
    tampered_cells: List[int] = field(default_factory=list)

    @property
    def tamper_evident(self) -> bool:
        """True when the result constitutes evidence of tampering."""
        return self.status in (VerifyStatus.HASH_MISMATCH,
                               VerifyStatus.CELL_TAMPERED,
                               VerifyStatus.UNREADABLE)


class SERODevice:
    """A probe-storage SERO block device on a patterned medium.

    Args:
        medium: the physical substrate.
        timing: latency model (None = defaults).
        config: driver policy (None = defaults).
    """

    def __init__(self, medium: PatternedMedium,
                 timing: Optional[TimingModel] = None,
                 config: Optional[DeviceConfig] = None) -> None:
        self.medium = medium
        self.geometry = medium.geometry
        self.timing = timing or TimingModel()
        self.config = config or DeviceConfig()
        self.account = CostAccount()
        self.scanner = Scanner(geometry=self.geometry, timing=self.timing,
                               account=self.account)
        self.bitops = BitOps(medium)
        self.bad_blocks: set = set()
        self.fragile_blocks: set = set()
        self._lines: Dict[int, LineRecord] = {}
        self._block_to_line: Dict[int, int] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(cls, total_blocks: int,
               medium_config: Optional[MediumConfig] = None,
               timing: Optional[TimingModel] = None,
               config: Optional[DeviceConfig] = None,
               blocks_per_row: int = 8) -> "SERODevice":
        """Build a device with a fresh medium of ``total_blocks``."""
        geometry = geometry_for_blocks(total_blocks, DOTS_PER_BLOCK,
                                       blocks_per_row=blocks_per_row)
        medium = PatternedMedium(geometry, medium_config)
        return cls(medium, timing=timing, config=config)

    def clone(self) -> "SERODevice":
        """A deep, state-identical snapshot of this device.

        Round-trips through the compact pickled form (see
        :meth:`repro.medium.medium.PatternedMedium.__getstate__`): the
        clone carries the same medium state, RNG position, bad-block
        map, line registry, scanner position and cost account, so it
        behaves byte-identically from here on.  This is the transport
        the fleet's process executor uses to move members between
        workers.
        """
        import pickle

        return pickle.loads(pickle.dumps(self, pickle.HIGHEST_PROTOCOL))

    def state_patch(self) -> DeviceStatePatch:
        """Portable capture of the read-only-pass state (RNG, counters,
        clock, sled); see :class:`DeviceStatePatch`."""
        return DeviceStatePatch.capture(self)

    def format(self) -> None:
        """Format-time surface scan: populate the bad-block map.

        Must run before any line is heated so a heated block can never
        be "misinterpreted as a bad block" (Section 3).
        """
        if self._lines:
            raise WriteError("cannot format: device already has heated lines")
        report = scan_for_defects(self.medium,
                                  tolerance=self.config.defect_tolerance,
                                  e_region_dots=E_REGION_DOTS,
                                  vectorized=self.config.span_engine)
        self.bad_blocks = set(report.bad_blocks)
        self.fragile_blocks = set(report.fragile_blocks)

    # -- capacity ---------------------------------------------------------------

    @property
    def total_blocks(self) -> int:
        """Total physical block count."""
        return self.geometry.total_blocks

    @property
    def heated_lines(self) -> Tuple[LineRecord, ...]:
        """Registered heated lines, in start order."""
        return tuple(self._lines[k] for k in sorted(self._lines))

    def heated_block_count(self) -> int:
        """Blocks belonging to heated lines (read-only capacity)."""
        return sum(rec.n_blocks for rec in self._lines.values())

    def writable_block_count(self) -> int:
        """Blocks still available for WMRM use."""
        return self.total_blocks - self.heated_block_count() - len(self.bad_blocks)

    def is_block_heated(self, pba: int) -> bool:
        """True when ``pba`` lies inside a registered heated line."""
        return pba in self._block_to_line

    def line_of_block(self, pba: int) -> Optional[LineRecord]:
        """The heated line containing ``pba``, if any."""
        start = self._block_to_line.get(pba)
        return self._lines.get(start) if start is not None else None

    # -- magnetic sector operations ----------------------------------------------

    def _check_pba(self, pba: int) -> None:
        if not 0 <= pba < self.total_blocks:
            raise ReadError(f"physical block address {pba} out of range")
        if pba in self.bad_blocks:
            raise BadBlockError(f"block {pba} is marked bad")

    def read_block(self, pba: int) -> bytes:
        """Magnetic read sector (mrs): the 512-byte payload of ``pba``.

        Heated *data* blocks read normally ("blocks 1..2^N-1 of a
        heated line can still be read magnetically, hence efficiently");
        the electrically written block 0 of a line cannot.
        """
        self._check_pba(pba)
        line = self.line_of_block(pba)
        if line is not None and pba == line.start:
            raise HeatedBlockError(
                f"block {pba} is the electrically written hash block of a "
                "heated line; use ers_block/verify_line")
        return self._mrs(pba)

    def _mrs(self, pba: int) -> bytes:
        start, end = self.geometry.block_span(pba)
        self.scanner.seek_to_block(pba)
        self.scanner.transfer(end - start, "mrb")
        bits = self.medium.read_mag_span(start, end)
        return decode_frame(bits, expected_pba=pba).payload

    def _mrs_run(self, first: int, count: int) -> List[bytes]:
        """mrs a run of ``count`` consecutive blocks in one span read.

        The sled walks the run exactly as ``count`` sequential ``_mrs``
        calls would (same seeks, same transfer charge), but the medium
        is read in a single span and decoded per block afterwards —
        one numpy gather instead of ``count``.
        """
        if count <= 0:
            return []
        start_dot, _ = self.geometry.block_span(first)
        _, end_dot = self.geometry.block_span(first + count - 1)
        for pba in range(first, first + count):
            self.scanner.seek_to_block(pba)  # continuations charge 0
        self.scanner.transfer(end_dot - start_dot, "mrb")
        bits = self.medium.read_mag_span(start_dot, end_dot)
        return [frame.payload for frame in decode_frame_run(bits, first)]

    def read_block_run(self, first: int, count: int) -> List[bytes]:
        """mrs a run of ``count`` consecutive blocks.

        Driver policy checks (range, bad block, heated hash block) are
        applied per block before anything is read; on the span engine
        the run is then read as one medium span (:meth:`_mrs_run`).
        The scalar path, and a run of one, fall back to per-block
        :meth:`read_block`.
        """
        if count <= 0:
            return []
        for pba in range(first, first + count):
            self._check_pba(pba)
            line = self.line_of_block(pba)
            if line is not None and pba == line.start:
                raise HeatedBlockError(
                    f"block {pba} is the electrically written hash block "
                    "of a heated line; use ers_block/verify_line")
        if not self.config.span_engine or count == 1:
            return [self.read_block(first + offset)
                    for offset in range(count)]
        return self._mrs_run(first, count)

    def write_block(self, pba: int, payload: bytes) -> None:
        """Magnetic write sector (mws).

        Refuses to write into a heated line when
        ``enforce_write_protect`` is set (driver policy; the medium
        itself cannot refuse).
        """
        self._check_pba(pba)
        if self.config.enforce_write_protect and self.is_block_heated(pba):
            raise HeatedBlockError(
                f"block {pba} belongs to a heated line and is read-only")
        self._mws(pba, payload)

    def _mws(self, pba: int, payload: bytes) -> None:
        bits = encode_frame(pba, payload)
        start, _end = self.geometry.block_span(pba)
        self.scanner.seek_to_block(pba)
        self.scanner.transfer(len(bits), "mwb")
        self.medium.write_mag_span(start, bits)

    def write_block_run(self, first: int, payloads: Sequence[bytes]) -> None:
        """mws a run of consecutive blocks starting at ``first``.

        Driver policy checks are applied per block; on the span engine
        the encoded frames are concatenated and written in a single
        span (the seek/transfer charges match the sequential writes —
        a run continuation costs no seek).  The scalar path falls back
        to per-block ``write_block``.
        """
        count = len(payloads)
        if count == 0:
            return
        for offset in range(count):
            pba = first + offset
            self._check_pba(pba)
            if self.config.enforce_write_protect and self.is_block_heated(pba):
                raise HeatedBlockError(
                    f"block {pba} belongs to a heated line and is read-only")
        if not self.config.span_engine:
            for offset, payload in enumerate(payloads):
                self._mws(first + offset, payload)
            return
        bits = encode_frame_run(first, list(payloads))
        start_dot, _ = self.geometry.block_span(first)
        for pba in range(first, first + count):
            self.scanner.seek_to_block(pba)  # continuations charge 0
        self.scanner.transfer(len(bits), "mwb")
        self.medium.write_mag_span(start_dot, bits)

    # -- electrical sector operations ----------------------------------------------

    def ews_block(self, pba: int, payload: bytes) -> None:
        """Electrical write sector: burn ``payload`` into block ``pba``.

        The payload (256 bytes) is Manchester-encoded over the first
        4096 dots of the span; only the H dots receive heat pulses.
        """
        self._check_pba(pba)
        if len(payload) != E_PAYLOAD_BYTES:
            raise WriteError(
                f"electrical payload must be {E_PAYLOAD_BYTES} bytes")
        pattern = np.asarray(encode_bytes(payload), dtype=bool)
        assert len(pattern) == E_REGION_DOTS
        start, _end = self.geometry.block_span(pba)
        self.scanner.seek_to_block(pba)
        self.scanner.transfer(int(pattern.sum()), "ewb")
        self.medium.heat_span(start, start + E_REGION_DOTS, pattern,
                              vectorized=self.config.span_engine)

    def ers_block(self, pba: int) -> Tuple[List[CellState], List[int]]:
        """Electrical read sector: decode the 2048 Manchester cells.

        Returns ``(cell_states, bits)`` where ``bits`` holds a logical
        bit per valid cell and ``None`` per unused/tampered cell.
        Cells that first decode as unused are re-read up to
        ``ers_cell_retries`` times: a heated dot can escape one erb
        with probability (1/4)**rounds, so an apparently unused cell in
        an otherwise written block is most likely a misread.

        Runs on the vectorized span engine unless
        ``config.span_engine`` selects the scalar reference protocol;
        verdicts, retry policy and cost accounting are identical.
        """
        codes = self._ers_codes(pba)
        states = [_CODE_TO_STATE[c] for c in codes]
        bits = [_CODE_TO_BIT[c] for c in codes]
        return states, bits

    def _ers_codes(self, pba: int) -> np.ndarray:
        """ers a block to an array of Manchester cell codes.

        Seeks, reads every cell (with the unused-cell retry policy)
        and charges the scanner; returns an int8 array of ``E_CELLS``
        cell codes (``_CODE_*``).
        """
        self._check_pba(pba)
        start, _end = self.geometry.block_span(pba)
        self.scanner.seek_to_block(pba)
        rounds = self.config.erb_rounds
        if self.config.span_engine:
            codes, erb_ops = self._ers_cells_span(start, rounds)
        else:
            codes, erb_ops = self._ers_cells_scalar(start, rounds)
        # one erb costs 1 + 4*rounds bit operations (BitOps.bit_cost)
        self.scanner.transfer(erb_ops, "erb",
                              per_bit=self.timing.t_erb_for(rounds))
        return codes

    def _ers_cells_span(self, start: int,
                        rounds: int) -> Tuple[np.ndarray, int]:
        """Span-engine cell read: bulk erb plus vectorized retries."""
        heated = self.bitops.erb_span(start, start + E_REGION_DOTS, rounds)
        erb_ops = E_REGION_DOTS
        first = heated[0::2].copy()
        second = heated[1::2].copy()
        unresolved = np.flatnonzero(~first & ~second)
        for _ in range(self.config.ers_cell_retries):
            if unresolved.size == 0:
                break
            idx = np.empty(2 * unresolved.size, dtype=np.int64)
            idx[0::2] = start + 2 * unresolved
            idx[1::2] = idx[0::2] + 1
            h = self.bitops.erb_at(idx, rounds)
            erb_ops += int(idx.size)
            h0 = h[0::2]
            h1 = h[1::2]
            first[unresolved] |= h0
            second[unresolved] |= h1
            unresolved = unresolved[~(h0 | h1)]
        codes = (first.astype(np.int8) << 1) | second.astype(np.int8)
        return codes, erb_ops

    def _ers_cells_scalar(self, start: int,
                          rounds: int) -> Tuple[np.ndarray, int]:
        """Scalar reference cell read: the paper's per-dot protocol."""
        codes = np.empty(E_CELLS, dtype=np.int8)
        erb_ops = 0
        for cell in range(E_CELLS):
            d0 = start + 2 * cell
            d1 = d0 + 1
            first = self.bitops.erb(d0, rounds) == "H"
            second = self.bitops.erb(d1, rounds) == "H"
            erb_ops += 2
            state = classify_cell(first, second)
            retries = 0
            while state is CellState.UNUSED and retries < self.config.ers_cell_retries:
                first = first or self.bitops.erb(d0, rounds) == "H"
                second = second or self.bitops.erb(d1, rounds) == "H"
                erb_ops += 2
                new_state = classify_cell(first, second)
                if new_state is not CellState.UNUSED:
                    state = new_state
                    break
                retries += 1
            codes[cell] = (int(first) << 1) | int(second)
        return codes, erb_ops

    def _ers_payload(self, pba: int) -> Tuple[Optional[bytes], List[int], bool]:
        """Decode an electrical block to payload bytes.

        Returns ``(payload_or_None, tampered_cells, looks_virgin)``.
        """
        codes = self._ers_codes(pba)
        return self._decode_codes(codes)

    @staticmethod
    def _decode_codes(codes: np.ndarray) -> Tuple[Optional[bytes], List[int], bool]:
        tampered = np.flatnonzero(codes == _CODE_TAMPERED).tolist()
        unused = codes == _CODE_UNUSED
        if unused.all():
            return None, tampered, True
        if tampered or unused.any():
            return None, tampered, False
        return np.packbits(codes == _CODE_ONE).tobytes(), tampered, False

    def _ers_codes_many(self, pbas: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Batched ``_ers_codes`` over many blocks.

        Reads every block's electrical region in one bulk erb gather
        and runs the unused-cell retry policy as shared waves across
        all blocks (each block keeps its own ``ers_cell_retries``
        budget).  Charges *nothing*: returns an ``(n, E_CELLS)`` int8
        code matrix plus the per-block erb operation counts so the
        caller can charge the scanner in protocol order.
        """
        n = len(pbas)
        if n == 0:
            return np.empty((0, E_CELLS), dtype=np.int8), np.zeros(0, np.int64)
        starts = np.empty(n, dtype=np.int64)
        for i, pba in enumerate(pbas):
            self._check_pba(pba)
            starts[i] = self.geometry.block_span(pba)[0]
        rounds = self.config.erb_rounds
        dot_idx = (starts[:, None]
                   + np.arange(E_REGION_DOTS, dtype=np.int64)).ravel()
        heated = self.bitops.erb_at(dot_idx, rounds).reshape(n, E_REGION_DOTS)
        first = heated[:, 0::2].copy()
        second = heated[:, 1::2].copy()
        erb_ops = np.full(n, E_REGION_DOTS, dtype=np.int64)
        unresolved = ~first & ~second
        for _ in range(self.config.ers_cell_retries):
            rows, cells = np.nonzero(unresolved)
            if rows.size == 0:
                break
            d0 = starts[rows] + 2 * cells
            idx = np.empty(2 * rows.size, dtype=np.int64)
            idx[0::2] = d0
            idx[1::2] = d0 + 1
            h = self.bitops.erb_at(idx, rounds)
            np.add.at(erb_ops, rows, 2)
            h0 = h[0::2]
            h1 = h[1::2]
            first[rows, cells] |= h0
            second[rows, cells] |= h1
            unresolved[rows, cells] = ~(h0 | h1)
        return (first.astype(np.int8) << 1) | second.astype(np.int8), erb_ops

    # -- the heat operation -----------------------------------------------------------

    def _check_line_shape(self, start: int, n_blocks: int) -> None:
        if n_blocks < 2 or not is_power_of_two(n_blocks):
            raise AlignmentError(
                f"line length must be a power of two >= 2, got {n_blocks}")
        if start % n_blocks:
            raise AlignmentError(
                f"line start {start} not aligned on a {n_blocks}-block boundary")
        if start + n_blocks > self.total_blocks:
            raise AlignmentError("line extends past end of medium")

    def _line_data_addresses(self, start: int, n_blocks: int) -> List[int]:
        return list(range(start + 1, start + n_blocks))

    def heat_line(self, start: int, n_blocks: int, timestamp: int = 0) -> LineRecord:
        """The atomic WO operation of Section 3.

        1. mrs blocks 1..n-1 of the line;
        2. SHA-256 over the blocks and their physical addresses;
        3. ews the Manchester encoding of the hash (+ metadata) into
           block 0;
        4. ers the hash back, or fail with :class:`HeatError`.
        """
        self._check_line_shape(start, n_blocks)
        if start in self.fragile_blocks:
            raise BadBlockError(
                f"block {start} has defective dots in its electrical "
                "region and cannot serve as a line's hash block")
        for pba in range(start, start + n_blocks):
            if pba in self.bad_blocks:
                raise BadBlockError(
                    f"line [{start}, {start + n_blocks}) contains bad block {pba}")
        for pba in range(start, start + n_blocks):
            existing = self.line_of_block(pba)
            if existing is None:
                continue
            if existing.start != start or existing.n_blocks != n_blocks:
                raise AlignmentError(
                    f"line [{start}, {start + n_blocks}) overlaps heated "
                    f"line at {existing.start} (+{existing.n_blocks})")

        addresses = self._line_data_addresses(start, n_blocks)
        blocks = self._read_line_blocks(addresses)
        digest = line_hash(addresses, blocks,
                           include_addresses=self.config.include_addresses_in_hash)
        payload = ElectricalPayload(
            line_start=start,
            n_blocks_log2=n_blocks.bit_length() - 1,
            line_hash=digest,
            timestamp=timestamp,
        ).pack()
        self.ews_block(start, payload)

        read_back, tampered, virgin = self._ers_payload(start)
        if tampered or virgin or read_back != payload:
            raise HeatError(
                f"heat verify failed for line at {start}: "
                f"{len(tampered)} tampered cells"
                + (" (was the line already heated with different data?)"
                   if tampered else ""))

        record = LineRecord(start=start, n_blocks=n_blocks,
                            line_hash=digest, timestamp=timestamp)
        self._register(record)
        return record

    def heat_lines(self, specs: Sequence[Tuple[int, int, int]]
                   ) -> List[LineRecord]:
        """Batched :meth:`heat_line` over ``(start, n_blocks,
        timestamp)`` specs (the seal-many device half).

        Digests identical to the serial loop — same blocks, same
        addresses, same per-line SHA-256 — but computed through
        :func:`line_hash_many`, so equal-length lines share
        compression rounds on the pure backend.  The electrical
        phase (ews + ers read-back, the only RNG-drawing steps of a
        heat) runs per line in input order, keeping the noise stream
        identical to a ``heat_line`` loop.  Validation is hoisted:
        every line's shape/bad-block/overlap checks (including
        overlaps *within* the batch) run before any magnetic read,
        so a doomed batch fails before the device is touched; an ers
        verify failure at line k still raises :class:`HeatError`
        with lines 0..k-1 heated and registered, exactly like the
        loop.
        """
        specs = [(int(s), int(n), int(t)) for s, n, t in specs]
        if len(specs) <= 1:
            return [self.heat_line(s, n, t) for s, n, t in specs]
        claimed: Dict[int, Tuple[int, int]] = {}
        for start, n_blocks, _ts in specs:
            self._check_line_shape(start, n_blocks)
            if start in self.fragile_blocks:
                raise BadBlockError(
                    f"block {start} has defective dots in its "
                    "electrical region and cannot serve as a line's "
                    "hash block")
            for pba in range(start, start + n_blocks):
                if pba in self.bad_blocks:
                    raise BadBlockError(
                        f"line [{start}, {start + n_blocks}) contains "
                        f"bad block {pba}")
            for pba in range(start, start + n_blocks):
                existing = self.line_of_block(pba)
                if existing is not None and (
                        existing.start != start
                        or existing.n_blocks != n_blocks):
                    raise AlignmentError(
                        f"line [{start}, {start + n_blocks}) overlaps "
                        f"heated line at {existing.start} "
                        f"(+{existing.n_blocks})")
                batched = claimed.get(pba)
                if batched is not None and batched != (start, n_blocks):
                    raise AlignmentError(
                        f"line [{start}, {start + n_blocks}) overlaps "
                        f"heated line at {batched[0]} (+{batched[1]})")
            for pba in range(start, start + n_blocks):
                claimed[pba] = (start, n_blocks)
        lines: List[Tuple[List[int], List[bytes]]] = []
        for start, n_blocks, _ts in specs:
            addresses = self._line_data_addresses(start, n_blocks)
            lines.append((addresses,
                          self._read_line_blocks(addresses)))
        digests = line_hash_many(
            lines,
            include_addresses=self.config.include_addresses_in_hash)
        records: List[LineRecord] = []
        for (start, n_blocks, timestamp), digest in zip(specs, digests):
            payload = ElectricalPayload(
                line_start=start,
                n_blocks_log2=n_blocks.bit_length() - 1,
                line_hash=digest,
                timestamp=timestamp,
            ).pack()
            self.ews_block(start, payload)
            read_back, tampered, virgin = self._ers_payload(start)
            if tampered or virgin or read_back != payload:
                raise HeatError(
                    f"heat verify failed for line at {start}: "
                    f"{len(tampered)} tampered cells"
                    + (" (was the line already heated with different "
                       "data?)" if tampered else ""))
            record = LineRecord(start=start, n_blocks=n_blocks,
                                line_hash=digest, timestamp=timestamp)
            self._register(record)
            records.append(record)
        return records

    def _register(self, record: LineRecord) -> None:
        self._lines[record.start] = record
        for pba in range(record.start, record.start + record.n_blocks):
            self._block_to_line[pba] = record.start

    # -- verification --------------------------------------------------------------------

    def verify_line(self, start: int) -> VerificationResult:
        """Verify a heated line: recompute the hash and compare.

        "A mismatch represents evidence of tampering" (Section 3).

        The electrical read is repeated up to ``verify_retries`` times
        when it comes back inconsistent (incomplete cells or a payload
        CRC failure): a single misread heated dot is transient, while
        true HH tampering shows up almost surely across passes.
        """
        meta = None
        tampered: List[int] = []
        virgin = False
        payload = None
        for _attempt in range(1 + self.config.verify_retries):
            payload, tampered, virgin = self._ers_payload(start)
            if tampered or virgin:
                break
            if payload is not None:
                try:
                    meta = ElectricalPayload.unpack(payload)
                    break
                except ReadError:
                    meta = None  # CRC failed: re-read before concluding
        if tampered:
            return VerificationResult(status=VerifyStatus.CELL_TAMPERED,
                                      start=start, tampered_cells=tampered)
        if virgin:
            return VerificationResult(status=VerifyStatus.NOT_A_LINE, start=start)
        if meta is None:
            return VerificationResult(status=VerifyStatus.UNREADABLE, start=start)
        return self._verify_magnetic(start, meta)

    def _read_line_blocks(self, addresses: List[int]) -> List[bytes]:
        """mrs a line's (consecutive) data blocks, as one span run on
        the span engine."""
        if self.config.span_engine and addresses:
            return self._mrs_run(addresses[0], len(addresses))
        return [self._mrs(pba) for pba in addresses]

    def _verify_magnetic_read(self, start: int, meta: ElectricalPayload):
        """Read half of :meth:`_verify_magnetic`: the magnetic span
        reads (and their charges), with the digest deferred.  Returns
        a terminal :class:`VerificationResult`, or the
        ``(addresses, blocks)`` awaiting a hash comparison."""
        n_blocks = 1 << meta.n_blocks_log2
        if meta.line_start != start:
            return VerificationResult(status=VerifyStatus.HASH_MISMATCH,
                                      start=start, stored_hash=meta.line_hash)
        addresses = self._line_data_addresses(start, n_blocks)
        try:
            blocks = self._read_line_blocks(addresses)
        except ReadError:
            # a data block no longer decodes: overwritten garbage,
            # electrically destroyed dots, or a bulk erase
            return VerificationResult(status=VerifyStatus.UNREADABLE,
                                      start=start, stored_hash=meta.line_hash)
        return addresses, blocks

    @staticmethod
    def _verify_digest_result(start: int, meta: ElectricalPayload,
                              digest: bytes) -> VerificationResult:
        if digest != meta.line_hash:
            return VerificationResult(status=VerifyStatus.HASH_MISMATCH,
                                      start=start, stored_hash=meta.line_hash,
                                      computed_hash=digest)
        return VerificationResult(status=VerifyStatus.INTACT, start=start,
                                  stored_hash=meta.line_hash,
                                  computed_hash=digest)

    def _verify_magnetic(self, start: int,
                         meta: ElectricalPayload) -> VerificationResult:
        """Magnetic half of line verification: recompute and compare
        the line hash recorded in ``meta``."""
        read = self._verify_magnetic_read(start, meta)
        if isinstance(read, VerificationResult):
            return read
        addresses, blocks = read
        digest = line_hash(addresses, blocks,
                           include_addresses=self.config.include_addresses_in_hash)
        return self._verify_digest_result(start, meta, digest)

    def verify_lines(self, starts: Sequence[int]) -> List[VerificationResult]:
        """Batched :meth:`verify_line` over many line starts.

        The audit hot path: the ``fsck``/``fossil``/``venti``/audit-log
        layers all verify every sealed line of an arena.  On the span
        engine the electrical reads of *all* lines run as one bulk erb
        gather with shared retry waves (:meth:`_ers_codes_many`); lines
        whose first electrical read comes back inconsistent (partial
        cells or a payload CRC failure) fall back to the per-line
        retrying :meth:`verify_line`, preserving its semantics.
        Verdicts are returned in input order.

        Scanner charges replay the sequential per-line protocol order
        (seek + erb transfer, then the data-block reads), so the
        simulated device time matches a ``verify_line`` loop up to the
        per-pass randomness of the heated-cell retry counts.
        """
        starts = [int(s) for s in starts]
        if not self.config.span_engine or len(starts) <= 1:
            return [self.verify_line(start) for start in starts]
        codes, erb_ops = self._ers_codes_many(starts)
        per_bit = self.timing.t_erb_for(self.config.erb_rounds)
        results: List[Optional[VerificationResult]] = []
        # lines whose reads all succeeded wait here so their digests
        # compute in one batched pass (equal-length lines share one
        # set of compression rounds on the pure backend); the device
        # charges above already happened in protocol order
        pending: List[Tuple[int, int, ElectricalPayload,
                            List[int], List[bytes]]] = []
        for i, start in enumerate(starts):
            self.scanner.seek_to_block(start)
            self.scanner.transfer(int(erb_ops[i]), "erb", per_bit=per_bit)
            payload, tampered, virgin = self._decode_codes(codes[i])
            if tampered:
                results.append(VerificationResult(
                    status=VerifyStatus.CELL_TAMPERED, start=start,
                    tampered_cells=tampered))
                continue
            if virgin:
                results.append(VerificationResult(
                    status=VerifyStatus.NOT_A_LINE, start=start))
                continue
            if payload is None:
                # incomplete cells: re-read with the full retry policy
                results.append(self.verify_line(start))
                continue
            try:
                meta = ElectricalPayload.unpack(payload)
            except ReadError:
                # CRC failed: verify_line re-reads before concluding
                results.append(self.verify_line(start))
                continue
            read = self._verify_magnetic_read(start, meta)
            if isinstance(read, VerificationResult):
                results.append(read)
                continue
            addresses, blocks = read
            pending.append((len(results), start, meta, addresses, blocks))
            results.append(None)
        if pending:
            digests = line_hash_many(
                [(addresses, blocks)
                 for _i, _s, _m, addresses, blocks in pending],
                include_addresses=self.config.include_addresses_in_hash)
            for (slot, start, meta, _a, _b), digest in zip(pending, digests):
                results[slot] = self._verify_digest_result(
                    start, meta, digest)
        return results  # type: ignore[return-value]

    def verify_all(self) -> List[VerificationResult]:
        """Verify every registered line (audit sweep, batched)."""
        return self.verify_lines([rec.start for rec in self.heated_lines])

    # -- discovery (fsck support) -----------------------------------------------------------

    def probe_block_electrical(self, pba: int, probe_cells: int = 8) -> bool:
        """Cheaply test whether ``pba`` carries electrical data.

        Reads the first ``probe_cells`` Manchester cells with erb; a
        virgin block decodes all-unused (healthy dots never fail the
        erb verification), while any written electrical block has heat
        in its magic cells.
        """
        self._check_pba(pba)
        start, _end = self.geometry.block_span(pba)
        self.scanner.seek_to_block(pba)
        rounds = self.config.erb_rounds
        if self.config.span_engine:
            # The scalar loop stops at the first H; a dot is only ever
            # skipped after detection has already succeeded, so probing
            # the whole window at once has the same detection
            # probability (and the same fixed scanner charge below).
            heated = bool(
                self.bitops.erb_span(start, start + 2 * probe_cells,
                                     rounds).any())
        else:
            heated = False
            for cell in range(probe_cells):
                d0 = start + 2 * cell
                if self.bitops.erb(d0, rounds) == "H" or \
                   self.bitops.erb(d0 + 1, rounds) == "H":
                    heated = True
                    break
        self.scanner.transfer(2 * probe_cells, "erb",
                              per_bit=self.timing.t_erb_for(rounds))
        return heated

    def load_line(self, start: int) -> Optional[LineRecord]:
        """Re-register one heated line from its block 0.

        Used at mount time when a checkpoint remembers where lines are:
        a single ers read per line instead of a whole-medium scan.
        Returns None when the block does not hold a valid line head.
        """
        payload, _tampered, _virgin = self._ers_payload(start)
        if payload is None:
            return None
        try:
            meta = ElectricalPayload.unpack(payload)
        except ReadError:
            return None
        if meta.line_start != start:
            return None
        record = LineRecord(start=start, n_blocks=1 << meta.n_blocks_log2,
                            line_hash=meta.line_hash, timestamp=meta.timestamp)
        self._register(record)
        return record

    def scan_lines(self) -> List[LineRecord]:
        """Rebuild the line registry by scanning the whole medium.

        The "fsck style scan ... would definitely recover (albeit
        slowly) all the heated files" of Section 5.2.  Every block is
        probed electrically; blocks that respond are fully ers-read and
        parsed.  Returns the recovered records (also re-registered).
        """
        recovered: List[LineRecord] = []
        self._lines.clear()
        self._block_to_line.clear()
        for pba in range(self.total_blocks):
            if pba in self.bad_blocks:
                continue
            if pba in self._block_to_line:
                continue  # interior of an already recovered line
            if not self.probe_block_electrical(pba):
                continue
            payload, tampered, _virgin = self._ers_payload(pba)
            if payload is None:
                continue  # tampered or partial: surfaced by verify, not scan
            try:
                meta = ElectricalPayload.unpack(payload)
            except ReadError:
                continue
            record = LineRecord(start=meta.line_start,
                                n_blocks=1 << meta.n_blocks_log2,
                                line_hash=meta.line_hash,
                                timestamp=meta.timestamp)
            self._register(record)
            recovered.append(record)
        return recovered

    # -- lifecycle ---------------------------------------------------------------------------

    def capacity_report(self) -> Dict[str, int]:
        """Capacity accounting: total / writable / read-only / bad."""
        return {
            "total_blocks": self.total_blocks,
            "writable_blocks": self.writable_block_count(),
            "heated_blocks": self.heated_block_count(),
            "bad_blocks": len(self.bad_blocks),
        }

    def is_decommissionable(self) -> bool:
        """True when no WMRM capacity remains (end of device life,
        Section 8: the device "ends life as a Read-only device")."""
        return self.writable_block_count() <= 0
