"""The physical shred operation (Section 8, "Deletion").

"It is possible to implement a physical shred operation on the device
(similar to what has been achieved for optical storage), which in our
case would physically destroy the expired data by precise local
heating."

Shredding a heated line heats *every* dot of every data block, which

* destroys the data beyond any magnetic recovery (the same argument
  as for heat itself: even a FIB operator cannot rebuild a dot
  undetectably), and
* leaves an unmistakable, deliberate signature — a data block whose
  dots are *all* H can only be the result of a shred, never of the
  partial damage an attacker's ewb tampering produces.

The paper is explicit that shredding "is vulnerable to attacks by a
dishonest CEO and as such not wholly satisfactory": a shred destroys
the data while keeping the *fact* of destruction evident.  Policy —
who may shred, and when — stays outside the device, exactly as in the
paper's discussion of retention periods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from ..errors import DeviceError

if TYPE_CHECKING:  # pragma: no cover
    from .sero import SERODevice


class ShredError(DeviceError):
    """The shred operation could not be applied."""


@dataclass
class ShredReport:
    """Outcome of shredding one line.

    Attributes:
        start: line start PBA.
        data_blocks: number of data blocks destroyed.
        dots_heated: heat pulses spent.
    """

    start: int
    data_blocks: int
    dots_heated: int


def shred_line(device: "SERODevice", start: int) -> ShredReport:
    """Physically destroy the data blocks of a heated line.

    Only heated lines can be shredded: shredding WMRM data would be an
    ordinary overwrite-style deletion, for which the paper's answer is
    simply ``write``.  The hash block is left untouched so the line
    keeps announcing "data existed here and was destroyed".
    """
    record = device.line_of_block(start)
    if record is None or record.start != start:
        raise ShredError(f"no heated line starts at block {start}")
    dots = 0
    for pba in range(start + 1, start + record.n_blocks):
        span_start, span_end = device.geometry.block_span(pba)
        device.scanner.seek_to_block(pba)
        device.scanner.transfer(span_end - span_start, "ewb")
        device.medium.heat_span(span_start, span_end)
        dots += span_end - span_start
    return ShredReport(start=start, data_blocks=record.n_blocks - 1,
                       dots_heated=dots)


def is_line_shredded(device: "SERODevice", start: int) -> bool:
    """True when every data-block dot of the line is heated.

    The all-H signature distinguishes a deliberate shred from partial
    ewb tampering (which an attacker performs sparingly: heating a
    whole line takes as long as a shred and is just as loud).
    """
    record = device.line_of_block(start)
    if record is None or record.start != start:
        return False
    for pba in range(start + 1, start + record.n_blocks):
        span_start, span_end = device.geometry.block_span(pba)
        heated = device.medium.image_heated(range(span_start, span_end))
        if not heated.all():
            return False
    return True


def classify_destroyed_line(device: "SERODevice", start: int) -> str:
    """Classify a non-intact line: ``"shredded"`` (deliberate, all-H
    data), ``"tampered"`` (anything else), or ``"intact"``."""
    from .sero import VerifyStatus

    result = device.verify_line(start)
    if result.status is VerifyStatus.INTACT:
        return "intact"
    if is_line_shredded(device, start):
        return "shredded"
    return "tampered"


def shredded_lines(device: "SERODevice") -> List[int]:
    """Starts of all fully shredded lines on the device."""
    return [rec.start for rec in device.heated_lines
            if is_line_shredded(device, rec.start)]
