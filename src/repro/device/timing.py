"""Latency/cost model of the SERO probe-storage device.

The paper gives the cost *structure* rather than absolute numbers: erb
"is at least 5 times slower than mrb, and ewb is also slower than mwb
because of the local heating process", so "the idea is to use the erb
and ewb operations sparingly" (Section 3).  The defaults below follow
the probe-storage literature the paper cites (Pozidis et al.: ~Mbit/s
per probe, large probe arrays, millisecond mechanical motion):

* magnetic bit read/write: 1 us per bit per probe,
* electrical write (heat pulse): 100 us per bit,
* probe-array parallelism: 64 probes work in parallel on a transfer,
* sled seek: 0.2 ms settle + distance / 10 mm/s.

The :class:`CostAccount` is a simple accumulating clock; every device
operation charges it, and benchmarks read per-category totals off it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class TimingModel:
    """Per-operation latency parameters.

    Attributes:
        t_mrb: magnetic bit read time [s].
        t_mwb: magnetic bit write time [s].
        t_ewb: electrical (heat) bit write time [s].
        parallelism: probes transferring concurrently within a block.
        seek_settle: fixed mechanical settle per seek [s].
        seek_velocity: sled velocity [m/s].
    """

    t_mrb: float = 1.0e-6
    t_mwb: float = 1.0e-6
    t_ewb: float = 100.0e-6
    parallelism: int = 64
    seek_settle: float = 0.2e-3
    seek_velocity: float = 10.0e-3

    @property
    def t_erb(self) -> float:
        """Electrical bit read time [s]: the 5-step mrb/mwb sequence of
        Section 3 (1 mrb + 2 mwb + 2 mrb), hence exactly 5 bit ops."""
        return 3.0 * self.t_mrb + 2.0 * self.t_mwb

    def t_erb_for(self, rounds: int = 1) -> float:
        """Electrical bit read time [s] with ``rounds`` invert/verify
        rounds: 1 + 2*rounds mrb plus 2*rounds mwb, i.e. the
        ``1 + 4*rounds`` bit operations of ``BitOps.bit_cost``."""
        if rounds < 1:
            raise ValueError("erb needs at least one verification round")
        return (1 + 2 * rounds) * self.t_mrb + 2 * rounds * self.t_mwb

    def transfer_time(self, nbits: int, t_bit: float) -> float:
        """Time to move ``nbits`` with per-bit cost ``t_bit`` across the
        probe array."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        import math

        return math.ceil(nbits / self.parallelism) * t_bit

    def seek_time(self, distance_m: float) -> float:
        """Mechanical seek latency for a sled move of ``distance_m``."""
        return self.seek_settle + abs(distance_m) / self.seek_velocity


@dataclass
class CostAccount:
    """Accumulated device time, broken down by operation category."""

    elapsed: float = 0.0
    by_category: Dict[str, float] = field(default_factory=dict)
    op_counts: Dict[str, int] = field(default_factory=dict)

    def charge(self, category: str, seconds: float, ops: int = 1) -> None:
        """Add ``seconds`` of latency under ``category``."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.elapsed += seconds
        self.by_category[category] = self.by_category.get(category, 0.0) + seconds
        self.op_counts[category] = self.op_counts.get(category, 0) + ops

    def reset(self) -> None:
        """Zero the clock and all counters."""
        self.elapsed = 0.0
        self.by_category.clear()
        self.op_counts.clear()

    def snapshot(self) -> Dict[str, float]:
        """Copy of the per-category time totals."""
        return dict(self.by_category)

    def __str__(self) -> str:
        parts = ", ".join(
            f"{k}={v * 1e3:.3f}ms" for k, v in sorted(self.by_category.items()))
        return f"CostAccount(total={self.elapsed * 1e3:.3f}ms; {parts})"
