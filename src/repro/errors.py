"""Exception hierarchy for the SERO reproduction library.

Every exception raised by this package derives from :class:`ReproError`
so that callers can catch library failures with a single handler while
still being able to discriminate between device-level, file-system
level and integrity failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the library exception hierarchy."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""


# ---------------------------------------------------------------------------
# Medium / physics


class MediumError(ReproError):
    """Base class for errors raised by the patterned-medium simulation."""


class DotAddressError(MediumError):
    """A dot coordinate lies outside the medium matrix."""


class DotDestroyedError(MediumError):
    """A magnetic operation was attempted on a heated (destroyed) dot.

    The paper's protocol requires that magnetically written data is only
    read magnetically and electrically written data only electrically;
    violating the protocol surfaces as this error (or as a read error at
    the sector level).
    """


# ---------------------------------------------------------------------------
# Device


class DeviceError(ReproError):
    """Base class for SERO device-level errors."""


class BadBlockError(DeviceError):
    """The addressed block is marked bad (fabrication defect)."""


class ReadError(DeviceError):
    """A sector read failed CRC/ECC verification."""


class WriteError(DeviceError):
    """A sector write could not be completed or verified."""


class HeatedBlockError(DeviceError):
    """A magnetic write targeted a block inside a heated line.

    Heated data blocks may still be *read* magnetically, but magnetic
    writes to them are tamper attempts: the device performs them (an
    attacker with direct medium access cannot be stopped) but a
    well-behaved driver refuses, raising this error.
    """


class HeatError(DeviceError):
    """The heat-line write-once operation failed its verify step."""


class AlignmentError(DeviceError):
    """A line operation was given a block range not aligned on a 2**N
    boundary, or with a length that is not a power of two."""


# ---------------------------------------------------------------------------
# Tamper evidence


class TamperEvidentError(ReproError):
    """Base class for conditions that constitute evidence of tampering."""


class HashMismatchError(TamperEvidentError):
    """A heated line's recomputed hash does not match the stored hash."""


class InvalidCellError(TamperEvidentError):
    """A Manchester cell decoded to the illegal ``HH`` pattern."""


# ---------------------------------------------------------------------------
# File system


class FileSystemError(ReproError):
    """Base class for SERO file-system errors."""


class NoSpaceError(FileSystemError):
    """The writable (unheated) area of the device is exhausted."""


class FileNotFoundError_(FileSystemError):
    """Named file does not exist (suffixed to avoid shadowing builtins)."""


class FileExistsError_(FileSystemError):
    """Named file already exists."""


class ImmutableFileError(FileSystemError):
    """A mutating operation (write/unlink/link) targeted a heated file."""


class NotADirectoryError_(FileSystemError):
    """Path component is not a directory."""


class DirectoryNotEmptyError(FileSystemError):
    """Attempt to remove a non-empty directory."""


# ---------------------------------------------------------------------------
# Integrity structures


class IntegrityError(ReproError):
    """Base class for Venti / fossilised-index errors."""


class UnknownScoreError(IntegrityError):
    """A content address (score) is not present in the store."""


class FossilSlotError(IntegrityError):
    """A fossilised-index node slot was already occupied (collision) or
    an insert targeted a sealed (heated) node."""
