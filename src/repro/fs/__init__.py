"""SeroFS: the SERO-aware log-structured file system (Section 4).

* :mod:`~repro.fs.lfs` — :class:`SeroFS` (format/mount, file API,
  heat_file/verify_file).
* :mod:`~repro.fs.inode` / :mod:`~repro.fs.directory` — on-disk
  metadata formats.
* :mod:`~repro.fs.segment` — block states and segment accounting.
* :mod:`~repro.fs.cleaner` — greedy / cost-benefit / SERO-aware
  garbage collection.
* :mod:`~repro.fs.bimodal` — heated-segment bimodality metrics.
* :mod:`~repro.fs.fsck` — consistency audit and the forensic deep
  scan that recovers heated files with no directory tree.
* :mod:`~repro.fs.layout` — superblock and checkpoint formats.
"""

from .bimodal import BimodalityReport, bimodality, cleaner_waste_fraction
from .cleaner import POLICIES, clean_segment, run_cleaner, select_victim
from .fsck import DeepScanReport, FsckReport, RecoveredFile, deep_scan, fsck
from .inode import MAX_FILE_SIZE, FileType, Inode
from .layout import Checkpoint, Superblock
from .lfs import ROOT_INO, FSConfig, FileStat, SeroFS
from .segment import BlockState, Segment, SegmentTable

__all__ = [
    "SeroFS",
    "FSConfig",
    "FileStat",
    "ROOT_INO",
    "FileType",
    "Inode",
    "MAX_FILE_SIZE",
    "BlockState",
    "Segment",
    "SegmentTable",
    "POLICIES",
    "select_victim",
    "clean_segment",
    "run_cleaner",
    "bimodality",
    "BimodalityReport",
    "cleaner_waste_fraction",
    "fsck",
    "deep_scan",
    "FsckReport",
    "DeepScanReport",
    "RecoveredFile",
    "Superblock",
    "Checkpoint",
]
