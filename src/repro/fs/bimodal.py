"""Bimodality metrics for the heated-segment distribution.

Section 4.1 argues that a good clustering policy "creates a bimodal
distribution of heated segments; that is we have only mostly heated
segments and mostly unheated segments", which (1) keeps read/write
performance up, (2) wastes no space, and (3) lets the cleaner skip
heated segments.  These metrics quantify how bimodal a file system's
segment population actually is, for the Section 4 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from .lfs import SeroFS


@dataclass
class BimodalityReport:
    """Distribution statistics of per-segment heated fractions.

    Attributes:
        fractions: heated fraction of every non-reserved segment.
        mostly_heated: segments with >= ``hot_threshold`` heat.
        mostly_unheated: segments with <= ``cold_threshold`` heat.
        mixed: everything in between — the bad case.
        index: (mostly_heated + mostly_unheated) / all — 1.0 means
            perfectly bimodal, 0.0 means every segment is mixed.
    """

    fractions: List[float]
    mostly_heated: int
    mostly_unheated: int
    mixed: int

    @property
    def index(self) -> float:
        """Bimodality index in [0, 1]."""
        total = self.mostly_heated + self.mostly_unheated + self.mixed
        if total == 0:
            return 1.0
        return (self.mostly_heated + self.mostly_unheated) / total


def bimodality(fs: "SeroFS", hot_threshold: float = 0.8,
               cold_threshold: float = 0.2) -> BimodalityReport:
    """Measure how bimodal the segment heat distribution is."""
    fractions: List[float] = []
    hot = cold = mixed = 0
    for seg in fs.table.iter_segments():
        f = seg.heated_fraction
        fractions.append(f)
        if f >= hot_threshold:
            hot += 1
        elif f <= cold_threshold:
            cold += 1
        else:
            mixed += 1
    return BimodalityReport(fractions=fractions, mostly_heated=hot,
                            mostly_unheated=cold, mixed=mixed)


def cleaner_waste_fraction(fs: "SeroFS") -> float:
    """Fraction of non-reserved, non-free capacity locked in *mixed*
    segments — space the cleaner keeps visiting but can never fully
    reclaim.  A proxy for the bandwidth waste of poor clustering."""
    locked = 0
    used = 0
    for seg in fs.table.iter_segments():
        occupied = seg.live + seg.dead + seg.heated
        used += occupied
        if 0 < seg.heated < seg.size - seg.reserved:
            locked += occupied
    if used == 0:
        return 0.0
    return locked / used
