"""The segment cleaner (garbage collector) and its victim policies.

Section 4.1: "once a line has been heated it cannot be copied by the
garbage collector, since a heated line leaves no reusable space behind
... the garbage collector skips over heated segments, avoiding reading
and writing them repeatedly, thus saving on disk bandwidth."

Three policies are provided:

* ``greedy`` — classic lowest-utilisation victim; blind to heat, so as
  the device ages it keeps picking segments whose space is mostly
  heated and unreclaimable.
* ``cost-benefit`` — Rosenblum/Ousterhout benefit/cost with segment
  age; also heat-blind.
* ``sero`` — the paper's policy: heated segments are skipped entirely,
  and among the rest the cost-benefit score counts heated blocks as
  permanently live (they are never reclaimable).

Cleaning relocates whole files: every file owning a live block in the
victim is rewritten at the log head.  This both frees the victim and
re-clusters scattered files — the clustering behaviour Section 4.1
wants from the garbage collector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set

from ..errors import FileNotFoundError_, ReadError
from .segment import BlockState, Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .lfs import SeroFS

POLICIES = ("greedy", "cost-benefit", "sero")


def _score_greedy(seg: Segment, _tick: int) -> float:
    """Greedy: prefer the lowest live fraction (max reclaim now)."""
    return -(seg.live / seg.size)


def _score_cost_benefit(seg: Segment, tick: int) -> float:
    """LFS benefit/cost = free_fraction * age / (1 + live_fraction)."""
    u = seg.live / seg.size
    age = max(tick - seg.mtime, 1)
    return (1.0 - u) * age / (1.0 + u)


def _score_sero(seg: Segment, tick: int) -> float:
    """SERO-aware cost-benefit: heated blocks are permanently
    unreclaimable, so they count as live in the cost and reduce the
    benefit; fully/heavily heated segments score ~0."""
    effective_live = (seg.live + seg.heated) / seg.size
    reclaimable = seg.dead / seg.size
    age = max(tick - seg.mtime, 1)
    return reclaimable * age / (1.0 + effective_live)


_SCORERS = {
    "greedy": _score_greedy,
    "cost-benefit": _score_cost_benefit,
    "sero": _score_sero,
}


def select_victim(fs: "SeroFS", policy: Optional[str] = None,
                  exclude: Optional[Set[int]] = None) -> Optional[Segment]:
    """Pick the best victim segment under ``policy``.

    Only segments with something to reclaim (dead blocks) qualify;
    under the ``sero`` policy segments containing heated blocks are
    skipped outright whenever any heat-free candidate exists.
    """
    policy = policy or fs.config.cleaner_policy
    scorer = _SCORERS[policy]
    exclude = exclude or set()
    candidates: List[Segment] = []
    for seg in fs.table.iter_segments():
        if seg.index in exclude or seg.index == fs._cursor_segment:
            continue
        if seg.dead == 0:
            continue
        candidates.append(seg)
    if not candidates:
        return None
    if policy == "sero":
        cool = [seg for seg in candidates if seg.heated == 0]
        if cool:
            candidates = cool
    return max(candidates, key=lambda seg: scorer(seg, fs.tick))


def clean_segment(fs: "SeroFS", victim: Segment) -> int:
    """Clean one segment: relocate its live files, reclaim its space.

    Returns the number of blocks reclaimed.  Heated blocks stay where
    they are (physically they cannot move), so a segment containing
    heated lines can never be fully reclaimed — the paper's core
    fragmentation argument.
    """
    live = fs.table.live_blocks_of_segment(victim)
    owners = sorted({info.ino for _pba, info in live})
    # headroom check: relocation rewrites whole files under the
    # no-overwrite discipline, so every owner's full block footprint
    # must fit in FREE space before any old copy can be retired;
    # cleaning without headroom would fail part-way, so skip instead
    # (another victim may still be cleanable)
    needed = 0
    for ino in owners:
        try:
            inode = fs._read_inode(ino)
        except (FileNotFoundError_, ReadError):
            continue
        if fs.is_ino_heated(ino):
            continue
        needed += inode.n_blocks + len(inode.indirect) + 1
    if needed > fs.table.free_blocks():
        return 0
    for ino in owners:
        _relocate_file(fs, ino)
    reclaimed = 0
    for pba in range(victim.start, victim.start + victim.size):
        if fs.table.state(pba) is BlockState.DEAD:
            fs.table.set_state(pba, BlockState.FREE)
            reclaimed += 1
    fs._stats["cleaner_runs"] += 1
    fs._stats["blocks_cleaned"] += reclaimed
    return reclaimed


def _relocate_file(fs: "SeroFS", ino: int) -> None:
    """Rewrite a whole file at the log head (cleaning/clustering)."""
    try:
        inode = fs._read_inode(ino)
    except (FileNotFoundError_, ReadError):
        return
    if fs.is_ino_heated(ino):
        return  # heated files are immovable
    data = fs._read_content(inode)
    fs._write_file_blocks(inode, data)


def run_cleaner(fs: "SeroFS", max_segments: int = 1,
                policy: Optional[str] = None) -> int:
    """Clean up to ``max_segments`` victims; returns blocks reclaimed."""
    total = 0
    tried: Set[int] = set()
    for _ in range(max_segments):
        victim = select_victim(fs, policy=policy, exclude=tried)
        if victim is None:
            break
        tried.add(victim.index)
        total += clean_segment(fs, victim)
    return total
