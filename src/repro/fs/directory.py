"""Directory file format.

A directory is an ordinary file whose payload is a sequence of entries

``(name_len u16, file_type u8, ino u64, name utf-8)``

terminated by a zero ``name_len``.  Directories are small in the
workloads the paper targets (compliance archives, database snapshot
sets), so they are rewritten whole on every change; what matters for
the reproduction is that a *heated* directory — e.g. one maintained as
a fossilised index, Section 5.2 — becomes immutable like any other
heated file.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from ..errors import FileSystemError, ReadError
from .inode import FileType

_ENTRY_HEAD = ">HBQ"
_MAX_NAME = 255


def pack_entries(entries: Dict[str, Tuple[FileType, int]]) -> bytes:
    """Serialise ``{name: (ftype, ino)}`` to directory payload bytes."""
    out = bytearray()
    for name, (ftype, ino) in sorted(entries.items()):
        raw = name.encode("utf-8")
        if not raw:
            raise FileSystemError("empty directory entry name")
        if len(raw) > _MAX_NAME:
            raise FileSystemError(f"name too long: {name!r}")
        if "/" in name:
            raise FileSystemError(f"name may not contain '/': {name!r}")
        out += struct.pack(_ENTRY_HEAD, len(raw), int(ftype), ino)
        out += raw
    out += struct.pack(">H", 0)
    return bytes(out)


def unpack_entries(payload: bytes) -> Dict[str, Tuple[FileType, int]]:
    """Parse directory payload bytes back to ``{name: (ftype, ino)}``."""
    entries: Dict[str, Tuple[FileType, int]] = {}
    offset = 0
    head_size = struct.calcsize(_ENTRY_HEAD)
    while True:
        if offset + 2 > len(payload):
            raise ReadError("truncated directory payload")
        (name_len,) = struct.unpack_from(">H", payload, offset)
        if name_len == 0:
            return entries
        if offset + head_size + name_len > len(payload):
            raise ReadError("truncated directory entry")
        name_len2, ftype, ino = struct.unpack_from(_ENTRY_HEAD, payload, offset)
        offset += head_size
        name = payload[offset:offset + name_len2].decode("utf-8")
        offset += name_len2
        entries[name] = (FileType(ftype), ino)


def split_path(path: str) -> List[str]:
    """Split an absolute path into components; '/' -> []."""
    if not path.startswith("/"):
        raise FileSystemError(f"paths must be absolute: {path!r}")
    return [part for part in path.split("/") if part]
