"""File-system check and forensic recovery.

Section 5.2: "Assume that the attacker clears the directory structure,
then a fsck style scan of the medium would definitely recover (albeit
slowly) all the heated files."  This module implements that scan:

* :func:`deep_scan` — device-level: rediscovers every heated line by
  electrical probing (no checkpoint, no directories needed), parses
  each line's inode block and returns recovered files with their name
  hints, contents and verification results.
* :func:`fsck` — consistency audit of a mounted file system: cross
  checks the imap, block ownership, directory tree and line registry,
  and verifies every heated line's hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..device.sero import SERODevice, VerificationResult, VerifyStatus
from ..errors import ReadError
from .inode import FileType, Inode, unpack_pointer_block
from .segment import BlockState

if TYPE_CHECKING:  # pragma: no cover
    from ..api.store import TamperEvidentStore
    from .lfs import SeroFS


def _as_device(target) -> SERODevice:
    """Accept a :class:`SERODevice` or anything fronting one (the
    :class:`~repro.api.store.TamperEvidentStore` façade)."""
    if isinstance(target, SERODevice):
        return target
    inner = getattr(target, "device", None)
    if isinstance(inner, SERODevice):
        return inner
    raise TypeError(f"expected a SERODevice or a store façade, "
                    f"got {type(target).__name__}")


def _as_fs(target) -> "SeroFS":
    """Accept a :class:`SeroFS` or a façade carrying one."""
    from .lfs import SeroFS

    if isinstance(target, SeroFS):
        return target
    inner = getattr(target, "fs", None)
    if isinstance(inner, SeroFS):
        return inner
    raise TypeError(f"expected a SeroFS or a store façade with a file "
                    f"system, got {type(target).__name__}")


@dataclass
class RecoveredFile:
    """One heated file recovered by the deep scan.

    Attributes:
        line_start: PBA of the line's hash block.
        ino: inode number from the recovered inode.
        name_hint: basename recorded in the inode.
        size: file size from the inode.
        data: recovered contents (None when unreadable).
        verification: the line's hash verification result.
    """

    line_start: int
    ino: int
    name_hint: str
    size: int
    data: Optional[bytes]
    verification: VerificationResult


@dataclass
class DeepScanReport:
    """Outcome of a forensic deep scan.

    ``blocks_scanned`` and ``device_seconds`` expose the cost of the
    Section 5.2 "albeit slowly" caveat: the whole-medium electrical
    probe dominates, so they are what the recovery benchmarks track.
    """

    recovered: List[RecoveredFile] = field(default_factory=list)
    tampered_lines: List[VerificationResult] = field(default_factory=list)
    unparseable_lines: List[int] = field(default_factory=list)
    blocks_scanned: int = 0
    device_seconds: float = 0.0

    @property
    def intact_count(self) -> int:
        """Recovered files whose hash verified INTACT."""
        return sum(1 for f in self.recovered
                   if f.verification.status is VerifyStatus.INTACT)


def _pointer_runs(pointers: List[int]) -> List[tuple]:
    """Group ``pointers`` (in order) into ``(first, count)`` runs of
    consecutive PBAs — log-structured writes lay file blocks out
    sequentially inside the line, so a recovered file is typically one
    or two runs."""
    runs: List[tuple] = []
    for pba in pointers:
        if runs and pba == runs[-1][0] + runs[-1][1]:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((pba, 1))
    return runs


def _read_pointers(device: SERODevice, pointers: List[int],
                   batch: bool) -> List[bytes]:
    """The payloads behind ``pointers``, span-batched when allowed."""
    if not batch:
        return [device.read_block(pba) for pba in pointers]
    chunks: List[bytes] = []
    for first, count in _pointer_runs(pointers):
        chunks.extend(device.read_block_run(first, count))
    return chunks


def deep_scan(device: "SERODevice | TamperEvidentStore", *,
              batch_pointer_reads: Optional[bool] = None) -> DeepScanReport:
    """Recover all heated files straight from the medium.

    Works with no checkpoint, no superblock and no directory tree: the
    heated lines themselves are found electrically, each line's block 1
    is parsed as an inode, and the file contents are reassembled from
    the inode's pointers (all inside the line).  Accepts a raw device
    or a :class:`~repro.api.store.TamperEvidentStore`.

    ``batch_pointer_reads`` groups each file's pointer walk into runs
    of consecutive blocks and reads them as medium spans
    (:meth:`~repro.device.sero.SERODevice.read_block_run`) — the same
    batching ``verify_lines`` applies to erb probing, and the recovery
    analogue of the span engine's read path.  None (the default)
    follows ``device.config.span_engine``; the device-time charges are
    identical either way.
    """
    device = _as_device(device)
    if batch_pointer_reads is None:
        batch_pointer_reads = bool(device.config.span_engine)
    report = DeepScanReport(blocks_scanned=device.total_blocks)
    elapsed_before = device.account.elapsed
    records = device.scan_lines()
    verifications = device.verify_lines([rec.start for rec in records])
    for record, verification in zip(records, verifications):
        if verification.tamper_evident:
            report.tampered_lines.append(verification)
        inode_pba = record.start + 1
        try:
            inode = Inode.unpack(device.read_block(inode_pba))
        except ReadError:
            report.unparseable_lines.append(record.start)
            continue
        data: Optional[bytes] = None
        try:
            pointers = list(inode.direct)
            for ipba in inode.indirect:
                pointers.extend(unpack_pointer_block(device.read_block(ipba)))
            pointers = pointers[:inode.n_blocks]
            chunks = _read_pointers(device, pointers, batch_pointer_reads)
            data = b"".join(chunks)[:inode.size]
        except ReadError:
            data = None
        report.recovered.append(RecoveredFile(
            line_start=record.start, ino=inode.ino,
            name_hint=inode.name_hint, size=inode.size, data=data,
            verification=verification))
    report.device_seconds = device.account.elapsed - elapsed_before
    return report


@dataclass
class FsckReport:
    """Outcome of a mounted-FS consistency check."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    heated_verifications: Dict[int, VerificationResult] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no errors were found."""
        return not self.errors


def fsck(fs: "SeroFS | TamperEvidentStore",
         verify_lines: bool = True) -> FsckReport:
    """Audit a mounted file system.

    Checks that every imap entry parses as the right inode, that every
    file block is accounted LIVE or HEATED in the segment table, that
    the directory tree reaches every inode, and (optionally) that every
    heated line verifies INTACT.  Accepts a :class:`SeroFS` or a
    :class:`~repro.api.store.TamperEvidentStore`.
    """
    fs = _as_fs(fs)
    report = FsckReport()
    reachable = _walk_tree(fs, report)
    for ino, inode_pba in sorted(fs.imap.items()):
        try:
            inode = fs._read_inode_at(inode_pba)
        except ReadError as exc:
            report.errors.append(f"inode {ino}: unreadable at {inode_pba}: {exc}")
            continue
        if inode.ino != ino:
            report.errors.append(
                f"inode {ino}: block {inode_pba} holds inode {inode.ino}")
            continue
        if ino not in reachable:
            report.warnings.append(
                f"inode {ino} ({inode.name_hint!r}) unreachable from root")
        state = fs.table.state(inode_pba)
        if state not in (BlockState.LIVE, BlockState.HEATED):
            report.errors.append(
                f"inode {ino}: inode block {inode_pba} is {state.value}")
        try:
            pointers, indirect = fs._load_pointers(inode)
        except ReadError as exc:
            report.errors.append(f"inode {ino}: pointer read failed: {exc}")
            continue
        for pba in pointers + indirect:
            state = fs.table.state(pba)
            if state not in (BlockState.LIVE, BlockState.HEATED):
                report.errors.append(
                    f"inode {ino}: block {pba} is {state.value}")
    if verify_lines:
        records = fs.device.heated_lines
        results = fs.device.verify_lines([rec.start for rec in records])
        for record, result in zip(records, results):
            report.heated_verifications[record.start] = result
            if result.tamper_evident:
                report.errors.append(
                    f"heated line {record.start}: {result.status.value}")
    return report


def _walk_tree(fs: "SeroFS", report: FsckReport) -> set:
    """Collect inodes reachable from the root directory."""
    from .lfs import ROOT_INO

    reachable = set()
    stack = [ROOT_INO]
    while stack:
        ino = stack.pop()
        if ino in reachable:
            continue
        reachable.add(ino)
        try:
            inode = fs._read_inode(ino)
        except Exception as exc:  # surfaced as error; keep walking
            report.errors.append(f"directory walk: inode {ino}: {exc}")
            continue
        if inode.ftype is not FileType.DIRECTORY:
            continue
        try:
            entries = fs._dir_entries(inode)
        except ReadError as exc:
            report.errors.append(f"directory {ino}: unreadable: {exc}")
            continue
        for _name, (_ftype, child) in entries.items():
            stack.append(child)
    return reachable
