"""Inodes of the SERO log-structured file system.

An inode occupies exactly one 512-byte block so it can be appended to
the log like any other block and — crucially — so a *heated* file's
inode sits inside the heated line, making the reference count, size
and block pointers tamper-evident.  The security analysis of Section
5.2 depends on this: ``rm`` must decrement the link count, which means
rewriting the inode, which invalidates the line hash.

Layout (big-endian), 512 bytes:

====== ===== ==========================================
offset bytes field
====== ===== ==========================================
0      4     magic ``INOD``
4      8     inode number
12     1     file type (regular / directory)
13     1     flags
14     2     link count
16     8     size [bytes]
24     8     mtime [integer ticks]
32     64    name hint (basename, NUL padded) — lets the
             fsck deep scan attach names to recovered files
96     2     number of direct pointers used
98     2     number of indirect pointers used
100    44*8  direct block pointers
452    7*8   indirect block pointers (each points at a
             block of 64 pointers)
508    4     CRC-32 of bytes [0, 508)
====== ===== ==========================================
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import List

from ..crypto.crc import crc32
from ..device.sector import BLOCK_SIZE
from ..errors import FileSystemError, ReadError

INODE_MAGIC = b"INOD"
N_DIRECT = 44
N_INDIRECT = 7
POINTERS_PER_INDIRECT = BLOCK_SIZE // 8  # 64

#: Largest file the pointer scheme supports [blocks].
MAX_FILE_BLOCKS = N_DIRECT + N_INDIRECT * POINTERS_PER_INDIRECT

#: Largest file size [bytes].
MAX_FILE_SIZE = MAX_FILE_BLOCKS * BLOCK_SIZE

_NAME_BYTES = 64

#: Sentinel stored in unused pointer slots.
NULL_PBA = 0xFFFFFFFFFFFFFFFF


class FileType(enum.IntEnum):
    """File kinds supported by the file system."""

    REGULAR = 1
    DIRECTORY = 2


@dataclass
class Inode:
    """In-memory inode.

    Attributes:
        ino: inode number (root directory is 1).
        ftype: file kind.
        link_count: hard-link count.
        size: file size in bytes.
        mtime: modification tick.
        name_hint: basename recorded for forensic recovery.
        direct: PBAs of the first ``N_DIRECT`` file blocks.
        indirect: PBAs of indirect pointer blocks.
        flags: reserved.
    """

    ino: int
    ftype: FileType = FileType.REGULAR
    link_count: int = 1
    size: int = 0
    mtime: int = 0
    name_hint: str = ""
    direct: List[int] = field(default_factory=list)
    indirect: List[int] = field(default_factory=list)
    flags: int = 0

    @property
    def n_blocks(self) -> int:
        """Number of data blocks the file occupies."""
        return (self.size + BLOCK_SIZE - 1) // BLOCK_SIZE

    def pack(self) -> bytes:
        """Serialise to one 512-byte block payload."""
        if len(self.direct) > N_DIRECT:
            raise FileSystemError("too many direct pointers")
        if len(self.indirect) > N_INDIRECT:
            raise FileSystemError("too many indirect pointers")
        name = self.name_hint.encode("utf-8")[:_NAME_BYTES]
        name += b"\x00" * (_NAME_BYTES - len(name))
        head = struct.pack(">4sQBBHQQ", INODE_MAGIC, self.ino,
                           int(self.ftype), self.flags,
                           self.link_count, self.size, self.mtime)
        counts = struct.pack(">HH", len(self.direct), len(self.indirect))
        direct = b"".join(struct.pack(">Q", p) for p in self.direct)
        direct += struct.pack(">Q", NULL_PBA) * (N_DIRECT - len(self.direct))
        indirect = b"".join(struct.pack(">Q", p) for p in self.indirect)
        indirect += struct.pack(">Q", NULL_PBA) * (N_INDIRECT - len(self.indirect))
        body = head + name + counts + direct + indirect
        body += b"\x00" * (BLOCK_SIZE - 4 - len(body))
        return body + struct.pack(">I", crc32(body))

    @classmethod
    def unpack(cls, payload: bytes) -> "Inode":
        """Parse a 512-byte block payload into an inode.

        Raises :class:`~repro.errors.ReadError` when the payload is not
        an inode (bad magic or CRC) — the test the fsck deep scan uses
        to tell inodes from data blocks.
        """
        if len(payload) != BLOCK_SIZE:
            raise ReadError("inode payload must be one block")
        (stored,) = struct.unpack(">I", payload[-4:])
        if crc32(payload[:-4]) != stored:
            raise ReadError("inode CRC mismatch")
        magic, ino, ftype, flags, links, size, mtime = struct.unpack(
            ">4sQBBHQQ", payload[:32])
        if magic != INODE_MAGIC:
            raise ReadError("not an inode (bad magic)")
        name = payload[32:32 + _NAME_BYTES].rstrip(b"\x00").decode("utf-8")
        n_direct, n_indirect = struct.unpack(">HH", payload[96:100])
        if n_direct > N_DIRECT or n_indirect > N_INDIRECT:
            raise ReadError("inode pointer counts out of range")
        direct = list(struct.unpack(f">{N_DIRECT}Q", payload[100:100 + N_DIRECT * 8]))
        indirect = list(struct.unpack(
            f">{N_INDIRECT}Q", payload[452:452 + N_INDIRECT * 8]))
        return cls(ino=ino, ftype=FileType(ftype), link_count=links,
                   size=size, mtime=mtime, name_hint=name,
                   direct=direct[:n_direct], indirect=indirect[:n_indirect],
                   flags=flags)


def pack_pointer_block(pointers: List[int]) -> bytes:
    """Serialise an indirect pointer block (up to 64 PBAs)."""
    if len(pointers) > POINTERS_PER_INDIRECT:
        raise FileSystemError("too many pointers for an indirect block")
    data = b"".join(struct.pack(">Q", p) for p in pointers)
    data += struct.pack(">Q", NULL_PBA) * (POINTERS_PER_INDIRECT - len(pointers))
    return data


def unpack_pointer_block(payload: bytes) -> List[int]:
    """Parse an indirect pointer block, dropping NULL entries."""
    if len(payload) != BLOCK_SIZE:
        raise ReadError("pointer block payload must be one block")
    values = struct.unpack(f">{POINTERS_PER_INDIRECT}Q", payload)
    return [v for v in values if v != NULL_PBA]
