"""On-device layout: superblock and checkpoint region.

The first segment(s) of the device are reserved:

* block 0 — superblock (geometry, segment size, checkpoint location),
* the remaining reserved blocks form two alternating checkpoint
  copies; a crash during checkpointing never loses both.

A checkpoint persists only what cannot be rebuilt cheaply: the inode
map, the allocator cursors and the heated-line extents.  Block
ownership (live/dead) is reconstructed at mount by walking the inodes
— stale magnetic frames left in unaccounted blocks are simply
overwritten later, which is safe because every frame carries its own
physical address and CRC.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..crypto.crc import crc32
from ..device.sector import BLOCK_SIZE
from ..errors import FileSystemError, ReadError

SUPERBLOCK_MAGIC = b"SEROFS01"


@dataclass
class Superblock:
    """File-system identity block.

    Attributes:
        total_blocks: device capacity the FS was formatted for.
        segment_blocks: blocks per segment.
        checkpoint_start: first PBA of the checkpoint region.
        checkpoint_blocks: size of *each* of the two checkpoint copies.
    """

    total_blocks: int
    segment_blocks: int
    checkpoint_start: int
    checkpoint_blocks: int

    def pack(self) -> bytes:
        """Serialise to one block payload."""
        body = SUPERBLOCK_MAGIC + struct.pack(
            ">QQQQ", self.total_blocks, self.segment_blocks,
            self.checkpoint_start, self.checkpoint_blocks)
        body += b"\x00" * (BLOCK_SIZE - 4 - len(body))
        return body + struct.pack(">I", crc32(body))

    @classmethod
    def unpack(cls, payload: bytes) -> "Superblock":
        """Parse a superblock payload."""
        if len(payload) != BLOCK_SIZE:
            raise ReadError("superblock must be one block")
        (stored,) = struct.unpack(">I", payload[-4:])
        if crc32(payload[:-4]) != stored:
            raise ReadError("superblock CRC mismatch")
        if payload[:8] != SUPERBLOCK_MAGIC:
            raise ReadError("not a SERO file system (bad superblock magic)")
        total, seg, cp_start, cp_blocks = struct.unpack(">QQQQ", payload[8:40])
        return cls(total_blocks=total, segment_blocks=seg,
                   checkpoint_start=cp_start, checkpoint_blocks=cp_blocks)


@dataclass
class Checkpoint:
    """A consistent snapshot of the FS maps.

    Attributes:
        generation: monotonically increasing checkpoint counter.
        next_ino: next inode number to allocate.
        tick: FS logical clock at checkpoint time.
        imap: inode number -> PBA of the inode block.
        heated_lines: (start, n_blocks) of every heated line.
    """

    generation: int
    next_ino: int
    tick: int
    imap: Dict[int, int] = field(default_factory=dict)
    heated_lines: List[Tuple[int, int]] = field(default_factory=list)

    _MAGIC = b"SEROCKPT"

    def pack(self) -> bytes:
        """Serialise; variable length (blocked by :meth:`to_blocks`)."""
        parts = [self._MAGIC, struct.pack(
            ">QQQ", self.generation, self.next_ino, self.tick)]
        parts.append(struct.pack(">I", len(self.imap)))
        for ino, pba in sorted(self.imap.items()):
            parts.append(struct.pack(">QQ", ino, pba))
        parts.append(struct.pack(">I", len(self.heated_lines)))
        for start, n_blocks in sorted(self.heated_lines):
            parts.append(struct.pack(">QQ", start, n_blocks))
        body = b"".join(parts)
        return struct.pack(">I", len(body)) + body + struct.pack(">I", crc32(body))

    @classmethod
    def unpack(cls, raw: bytes) -> "Checkpoint":
        """Parse a serialised checkpoint (raises ReadError when invalid)."""
        if len(raw) < 8:
            raise ReadError("checkpoint too short")
        (length,) = struct.unpack(">I", raw[:4])
        if len(raw) < 4 + length + 4:
            raise ReadError("checkpoint truncated")
        body = raw[4:4 + length]
        (stored,) = struct.unpack(">I", raw[4 + length:8 + length])
        if crc32(body) != stored:
            raise ReadError("checkpoint CRC mismatch")
        if body[:8] != cls._MAGIC:
            raise ReadError("bad checkpoint magic")
        offset = 8
        generation, next_ino, tick = struct.unpack_from(">QQQ", body, offset)
        offset += 24
        (n,) = struct.unpack_from(">I", body, offset)
        offset += 4
        imap = {}
        for _ in range(n):
            ino, pba = struct.unpack_from(">QQ", body, offset)
            offset += 16
            imap[ino] = pba
        (n,) = struct.unpack_from(">I", body, offset)
        offset += 4
        heated = []
        for _ in range(n):
            start, n_blocks = struct.unpack_from(">QQ", body, offset)
            offset += 16
            heated.append((start, n_blocks))
        return cls(generation=generation, next_ino=next_ino, tick=tick,
                   imap=imap, heated_lines=heated)

    def to_blocks(self, capacity_blocks: int) -> List[bytes]:
        """Split into 512-byte block payloads; raise when it overflows
        the checkpoint region."""
        raw = self.pack()
        nblocks = (len(raw) + BLOCK_SIZE - 1) // BLOCK_SIZE
        if nblocks > capacity_blocks:
            raise FileSystemError(
                f"checkpoint needs {nblocks} blocks but the region holds "
                f"{capacity_blocks}; format with more checkpoint segments")
        raw += b"\x00" * (nblocks * BLOCK_SIZE - len(raw))
        return [raw[i * BLOCK_SIZE:(i + 1) * BLOCK_SIZE] for i in range(nblocks)]

    @classmethod
    def from_blocks(cls, payloads: List[bytes]) -> "Checkpoint":
        """Reassemble from block payloads."""
        return cls.unpack(b"".join(payloads))
