"""SeroFS: the SERO-aware log-structured file system (Section 4).

The design follows the paper's two answers to "what properties should
a tamper-evident high-performance file system have":

* **performance** — it is log-structured: writes are clustered into
  segments (Rosenblum/Ousterhout), so WMRM performance stays high and
  related blocks end up contiguous, which is exactly what the heat
  operation needs;
* **tamper evidence** — a file is heated by first *clustering* it into
  one contiguous, aligned line (hash block + inode + indirect blocks +
  data + zero padding) and then invoking the device's WO operation.
  The inode sits inside the line, so link-count and pointer changes
  (``rm``, ``ln``) are tamper-evident, and the physical addresses
  inside the hash defeat copy-masking.

Heated lines are immovable: the allocator places them at the opposite
end of the device from the log head (the *cluster* placement policy),
which produces the bimodal distribution of mostly-heated and
mostly-unheated segments that Section 4.1 argues keeps performance
high; the *naive* policy places them wherever there is room, and the
bimodality benchmark shows the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from ..device.sector import BLOCK_SIZE
from ..device.sero import LineRecord, SERODevice, VerificationResult
from ..errors import (
    ConfigurationError,
    DirectoryNotEmptyError,
    FileExistsError_,
    FileNotFoundError_,
    FileSystemError,
    ImmutableFileError,
    NoSpaceError,
    NotADirectoryError_,
    ReadError,
)
from .directory import pack_entries, split_path, unpack_entries
from .inode import (
    MAX_FILE_SIZE,
    N_DIRECT,
    POINTERS_PER_INDIRECT,
    FileType,
    Inode,
    pack_pointer_block,
    unpack_pointer_block,
)
from .layout import Checkpoint, Superblock
from .segment import INDIRECT_FBN, BlockState, SegmentTable

ROOT_INO = 1


@dataclass
class FSConfig:
    """File-system policy knobs.

    Attributes:
        segment_blocks: blocks per segment (power of two).
        checkpoint_segments: segments reserved for superblock +
            checkpoints (each of the two copies gets half the region).
        heat_placement: ``"cluster"`` (heated lines grow from the end
            of the device — bimodal) or ``"naive"`` (first fit from the
            front — mixes heated and live data).
        cleaner_policy: ``"greedy"``, ``"cost-benefit"`` or ``"sero"``.
        auto_clean: run the cleaner automatically when allocation
            fails, before giving up with NoSpaceError.
    """

    segment_blocks: int = 16
    checkpoint_segments: int = 1
    heat_placement: str = "cluster"
    cleaner_policy: str = "sero"
    auto_clean: bool = True


@dataclass
class FileStat:
    """Result of :meth:`SeroFS.stat`."""

    path: str
    ino: int
    ftype: FileType
    size: int
    link_count: int
    mtime: int
    heated: bool
    line_start: Optional[int] = None


@dataclass
class _StagedLine:
    """A line laid out by :meth:`SeroFS.heat_files` awaiting its heat:
    everything :meth:`SeroFS._commit_staged` needs to retire the old
    copies once the device confirms."""

    path: str
    ino: int
    old_inode: Inode
    start: int
    line_len: int
    inode_pba: int
    timestamp: int


class SeroFS:
    """A SERO-aware log-structured file system over one device.

    Use :meth:`format` to create a fresh file system or :meth:`mount`
    to open an existing one.
    """

    def __init__(self, device: SERODevice, superblock: Superblock,
                 config: FSConfig) -> None:
        self.device = device
        self.sb = superblock
        self.config = config
        reserved = superblock.checkpoint_start + 2 * superblock.checkpoint_blocks
        reserved_segments = (reserved + config.segment_blocks - 1) // config.segment_blocks
        self._reserved_blocks = reserved_segments * config.segment_blocks
        self.table = SegmentTable(device.total_blocks, config.segment_blocks,
                                  reserved_prefix=self._reserved_blocks)
        # bad blocks are never allocatable; fragile blocks stay usable
        # for data but are skipped as line heads (see _find_line_extent)
        for pba in device.bad_blocks:
            if self.table.state(pba) is BlockState.FREE:
                self.table.set_state(pba, BlockState.RESERVED)
        self.imap: Dict[int, int] = {}
        self.line_of_ino: Dict[int, int] = {}
        self.next_ino = ROOT_INO
        self.tick = 0
        self._generation = 0
        self._cursor_segment: Optional[int] = None
        self._cleaning = False
        # extents laid out by heat_files but not yet heated: excluded
        # from allocation and extent search (the table still says
        # FREE, because HEATED is one-way and must wait for the heat)
        self._staged_blocks: Set[int] = set()
        self._stats = {"blocks_written": 0, "blocks_cleaned": 0,
                       "cleaner_runs": 0, "lines_heated": 0}

    # -- construction -----------------------------------------------------------

    @classmethod
    def format(cls, device: SERODevice,
               config: Optional[FSConfig] = None) -> "SeroFS":
        """Create a fresh file system on ``device``."""
        config = config or FSConfig()
        if device.total_blocks % config.segment_blocks:
            raise ConfigurationError(
                "device size must be a whole number of segments")
        cp_region = config.checkpoint_segments * config.segment_blocks - 1
        if cp_region < 2:
            raise ConfigurationError("checkpoint region too small")
        sb = Superblock(total_blocks=device.total_blocks,
                        segment_blocks=config.segment_blocks,
                        checkpoint_start=1,
                        checkpoint_blocks=cp_region // 2)
        fs = cls(device, sb, config)
        device.write_block(0, sb.pack())
        fs.next_ino = ROOT_INO
        root = fs._allocate_inode(FileType.DIRECTORY, name_hint="/")
        fs._write_file_blocks(root, pack_entries({}))
        fs.checkpoint()
        return fs

    @classmethod
    def mount(cls, device: SERODevice,
              config: Optional[FSConfig] = None) -> "SeroFS":
        """Open an existing file system from its checkpoint."""
        sb = Superblock.unpack(device.read_block(0))
        config = config or FSConfig()
        config.segment_blocks = sb.segment_blocks
        fs = cls(device, sb, config)
        checkpoint = fs._read_best_checkpoint()
        if checkpoint is None:
            raise ReadError("no valid checkpoint; run fsck deep scan")
        fs._restore(checkpoint)
        return fs

    def _checkpoint_region(self, copy: int) -> int:
        return self.sb.checkpoint_start + copy * self.sb.checkpoint_blocks

    def _read_best_checkpoint(self) -> Optional[Checkpoint]:
        import struct

        best: Optional[Checkpoint] = None
        for copy in (0, 1):
            start = self._checkpoint_region(copy)
            try:
                first = self.device.read_block(start)
                (length,) = struct.unpack(">I", first[:4])
                total = 4 + length + 4
                nblocks = (total + BLOCK_SIZE - 1) // BLOCK_SIZE
                if nblocks > self.sb.checkpoint_blocks:
                    continue
                payloads = [first]
                for pba in range(start + 1, start + nblocks):
                    payloads.append(self.device.read_block(pba))
                candidate = Checkpoint.from_blocks(payloads)
            except ReadError:
                continue
            if best is None or candidate.generation > best.generation:
                best = candidate
        return best

    def _restore(self, checkpoint: Checkpoint) -> None:
        self._generation = checkpoint.generation
        self.next_ino = checkpoint.next_ino
        self.tick = checkpoint.tick
        self.imap = dict(checkpoint.imap)
        # re-register heated lines on the device (one ers each)
        for start, n_blocks in checkpoint.heated_lines:
            record = self.device.load_line(start)
            for pba in range(start, start + n_blocks):
                if self.table.state(pba) is not BlockState.HEATED:
                    self.table.mark_heated(pba)
            if record is None:
                continue
        # rebuild block ownership by walking the inodes
        for ino, inode_pba in self.imap.items():
            inode = self._read_inode_at(inode_pba)
            if self.table.state(inode_pba) is BlockState.FREE:
                self.table.mark_live(inode_pba, ino, is_inode=True)
            pointers, indirect_pbas = self._load_pointers(inode)
            for pba in indirect_pbas:
                if self.table.state(pba) is BlockState.FREE:
                    self.table.mark_live(pba, ino, fbn=INDIRECT_FBN)
            for fbn, pba in enumerate(pointers):
                if self.table.state(pba) is BlockState.FREE:
                    self.table.mark_live(pba, ino, fbn=fbn)
            if self.device.is_block_heated(inode_pba):
                self.line_of_ino[ino] = self.device.line_of_block(inode_pba).start

    # -- checkpointing ------------------------------------------------------------

    def checkpoint(self) -> None:
        """Write a checkpoint to the older of the two copies."""
        self._generation += 1
        heated = [(rec.start, rec.n_blocks) for rec in self.device.heated_lines]
        cp = Checkpoint(generation=self._generation, next_ino=self.next_ino,
                        tick=self.tick, imap=dict(self.imap),
                        heated_lines=heated)
        blocks = cp.to_blocks(self.sb.checkpoint_blocks)
        start = self._checkpoint_region(self._generation % 2)
        for offset, payload in enumerate(blocks):
            self.device.write_block(start + offset, payload)

    # -- allocation -----------------------------------------------------------------

    def _segment_indices_writable(self) -> List[int]:
        out = []
        for seg in self.table.iter_segments():
            if seg.free > 0:
                out.append(seg.index)
        return out

    def _pick_write_segment(self) -> Optional[int]:
        """Choose the next segment for the log head.

        Prefers completely empty segments (classic LFS segment writes),
        then segments without heated blocks, then anything with room.
        Scans from the front so the log and the heated region (placed
        from the end under the *cluster* policy) grow towards each
        other.
        """
        empty = [seg.index for seg in self.table.empty_segments()]
        if empty:
            return empty[0]
        no_heat = [seg.index for seg in self.table.iter_segments()
                   if seg.free > 0 and seg.heated == 0]
        if no_heat:
            return no_heat[0]
        any_free = self._segment_indices_writable()
        return any_free[0] if any_free else None

    def _alloc_block(self) -> int:
        """Allocate one block at the log head, cleaning if needed."""
        pba = self._try_alloc_block()
        if pba is not None:
            return pba
        if self.config.auto_clean and not self._cleaning:
            from .cleaner import run_cleaner

            self._cleaning = True
            try:
                run_cleaner(self, max_segments=4)
            finally:
                self._cleaning = False
            pba = self._try_alloc_block()
            if pba is not None:
                return pba
        raise NoSpaceError("no writable blocks left (WMRM area exhausted)")

    def _try_alloc_block(self) -> Optional[int]:
        for _ in range(2):
            if self._cursor_segment is not None:
                seg = self.table.segments[self._cursor_segment]
                for pba in range(seg.start, seg.start + seg.size):
                    if self.table.state(pba) is BlockState.FREE \
                            and pba not in self._staged_blocks:
                        return pba
            self._cursor_segment = self._pick_write_segment()
            if self._cursor_segment is None:
                return None
        return None

    # -- low-level file I/O ------------------------------------------------------------

    def _read_inode_at(self, pba: int) -> Inode:
        return Inode.unpack(self.device.read_block(pba))

    def _read_inode(self, ino: int) -> Inode:
        pba = self.imap.get(ino)
        if pba is None:
            raise FileNotFoundError_(f"inode {ino} does not exist")
        return self._read_inode_at(pba)

    def _load_pointers(self, inode: Inode) -> Tuple[List[int], List[int]]:
        """All data-block PBAs of a file, plus its indirect-block PBAs."""
        pointers = list(inode.direct)
        indirect_pbas = list(inode.indirect)
        for pba in inode.indirect:
            pointers.extend(unpack_pointer_block(self.device.read_block(pba)))
        return pointers[:inode.n_blocks], indirect_pbas

    def _free_file_blocks(self, inode: Inode) -> None:
        """Mark a file's current blocks dead (on rewrite or delete)."""
        pointers, indirect_pbas = self._load_pointers(inode)
        for pba in pointers + indirect_pbas:
            if self.table.state(pba) is BlockState.LIVE:
                self.table.mark_dead(pba)

    def _write_data_blocks(self, ino: int, data: bytes) -> Tuple[List[int], List[int]]:
        """Append ``data`` to the log; returns (data_pbas, indirect_pbas).

        All-or-nothing: if allocation fails part-way the blocks written
        so far are rolled back to DEAD (reclaimable) so nothing leaks —
        the caller's old file version is still fully live.
        """
        n_blocks = (len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE
        pbas: List[int] = []
        indirect_pbas: List[int] = []
        try:
            for fbn in range(n_blocks):
                chunk = data[fbn * BLOCK_SIZE:(fbn + 1) * BLOCK_SIZE]
                chunk += b"\x00" * (BLOCK_SIZE - len(chunk))
                pba = self._alloc_block()
                self.device.write_block(pba, chunk)
                self.table.mark_live(pba, ino, fbn=fbn)
                self._touch_segment(pba)
                pbas.append(pba)
                self._stats["blocks_written"] += 1
            overflow = pbas[N_DIRECT:]
            for i in range(0, len(overflow), POINTERS_PER_INDIRECT):
                chunk_ptrs = overflow[i:i + POINTERS_PER_INDIRECT]
                pba = self._alloc_block()
                self.device.write_block(pba, pack_pointer_block(chunk_ptrs))
                self.table.mark_live(pba, ino, fbn=INDIRECT_FBN)
                self._touch_segment(pba)
                indirect_pbas.append(pba)
                self._stats["blocks_written"] += 1
        except NoSpaceError:
            for pba in pbas + indirect_pbas:
                if self.table.state(pba) is BlockState.LIVE:
                    self.table.mark_dead(pba)
            raise
        return pbas, indirect_pbas

    def _write_inode(self, inode: Inode) -> int:
        """Append an inode block; updates the imap; returns its PBA."""
        old = self.imap.get(inode.ino)
        pba = self._alloc_block()
        self.device.write_block(pba, inode.pack())
        self.table.mark_live(pba, inode.ino, is_inode=True)
        self._touch_segment(pba)
        self.imap[inode.ino] = pba
        self._stats["blocks_written"] += 1
        if old is not None and self.table.state(old) is BlockState.LIVE:
            self.table.mark_dead(old)
        return pba

    def _write_file_blocks(self, inode: Inode, data: bytes) -> None:
        """Replace a file's contents.

        New blocks are written *before* the old ones are marked dead
        (the log-structured no-overwrite discipline): a failure mid-way
        leaves the old version fully intact and live.
        """
        if len(data) > MAX_FILE_SIZE:
            raise FileSystemError(
                f"file too large: {len(data)} > {MAX_FILE_SIZE} bytes")
        old_inode: Optional[Inode] = None
        if self.imap.get(inode.ino) is not None:
            try:
                old_inode = self._read_inode(inode.ino)
            except (FileNotFoundError_, ReadError):
                old_inode = None
        pbas, indirect = self._write_data_blocks(inode.ino, data)
        inode.size = len(data)
        inode.direct = pbas[:N_DIRECT]
        inode.indirect = indirect
        inode.mtime = self.tick
        self._write_inode(inode)
        if old_inode is not None:
            self._free_file_blocks(old_inode)

    def _touch_segment(self, pba: int) -> None:
        seg = self.table.segment_of(pba)
        seg.mtime = self.tick  # type: ignore[attr-defined]

    def _allocate_inode(self, ftype: FileType, name_hint: str) -> Inode:
        ino = self.next_ino
        self.next_ino += 1
        return Inode(ino=ino, ftype=ftype, name_hint=name_hint,
                     mtime=self.tick)

    # -- path resolution -----------------------------------------------------------------

    def _lookup(self, path: str) -> Tuple[int, Inode]:
        """Resolve ``path`` to (ino, inode)."""
        parts = split_path(path)
        ino = ROOT_INO
        inode = self._read_inode(ino)
        for part in parts:
            if inode.ftype is not FileType.DIRECTORY:
                raise NotADirectoryError_(f"{part!r} reached via non-directory")
            entries = unpack_entries(self._read_content(inode))
            if part not in entries:
                raise FileNotFoundError_(f"no such file: {path!r}")
            _ftype, ino = entries[part]
            inode = self._read_inode(ino)
        return ino, inode

    def _lookup_parent(self, path: str) -> Tuple[Inode, str]:
        """Resolve the parent directory of ``path``; returns
        (parent_inode, basename)."""
        parts = split_path(path)
        if not parts:
            raise FileSystemError("the root directory has no parent")
        parent_path = "/" + "/".join(parts[:-1])
        _ino, parent = self._lookup(parent_path)
        if parent.ftype is not FileType.DIRECTORY:
            raise NotADirectoryError_(f"{parent_path!r} is not a directory")
        return parent, parts[-1]

    def _read_content(self, inode: Inode) -> bytes:
        pointers, _ = self._load_pointers(inode)
        chunks = [self.device.read_block(pba) for pba in pointers]
        return b"".join(chunks)[:inode.size]

    def _dir_entries(self, inode: Inode) -> Dict[str, Tuple[FileType, int]]:
        return unpack_entries(self._read_content(inode))

    def _update_dir(self, dir_inode: Inode,
                    entries: Dict[str, Tuple[FileType, int]]) -> None:
        if self.is_ino_heated(dir_inode.ino):
            raise ImmutableFileError(
                f"directory inode {dir_inode.ino} is heated and immutable")
        self._write_file_blocks(dir_inode, pack_entries(entries))

    # -- public API -------------------------------------------------------------------------

    def create(self, path: str, data: bytes = b"") -> FileStat:
        """Create a regular file with ``data``."""
        self.tick += 1
        parent, name = self._lookup_parent(path)
        entries = self._dir_entries(parent)
        if name in entries:
            raise FileExistsError_(f"file exists: {path!r}")
        inode = self._allocate_inode(FileType.REGULAR, name_hint=name)
        self._write_file_blocks(inode, data)
        entries[name] = (FileType.REGULAR, inode.ino)
        self._update_dir(parent, entries)
        return self.stat(path)

    def mkdir(self, path: str) -> FileStat:
        """Create a directory."""
        self.tick += 1
        parent, name = self._lookup_parent(path)
        entries = self._dir_entries(parent)
        if name in entries:
            raise FileExistsError_(f"file exists: {path!r}")
        inode = self._allocate_inode(FileType.DIRECTORY, name_hint=name)
        self._write_file_blocks(inode, pack_entries({}))
        entries[name] = (FileType.DIRECTORY, inode.ino)
        self._update_dir(parent, entries)
        return self.stat(path)

    def write(self, path: str, data: bytes) -> FileStat:
        """Replace the contents of an existing regular file."""
        self.tick += 1
        ino, inode = self._lookup(path)
        if inode.ftype is not FileType.REGULAR:
            raise FileSystemError(f"not a regular file: {path!r}")
        if self.is_ino_heated(ino):
            raise ImmutableFileError(f"{path!r} is heated and immutable")
        self._write_file_blocks(inode, data)
        return self.stat(path)

    def append(self, path: str, data: bytes) -> FileStat:
        """Append ``data`` to an existing regular file."""
        existing = self.read(path)
        return self.write(path, existing + data)

    def read(self, path: str) -> bytes:
        """Read a whole file (works for heated files too — their data
        blocks are still read magnetically)."""
        _ino, inode = self._lookup(path)
        if inode.ftype is not FileType.REGULAR:
            raise FileSystemError(f"not a regular file: {path!r}")
        return self._read_content(inode)

    def listdir(self, path: str) -> List[str]:
        """Names inside a directory."""
        _ino, inode = self._lookup(path)
        if inode.ftype is not FileType.DIRECTORY:
            raise NotADirectoryError_(f"not a directory: {path!r}")
        return sorted(self._dir_entries(inode))

    def unlink(self, path: str) -> None:
        """Remove a file (refused for heated files: the link count
        lives inside the heated line — Section 5.2's rm analysis)."""
        self.tick += 1
        ino, inode = self._lookup(path)
        if inode.ftype is FileType.DIRECTORY:
            raise FileSystemError("use rmdir for directories")
        if self.is_ino_heated(ino):
            raise ImmutableFileError(
                f"cannot unlink {path!r}: its inode is inside a heated line")
        parent, name = self._lookup_parent(path)
        entries = self._dir_entries(parent)
        del entries[name]
        self._update_dir(parent, entries)
        inode.link_count -= 1
        if inode.link_count <= 0:
            self._free_file_blocks(inode)
            inode_pba = self.imap.pop(ino)
            if self.table.state(inode_pba) is BlockState.LIVE:
                self.table.mark_dead(inode_pba)
        else:
            self._write_inode(inode)

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        self.tick += 1
        ino, inode = self._lookup(path)
        if inode.ftype is not FileType.DIRECTORY:
            raise NotADirectoryError_(f"not a directory: {path!r}")
        if ino == ROOT_INO:
            raise FileSystemError("cannot remove the root directory")
        if self._dir_entries(inode):
            raise DirectoryNotEmptyError(f"directory not empty: {path!r}")
        if self.is_ino_heated(ino):
            raise ImmutableFileError(f"{path!r} is heated and immutable")
        parent, name = self._lookup_parent(path)
        entries = self._dir_entries(parent)
        del entries[name]
        self._update_dir(parent, entries)
        self._free_file_blocks(inode)
        inode_pba = self.imap.pop(ino)
        if self.table.state(inode_pba) is BlockState.LIVE:
            self.table.mark_dead(inode_pba)

    def link(self, src: str, dst: str) -> None:
        """Hard-link ``dst`` to the file at ``src`` (refused for heated
        files: the link count is tamper-evident — Section 5.2)."""
        self.tick += 1
        ino, inode = self._lookup(src)
        if inode.ftype is not FileType.REGULAR:
            raise FileSystemError("can only hard-link regular files")
        if self.is_ino_heated(ino):
            raise ImmutableFileError(
                f"cannot link {src!r}: its inode is inside a heated line")
        parent, name = self._lookup_parent(dst)
        entries = self._dir_entries(parent)
        if name in entries:
            raise FileExistsError_(f"file exists: {dst!r}")
        inode.link_count += 1
        self._write_inode(inode)
        entries[name] = (FileType.REGULAR, ino)
        self._update_dir(parent, entries)

    def stat(self, path: str) -> FileStat:
        """Metadata of a file or directory."""
        ino, inode = self._lookup(path)
        heated = self.is_ino_heated(ino)
        return FileStat(path=path, ino=ino, ftype=inode.ftype,
                        size=inode.size, link_count=inode.link_count,
                        mtime=inode.mtime, heated=heated,
                        line_start=self.line_of_ino.get(ino))

    def is_ino_heated(self, ino: int) -> bool:
        """True when the file's inode lies inside a heated line."""
        pba = self.imap.get(ino)
        return pba is not None and self.device.is_block_heated(pba)

    # -- the heat operation ---------------------------------------------------------------------

    def heat_file(self, path: str, timestamp: Optional[int] = None) -> LineRecord:
        """Make a file tamper-evident.

        The file is clustered into a fresh aligned line — [hash block,
        inode, indirect blocks, data blocks, zero padding] — and the
        device's WO heat operation seals it.  The old scattered copies
        become dead blocks for the cleaner.
        """
        staged = self._stage_line(path, timestamp, staged_inos=set())
        try:
            record = self.device.heat_line(staged.start, staged.line_len,
                                           timestamp=staged.timestamp)
        except BaseException:
            self._staged_blocks.difference_update(
                range(staged.start, staged.start + staged.line_len))
            raise
        self._commit_staged(staged)
        return record

    def heat_files(self, paths: Iterable[str],
                   timestamp: Optional[int] = None, *,
                   before_each: Optional[Callable[[str], None]] = None,
                   on_heated: Optional[
                       Callable[[str, LineRecord], None]] = None
                   ) -> List[LineRecord]:
        """Batched :meth:`heat_file`: stage every line, then heat them
        in one :meth:`~repro.device.sero.SERODevice.heat_lines` pass.

        Line placement, block contents, digests, timestamps, and the
        final table/imap state are identical to a ``heat_file`` loop
        (staged extents are invisible to the allocator and the extent
        finder, exactly as HEATED blocks would be), and so is the
        failure contract: if staging path k fails, paths 0..k-1 are
        heated and committed before the error propagates; if the
        device fails mid-heat, the lines it did heat are committed and
        the rest un-staged.  ``before_each(path)`` runs as each path's
        turn begins (the store layer writes its audit record there);
        ``on_heated(path, record)`` runs as each line commits, so a
        sealed prefix is fully recorded before any exception escapes.
        """
        paths = list(paths)
        if len(paths) <= 1:
            records = []
            for path in paths:
                if before_each is not None:
                    before_each(path)
                record = self.heat_file(path, timestamp=timestamp)
                if on_heated is not None:
                    on_heated(path, record)
                records.append(record)
            return records
        staged: List[_StagedLine] = []
        staged_inos: Set[int] = set()
        try:
            for path in paths:
                if before_each is not None:
                    before_each(path)
                entry = self._stage_line(path, timestamp,
                                         staged_inos=staged_inos)
                staged.append(entry)
                staged_inos.add(entry.ino)
        except BaseException:
            # serial semantics: the paths before the failure still seal
            self._heat_staged(staged, on_heated)
            raise
        return self._heat_staged(staged, on_heated)

    def _stage_line(self, path: str, timestamp: Optional[int], *,
                    staged_inos: Set[int]) -> "_StagedLine":
        """The pre-heat half of :meth:`heat_file`: cluster the file
        into a fresh aligned extent and reserve it in
        ``_staged_blocks`` (the segment table must keep saying FREE —
        HEATED is one-way and belongs to the heat itself)."""
        self.tick += 1
        if timestamp is None:
            timestamp = self.tick
        ino, inode = self._lookup(path)
        if ino in staged_inos or self.is_ino_heated(ino):
            raise ImmutableFileError(f"{path!r} is already heated")
        data = self._read_content(inode)

        n_data = (len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE
        n_indirect = 0
        if n_data > N_DIRECT:
            n_indirect = (n_data - N_DIRECT + POINTERS_PER_INDIRECT - 1) \
                // POINTERS_PER_INDIRECT
        payload_blocks = 1 + n_indirect + n_data  # inode + indirect + data
        line_len = 2
        while line_len < payload_blocks + 1:  # +1 for the hash block
            line_len *= 2

        start = self._find_line_extent(line_len)
        if start is None and self.config.auto_clean:
            from .cleaner import run_cleaner

            run_cleaner(self, max_segments=8)
            start = self._find_line_extent(line_len)
        if start is None:
            raise NoSpaceError(
                f"no free aligned extent of {line_len} blocks for the line")

        # lay the line out: block 0 is left for the hash (electrical),
        # then inode, indirect blocks, data, zero padding
        data_pbas = [start + 2 + n_indirect + i for i in range(n_data)]
        indirect_pbas = [start + 2 + i for i in range(n_indirect)]
        inode_pba = start + 1

        for i, pba in enumerate(data_pbas):
            chunk = data[i * BLOCK_SIZE:(i + 1) * BLOCK_SIZE]
            chunk += b"\x00" * (BLOCK_SIZE - len(chunk))
            self.device.write_block(pba, chunk)
            self._stats["blocks_written"] += 1
        for i, pba in enumerate(indirect_pbas):
            ptrs = data_pbas[N_DIRECT + i * POINTERS_PER_INDIRECT:
                             N_DIRECT + (i + 1) * POINTERS_PER_INDIRECT]
            self.device.write_block(pba, pack_pointer_block(ptrs))
            self._stats["blocks_written"] += 1
        new_inode = Inode(ino=ino, ftype=inode.ftype,
                          link_count=inode.link_count, size=len(data),
                          mtime=self.tick, name_hint=inode.name_hint,
                          direct=data_pbas[:N_DIRECT],
                          indirect=indirect_pbas, flags=inode.flags)
        self.device.write_block(inode_pba, new_inode.pack())
        self._stats["blocks_written"] += 1
        for pba in range(start + 1 + payload_blocks, start + line_len):
            self.device.write_block(pba, b"\x00" * BLOCK_SIZE)
            self._stats["blocks_written"] += 1

        self._staged_blocks.update(range(start, start + line_len))
        return _StagedLine(path=path, ino=ino, old_inode=inode,
                           start=start, line_len=line_len,
                           inode_pba=inode_pba, timestamp=timestamp)

    def _commit_staged(self, staged: "_StagedLine") -> None:
        """The post-heat half of :meth:`heat_file`: retire the old
        copies, take ownership of the new ones."""
        self._free_file_blocks(staged.old_inode)
        old_inode_pba = self.imap.get(staged.ino)
        if old_inode_pba is not None and \
                self.table.state(old_inode_pba) is BlockState.LIVE:
            self.table.mark_dead(old_inode_pba)
        for pba in range(staged.start, staged.start + staged.line_len):
            self.table.mark_heated(pba)
        self.imap[staged.ino] = staged.inode_pba
        self.line_of_ino[staged.ino] = staged.start
        self._stats["lines_heated"] += 1
        self._staged_blocks.difference_update(
            range(staged.start, staged.start + staged.line_len))

    def _heat_staged(self, staged: List["_StagedLine"],
                     on_heated: Optional[
                         Callable[[str, LineRecord], None]]
                     ) -> List[LineRecord]:
        """Heat every staged line in order and commit each one."""
        if not staged:
            return []
        specs = [(s.start, s.line_len, s.timestamp) for s in staged]
        try:
            records = self.device.heat_lines(specs)
        except BaseException:
            # the device heats in input order: every line its registry
            # knows got heated (commit it, record and all), the rest
            # only un-stage — their blocks are still FREE
            for s in staged:
                line = self.device.line_of_block(s.start)
                if line is not None and line.start == s.start:
                    self._commit_staged(s)
                    if on_heated is not None:
                        on_heated(s.path, line)
                else:
                    self._staged_blocks.difference_update(
                        range(s.start, s.start + s.line_len))
            raise
        out: List[LineRecord] = []
        for s, record in zip(staged, records):
            self._commit_staged(s)
            if on_heated is not None:
                on_heated(s.path, record)
            out.append(record)
        return out

    def _extent_usable(self, start: int, line_len: int) -> bool:
        """Free, no bad blocks, and a heat-capable head block."""
        if start in self.device.fragile_blocks:
            return False
        return all(self.table.state(p) is BlockState.FREE
                   and p not in self._staged_blocks
                   for p in range(start, start + line_len))

    def _find_line_extent(self, line_len: int) -> Optional[int]:
        """Aligned free extent for a heated line, by placement policy."""
        if self.config.heat_placement == "naive":
            pba = 0
            while pba + line_len <= self.table.total_blocks:
                if self._extent_usable(pba, line_len):
                    return pba
                pba += line_len
            return None
        # cluster: scan from the end of the device towards the front
        total = self.table.total_blocks
        pba = (total // line_len - 1) * line_len
        while pba >= self._reserved_blocks:
            if self._extent_usable(pba, line_len):
                return pba
            pba -= line_len
        return None

    def _lookup_ino(self, path: str) -> int:
        """Resolve ``path`` to its inode number without parsing the
        final inode — verification must work even when an attacker has
        destroyed the inode block itself."""
        parts = split_path(path)
        if not parts:
            return ROOT_INO
        parent, name = self._lookup_parent(path)
        entries = self._dir_entries(parent)
        if name not in entries:
            raise FileNotFoundError_(f"no such file: {path!r}")
        _ftype, ino = entries[name]
        return ino

    def verify_file(self, path: str) -> VerificationResult:
        """Verify a heated file's line against its stored hash.

        Only the *directory entry* is needed to locate the line, so a
        smashed inode (itself inside the heated line) cannot hide the
        evidence — verification still runs and reports the mismatch.
        """
        ino = self._lookup_ino(path)
        start = self.line_of_ino.get(ino)
        if start is None:
            raise FileSystemError(f"{path!r} is not heated")
        return self.device.verify_line(start)

    def verify_all_files(self) -> Dict[str, VerificationResult]:
        """Verify every heated file; keys are ``ino:name_hint``."""
        out = {}
        for ino, start in self.line_of_ino.items():
            try:
                inode = self._read_inode(ino)
                label = f"{ino}:{inode.name_hint}"
            except (FileNotFoundError_, ReadError):
                label = f"{ino}:?"
            out[label] = self.device.verify_line(start)
        return out

    # -- statistics -------------------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Operational statistics and space accounting."""
        counts = self.table.counts()
        out: Dict[str, float] = dict(self._stats)
        out.update({f"blocks_{k}": v for k, v in counts.items()})
        out["device_time_s"] = self.device.account.elapsed
        return out

    def free_space_blocks(self) -> int:
        """Blocks immediately allocatable (FREE)."""
        return self.table.free_blocks()
