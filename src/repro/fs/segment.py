"""Segments and per-block bookkeeping of the log-structured layout.

"LFS treats the space on the disk as a collection of contiguous
segments ... New data is written sequentially to the log" (Section
4.1).  The segment table tracks, per block, whether it is free, live
(and for which inode/file-offset), dead (overwritten), heated or
reserved, and aggregates per-segment counts for the cleaner's victim
selection and for the bimodality metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError
from ..units import is_power_of_two


class BlockState(enum.Enum):
    """Lifecycle state of one device block as the FS sees it."""

    FREE = "free"
    LIVE = "live"
    DEAD = "dead"          # overwritten; reclaimable by the cleaner
    HEATED = "heated"      # inside a heated line; immovable, never free
    RESERVED = "reserved"  # superblock / checkpoint region


#: Owner tag for blocks that belong to the FS itself rather than a file.
META_INO = 0

#: File-block-number tag for indirect pointer blocks.
INDIRECT_FBN = 0xFFFFFFFF


@dataclass
class BlockInfo:
    """Ownership record of one live block.

    Attributes:
        ino: owning inode number (META_INO for FS metadata).
        fbn: file block number within the file (INDIRECT_FBN for
            indirect pointer blocks; 0 for the inode block itself is
            disambiguated by ``is_inode``).
        is_inode: True when the block holds the inode itself.
    """

    ino: int
    fbn: int = 0
    is_inode: bool = False


@dataclass
class Segment:
    """Aggregated state of one segment.

    Attributes:
        index: segment number.
        start: first PBA of the segment.
        size: blocks per segment.
    """

    index: int
    start: int
    size: int
    live: int = 0
    dead: int = 0
    heated: int = 0
    reserved: int = 0
    mtime: int = 0  # FS tick of the last write into this segment

    @property
    def free(self) -> int:
        """Blocks never written (or fully reclaimed)."""
        return self.size - self.live - self.dead - self.heated - self.reserved

    @property
    def utilization(self) -> float:
        """Live fraction of the segment (the cleaner's u)."""
        return self.live / self.size

    @property
    def heated_fraction(self) -> float:
        """Heated fraction of the segment (the bimodality variable)."""
        return self.heated / self.size

    @property
    def reclaimable(self) -> int:
        """Blocks a clean of this segment would recover."""
        return self.dead + self.free


class SegmentTable:
    """Block states + segment aggregates over a device's block range.

    Args:
        total_blocks: device capacity in blocks.
        segment_blocks: segment size (power of two).
        reserved_prefix: leading blocks reserved for superblock and
            checkpoint (rounded up to whole segments by the caller).
    """

    def __init__(self, total_blocks: int, segment_blocks: int,
                 reserved_prefix: int = 0) -> None:
        if not is_power_of_two(segment_blocks):
            raise ConfigurationError("segment size must be a power of two")
        if total_blocks % segment_blocks:
            raise ConfigurationError(
                "device size must be a whole number of segments")
        if reserved_prefix % segment_blocks:
            raise ConfigurationError(
                "reserved prefix must be whole segments")
        self.total_blocks = total_blocks
        self.segment_blocks = segment_blocks
        self._states: List[BlockState] = [BlockState.FREE] * total_blocks
        self._owners: Dict[int, BlockInfo] = {}
        self.segments: List[Segment] = [
            Segment(index=i, start=i * segment_blocks, size=segment_blocks)
            for i in range(total_blocks // segment_blocks)
        ]
        for pba in range(reserved_prefix):
            self.set_state(pba, BlockState.RESERVED)

    # -- single block ------------------------------------------------------

    def state(self, pba: int) -> BlockState:
        """Current state of block ``pba``."""
        return self._states[pba]

    def owner(self, pba: int) -> Optional[BlockInfo]:
        """Ownership record of a live block (None otherwise)."""
        return self._owners.get(pba)

    def segment_of(self, pba: int) -> Segment:
        """The segment containing ``pba``."""
        return self.segments[pba // self.segment_blocks]

    def set_state(self, pba: int, new: BlockState,
                  owner: Optional[BlockInfo] = None) -> None:
        """Transition block ``pba`` to ``new`` with optional ownership.

        Guards the one-way nature of HEATED: a heated block can never
        return to any other state.
        """
        old = self._states[pba]
        if old is BlockState.HEATED and new is not BlockState.HEATED:
            raise ConfigurationError(
                f"block {pba} is heated; its state can never change")
        seg = self.segment_of(pba)
        for state, delta in ((old, -1), (new, +1)):
            if state is BlockState.LIVE:
                seg.live += delta
            elif state is BlockState.DEAD:
                seg.dead += delta
            elif state is BlockState.HEATED:
                seg.heated += delta
            elif state is BlockState.RESERVED:
                seg.reserved += delta
        self._states[pba] = new
        if new is BlockState.LIVE:
            if owner is None:
                raise ConfigurationError("live blocks need an owner")
            self._owners[pba] = owner
        else:
            self._owners.pop(pba, None)

    def mark_live(self, pba: int, ino: int, fbn: int = 0,
                  is_inode: bool = False) -> None:
        """Mark ``pba`` live and owned."""
        self.set_state(pba, BlockState.LIVE,
                       BlockInfo(ino=ino, fbn=fbn, is_inode=is_inode))

    def mark_dead(self, pba: int) -> None:
        """Mark a previously live block dead (overwritten)."""
        self.set_state(pba, BlockState.DEAD)

    def mark_heated(self, pba: int) -> None:
        """Mark a block heated (irreversible)."""
        self.set_state(pba, BlockState.HEATED)

    # -- queries -----------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Totals per state over the whole device."""
        out = {state.value: 0 for state in BlockState}
        for state in self._states:
            out[state.value] += 1
        return out

    def free_blocks(self) -> int:
        """Total FREE blocks."""
        return sum(seg.free for seg in self.segments)

    def dead_blocks(self) -> int:
        """Total DEAD blocks (reclaimable by cleaning)."""
        return sum(seg.dead for seg in self.segments)

    def iter_segments(self, skip_reserved: bool = True) -> Iterator[Segment]:
        """Iterate segments, skipping fully reserved ones by default."""
        for seg in self.segments:
            if skip_reserved and seg.reserved == seg.size:
                continue
            yield seg

    def empty_segments(self) -> List[Segment]:
        """Segments with no live, dead, heated or reserved blocks."""
        return [seg for seg in self.iter_segments()
                if seg.free == seg.size]

    def find_free_extent(self, length: int, alignment: int) -> Optional[int]:
        """First PBA of a fully FREE, ``alignment``-aligned extent of
        ``length`` blocks, or None.  Used to place heated lines."""
        pba = 0
        while pba + length <= self.total_blocks:
            ok = True
            for offset in range(length):
                if self._states[pba + offset] is not BlockState.FREE:
                    ok = False
                    break
            if ok:
                return pba
            pba += alignment
        return None

    def live_blocks_of_segment(self, seg: Segment) -> List[Tuple[int, BlockInfo]]:
        """(pba, owner) pairs for every live block of ``seg``."""
        out = []
        for pba in range(seg.start, seg.start + seg.size):
            if self._states[pba] is BlockState.LIVE:
                out.append((pba, self._owners[pba]))
        return out
