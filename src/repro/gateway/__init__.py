"""Multi-tenant HTTP gateway: the fleet's authenticated front door.

Everything below the façade stays unchanged — this package puts a
network edge in front of a shared :class:`~repro.api.fleet.FleetStore`
so the tamper-evident fleet can be operated as a *service*:

* :mod:`~repro.gateway.auth` — bearer tokens → per-tenant read/write
  grants, plus the ``/t/<tenant>/…`` namespace confinement;
* :mod:`~repro.gateway.schemas` — typed JSON round trips for the
  façade's receipt/report dataclasses;
* :mod:`~repro.gateway.settings` — environment-driven deployment
  configuration on the established policy chain;
* :mod:`~repro.gateway.server` — the stdlib ``ThreadingHTTPServer``
  edge, status mapping, and graceful drain;
* :mod:`~repro.gateway.client` — a typed stdlib client whose results
  compare ``==`` against the in-process calls they proxy.

Run one with ``python -m repro.gateway serve``.
"""

from .auth import (
    AuthError,
    Grant,
    PathError,
    Principal,
    TENANT_ROOT,
    TokenTable,
    confine,
    evidence_case,
    parse_token_spec,
    tenant_root,
)
from .client import (
    GatewayClient,
    GatewayConnectionError,
    GatewayError,
    GatewayHTTPError,
)
from .schemas import SchemaError
from .server import GatewayApp, GatewayServer, serve
from .settings import GatewaySettings

__all__ = [
    "AuthError",
    "Grant",
    "PathError",
    "Principal",
    "TENANT_ROOT",
    "TokenTable",
    "confine",
    "evidence_case",
    "parse_token_spec",
    "tenant_root",
    "GatewayClient",
    "GatewayConnectionError",
    "GatewayError",
    "GatewayHTTPError",
    "SchemaError",
    "GatewayApp",
    "GatewayServer",
    "serve",
    "GatewaySettings",
]
