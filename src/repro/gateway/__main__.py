"""``python -m repro.gateway`` — run a gateway deployment.

Subcommands:

* ``serve`` — resolve :class:`~repro.gateway.settings.GatewaySettings`
  from the environment/policy chain, provision the fleet, and serve
  until interrupted (SIGINT/SIGTERM drain in-flight requests before
  exit).  Prints one ``GATEWAY listening on host:port`` line once the
  socket accepts, so launchers can parse an ephemeral port.
* ``check-tokens`` — parse the configured token spec and report the
  principal count without starting anything (a deploy-time lint).
"""

from __future__ import annotations

import argparse
import signal
import sys

from ..errors import ConfigurationError
from .server import serve
from .settings import GatewaySettings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="tamper-evident fleet HTTP gateway")
    sub = parser.add_subparsers(dest="command", required=True)
    serve_p = sub.add_parser("serve", help="run the gateway")
    serve_p.add_argument("--bind", default=None,
                         help="host:port (default: REPRO_GATEWAY_BIND "
                              "/ policy chain)")
    serve_p.add_argument("--token-file", default=None,
                         help="token spec file (default: "
                              "REPRO_GATEWAY_TOKENS inline spec or "
                              "REPRO_GATEWAY_TOKEN_FILE)")
    serve_p.add_argument("--members", type=int, default=None,
                         help="fleet members to provision")
    sub.add_parser("check-tokens",
                   help="validate the configured token spec and exit")
    args = parser.parse_args(argv)

    try:
        settings = GatewaySettings.resolve(
            bind=getattr(args, "bind", None),
            token_file=getattr(args, "token_file", None),
            members=getattr(args, "members", None))
    except ConfigurationError as exc:
        print(f"gateway configuration error: {exc}", file=sys.stderr)
        return 2

    if args.command == "check-tokens":
        print(f"token spec OK: {len(settings.tokens)} principal(s) "
              f"(source: {settings.tokens_source})")
        return 0

    # SIGTERM → KeyboardInterrupt so serve()'s graceful-drain finally
    # block runs under process managers, not just ^C
    def _sigterm(*_args):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    serve(settings)
    return 0


if __name__ == "__main__":
    sys.exit(main())
