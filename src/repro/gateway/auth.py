"""Bearer-token authorization for the HTTP gateway.

The model is the per-collection grant resolution the ROADMAP points
at (``openaleph-search``'s authorization reference), mapped onto
per-tenant fleet namespaces: a bearer token resolves — per request,
through :class:`TokenTable` — to a :class:`Principal` holding a
read/write :class:`Grant` per tenant (or the ``admin`` bit, which
implies both everywhere).  Authorization then answers one of three
ways, and the distinction is deliberate:

* **allowed** — the token holds the needed permission on the tenant;
* **forbidden** (HTTP 403) — the token holds *some* grant on the
  tenant, just not this permission (a reader trying to seal), or it
  lacks the ``admin`` bit an admin endpoint demands.  The tenant's
  existence is already known to the caller, so naming the refusal
  leaks nothing;
* **hidden** (HTTP 404) — the token holds *no* grant on the tenant.
  The gateway answers exactly as it would for a tenant that does not
  exist, so an unauthorized caller cannot probe the tenant roster.

Token specs are plain text so a deployment is an environment variable
(``REPRO_GATEWAY_TOKENS``) or a mounted file — never code::

    <token>=<element>,<element>,...;<token>=...

with entries separated by ``;`` or newlines (``#`` starts a comment
line in files) and three element forms:

* ``admin`` — full read/write everywhere plus the admin endpoints;
* ``<tenant>:<perms>`` — ``r``, ``w`` or ``rw`` on one tenant
  (``w`` implies ``r``: sealing an object you may not read back is
  never a meaningful grant);
* ``expires:<unix-seconds>`` — the token stops resolving at that
  instant (expired tokens answer 401 exactly like unknown ones).

Tenant namespacing is enforced here too: :func:`confine` maps a
tenant-relative object path onto the tenant's ``/t/<tenant>/...``
prefix (rejecting traversal), so no request can *route* to another
tenant's objects regardless of what authorization would say.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError

#: Storage prefix every tenant namespace lives under.
TENANT_ROOT = "/t"

#: Tenant names are path segments and must never be able to escape
#: one: one segment, no separators, no leading dot.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Object path segments a tenant may use (printable, no traversal).
_SEGMENT_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")

_PERMS = {"r": (True, False), "w": (True, True), "rw": (True, True),
          "wr": (True, True)}


class AuthError(Exception):
    """The request's credential is absent, unknown, or expired — the
    HTTP layer maps every variant to 401 with one generic body, so a
    probing client cannot distinguish a revoked token from a
    never-issued one."""


class PathError(ValueError):
    """A tenant-relative path or case name failed validation."""


@dataclass(frozen=True)
class Grant:
    """One tenant's resolved permissions for one token."""

    tenant: str
    read: bool = False
    write: bool = False

    def merged(self, other: "Grant") -> "Grant":
        """Union with a second grant on the same tenant (duplicate
        elements widen, never narrow)."""
        return Grant(self.tenant, self.read or other.read,
                     self.write or other.write)


@dataclass(frozen=True)
class Principal:
    """What one resolved token is allowed to do.

    ``label`` is a redacted handle (never the token itself) for logs
    and diagnostics.
    """

    label: str
    admin: bool = False
    grants: Mapping[str, Grant] = field(default_factory=dict)
    expires: Optional[int] = None

    def decide(self, tenant: str, *, write: bool = False) -> str:
        """``"allowed"`` / ``"forbidden"`` / ``"hidden"`` for an
        operation on ``tenant`` (see the module docstring for why the
        three-way split exists)."""
        if self.admin:
            return "allowed"
        grant = self.grants.get(tenant)
        if grant is None:
            return "hidden"
        if write and not grant.write:
            return "forbidden"
        if not write and not grant.read:
            return "forbidden"
        return "allowed"


def redact(token: str) -> str:
    """A log-safe handle for a token: first 4 characters + length."""
    return f"{token[:4]}…({len(token)})"


def _parse_entry(entry: str, where: str) -> Tuple[str, Principal]:
    token, sep, spec = entry.partition("=")
    token = token.strip()
    if not sep or not token:
        raise ConfigurationError(
            f"malformed gateway token entry in {where}: expected "
            "'<token>=<element>,...'")
    if any(c.isspace() for c in token) or len(token) < 4:
        raise ConfigurationError(
            f"gateway token {redact(token)} in {where} is invalid: "
            "tokens are ≥4 characters with no whitespace")
    admin = False
    expires: Optional[int] = None
    grants: Dict[str, Grant] = {}
    for element in spec.split(","):
        element = element.strip()
        if not element:
            continue
        if element == "admin":
            admin = True
            continue
        name, sep2, perms = element.rpartition(":")
        if element.startswith("expires:"):
            raw = element[len("expires:"):]
            try:
                expires = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"bad expires element {element!r} in {where}: "
                    "expected unix seconds") from None
            continue
        if not sep2 or not name:
            raise ConfigurationError(
                f"bad grant element {element!r} in {where}: expected "
                "'<tenant>:r|w|rw', 'admin', or 'expires:<unix>'")
        if not _TENANT_RE.match(name):
            raise ConfigurationError(
                f"bad tenant name {name!r} in {where}: one path "
                "segment of [A-Za-z0-9._-], not starting with a dot")
        if perms not in _PERMS:
            raise ConfigurationError(
                f"bad permissions {perms!r} on tenant {name!r} in "
                f"{where}: expected r, w, or rw")
        read, write = _PERMS[perms]
        grant = Grant(name, read, write)
        if name in grants:
            grant = grants[name].merged(grant)
        grants[name] = grant
    if not admin and not grants:
        raise ConfigurationError(
            f"gateway token {redact(token)} in {where} grants nothing; "
            "give it 'admin' or at least one '<tenant>:<perms>'")
    return token, Principal(label=redact(token), admin=admin,
                            grants=grants, expires=expires)


def parse_token_spec(text: str, *, where: str = "spec"
                     ) -> Dict[str, Principal]:
    """Parse a token spec (env-variable or file syntax) into a
    ``token -> Principal`` map.  Duplicate tokens are a configuration
    error: two entries for one credential cannot both be the truth."""
    table: Dict[str, Principal] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        for entry in line.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            token, principal = _parse_entry(entry, where)
            if token in table:
                raise ConfigurationError(
                    f"duplicate gateway token {redact(token)} in "
                    f"{where}: each credential may be declared once")
            table[token] = principal
    return table


class TokenTable:
    """The gateway's resolved credential set.

    Immutable after construction; the server resolves every request
    through :meth:`resolve`, so rotation is a restart (or a new
    :class:`TokenTable` swapped into the app) — there is no partially
    applied state to race against in-flight requests.
    """

    def __init__(self, principals: Mapping[str, Principal]) -> None:
        if not principals:
            raise ConfigurationError(
                "the gateway refuses to start with an empty token "
                "table — an unauthenticated multi-tenant store is "
                "not a mode; declare tokens via REPRO_GATEWAY_TOKENS "
                "or a token file")
        self._principals = dict(principals)

    @classmethod
    def from_spec(cls, text: str, *, where: str = "spec") -> "TokenTable":
        return cls(parse_token_spec(text, where=where))

    def __len__(self) -> int:
        return len(self._principals)

    def resolve(self, token: Optional[str], *,
                now: Optional[float] = None) -> Principal:
        """The :class:`Principal` for a presented bearer token.

        Raises :class:`AuthError` — with one indistinguishable
        message for absent, unknown, and expired credentials — when
        the token does not (or no longer does) resolve.
        """
        if not token:
            raise AuthError("missing or invalid bearer token")
        principal = self._principals.get(token)
        if principal is None:
            raise AuthError("missing or invalid bearer token")
        if principal.expires is not None:
            clock = time.time() if now is None else now
            if clock >= principal.expires:
                raise AuthError("missing or invalid bearer token")
        return principal


# ---------------------------------------------------------------------------
# Tenant namespace confinement


def validate_tenant(tenant: str) -> str:
    if not _TENANT_RE.match(tenant or ""):
        raise PathError(
            f"bad tenant name {tenant!r}: one path segment of "
            "[A-Za-z0-9._-], not starting with a dot")
    return tenant


def tenant_root(tenant: str) -> str:
    """The storage prefix all of ``tenant``'s objects live under."""
    return f"{TENANT_ROOT}/{validate_tenant(tenant)}"


def confine(tenant: str, path: str) -> str:
    """Map a tenant-relative object path onto the tenant's namespace.

    ``confine("acme", "/ledger/2026")`` → ``"/t/acme/ledger/2026"``.
    Every segment is validated — ``..``, empty segments, separators
    smuggled through encoding, and over-long names are all rejected —
    so the returned storage path *cannot* leave the tenant prefix.
    """
    if not isinstance(path, str) or not path.startswith("/"):
        raise PathError(
            f"object paths are absolute within the tenant namespace; "
            f"got {path!r}")
    segments = path.strip("/").split("/") if path.strip("/") else []
    if not segments:
        raise PathError("the tenant root itself is not an object")
    for segment in segments:
        if not _SEGMENT_RE.match(segment) or segment in (".", ".."):
            raise PathError(
                f"bad path segment {segment!r} in {path!r}: "
                "[A-Za-z0-9._-] segments only, no traversal")
    return f"{tenant_root(tenant)}/{'/'.join(segments)}"


def evidence_case(tenant: str, case: str) -> str:
    """The fleet-wide case name for a tenant's evidence export.

    Case names shard exhibits by ``case/name`` across members, so the
    tenant prefix is folded in as ``<tenant>--<case>`` (flat — a
    ``/`` in a case name would change the evidence bag's directory
    layout) to keep two tenants' same-named cases apart.
    """
    validate_tenant(tenant)
    if not _SEGMENT_RE.match(case or "") or case in (".", ".."):
        raise PathError(
            f"bad case name {case!r}: [A-Za-z0-9._-] only")
    return f"{tenant}--{case}"
