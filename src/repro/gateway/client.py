"""Typed stdlib client for the gateway: HTTP in, dataclasses out.

:class:`GatewayClient` speaks the ``/v1`` JSON wire and decodes every
response through :mod:`repro.gateway.schemas`, so a call returns the
*same* typed objects as the in-process :class:`~repro.api.fleet`
call it proxies — ``client.seal(...) == fleet.seal(...)`` holds field
for field, which is exactly what the byte-identity tests assert.

Failure model mirrors the server's status mapping:

* 2xx (including **207 Multi-Status**) → a typed result; a degraded
  pass is data, not an exception — check :attr:`last_degraded` /
  the :class:`~repro.parallel.MemberFailure` slots in the result;
* any other status → :class:`GatewayHTTPError` carrying the server's
  ``code`` / ``message`` / ``retryable`` triple;
* socket-level trouble → :class:`GatewayConnectionError` (always
  retryable; one transparent reconnect covers keep-alive races).

Transient failures are opt-in retryable: construct with
``retries=N`` and the client re-issues a request that failed with a
*retryable* error (503 ``fleet_unavailable`` / ``draining``, or a
connection drop) up to N extra times, honouring the server's
``Retry-After`` header when present and backing off exponentially
(``backoff * 2**attempt``, capped at ``max_backoff``) otherwise.
Non-retryable statuses (401/403/404/409/...) are never retried, and
``put`` — the one non-idempotent verb — is never retried unless
``retry_put=True`` (safe when every put carries ``overwrite`` or the
409 on replay is acceptable).

One client wraps one persistent HTTP/1.1 connection and is **not**
thread-safe — give each worker thread its own (they are cheap), the
way ``bench_gateway.py`` does.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union
from urllib.parse import quote, urlencode

from ..api.fleet import FleetEvidenceExport
from ..api.store import (
    AuditReport,
    ObjectInfo,
    SealReceipt,
    VerifyReport,
)
from ..errors import ReproError
from ..parallel import MemberFailure
from ..search import SearchResult, StandingQuery, TamperAlert
from . import schemas as _schemas


class GatewayError(ReproError):
    """Base for gateway client failures."""


class GatewayConnectionError(GatewayError):
    """The gateway could not be reached (or vanished mid-request)."""


class GatewayHTTPError(GatewayError):
    """The gateway answered with an error status.

    Attributes:
        status: HTTP status code.
        code: machine-readable error code from the body.
        retryable: server's verdict on whether a verbatim retry can
            succeed (True for 503 fleet_unavailable / draining).
        retry_after: seconds the server asked us to wait before the
            retry (the ``Retry-After`` header), or None.
    """

    def __init__(self, status: int, code: str, message: str, *,
                 retryable: bool = False,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"gateway answered {status} {code}: {message}")
        self.status = status
        self.code = code
        self.retryable = retryable
        self.retry_after = retry_after


class GatewayClient:
    """A tenant's (or admin's) handle on one gateway deployment.

    Args:
        address: ``host:port`` of the gateway.
        token: bearer token presented on every request.
        tenant: default tenant for the object-grain calls (admins may
            pass ``tenant=`` per call instead).
        timeout: socket timeout per request, seconds.
        retries: extra attempts after a *retryable* failure (0 — the
            default — keeps the historic fail-fast behaviour).
        retry_put: also retry ``put``, the one non-idempotent verb.
        backoff: base sleep before retry k is ``backoff * 2**k``
            seconds, used when the server sent no ``Retry-After``.
        max_backoff: cap on any single retry sleep, seconds.
    """

    def __init__(self, address: str, token: str, *,
                 tenant: Optional[str] = None,
                 timeout: float = 30.0,
                 retries: int = 0,
                 retry_put: bool = False,
                 backoff: float = 0.1,
                 max_backoff: float = 2.0) -> None:
        host, _sep, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise GatewayError(f"bad gateway address {address!r}: "
                               "expected host:port")
        if retries < 0:
            raise GatewayError("retries must be >= 0")
        self._host = host
        self._port = int(port)
        self._token = token
        self._tenant = tenant
        self._timeout = timeout
        self._retries = retries
        self._retry_put = retry_put
        self._backoff = backoff
        self._max_backoff = max_backoff
        self._conn: Optional[http.client.HTTPConnection] = None
        #: Whether the most recent fleet-wide call came back 207
        #: (degraded pass: some members folded nothing).
        self.last_degraded = False

    # -- transport ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None, *,
                 idempotent: bool = True
                 ) -> Tuple[int, Dict[str, Any]]:
        """One logical request: ``_request_once`` plus the opt-in
        retry loop (see class docstring)."""
        attempts = 1 + (self._retries
                        if idempotent or self._retry_put else 0)
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, payload)
            except GatewayConnectionError:
                if attempt + 1 >= attempts:
                    raise
                delay = None
            except GatewayHTTPError as exc:
                if not exc.retryable or attempt + 1 >= attempts:
                    raise
                delay = exc.retry_after
            if delay is None:
                delay = self._backoff * (2 ** attempt)
            time.sleep(min(self._max_backoff, delay))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(self, method: str, path: str,
                      payload: Optional[Dict[str, Any]] = None
                      ) -> Tuple[int, Dict[str, Any]]:
        body = json.dumps(payload).encode("utf-8") \
            if payload is not None else None
        headers = {"Authorization": f"Bearer {self._token}"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        for attempt in (1, 2):  # one reconnect for keep-alive races
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError) as exc:
                self.close()
                if attempt == 2:
                    raise GatewayConnectionError(
                        f"gateway {self._host}:{self._port} "
                        f"unreachable: {exc}") from exc
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError as exc:
            raise GatewayError(
                f"gateway returned non-JSON body (status "
                f"{response.status})") from exc
        status = response.status
        self.last_degraded = status == 207
        if status >= 400:
            error = parsed.get("error", {}) \
                if isinstance(parsed, dict) else {}
            retry_after: Optional[float] = None
            raw_after = response.getheader("Retry-After")
            if raw_after is not None:
                try:
                    retry_after = float(raw_after)
                except ValueError:
                    retry_after = None  # HTTP-date form: ignore
            raise GatewayHTTPError(
                status, error.get("code", "unknown"),
                error.get("message", raw.decode("utf-8",
                                                "replace")[:200]),
                retryable=bool(error.get("retryable", False)),
                retry_after=retry_after)
        return status, parsed

    def _tenant_path(self, op: str, tenant: Optional[str]) -> str:
        name = tenant if tenant is not None else self._tenant
        if name is None:
            raise GatewayError(
                "no tenant: construct the client with tenant=... or "
                "pass tenant= per call")
        return f"/v1/t/{quote(name, safe='')}/{op}"

    # -- object grain -------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")[1]

    def put(self, path: str, data: bytes = b"", *,
            overwrite: bool = False,
            tenant: Optional[str] = None) -> ObjectInfo:
        _status, wire = self._request(
            "POST", self._tenant_path("put", tenant),
            {"path": path, "data": _schemas.b64encode(data),
             "overwrite": overwrite}, idempotent=False)
        return _schemas.object_info_from_wire(wire)

    def get(self, path: str, *, tenant: Optional[str] = None) -> bytes:
        _status, wire = self._request(
            "GET", self._tenant_path("get", tenant)
            + f"?path={quote(path, safe='')}")
        return _schemas.b64decode(wire.get("data"), what="data")

    def info(self, path: str, *,
             tenant: Optional[str] = None) -> ObjectInfo:
        _status, wire = self._request(
            "GET", self._tenant_path("info", tenant)
            + f"?path={quote(path, safe='')}")
        return _schemas.object_info_from_wire(wire)

    def seal(self, path: str, *, timestamp: Optional[int] = None,
             tenant: Optional[str] = None) -> SealReceipt:
        payload: Dict[str, Any] = {"path": path}
        if timestamp is not None:
            payload["timestamp"] = timestamp
        _status, wire = self._request(
            "POST", self._tenant_path("seal", tenant), payload)
        return _schemas.seal_receipt_from_wire(wire)

    def seal_many(self, paths: List[str], *,
                  timestamp: Optional[int] = None,
                  tenant: Optional[str] = None
                  ) -> List[Union[SealReceipt, MemberFailure]]:
        payload: Dict[str, Any] = {"paths": list(paths)}
        if timestamp is not None:
            payload["timestamp"] = timestamp
        _status, wire = self._request(
            "POST", self._tenant_path("seal_many", tenant), payload)
        return [_schemas.result_slot_from_wire(slot)
                for slot in wire.get("receipts", [])]

    def verify(self, path: str, *,
               tenant: Optional[str] = None) -> VerifyReport:
        _status, wire = self._request(
            "GET", self._tenant_path("verify", tenant)
            + f"?path={quote(path, safe='')}")
        return _schemas.verify_report_from_wire(wire)

    def export_evidence(self, case: str,
                        exhibits: Mapping[str, bytes], *,
                        timestamp: Optional[int] = None,
                        tenant: Optional[str] = None
                        ) -> FleetEvidenceExport:
        payload: Dict[str, Any] = {
            "case": case,
            "exhibits": {name: _schemas.b64encode(data)
                         for name, data in exhibits.items()}}
        if timestamp is not None:
            payload["timestamp"] = timestamp
        _status, wire = self._request(
            "POST", self._tenant_path("export_evidence", tenant),
            payload)
        return FleetEvidenceExport(
            case=wire["fleet_case"],
            exports=tuple(_schemas.evidence_export_from_wire(e)
                          for e in wire.get("exports", [])),
            intact=bool(wire["intact"]))

    def search(self, q: str = "", *,
               facets: Tuple[str, ...] = (),
               limit: Optional[int] = None,
               highlight: bool = False,
               fragment_size: Optional[int] = None,
               fragment_count: Optional[int] = None,
               tenant: Optional[str] = None) -> "SearchResult":
        """Tenant-confined evidence search (typed
        :class:`~repro.search.SearchResult`, same as the in-process
        index's — the server forces the tenant filter)."""
        params = [("q", q)]
        if facets:
            params.append(("facets", ",".join(facets)))
        if limit is not None:
            params.append(("limit", str(limit)))
        if highlight:
            params.append(("highlight", "1"))
        if fragment_size is not None:
            params.append(("fragment_size", str(fragment_size)))
        if fragment_count is not None:
            params.append(("fragment_count", str(fragment_count)))
        _status, wire = self._request(
            "GET", self._tenant_path("search", tenant) + "?"
            + urlencode(params))
        return _schemas.search_result_from_wire(wire)

    # -- admin grain --------------------------------------------------------

    def alerts(self) -> Tuple[List["StandingQuery"],
                              List["TamperAlert"]]:
        """Standing queries plus every fired tamper alert (admin)."""
        _status, wire = self._request("GET", "/v1/admin/alerts")
        return ([_schemas.standing_query_from_wire(sq)
                 for sq in wire.get("standing", [])],
                [_schemas.tamper_alert_from_wire(a)
                 for a in wire.get("alerts", [])])

    def register_alert(self, name: str, query: str, *,
                       tenant: Optional[str] = None
                       ) -> "StandingQuery":
        """Register (or replace) one standing tamper query (admin)."""
        payload: Dict[str, Any] = {"name": name, "query": query}
        if tenant is not None:
            payload["tenant"] = tenant
        _status, wire = self._request("POST", "/v1/admin/alerts",
                                      payload)
        return _schemas.standing_query_from_wire(wire)

    def unregister_alert(self, name: str) -> bool:
        """Drop one standing query; True when it existed (admin)."""
        _status, wire = self._request("POST", "/v1/admin/alerts",
                                      {"unregister": name})
        return bool(wire.get("unregistered", False))

    def audit(self, *, deep: bool = False) -> AuditReport:
        _status, wire = self._request(
            "GET", f"/v1/admin/audit?deep={'1' if deep else '0'}")
        return _schemas.audit_report_from_wire(wire)

    def audit_failures(self, *, deep: bool = False
                       ) -> Tuple[AuditReport, List[MemberFailure]]:
        """Audit plus the degraded pass's failure records (if any)."""
        _status, wire = self._request(
            "GET", f"/v1/admin/audit?deep={'1' if deep else '0'}")
        return (_schemas.audit_report_from_wire(wire),
                [_schemas.member_failure_from_wire(f)
                 for f in wire.get("failures", [])])

    def history(self) -> List[List[Tuple[int, bytes]]]:
        """Per-member self-securing instruction logs."""
        _status, wire = self._request("GET", "/v1/admin/history")
        return [_schemas.history_from_wire(member)
                for member in wire.get("members", [])]

    def describe(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/admin/describe")[1]

    def format_devices(self) -> Dict[str, Any]:
        return self._request("POST", "/v1/admin/format", {})[1]
