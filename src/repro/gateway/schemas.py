"""Typed wire schemas: the gateway's JSON ⇄ dataclass round trips.

One encoder and one decoder per typed object the API façade speaks —
:class:`~repro.api.store.SealReceipt`,
:class:`~repro.api.store.VerifyReport`,
:class:`~repro.api.store.AuditReport`,
:class:`~repro.parallel.MemberFailure`, and friends — so a
:class:`~repro.gateway.client.GatewayClient` call returns the *same*
types, field for field, as the in-process ``FleetStore`` call it
proxies.  That identity is load-bearing: the byte-identity tests and
``bench_gateway.py`` compare gateway results against an in-process
twin with ``==``, not with bespoke comparison glue.

Conventions:

* binary fields (``line_hash``, hashes, object data) travel as the
  JSON-safe encodings below — hashes as lowercase hex, bulk data as
  base64;
* enums travel by value (``VerifyStatus`` → ``"intact"``);
* heterogeneous result slots (a degraded ``seal_many``) are tagged
  envelopes: ``{"kind": "receipt", ...}`` vs
  ``{"kind": "member_failure", ...}``.
"""

from __future__ import annotations

import base64
import binascii
from typing import Any, Dict, List, Optional, Union

from ..api.store import (
    AuditReport,
    EvidenceExport,
    ObjectInfo,
    SealReceipt,
    VerifyReport,
    VerifyStatus,
)
from ..api.store import MemberVerdictRecord
from ..integrity.evidence import EvidenceItem
from ..parallel import MemberFailure
from ..search import SearchHit, SearchResult, StandingQuery, TamperAlert


class SchemaError(ValueError):
    """A wire payload failed validation (the gateway answers 400)."""


def b64encode(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def b64decode(text: Any, *, what: str = "data") -> bytes:
    if not isinstance(text, str):
        raise SchemaError(f"{what} must be a base64 string")
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise SchemaError(f"{what} is not valid base64: {exc}") from exc


def _hex(data: Optional[bytes]) -> Optional[str]:
    return None if data is None else data.hex()


def _unhex(text: Any, *, what: str) -> Optional[bytes]:
    if text is None:
        return None
    if not isinstance(text, str):
        raise SchemaError(f"{what} must be a hex string")
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise SchemaError(f"{what} is not valid hex") from exc


def _require(wire: Any, *keys: str) -> None:
    if not isinstance(wire, dict):
        raise SchemaError(f"expected an object, got {type(wire).__name__}")
    missing = [key for key in keys if key not in wire]
    if missing:
        raise SchemaError(f"missing field(s): {', '.join(missing)}")


# -- ObjectInfo ---------------------------------------------------------------


def object_info_to_wire(info: ObjectInfo) -> Dict[str, Any]:
    return {"path": info.path, "ino": info.ino, "size": info.size,
            "sealed": info.sealed, "line_start": info.line_start,
            "mtime": info.mtime}


def object_info_from_wire(wire: Dict[str, Any]) -> ObjectInfo:
    _require(wire, "path", "ino", "size", "sealed", "line_start", "mtime")
    return ObjectInfo(path=wire["path"], ino=int(wire["ino"]),
                      size=int(wire["size"]), sealed=bool(wire["sealed"]),
                      line_start=wire["line_start"],
                      mtime=int(wire["mtime"]))


# -- SealReceipt --------------------------------------------------------------


def seal_receipt_to_wire(receipt: SealReceipt) -> Dict[str, Any]:
    return {"kind": "receipt", "path": receipt.path,
            "line_start": receipt.line_start,
            "n_blocks": receipt.n_blocks,
            "line_hash": _hex(receipt.line_hash),
            "timestamp": receipt.timestamp}


def seal_receipt_from_wire(wire: Dict[str, Any]) -> SealReceipt:
    _require(wire, "path", "line_start", "n_blocks", "line_hash",
             "timestamp")
    return SealReceipt(path=wire["path"],
                       line_start=int(wire["line_start"]),
                       n_blocks=int(wire["n_blocks"]),
                       line_hash=_unhex(wire["line_hash"],
                                        what="line_hash"),
                       timestamp=int(wire["timestamp"]))


# -- MemberFailure ------------------------------------------------------------


def member_failure_to_wire(failure: MemberFailure) -> Dict[str, Any]:
    return {"kind": "member_failure", "index": failure.index,
            "error_type": failure.error_type,
            "message": failure.message,
            "hosts_tried": list(failure.hosts_tried),
            "attempts": failure.attempts,
            "timed_out": failure.timed_out}


def member_failure_from_wire(wire: Dict[str, Any]) -> MemberFailure:
    _require(wire, "index", "error_type", "message", "hosts_tried",
             "attempts")
    return MemberFailure(index=int(wire["index"]),
                         error_type=wire["error_type"],
                         message=wire["message"],
                         hosts_tried=tuple(wire["hosts_tried"]),
                         attempts=int(wire["attempts"]),
                         timed_out=bool(wire.get("timed_out", False)))


def result_slot_to_wire(slot: Union[SealReceipt, MemberFailure]
                        ) -> Dict[str, Any]:
    """One entry of a possibly degraded receipt list."""
    if isinstance(slot, MemberFailure):
        return member_failure_to_wire(slot)
    return seal_receipt_to_wire(slot)


def result_slot_from_wire(wire: Dict[str, Any]
                          ) -> Union[SealReceipt, MemberFailure]:
    _require(wire, "kind")
    if wire["kind"] == "member_failure":
        return member_failure_from_wire(wire)
    if wire["kind"] == "receipt":
        return seal_receipt_from_wire(wire)
    raise SchemaError(f"unknown result slot kind {wire['kind']!r}")


# -- VerifyReport -------------------------------------------------------------


def verify_report_to_wire(report: VerifyReport) -> Dict[str, Any]:
    return {"status": report.status.value,
            "line_start": report.line_start,
            "tamper_evident": report.tamper_evident,
            "label": report.label,
            "stored_hash": _hex(report.stored_hash),
            "computed_hash": _hex(report.computed_hash),
            "tampered_cells": list(report.tampered_cells)}


def verify_report_from_wire(wire: Dict[str, Any]) -> VerifyReport:
    _require(wire, "status", "line_start", "tamper_evident")
    try:
        status = VerifyStatus(wire["status"])
    except ValueError:
        raise SchemaError(
            f"unknown verify status {wire['status']!r}") from None
    return VerifyReport(
        status=status, line_start=int(wire["line_start"]),
        tamper_evident=bool(wire["tamper_evident"]),
        label=wire.get("label"),
        stored_hash=_unhex(wire.get("stored_hash"), what="stored_hash"),
        computed_hash=_unhex(wire.get("computed_hash"),
                             what="computed_hash"),
        tampered_cells=tuple(wire.get("tampered_cells", ())))


# -- AuditReport --------------------------------------------------------------


def audit_report_to_wire(report: AuditReport) -> Dict[str, Any]:
    return {"reports": [verify_report_to_wire(r) for r in report.reports],
            "fs_errors": list(report.fs_errors),
            "fs_warnings": list(report.fs_warnings),
            "device_seconds": report.device_seconds,
            "deep": report.deep,
            "member_records": [
                {"member": record.member,
                 "report": verify_report_to_wire(record.report)}
                for record in report.member_records],
            # derived, for humans reading the raw JSON; the decoder
            # recomputes them from the reports
            "clean": report.clean,
            "tampered": [verify_report_to_wire(r)
                         for r in report.tampered]}


def audit_report_from_wire(wire: Dict[str, Any]) -> AuditReport:
    _require(wire, "reports", "fs_errors", "fs_warnings",
             "device_seconds", "deep")
    member_records = []
    for entry in wire.get("member_records", ()):
        _require(entry, "member", "report")
        member_records.append(MemberVerdictRecord(
            member=int(entry["member"]),
            report=verify_report_from_wire(entry["report"])))
    return AuditReport(
        reports=[verify_report_from_wire(r) for r in wire["reports"]],
        fs_errors=list(wire["fs_errors"]),
        fs_warnings=list(wire["fs_warnings"]),
        device_seconds=float(wire["device_seconds"]),
        deep=bool(wire["deep"]),
        member_records=member_records)


# -- Evidence export ----------------------------------------------------------


def _evidence_item_to_wire(item: EvidenceItem) -> Dict[str, Any]:
    return {"name": item.name, "size": item.size,
            "line_start": item.line_start,
            "line_hash": _hex(item.line_hash)}


def _evidence_item_from_wire(wire: Dict[str, Any]) -> EvidenceItem:
    _require(wire, "name", "size", "line_start", "line_hash")
    return EvidenceItem(name=wire["name"], size=int(wire["size"]),
                        line_start=int(wire["line_start"]),
                        line_hash=_unhex(wire["line_hash"],
                                         what="line_hash"))


def evidence_export_to_wire(export: EvidenceExport) -> Dict[str, Any]:
    return {"case": export.case, "directory": export.directory,
            "items": [_evidence_item_to_wire(i) for i in export.items],
            "manifest": _evidence_item_to_wire(export.manifest),
            "intact": export.intact,
            "reports": [verify_report_to_wire(r)
                        for r in export.reports]}


def evidence_export_from_wire(wire: Dict[str, Any]) -> EvidenceExport:
    _require(wire, "case", "directory", "items", "manifest", "intact",
             "reports")
    return EvidenceExport(
        case=wire["case"], directory=wire["directory"],
        items=tuple(_evidence_item_from_wire(i) for i in wire["items"]),
        manifest=_evidence_item_from_wire(wire["manifest"]),
        intact=bool(wire["intact"]),
        reports=tuple(verify_report_from_wire(r)
                      for r in wire["reports"]))


# -- History ------------------------------------------------------------------


def history_to_wire(records: List) -> List[Dict[str, Any]]:
    """Instruction-log records (``(tick, bytes)`` pairs) to wire."""
    return [{"tick": tick, "record": b64encode(record)}
            for tick, record in records]


def history_from_wire(wire: List) -> List:
    out = []
    for entry in wire:
        _require(entry, "tick", "record")
        out.append((int(entry["tick"]),
                    b64decode(entry["record"], what="record")))
    return out


# -- Evidence search ----------------------------------------------------------


def search_hit_to_wire(hit: SearchHit) -> Dict[str, Any]:
    return {"doc_id": hit.doc_id, "score": hit.score,
            "fields": dict(hit.fields),
            "highlights": list(hit.highlights)}


def search_hit_from_wire(wire: Dict[str, Any]) -> SearchHit:
    _require(wire, "doc_id", "score", "fields")
    if not isinstance(wire["fields"], dict):
        raise SchemaError("fields must be an object")
    return SearchHit(doc_id=wire["doc_id"], score=int(wire["score"]),
                     fields=dict(wire["fields"]),
                     highlights=tuple(wire.get("highlights", ())))


def search_result_to_wire(result: SearchResult) -> Dict[str, Any]:
    return {"query": result.query, "total": result.total,
            "hits": [search_hit_to_wire(h) for h in result.hits],
            "facets": {facet: [[value, count]
                               for value, count in pairs]
                       for facet, pairs in result.facets.items()}}


def search_result_from_wire(wire: Dict[str, Any]) -> SearchResult:
    _require(wire, "query", "total", "hits", "facets")
    if not isinstance(wire["facets"], dict):
        raise SchemaError("facets must be an object")
    facets = {}
    for facet, pairs in wire["facets"].items():
        facets[facet] = tuple((str(value), int(count))
                              for value, count in pairs)
    return SearchResult(
        query=wire["query"], total=int(wire["total"]),
        hits=tuple(search_hit_from_wire(h) for h in wire["hits"]),
        facets=facets)


def tamper_alert_to_wire(alert: TamperAlert) -> Dict[str, Any]:
    return alert.to_json()


def tamper_alert_from_wire(wire: Dict[str, Any]) -> TamperAlert:
    _require(wire, "name", "query", "doc_id", "epoch", "tick")
    try:
        return TamperAlert.from_json(wire)
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"bad tamper alert: {exc}") from exc


def standing_query_to_wire(standing: StandingQuery) -> Dict[str, Any]:
    return {"name": standing.name, "query": standing.query,
            "tenant": standing.tenant}


def standing_query_from_wire(wire: Dict[str, Any]) -> StandingQuery:
    _require(wire, "name", "query")
    tenant = wire.get("tenant")
    return StandingQuery(name=str(wire["name"]),
                         query=str(wire["query"]),
                         tenant=None if tenant is None else str(tenant))
