"""The gateway HTTP server: ``FleetStore`` behind a network edge.

Stdlib only — :class:`http.server.ThreadingHTTPServer` fronting a
:class:`GatewayApp` that owns the shared
:class:`~repro.api.fleet.FleetStore` and the
:class:`~repro.gateway.auth.TokenTable`.  Request handling threads
parse HTTP concurrently and dispatch straight into the fleet, whose
shard-grained footprint locks
(:class:`~repro.parallel.MemberLockSet`) let requests touching
disjoint members overlap on real cores — the self-securing log
discipline demands a total instruction order *per member*, not per
fleet.  Admin passes (audit/format/history) take the fleet's
whole-fleet exclusive mode; ``lock_mode="single"``
(``REPRO_GATEWAY_LOCK_MODE=single``) restores the original
serialise-everything gateway as the concurrency baseline.

Endpoints (all under ``/v1``; bodies are JSON, bulk bytes base64):

====== ================================ ===== =======================
method path                             perm  returns
====== ================================ ===== =======================
GET    /healthz                         —     liveness/draining
POST   /t/<tenant>/put                  w     ObjectInfo
GET    /t/<tenant>/get?path=            r     object bytes
GET    /t/<tenant>/info?path=           r     ObjectInfo
POST   /t/<tenant>/seal                 w     SealReceipt
POST   /t/<tenant>/seal_many            w     receipts (207 degraded)
GET    /t/<tenant>/verify?path=         r     VerifyReport
POST   /t/<tenant>/export_evidence      w     evidence bags (207 deg.)
GET    /t/<tenant>/search?q=            r     SearchResult (confined)
GET    /admin/audit?deep=               admin AuditReport (207 deg.)
GET    /admin/history                   admin per-member op log
GET    /admin/describe                  admin deployment diagnostics
POST   /admin/format                    admin per-member FormatReport
GET    /admin/alerts                    admin standing queries+alerts
POST   /admin/alerts                    admin register/unregister
====== ================================ ===== =======================

Failure semantics:

* missing/unknown/expired token → **401** (one indistinguishable
  body);
* tenant the token holds no grant on, or a missing object → **404**
  (byte-identical bodies: existence is not probeable);
* insufficient permission on a granted tenant, or a non-admin token
  on an admin endpoint → **403**;
* malformed path/body/query → **400**; overwrite/seal conflicts →
  **409**; device out of space → **507**;
* a *degraded* fleet pass (``fleet_on_failure="degrade"`` with a
  member down) → **207 Multi-Status**: the body carries the surviving
  members' typed results plus the
  :class:`~repro.parallel.MemberFailure` records;
* :class:`~repro.parallel.remote.RpcConnectionError` (fleet workers
  unreachable, pass aborted, nothing folded) → **503** with
  ``Retry-After`` — the one *retryable* error class;
* draining (graceful shutdown in progress) → **503** with
  ``Retry-After``.

Graceful shutdown: :meth:`GatewayServer.close` flips the app into
draining (new requests get 503 immediately), waits for in-flight
requests to finish, stops the accept loop, then closes the fleet's
executors and pooled rpc connections.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from contextlib import nullcontext
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..api.fleet import FleetStore
from ..errors import (
    ConfigurationError,
    FileExistsError_,
    FileNotFoundError_,
    HeatError,
    ImmutableFileError,
    NoSpaceError,
    ReproError,
)
from ..parallel import MemberFailure
from ..search import EvidenceIndex, Query, as_query
from . import auth as _auth
from . import schemas as _schemas
from .auth import AuthError, PathError, Principal, TokenTable
from .settings import (
    DEFAULT_GATEWAY_LOCK_MODE,
    GATEWAY_LOCK_MODE_ENV_VAR,
    GatewaySettings,
)

#: Refuse request bodies beyond this (a desynchronised or abusive
#: client must fail fast, like MAX_FRAME_BYTES on the rpc wire).
MAX_BODY_BYTES = 64 << 20

#: Seconds :meth:`GatewayServer.close` waits for in-flight requests.
DRAIN_TIMEOUT_S = 10.0

#: The one 404 body.  Unknown tenant, unauthorized tenant, and
#: missing object must be byte-identical on the wire.
_NOT_FOUND = {"error": {"code": "not_found", "message": "not found",
                        "retryable": False}}


class _HTTPFailure(Exception):
    """Internal: short-circuit a request to one error response."""

    def __init__(self, status: int, code: str, message: str, *,
                 retryable: bool = False,
                 headers: Optional[Dict[str, str]] = None,
                 body: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}
        self.body = body if body is not None else {
            "error": {"code": code, "message": message,
                      "retryable": retryable}}


def _not_found() -> _HTTPFailure:
    return _HTTPFailure(404, "not_found", "not found", body=_NOT_FOUND)


def _forbidden(message: str) -> _HTTPFailure:
    return _HTTPFailure(403, "forbidden", message)


def _bad_request(message: str) -> _HTTPFailure:
    return _HTTPFailure(400, "bad_request", message)


class GatewayApp:
    """Routing, authorization, and fleet access for one deployment.

    Transport-free by design: :meth:`handle` takes the parsed request
    pieces and returns ``(status, headers, body-dict)``, so the
    authorization matrix is testable without opening a socket.
    """

    def __init__(self, fleet: FleetStore, tokens: TokenTable, *,
                 settings: Optional[GatewaySettings] = None,
                 lock_mode: Optional[str] = None,
                 index: Optional[EvidenceIndex] = None) -> None:
        self.fleet = fleet
        self.tokens = tokens
        self.settings = settings
        #: The evidence index, fed by the fleet's own op results (no
        #: extra fleet traffic).  Pass one in to share it with other
        #: consumers; by default the app owns a fresh one.
        self.index = index if index is not None else EvidenceIndex()
        fleet.attach_indexer(self.index)
        if lock_mode is None:
            if settings is not None:
                lock_mode = settings.lock_mode
            else:
                lock_mode = os.environ.get(
                    GATEWAY_LOCK_MODE_ENV_VAR,
                    DEFAULT_GATEWAY_LOCK_MODE).strip().lower() \
                    or DEFAULT_GATEWAY_LOCK_MODE
        if lock_mode not in FleetStore.LOCK_MODES:
            raise ConfigurationError(
                f"gateway lock_mode must be one of "
                f"{FleetStore.LOCK_MODES}, got {lock_mode!r}")
        #: ``shard``: handlers dispatch under the fleet's footprint
        #: locks only; ``single``: every fleet call additionally
        #: serialises on one app-level lock (the measured baseline).
        self.lock_mode = lock_mode
        self._lock = threading.RLock()
        self._state = threading.Condition()
        self._inflight = 0
        self._draining = False

    def _fleet_guard(self):
        """What a handler wraps its fleet call in: the app-wide lock
        in ``single`` mode, nothing in ``shard`` mode (the fleet's own
        footprint locks are the concurrency contract)."""
        return self._lock if self.lock_mode == "single" \
            else nullcontext()

    # -- request lifecycle (draining) ---------------------------------------

    def enter(self) -> bool:
        """Admit one request; False once draining has begun."""
        with self._state:
            if self._draining:
                return False
            self._inflight += 1
            return True

    def leave(self) -> None:
        with self._state:
            self._inflight -= 1
            if self._inflight == 0:
                self._state.notify_all()

    def drain(self, timeout: float = DRAIN_TIMEOUT_S) -> bool:
        """Stop admitting requests; wait for in-flight ones to finish.
        Returns True when the service emptied within ``timeout``."""
        deadline = time.monotonic() + timeout
        with self._state:
            self._draining = True
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._state.wait(remaining)
        return True

    @property
    def draining(self) -> bool:
        with self._state:
            return self._draining

    # -- dispatch -----------------------------------------------------------

    def handle(self, method: str, raw_path: str,
               headers: Dict[str, str],
               body: bytes) -> Tuple[int, Dict[str, str],
                                     Dict[str, Any]]:
        """One request → ``(status, extra headers, JSON body)``."""
        try:
            return self._route(method, raw_path, headers, body)
        except _HTTPFailure as failure:
            return failure.status, failure.headers, failure.body
        except AuthError:
            return 401, {"WWW-Authenticate": "Bearer"}, {
                "error": {"code": "unauthorized",
                          "message": "missing or invalid bearer token",
                          "retryable": False}}
        except (PathError, _schemas.SchemaError) as exc:
            return 400, {}, {"error": {"code": "bad_request",
                                       "message": str(exc),
                                       "retryable": False}}
        except FileNotFoundError_:
            return 404, {}, dict(_NOT_FOUND)
        except (FileExistsError_, ImmutableFileError, HeatError) as exc:
            return 409, {}, {"error": {"code": "conflict",
                                       "message": str(exc),
                                       "retryable": False}}
        except NoSpaceError as exc:
            return 507, {}, {"error": {"code": "no_space",
                                       "message": str(exc),
                                       "retryable": False}}
        except ReproError as exc:
            from ..parallel.remote import RpcConnectionError

            if isinstance(exc, RpcConnectionError):
                # the pass aborted with nothing folded: safe to retry
                # verbatim once the fleet is reachable again
                return 503, {"Retry-After": "1"}, {
                    "error": {"code": "fleet_unavailable",
                              "message": str(exc), "retryable": True}}
            return 500, {}, {"error": {"code": "internal",
                                       "message": str(exc),
                                       "retryable": False}}

    def _route(self, method: str, raw_path: str,
               headers: Dict[str, str],
               body: bytes) -> Tuple[int, Dict[str, str],
                                     Dict[str, Any]]:
        split = urlsplit(raw_path)
        query = {key: values[-1]
                 for key, values in parse_qs(split.query).items()}
        parts = [p for p in split.path.split("/") if p]
        if parts[:1] != ["v1"]:
            raise _not_found()
        parts = parts[1:]
        if parts == ["healthz"]:
            return 200, {}, {"status": "draining" if self.draining
                             else "ok"}
        principal = self._authenticate(headers)
        if len(parts) == 3 and parts[0] == "t":
            return self._tenant_route(method, principal, parts[1],
                                      parts[2], query, body)
        if len(parts) == 2 and parts[0] == "admin":
            return self._admin_route(method, principal, parts[1],
                                     query, body)
        raise _not_found()

    def _authenticate(self, headers: Dict[str, str]) -> Principal:
        header = ""
        for key, value in headers.items():
            if key.lower() == "authorization":
                header = value
                break
        scheme, _sep, token = header.partition(" ")
        if scheme.lower() != "bearer":
            raise AuthError("missing or invalid bearer token")
        return self.tokens.resolve(token.strip())

    @staticmethod
    def _check(principal: Principal, tenant: str, *,
               write: bool) -> None:
        verdict = principal.decide(tenant, write=write)
        if verdict == "hidden":
            raise _not_found()
        if verdict == "forbidden":
            raise _forbidden(
                f"token {principal.label} lacks "
                f"{'write' if write else 'read'} on tenant {tenant!r}")

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, Any]:
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as exc:
            raise _bad_request(f"request body is not JSON: {exc}") \
                from exc
        if not isinstance(parsed, dict):
            raise _bad_request("request body must be a JSON object")
        return parsed

    # -- tenant endpoints ---------------------------------------------------

    def _tenant_route(self, method: str, principal: Principal,
                      tenant: str, op: str, query: Dict[str, str],
                      body: bytes) -> Tuple[int, Dict[str, str],
                                            Dict[str, Any]]:
        try:
            _auth.validate_tenant(tenant)
        except PathError:
            raise _not_found() from None  # same cloak as no-grant
        handlers: Dict[Tuple[str, str], Callable] = {
            ("POST", "put"): self._op_put,
            ("GET", "get"): self._op_get,
            ("GET", "info"): self._op_info,
            ("POST", "seal"): self._op_seal,
            ("POST", "seal_many"): self._op_seal_many,
            ("GET", "verify"): self._op_verify,
            ("POST", "export_evidence"): self._op_export,
            ("GET", "search"): self._op_search,
        }
        handler = handlers.get((method, op))
        if handler is None:
            raise _not_found()
        write = method == "POST"
        self._check(principal, tenant, write=write)
        payload = self._json_body(body) if method == "POST" else query
        return handler(tenant, payload)

    def _confine(self, tenant: str, payload: Dict[str, Any],
                 key: str = "path") -> str:
        value = payload.get(key)
        if not isinstance(value, str):
            raise _bad_request(f"missing or non-string {key!r}")
        return _auth.confine(tenant, value)

    def _op_put(self, tenant: str, payload: Dict[str, Any]):
        path = self._confine(tenant, payload)
        data = _schemas.b64decode(payload.get("data", ""), what="data")
        overwrite = bool(payload.get("overwrite", False))
        with self._fleet_guard():
            info = self.fleet.put(path, data, overwrite=overwrite,
                                  make_parents=True)
        return 200, {}, _schemas.object_info_to_wire(info)

    def _op_get(self, tenant: str, payload: Dict[str, Any]):
        path = self._confine(tenant, payload)
        with self._fleet_guard():
            data = self.fleet.get(path)
        return 200, {}, {"path": payload["path"],
                         "data": _schemas.b64encode(data)}

    def _op_info(self, tenant: str, payload: Dict[str, Any]):
        path = self._confine(tenant, payload)
        with self._fleet_guard():
            info = self.fleet.info(path)
        return 200, {}, _schemas.object_info_to_wire(info)

    def _op_seal(self, tenant: str, payload: Dict[str, Any]):
        path = self._confine(tenant, payload)
        timestamp = self._timestamp(payload)
        with self._fleet_guard():
            receipt = self.fleet.seal(path, timestamp=timestamp)
        return 200, {}, _schemas.seal_receipt_to_wire(receipt)

    def _op_seal_many(self, tenant: str, payload: Dict[str, Any]):
        raw_paths = payload.get("paths")
        if not isinstance(raw_paths, list) or not raw_paths:
            raise _bad_request("'paths' must be a non-empty list")
        paths = [_auth.confine(tenant, p) if isinstance(p, str)
                 else self._confine(tenant, {"path": p})
                 for p in raw_paths]
        timestamp = self._timestamp(payload)
        # fleet.last_op is thread-local: reading it after the call is
        # race-free even with other handlers mid-pass.
        with self._fleet_guard():
            receipts = self.fleet.seal_many(paths, timestamp=timestamp)
            degraded = self.fleet.last_op.degraded
        slots = [_schemas.result_slot_to_wire(r) for r in receipts]
        failures = [s for s in slots if s["kind"] == "member_failure"]
        status = 207 if degraded else 200
        return status, {}, {"receipts": slots, "degraded": degraded,
                            "failures": failures}

    def _op_verify(self, tenant: str, payload: Dict[str, Any]):
        path = self._confine(tenant, payload)
        with self._fleet_guard():
            report = self.fleet.verify(path)
        return 200, {}, _schemas.verify_report_to_wire(report)

    def _op_export(self, tenant: str, payload: Dict[str, Any]):
        case = payload.get("case")
        if not isinstance(case, str):
            raise _bad_request("missing or non-string 'case'")
        raw = payload.get("exhibits")
        if not isinstance(raw, dict) or not raw:
            raise _bad_request("'exhibits' must be a non-empty object")
        exhibits = {}
        for name, data in raw.items():
            if not isinstance(name, str) or "/" in name or not name:
                raise _bad_request(f"bad exhibit name {name!r}")
            exhibits[name] = _schemas.b64decode(
                data, what=f"exhibit {name!r}")
        fleet_case = _auth.evidence_case(tenant, case)
        timestamp = self._timestamp(payload)
        with self._fleet_guard():
            export = self.fleet.export_evidence(
                fleet_case, exhibits, timestamp=timestamp)
            degraded = self.fleet.last_op.degraded
            failures = [_schemas.member_failure_to_wire(f)
                        for f in self.fleet.last_op.failures]
        status = 207 if degraded else 200
        return status, {}, {
            "case": case, "fleet_case": export.case,
            "intact": export.intact, "degraded": degraded,
            "failures": failures,
            "exports": [_schemas.evidence_export_to_wire(e)
                        for e in export.exports]}

    def _op_search(self, tenant: str, payload: Dict[str, Any]):
        """Tenant-confined evidence search.

        Whatever the query says, a ``tenant:<this tenant>`` filter is
        forced on (user-supplied ``tenant:`` filters are stripped
        first), so cross-tenant documents are invisible — not merely
        unreturned.
        """
        parsed = as_query(payload.get("q", ""))
        parsed = Query(
            terms=parsed.terms,
            filters=tuple((name, value)
                          for name, value in parsed.filters
                          if name != "tenant") + (("tenant", tenant),))
        facets = tuple(f for f in payload.get("facets", "").split(",")
                       if f)
        highlight = payload.get("highlight", "") \
            not in ("", "0", "false", "no")
        result = self.index.search(
            parsed, facets=facets, highlight=highlight,
            limit=self._int_param(payload, "limit", minimum=1),
            fragment_size=self._int_param(payload, "fragment_size",
                                          minimum=1),
            fragment_count=self._int_param(payload, "fragment_count",
                                           minimum=0))
        return 200, {}, _schemas.search_result_to_wire(result)

    @staticmethod
    def _int_param(payload: Dict[str, Any], key: str, *,
                   minimum: int) -> Optional[int]:
        value = payload.get(key)
        if value is None or value == "":
            return None
        try:
            parsed = int(value)
        except (TypeError, ValueError):
            raise _bad_request(f"{key!r} must be an integer") from None
        if parsed < minimum:
            raise _bad_request(f"{key!r} must be >= {minimum}")
        return parsed

    @staticmethod
    def _timestamp(payload: Dict[str, Any]) -> Optional[int]:
        value = payload.get("timestamp")
        if value is None:
            return None
        if not isinstance(value, int) or isinstance(value, bool):
            raise _bad_request("'timestamp' must be an integer")
        return value

    # -- admin endpoints ----------------------------------------------------

    def _admin_route(self, method: str, principal: Principal, op: str,
                     query: Dict[str, str],
                     body: bytes) -> Tuple[int, Dict[str, str],
                                           Dict[str, Any]]:
        handlers: Dict[Tuple[str, str], Callable] = {
            ("GET", "audit"): self._op_audit,
            ("GET", "history"): self._op_history,
            ("GET", "describe"): self._op_describe,
            ("POST", "format"): self._op_format,
            ("GET", "alerts"): self._op_alerts,
            ("POST", "alerts"): self._op_alerts_post,
        }
        handler = handlers.get((method, op))
        if handler is None:
            raise _not_found()
        if not principal.admin:
            # the endpoint's existence is documented — a tenant token
            # learns nothing from a 403 here, and "insufficient
            # privilege" beats a lying 404 for operability
            raise _forbidden(
                f"token {principal.label} is not admin")
        return handler(query, body)

    def _op_audit(self, query: Dict[str, str], _body: bytes = b""):
        deep = query.get("deep", "") not in ("", "0", "false", "no")
        # fleet.audit takes the fleet's exclusive mode internally: it
        # waits for in-flight shard requests, then runs alone.
        with self._fleet_guard():
            report = self.fleet.audit(deep=deep)
            degraded = self.fleet.last_op.degraded
            failures = [_schemas.member_failure_to_wire(f)
                        for f in self.fleet.last_op.failures]
        wire = _schemas.audit_report_to_wire(report)
        wire["degraded"] = degraded
        wire["failures"] = failures
        return (207 if degraded else 200), {}, wire

    def _op_history(self, _query: Dict[str, str], _body: bytes = b""):
        # no single fleet op wraps this member walk, so take the
        # fleet's exclusive mode here to freeze every per-member log
        with self._fleet_guard(), self.fleet.exclusive():
            members = [_schemas.history_to_wire(member.history())
                       for member in self.fleet.members]
        return 200, {}, {"members": members}

    def _op_describe(self, _query: Dict[str, str], _body: bytes = b""):
        with self._fleet_guard(), self.fleet.exclusive():
            fleet_desc = {
                key: (list(value) if isinstance(value, tuple) else value)
                for key, value in self.fleet.describe().items()}
        body: Dict[str, Any] = {"fleet": fleet_desc}
        if self.settings is not None:
            body["settings"] = self.settings.describe()
            body["settings"]["policy"].pop("installed_policy", None)
        return 200, {}, body

    def _op_format(self, _query: Dict[str, str], _body: bytes = b""):
        with self._fleet_guard():
            reports = self.fleet.format_devices()
            degraded = self.fleet.last_op.degraded
        slots: List[Dict[str, Any]] = []
        for report in reports:
            if isinstance(report, MemberFailure):
                slots.append(_schemas.member_failure_to_wire(report))
            else:
                slots.append({
                    "kind": "format_report", "blocks": report.blocks,
                    "bad_blocks": report.bad_blocks,
                    "fragile_blocks": report.fragile_blocks,
                    "device_seconds": report.device_seconds})
        return (207 if degraded else 200), {}, {
            "reports": slots, "degraded": degraded}

    def _op_alerts(self, _query: Dict[str, str], _body: bytes = b""):
        """Standing queries plus every fired tamper alert."""
        return 200, {}, {
            "standing": [_schemas.standing_query_to_wire(sq)
                         for sq in self.index.standing_queries()],
            "alerts": [_schemas.tamper_alert_to_wire(a)
                       for a in self.index.alerts]}

    def _op_alerts_post(self, _query: Dict[str, str], body: bytes):
        """Register (``{"name", "query", "tenant"?}``) or unregister
        (``{"unregister": name}``) one standing query."""
        payload = self._json_body(body)
        if "unregister" in payload:
            name = payload["unregister"]
            if not isinstance(name, str) or not name:
                raise _bad_request("'unregister' must be a query name")
            removed = self.index.unregister_alert(name)
            return 200, {}, {"unregistered": removed, "name": name}
        name = payload.get("name")
        query_text = payload.get("query")
        if not isinstance(name, str) or not name:
            raise _bad_request("missing or non-string 'name'")
        if not isinstance(query_text, str) or not query_text.strip():
            raise _bad_request("missing or non-string 'query'")
        tenant = payload.get("tenant")
        if tenant is not None:
            tenant = _auth.validate_tenant(tenant)
        standing = self.index.register_alert(name, query_text,
                                             tenant=tenant)
        return 200, {}, _schemas.standing_query_to_wire(standing)


# ---------------------------------------------------------------------------
# HTTP plumbing


class _GatewayHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-gateway/1.0"
    app: GatewayApp  # set by the server subclass

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # request logging is the deployment's proxy's job

    def _respond(self, status: int, headers: Dict[str, str],
                 body: Dict[str, Any]) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for key, value in headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(payload)

    def _serve(self, method: str) -> None:
        app = self.server.app  # type: ignore[attr-defined]
        if not app.enter():
            self._respond(503, {"Retry-After": "1"}, {
                "error": {"code": "draining",
                          "message": "gateway is shutting down",
                          "retryable": True}})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                self._respond(413, {}, {
                    "error": {"code": "too_large",
                              "message": "request body exceeds "
                                         f"{MAX_BODY_BYTES} bytes",
                              "retryable": False}})
                return
            body = self.rfile.read(length) if length else b""
            status, headers, payload = app.handle(
                method, self.path, dict(self.headers.items()), body)
            self._respond(status, headers, payload)
        except (ConnectionError, socket.error):
            self.close_connection = True
        finally:
            app.leave()

    def do_GET(self) -> None:  # noqa: N802 — http.server contract
        self._serve("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._serve("POST")


class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 app: GatewayApp) -> None:
        super().__init__(address, _GatewayHandler)
        self.app = app


class GatewayServer:
    """A running gateway: HTTP accept loop + graceful lifecycle.

    Usage::

        app = GatewayApp(fleet, TokenTable.from_spec(spec))
        with GatewayServer(app, host="127.0.0.1", port=0) as server:
            ...  # server.address is the bound host:port
    """

    def __init__(self, app: GatewayApp, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = app
        self._httpd = _GatewayHTTPServer((host, port), app)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "GatewayServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"gateway-{self.address}", daemon=True)
        self._thread.start()
        return self

    def close(self, *, graceful: bool = True,
              drain_timeout: float = DRAIN_TIMEOUT_S) -> None:
        """Drain, stop accepting, release fleet executors
        (idempotent).  ``graceful=False`` skips the drain — the
        fault-injection path, not the deployment one."""
        if graceful:
            self.app.drain(drain_timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=drain_timeout)
            self._thread = None
        from .. import parallel

        parallel.close_executors()

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()


def serve(settings: Optional[GatewaySettings] = None, *,
          announce=print) -> None:
    """Run a gateway until interrupted (the ``python -m repro.gateway
    serve`` entry point).  ``announce`` receives one ``"GATEWAY
    listening on host:port"`` line once the socket accepts — launchers
    parse it to learn an ephemeral port."""
    if settings is None:
        settings = GatewaySettings.resolve()
    fleet = settings.build_fleet()
    app = GatewayApp(fleet, settings.tokens, settings=settings)
    server = GatewayServer(app, host=settings.host, port=settings.port)
    server.start()
    announce(f"GATEWAY listening on {server.address}")
    try:
        while True:
            time.sleep(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        announce("GATEWAY draining")
        server.close(graceful=True)
        announce("GATEWAY stopped")
