"""Settings-driven gateway configuration: a deployment is environment
variables, not code.

:class:`GatewaySettings` gathers everything ``python -m repro.gateway
serve`` needs, each knob resolved through the established chain
(explicit argument > ``repro.engine(...)`` context > installed policy
> environment variable > default) and its deciding layer recorded —
the gateway's answer to :func:`repro.api.describe_policy`:

* **bind address** — :func:`repro.api.resolve_gateway_bind`
  (``REPRO_GATEWAY_BIND``, default loopback ``127.0.0.1:8473``);
* **credentials** — the inline spec ``REPRO_GATEWAY_TOKENS`` wins
  over a token file (explicit path >
  :func:`repro.api.resolve_gateway_token_file` /
  ``REPRO_GATEWAY_TOKEN_FILE``), because the inline variable is the
  container-native deployment and the file is the mounted-secret one;
  with neither, the gateway refuses to start;
* **fleet shape** — gateway-local variables
  (:data:`GATEWAY_MEMBERS_ENV_VAR` and friends) size the
  ``FleetStore`` the service fronts; the *dispatch* of that fleet
  (executor, worker hosts, sessions, timeouts, degrade mode, HMAC
  secret) is deliberately NOT re-plumbed here — ``FleetStore``
  resolves all of it through the existing policy chain at each pass,
  so ``REPRO_FLEET_HOSTS=... REPRO_FLEET_EXECUTOR=rpc python -m
  repro.gateway serve`` is a remote-fleet deployment with zero
  gateway-specific wiring.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..api import policy as _policy
from ..api.fleet import FleetStore
from ..api.store import StoreConfig
from ..errors import ConfigurationError
from .auth import TokenTable

#: Fleet members the serve CLI provisions (gateway-local: the fleet
#: *shape* is a service property, not an execution-policy switch).
GATEWAY_MEMBERS_ENV_VAR = "REPRO_GATEWAY_MEMBERS"
GATEWAY_SEED_ENV_VAR = "REPRO_GATEWAY_SEED"
GATEWAY_BLOCKS_ENV_VAR = "REPRO_GATEWAY_BLOCKS"

#: ``shard`` (default) dispatches tenant requests under per-member
#: footprint locks so disjoint-member traffic overlaps; ``single``
#: restores the one-big-lock gateway (the concurrency baseline).
GATEWAY_LOCK_MODE_ENV_VAR = "REPRO_GATEWAY_LOCK_MODE"

DEFAULT_GATEWAY_MEMBERS = 4
DEFAULT_GATEWAY_SEED = 2008
DEFAULT_GATEWAY_BLOCKS = 512
DEFAULT_GATEWAY_LOCK_MODE = "shard"


def _env_int(name: str, default: int, *, minimum: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {raw!r}") from None
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}")
    return value


@dataclass
class GatewaySettings:
    """Resolved gateway deployment configuration (see module doc)."""

    host: str
    port: int
    bind_source: str
    tokens: TokenTable
    tokens_source: str
    members: int = DEFAULT_GATEWAY_MEMBERS
    seed: int = DEFAULT_GATEWAY_SEED
    total_blocks: int = DEFAULT_GATEWAY_BLOCKS
    lock_mode: str = DEFAULT_GATEWAY_LOCK_MODE
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def resolve(cls, *, bind: Optional[str] = None,
                tokens: Optional[str] = None,
                token_file: Optional[str] = None,
                members: Optional[int] = None,
                seed: Optional[int] = None,
                total_blocks: Optional[int] = None,
                lock_mode: Optional[str] = None) -> "GatewaySettings":
        """Resolve every knob through its chain and record sources.

        ``tokens`` is an inline token spec string (the
        ``REPRO_GATEWAY_TOKENS`` syntax); ``token_file`` a path to
        one.  Explicit spec > explicit file > env spec > resolved
        file (context/policy/env).
        """
        bind_value, bind_source = _policy.resolve_gateway_bind(bind)
        host, _sep, port_text = bind_value.rpartition(":")
        table, tokens_source = cls._resolve_tokens(tokens, token_file)
        if lock_mode is None:
            lock_mode = os.environ.get(
                GATEWAY_LOCK_MODE_ENV_VAR,
                DEFAULT_GATEWAY_LOCK_MODE).strip().lower() \
                or DEFAULT_GATEWAY_LOCK_MODE
        if lock_mode not in FleetStore.LOCK_MODES:
            raise ConfigurationError(
                f"{GATEWAY_LOCK_MODE_ENV_VAR} must be one of "
                f"{FleetStore.LOCK_MODES}, got {lock_mode!r}")
        return cls(
            lock_mode=lock_mode,
            host=host, port=int(port_text), bind_source=bind_source,
            tokens=table, tokens_source=tokens_source,
            members=members if members is not None else _env_int(
                GATEWAY_MEMBERS_ENV_VAR, DEFAULT_GATEWAY_MEMBERS,
                minimum=1),
            seed=seed if seed is not None else _env_int(
                GATEWAY_SEED_ENV_VAR, DEFAULT_GATEWAY_SEED, minimum=0),
            total_blocks=total_blocks if total_blocks is not None
            else _env_int(GATEWAY_BLOCKS_ENV_VAR,
                          DEFAULT_GATEWAY_BLOCKS, minimum=64))

    @staticmethod
    def _resolve_tokens(tokens: Optional[str],
                        token_file: Optional[str]) -> "tuple[TokenTable, str]":
        if tokens is not None:
            return TokenTable.from_spec(tokens, where="explicit spec"), \
                "explicit"
        if token_file is None:
            inline = os.environ.get(_policy.GATEWAY_TOKENS_ENV_VAR)
            if inline is not None and inline.strip():
                return TokenTable.from_spec(
                    inline, where=_policy.GATEWAY_TOKENS_ENV_VAR), "env"
            token_file, file_source = \
                _policy.resolve_gateway_token_file(None)
        else:
            file_source = "explicit"
        if token_file is None:
            raise ConfigurationError(
                "no gateway credentials configured: set "
                f"{_policy.GATEWAY_TOKENS_ENV_VAR} to an inline token "
                f"spec, or point {_policy.GATEWAY_TOKEN_FILE_ENV_VAR} "
                "(or the gateway_token_file policy field) at a token "
                "file")
        try:
            with open(token_file, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read gateway token file {token_file!r}: "
                f"{exc}") from exc
        return TokenTable.from_spec(text, where=token_file), \
            f"token_file ({file_source})"

    @property
    def bind(self) -> str:
        return f"{self.host}:{self.port}"

    def build_fleet(self) -> FleetStore:
        """Provision the fleet this gateway fronts.

        Members keep instruction logs (``audit_log=True``) so the
        admin ``history`` endpoint has records to serve; dispatch
        executor/hosts/faults resolve per pass through the policy
        chain, untouched by this object.
        """
        return FleetStore.create(
            self.members,
            StoreConfig(total_blocks=self.total_blocks, audit_log=True),
            seed=self.seed, lock_mode=self.lock_mode)

    def describe(self) -> Dict[str, Any]:
        """Deployment diagnostics for the admin ``describe`` endpoint
        — sources, never secret material (token count only), plus the
        fleet-dispatch policy picture the service will run under."""
        return {
            "bind": self.bind,
            "bind_source": self.bind_source,
            "tokens": len(self.tokens),
            "tokens_source": self.tokens_source,
            "members": self.members,
            "seed": self.seed,
            "total_blocks": self.total_blocks,
            "lock_mode": self.lock_mode,
            "policy": {
                key: value
                for key, value in _policy.describe_policy().items()
                if key.startswith(("executor", "fleet_", "gateway_",
                                   "max_workers"))
            },
        }
