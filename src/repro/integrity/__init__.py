"""Integrity structures served by SERO storage (Section 4.2 / 8).

* :mod:`~repro.integrity.venti` — content-addressed hash trees whose
  roots are sealed by heating.
* :mod:`~repro.integrity.fossil` — the fossilised index: root-down
  record trie whose full nodes are heated instead of copied to WORM.
* :mod:`~repro.integrity.evidence` — digital evidence bags: exhibits
  heated in place plus a heated manifest.
"""

from .evidence import EvidenceBag, EvidenceItem
from .fossil import SLOTS, FossilizedIndex, digit_path
from .selfsec import AuditLog, SelfSecuringFS
from .venti import FANOUT, NODE_PAYLOAD, VentiStore, node_score

__all__ = [
    "AuditLog",
    "SelfSecuringFS",
    "VentiStore",
    "node_score",
    "FANOUT",
    "NODE_PAYLOAD",
    "FossilizedIndex",
    "digit_path",
    "SLOTS",
    "EvidenceBag",
    "EvidenceItem",
]
