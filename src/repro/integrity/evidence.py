"""Digital evidence bags on SeroFS (Section 8, "Forensics").

"Live forensics methods would benefit from a storage device that can
be instructed to heat evidence without having to copy it ... Our
heated files could be the basis of such an evidence bag."

An :class:`EvidenceBag` is a directory of files, each heated the
moment it is added (evidence is sealed *in place*, no imaging copy),
plus a heated manifest binding the item list together: item name,
size and the per-item line hash recorded by the device.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..device.sero import VerificationResult, VerifyStatus
from ..errors import FileExistsError_, IntegrityError
from ..fs.lfs import SeroFS

_MANIFEST_MAGIC = b"EVBAG001"


@dataclass
class EvidenceItem:
    """One sealed item of a bag."""

    name: str
    size: int
    line_start: int
    line_hash: bytes


class EvidenceBag:
    """A tamper-evident collection of exhibits.

    Args:
        fs: the mounted SeroFS.
        path: directory to hold the bag (created if missing).
    """

    def __init__(self, fs: SeroFS, path: str) -> None:
        self.fs = fs
        self.path = path.rstrip("/")
        try:
            fs.mkdir(self.path)
        except FileExistsError_:
            pass
        self._items: List[EvidenceItem] = []
        self._closed = False

    def add(self, name: str, data: bytes, timestamp: Optional[int] = None) -> EvidenceItem:
        """Seal one exhibit: write it and heat it immediately."""
        if self._closed:
            raise IntegrityError("evidence bag already closed")
        if "/" in name:
            raise IntegrityError("exhibit names may not contain '/'")
        file_path = f"{self.path}/{name}"
        self.fs.create(file_path, data)
        record = self.fs.heat_file(file_path, timestamp=timestamp)
        item = EvidenceItem(name=name, size=len(data),
                            line_start=record.start,
                            line_hash=record.line_hash)
        self._items.append(item)
        return item

    def close(self, timestamp: Optional[int] = None) -> EvidenceItem:
        """Seal the manifest, closing the bag."""
        if self._closed:
            raise IntegrityError("evidence bag already closed")
        manifest = bytearray(_MANIFEST_MAGIC)
        manifest += struct.pack(">I", len(self._items))
        for item in self._items:
            raw = item.name.encode("utf-8")
            manifest += struct.pack(">H", len(raw)) + raw
            manifest += struct.pack(">QQ", item.size, item.line_start)
            manifest += item.line_hash
        path = f"{self.path}/MANIFEST"
        self.fs.create(path, bytes(manifest))
        record = self.fs.heat_file(path, timestamp=timestamp)
        self._closed = True
        self._manifest_item = EvidenceItem(
            name="MANIFEST", size=len(manifest),
            line_start=record.start, line_hash=record.line_hash)
        return self._manifest_item

    @property
    def items(self) -> List[EvidenceItem]:
        """Exhibits sealed so far (manifest excluded)."""
        return list(self._items)

    def audit(self) -> Dict[str, VerificationResult]:
        """Verify every exhibit (and the manifest when closed)."""
        out: Dict[str, VerificationResult] = {}
        for item in self._items:
            out[item.name] = self.fs.device.verify_line(item.line_start)
        if self._closed:
            out["MANIFEST"] = self.fs.device.verify_line(
                self._manifest_item.line_start)
        return out

    def is_intact(self) -> bool:
        """True when every sealed line verifies INTACT."""
        return all(result.status is VerifyStatus.INTACT
                   for result in self.audit().values())
