"""A fossilised index on a SERO device (Zhu & Hsu, Section 4.2).

"A fossilised index builds a tree from the root downwards.  To insert
a new node in the tree we start at the root, visiting all nodes down
to a leaf until a free slot is found in which the hash of the new node
can be inserted.  The hash of the node completely determines which
slot in an existing node must be used, and what path to traverse.  The
tamper evidence guarantee relies on the assumption that once all the
slots of a node have been filled, the storage device ensures that the
node becomes RO" — which a SERO device does by *heating* the node,
"making copying the completed node to the WORM unnecessary".

Concretely: index nodes have 8 record slots; a record's path is the
sequence of 3-bit digits of its hash.  Insertion walks the digit path
from the root, placing the record in the first node whose slot for the
current digit is free; occupied slots push the walk one level down
(children are created on demand).  A node whose 8 slots are all full
is immediately heated.  Children record their (parent, digit) in their
header, so the tree is recoverable by scanning — no parent mutation is
ever needed after sealing.

Every node occupies the second block of its own 2-block line, so
sealing is a single heat_line call.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.crc import crc32
from ..device.sector import BLOCK_SIZE
from ..device.sero import SERODevice
from ..errors import FossilSlotError, IntegrityError, ReadError

SLOTS = 8
DIGEST_BYTES = 32
_NODE_MAGIC = b"FOSL"
_HEAD = ">4sQB3x"  # magic, parent node id (or 2**64-1), digit
_HEAD_SIZE = struct.calcsize(_HEAD)
_NO_PARENT = 0xFFFFFFFFFFFFFFFF
_EMPTY_SLOT = b"\x00" * DIGEST_BYTES


def digit_path(record_hash: bytes):
    """Yield successive 3-bit digits of a record hash (its fixed path)."""
    for byte in record_hash:
        yield (byte >> 5) & 0x7
        yield (byte >> 2) & 0x7
    # 2 remaining bits per byte are discarded; 64 digits is plenty


@dataclass
class _Node:
    """In-memory image of one index node."""

    node_id: int  # line start PBA
    parent: int
    digit: int
    slots: List[bytes] = field(default_factory=lambda: [_EMPTY_SLOT] * SLOTS)
    sealed: bool = False

    @property
    def full(self) -> bool:
        return all(slot != _EMPTY_SLOT for slot in self.slots)

    def pack(self) -> bytes:
        body = struct.pack(_HEAD, _NODE_MAGIC, self.parent, self.digit)
        body += b"".join(self.slots)
        body += b"\x00" * (BLOCK_SIZE - 4 - len(body))
        return body + struct.pack(">I", crc32(body))

    @classmethod
    def unpack(cls, node_id: int, payload: bytes) -> "_Node":
        (stored,) = struct.unpack(">I", payload[-4:])
        if crc32(payload[:-4]) != stored:
            raise ReadError("fossil node CRC mismatch")
        magic, parent, digit = struct.unpack(_HEAD, payload[:_HEAD_SIZE])
        if magic != _NODE_MAGIC:
            raise ReadError("not a fossil node")
        slots = [payload[_HEAD_SIZE + i * DIGEST_BYTES:
                         _HEAD_SIZE + (i + 1) * DIGEST_BYTES]
                 for i in range(SLOTS)]
        return cls(node_id=node_id, parent=parent, digit=digit, slots=slots)


class FossilizedIndex:
    """Trustworthy non-alterable record index over a device arena.

    Args:
        device: the SERO device.
        arena_start: first PBA available (even).
        arena_blocks: arena length in blocks (2 blocks per node).
    """

    def __init__(self, device: SERODevice, arena_start: int,
                 arena_blocks: int) -> None:
        if arena_start % 2:
            raise IntegrityError("fossil arena must start on an even block")
        self.device = device
        self.arena_start = arena_start
        self.arena_blocks = arena_blocks
        self._next = arena_start
        self._nodes: Dict[int, _Node] = {}
        self._children: Dict[Tuple[int, int], int] = {}
        self.records = 0
        self.root_id = self._new_node(parent=_NO_PARENT, digit=0).node_id

    # -- node management ----------------------------------------------------------

    def _new_node(self, parent: int, digit: int) -> _Node:
        start = self._next
        if start + 2 > self.arena_start + self.arena_blocks:
            raise IntegrityError("fossil arena exhausted")
        self._next += 2
        node = _Node(node_id=start, parent=parent, digit=digit)
        self.device.write_block(start + 1, node.pack())
        self._nodes[start] = node
        if parent != _NO_PARENT:
            self._children[(parent, digit)] = start
        return node

    def _persist(self, node: _Node) -> None:
        if node.sealed:
            raise FossilSlotError(f"node {node.node_id} is sealed")
        self.device.write_block(node.node_id + 1, node.pack())

    def _seal(self, node: _Node, timestamp: int = 0) -> None:
        self.device.heat_line(node.node_id, 2, timestamp=timestamp)
        node.sealed = True

    def _child(self, node: _Node, digit: int) -> _Node:
        child_id = self._children.get((node.node_id, digit))
        if child_id is not None:
            return self._nodes[child_id]
        return self._new_node(parent=node.node_id, digit=digit)

    # -- public API --------------------------------------------------------------------

    def insert(self, record_hash: bytes, timestamp: int = 0) -> Tuple[int, int]:
        """Insert a record hash; returns (node_id, slot) where it landed.

        The path is fully determined by the hash; duplicate inserts
        land on the existing copy and raise :class:`FossilSlotError`.
        """
        if len(record_hash) != DIGEST_BYTES:
            raise IntegrityError("record hash must be 32 bytes")
        if record_hash == _EMPTY_SLOT:
            raise IntegrityError("the all-zero hash is reserved")
        node = self._nodes[self.root_id]
        for digit in digit_path(record_hash):
            slot = node.slots[digit]
            if slot == record_hash:
                raise FossilSlotError(
                    f"record already present at node {node.node_id} slot {digit}")
            if slot == _EMPTY_SLOT and not node.sealed:
                node.slots[digit] = record_hash
                self._persist(node)
                self.records += 1
                if node.full:
                    self._seal(node, timestamp=timestamp)
                return (node.node_id, digit)
            node = self._child(node, digit)
        raise IntegrityError("digit path exhausted (hash collision chain)")

    def contains(self, record_hash: bytes) -> bool:
        """Deterministic lookup along the record's digit path."""
        node = self._nodes[self.root_id]
        for digit in digit_path(record_hash):
            if node.slots[digit] == record_hash:
                return True
            child_id = self._children.get((node.node_id, digit))
            if child_id is None:
                return False
            node = self._nodes[child_id]
        return False

    @property
    def sealed_nodes(self) -> List[int]:
        """Node ids (line starts) of all sealed nodes."""
        return [n.node_id for n in self._nodes.values() if n.sealed]

    @property
    def node_count(self) -> int:
        """Total index nodes allocated."""
        return len(self._nodes)

    def audit(self) -> Dict[int, object]:
        """Verify every sealed node's heated line in one batched sweep
        (:meth:`~repro.device.sero.SERODevice.verify_lines`)."""
        node_ids = sorted(self.sealed_nodes)
        return dict(zip(node_ids, self.device.verify_lines(node_ids)))

    def verify_sealed(self) -> Dict[int, object]:
        """Verify every sealed node's heated line."""
        return self.audit()

    def rebuild_from_device(self) -> int:
        """Re-scan the arena, rebuilding the in-memory maps (recovery
        path, e.g. after the in-memory index is lost).  Returns nodes
        recovered."""
        self._nodes.clear()
        self._children.clear()
        recovered = 0
        heated = {rec.start for rec in self.device.heated_lines}
        for start in range(self.arena_start, self._next, 2):
            try:
                node = _Node.unpack(start, self.device.read_block(start + 1))
            except ReadError:
                continue
            node.sealed = start in heated
            self._nodes[start] = node
            if node.parent != _NO_PARENT:
                self._children[(node.parent, node.digit)] = start
            recovered += 1
        self.records = sum(
            sum(1 for s in n.slots if s != _EMPTY_SLOT)
            for n in self._nodes.values())
        return recovered
