"""Self-securing storage with heatable request logs (Section 8).

"The idea of self-securing storage takes the view that the storage
system should place only limited trust in the host that controls it
... the storage system itself maintains a log of the instructions it
is given ... Our approach could strengthen the defences of a
self-securing storage device because the logs can be heated."

:class:`AuditLog` appends one record per storage instruction to a log
file; when a log segment reaches its rotation size (or on demand) it
is heated, making the recorded history physically immutable.  The log
survives directory wipes through the ordinary deep scan (each chunk
is a heated file) and any rewrite of a sealed chunk is caught by
verification.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..device.sero import VerificationResult, VerifyStatus
from ..errors import FileExistsError_, IntegrityError
from ..fs.lfs import SeroFS

_RECORD_HEAD = ">QH"  # tick, length


@dataclass
class AuditLog:
    """An append-only, incrementally heated instruction log.

    Args:
        fs: file system to keep the log on.
        path: directory for the log chunks.
        rotate_bytes: heat the active chunk once it reaches this size.
    """

    fs: SeroFS
    path: str = "/audit"
    rotate_bytes: int = 4096
    _active: bytearray = field(default_factory=bytearray)
    _chunk_index: int = 0
    _sealed_chunks: List[Tuple[str, int]] = field(default_factory=list)
    _records_logged: int = 0

    def __post_init__(self) -> None:
        try:
            self.fs.mkdir(self.path)
        except FileExistsError_:
            pass

    # -- logging -----------------------------------------------------------------

    def log(self, tick: int, instruction: bytes) -> None:
        """Record one storage instruction."""
        if len(instruction) > 0xFFFF:
            raise IntegrityError("instruction record too large")
        self._active += struct.pack(_RECORD_HEAD, tick, len(instruction))
        self._active += instruction
        self._records_logged += 1
        if len(self._active) >= self.rotate_bytes:
            self.rotate(timestamp=tick)

    def rotate(self, timestamp: Optional[int] = None) -> Optional[str]:
        """Seal the active chunk: write it as a file and heat it.

        Returns the sealed chunk's path (None when there was nothing
        to seal).
        """
        if not self._active:
            return None
        name = f"{self.path}/log-{self._chunk_index:06d}"
        self.fs.create(name, bytes(self._active))
        record = self.fs.heat_file(name, timestamp=timestamp)
        self._sealed_chunks.append((name, record.start))
        self._active.clear()
        self._chunk_index += 1
        return name

    # -- reading back ---------------------------------------------------------------

    @property
    def sealed_chunks(self) -> List[str]:
        """Paths of heated log chunks."""
        return [name for name, _start in self._sealed_chunks]

    @property
    def records_logged(self) -> int:
        """Total records ever logged (sealed + active)."""
        return self._records_logged

    def history(self) -> List[Tuple[int, bytes]]:
        """All records, sealed chunks first, then the active tail."""
        out: List[Tuple[int, bytes]] = []
        for name, _start in self._sealed_chunks:
            out.extend(_parse_records(self.fs.read(name)))
        out.extend(_parse_records(bytes(self._active)))
        return out

    def verify(self) -> Dict[str, VerificationResult]:
        """Verify every sealed chunk's heated line (batched through
        :meth:`~repro.device.sero.SERODevice.verify_lines`)."""
        results = self.fs.device.verify_lines(
            [start for _name, start in self._sealed_chunks])
        return {name: result
                for (name, _start), result in zip(self._sealed_chunks, results)}

    def is_history_intact(self) -> bool:
        """True when every sealed chunk verifies INTACT."""
        return all(result.status is VerifyStatus.INTACT
                   for result in self.verify().values())


def _parse_records(raw: bytes) -> List[Tuple[int, bytes]]:
    head_size = struct.calcsize(_RECORD_HEAD)
    records: List[Tuple[int, bytes]] = []
    offset = 0
    while offset + head_size <= len(raw):
        tick, length = struct.unpack_from(_RECORD_HEAD, raw, offset)
        offset += head_size
        records.append((tick, raw[offset:offset + length]))
        offset += length
    return records


class SelfSecuringFS:
    """A SeroFS wrapper that logs every mutating instruction.

    The wrapper records the instruction *before* executing it (the
    self-securing discipline: the log must not depend on the host
    being honest afterwards) and exposes the same mutating calls.
    """

    def __init__(self, fs: SeroFS, rotate_bytes: int = 4096) -> None:
        self.fs = fs
        self.audit = AuditLog(fs, rotate_bytes=rotate_bytes)
        self._tick = 0

    def _record(self, op: str, *args: str) -> None:
        self._tick += 1
        line = " ".join((op,) + args).encode("utf-8")
        self.audit.log(self._tick, line)

    def create(self, path: str, data: bytes = b""):
        """Logged create."""
        self._record("create", path, str(len(data)))
        return self.fs.create(path, data)

    def write(self, path: str, data: bytes):
        """Logged write."""
        self._record("write", path, str(len(data)))
        return self.fs.write(path, data)

    def unlink(self, path: str):
        """Logged unlink."""
        self._record("unlink", path)
        return self.fs.unlink(path)

    def heat_file(self, path: str, timestamp: Optional[int] = None):
        """Logged heat."""
        self._record("heat", path)
        return self.fs.heat_file(path, timestamp=timestamp)

    def read(self, path: str) -> bytes:
        """Reads are not logged (self-securing logs capture mutations)."""
        return self.fs.read(path)

    def seal_log(self):
        """Rotate and heat the current log tail."""
        return self.audit.rotate(timestamp=self._tick)
