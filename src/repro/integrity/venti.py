"""Venti-style content-addressed archival storage on a SERO device.

Section 4.2: "Venti uses a secure hash as the address of a node ...
Venti builds a hierarchy of nodes from the leaves upwards ... As long
as the hash of the root is stored securely, tampering can be detected.
A SERO device would be appropriate to keep the hash of a node secure."

This module implements that combination:

* a content-addressed block store (``put``/``get`` by SHA-256 *score*),
* hash trees over large byte streams (leaves -> pointer nodes -> root),
* :meth:`VentiStore.seal` — copy a node into a fresh 2-block line and
  heat it, making that score's content physically write-once, and
* snapshots: named, sealed roots ("one for every working day").

Checking a node "uses the hash of the node as its address, then
re-computes the hash ... a computed hash that does not match the
address presents evidence of tampering" — that is :meth:`verify_tree`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.hashutil import HASH_SIZE
from ..crypto.sha256 import sha256_digest
from ..device.sector import BLOCK_SIZE
from ..device.sero import SERODevice, VerificationResult
from ..errors import IntegrityError, ReadError, UnknownScoreError
from ..api.policy import resolve_vectorized

_NODE_MAGIC = b"VN"
_TYPE_LEAF = 1
_TYPE_POINTER = 2
_HEAD = ">2sBH"  # magic, type, payload length
_HEAD_SIZE = struct.calcsize(_HEAD)

#: Usable payload bytes per node block.
NODE_PAYLOAD = BLOCK_SIZE - _HEAD_SIZE

#: Child scores per pointer node.
FANOUT = NODE_PAYLOAD // HASH_SIZE  # 15


def node_score(ntype: int, payload: bytes) -> bytes:
    """Content address of a node: SHA-256 over its type and payload."""
    return sha256_digest(bytes([ntype]), payload)


@dataclass
class VentiStore:
    """Content-addressed store over a contiguous device arena.

    Args:
        device: the SERO device.
        arena_start: first PBA the store may use (must be even so
            2-block seal lines can be aligned).
        arena_blocks: arena length in blocks.
    """

    device: SERODevice
    arena_start: int
    arena_blocks: int
    batched: bool = field(default_factory=resolve_vectorized)
    _index: Dict[bytes, Tuple[int, int]] = field(default_factory=dict)
    _next: int = 0
    _sealed: Dict[bytes, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.arena_start % 2:
            raise IntegrityError("arena must start on an even block")
        self._next = self.arena_start

    # -- basic store -----------------------------------------------------------

    def _alloc(self, nblocks: int = 1, aligned: bool = False) -> int:
        if aligned and self._next % nblocks:
            self._next += nblocks - (self._next % nblocks)
        pba = self._next
        if pba + nblocks > self.arena_start + self.arena_blocks:
            raise IntegrityError("venti arena exhausted")
        self._next += nblocks
        return pba

    def _write_node(self, ntype: int, payload: bytes) -> bytes:
        if len(payload) > NODE_PAYLOAD:
            raise IntegrityError(
                f"node payload too large: {len(payload)} > {NODE_PAYLOAD}")
        score = node_score(ntype, payload)
        if score in self._index:
            return score  # dedup: same content, same address
        pba = self._alloc()
        self.device.write_block(pba, self._pack_node(ntype, payload))
        self._index[score] = (pba, ntype)
        return score

    def put(self, data: bytes) -> bytes:
        """Store a leaf node; returns its score."""
        return self._write_node(_TYPE_LEAF, data)

    def _read_node(self, score: bytes) -> Tuple[int, bytes]:
        entry = self._index.get(score)
        if entry is None:
            raise UnknownScoreError(f"unknown score {score.hex()[:16]}")
        pba, _ = entry
        block = self.device.read_block(pba)
        magic, ntype, length = struct.unpack(_HEAD, block[:_HEAD_SIZE])
        if magic != _NODE_MAGIC:
            raise ReadError("not a venti node")
        payload = block[_HEAD_SIZE:_HEAD_SIZE + length]
        return ntype, payload

    def get(self, score: bytes, verify: bool = True) -> bytes:
        """Fetch a leaf's payload by score.

        With ``verify`` (default) the payload is re-hashed and compared
        to the score — the Venti tamper check.
        """
        ntype, payload = self._read_node(score)
        if verify and node_score(ntype, payload) != score:
            raise IntegrityError(
                f"score mismatch for {score.hex()[:16]}: evidence of tampering")
        return payload

    def _pack_node(self, ntype: int, payload: bytes) -> bytes:
        block = struct.pack(_HEAD, _NODE_MAGIC, ntype, len(payload)) + payload
        return block + b"\x00" * (BLOCK_SIZE - len(block))

    def _write_nodes(self, ntype: int, payloads: List[bytes]) -> List[bytes]:
        """Level-at-a-time node write: score every payload of a tree
        level in one pass, dedup against the store, and write all new
        node blocks as one contiguous block run.

        Allocation order matches the sequential :meth:`_write_node`
        loop exactly, so the resulting scores, index layout and arena
        occupancy are byte-identical.
        """
        for payload in payloads:
            if len(payload) > NODE_PAYLOAD:
                raise IntegrityError(
                    f"node payload too large: {len(payload)} > {NODE_PAYLOAD}")
        scores = [node_score(ntype, p) for p in payloads]
        new: List[Tuple[bytes, bytes]] = []
        batch_seen = set()
        for score, payload in zip(scores, payloads):
            if score in self._index or score in batch_seen:
                continue  # dedup: same content, same address
            batch_seen.add(score)
            new.append((score, payload))
        if new:
            first = self._alloc(len(new))
            self.device.write_block_run(
                first, [self._pack_node(ntype, p) for _s, p in new])
            for offset, (score, _payload) in enumerate(new):
                self._index[score] = (first + offset, ntype)
        return scores

    # -- hash trees --------------------------------------------------------------

    def put_stream(self, data: bytes) -> bytes:
        """Store arbitrary-size ``data`` as a hash tree; returns the
        root score.

        With ``batched`` (the default) each tree level — leaves, then
        every pointer level — is hashed and written in one
        :meth:`_write_nodes` pass over a preassembled buffer; the
        sequential node-at-a-time build remains as the reference path
        and produces byte-identical scores and layout.
        """
        if self.batched:
            return self._put_stream_batched(data)
        leaves: List[bytes] = []
        if not data:
            leaves.append(self.put(b""))
        for offset in range(0, len(data), NODE_PAYLOAD):
            leaves.append(self.put(data[offset:offset + NODE_PAYLOAD]))
        level = leaves
        while len(level) > 1:
            parents: List[bytes] = []
            for i in range(0, len(level), FANOUT):
                group = level[i:i + FANOUT]
                payload = b"".join(group)
                parents.append(self._write_node(_TYPE_POINTER, payload))
            level = parents
        return level[0]

    def _put_stream_batched(self, data: bytes) -> bytes:
        """Level-at-a-time hash-tree build (see :meth:`put_stream`)."""
        if data:
            payloads = [data[offset:offset + NODE_PAYLOAD]
                        for offset in range(0, len(data), NODE_PAYLOAD)]
        else:
            payloads = [b""]
        level = self._write_nodes(_TYPE_LEAF, payloads)
        while len(level) > 1:
            buffer = b"".join(level)
            parent_payloads = [
                buffer[i * HASH_SIZE:(i + FANOUT) * HASH_SIZE]
                for i in range(0, len(level), FANOUT)]
            level = self._write_nodes(_TYPE_POINTER, parent_payloads)
        return level[0]

    def read_stream(self, root: bytes, verify: bool = True) -> bytes:
        """Reassemble a hash tree's contents from its root score."""
        ntype, payload = self._read_node(root)
        if verify and node_score(ntype, payload) != root:
            raise IntegrityError(
                f"score mismatch at {root.hex()[:16]}: evidence of tampering")
        if ntype == _TYPE_LEAF:
            return payload
        if len(payload) % HASH_SIZE:
            raise IntegrityError("malformed pointer node")
        out = bytearray()
        for i in range(0, len(payload), HASH_SIZE):
            out += self.read_stream(payload[i:i + HASH_SIZE], verify=verify)
        return bytes(out)

    def verify_tree(self, root: bytes) -> List[bytes]:
        """Walk a tree verifying every node; returns scores of nodes
        whose recomputed hash mismatches (empty list = intact)."""
        bad: List[bytes] = []
        stack = [root]
        seen = set()
        while stack:
            score = stack.pop()
            if score in seen:
                continue
            seen.add(score)
            try:
                ntype, payload = self._read_node(score)
            except (ReadError, UnknownScoreError):
                bad.append(score)
                continue
            if node_score(ntype, payload) != score:
                bad.append(score)
                continue
            if ntype == _TYPE_POINTER:
                for i in range(0, len(payload), HASH_SIZE):
                    stack.append(payload[i:i + HASH_SIZE])
        return bad

    # -- sealing (the SERO step) -------------------------------------------------

    def seal(self, score: bytes, timestamp: int = 0) -> int:
        """Copy the node into a fresh 2-block line and heat it.

        "The most relevant node to be heated is the root node, because
        this protects the entire hierarchy."  Returns the line start.
        """
        if score in self._sealed:
            return self._sealed[score]
        ntype, payload = self._read_node(score)
        block = self._pack_node(ntype, payload)
        start = self._alloc(2, aligned=True)
        self.device.write_block(start + 1, block)
        self.device.heat_line(start, 2, timestamp=timestamp)
        # the sealed copy becomes the authoritative location
        self._index[score] = (start + 1, ntype)
        self._sealed[score] = start
        return start

    def verify_sealed(self, score: bytes):
        """Verify the heated line guarding a sealed node."""
        start = self._sealed.get(score)
        if start is None:
            raise IntegrityError(f"score {score.hex()[:16]} is not sealed")
        return self.device.verify_line(start)

    def audit(self) -> Dict[bytes, VerificationResult]:
        """Verify every sealed node's heated line in one batched sweep
        (:meth:`~repro.device.sero.SERODevice.verify_lines`)."""
        scores = sorted(self._sealed, key=lambda s: self._sealed[s])
        results = self.device.verify_lines(
            [self._sealed[score] for score in scores])
        return dict(zip(scores, results))

    # -- snapshots ------------------------------------------------------------------

    def snapshot(self, name: str, data: bytes, timestamp: int = 0) -> bytes:
        """Archive ``data`` under ``name``: build the tree, then seal a
        snapshot record (name + root score).  Returns the root score."""
        root = self.put_stream(data)
        record = struct.pack(">H", len(name.encode())) + name.encode() + root
        rec_score = self._write_node(_TYPE_LEAF, record)
        self.seal(rec_score, timestamp=timestamp)
        self.seal(root, timestamp=timestamp)
        return root

    @property
    def sealed_scores(self) -> Dict[bytes, int]:
        """Mapping of sealed scores to their line starts."""
        return dict(self._sealed)

    def blocks_used(self) -> int:
        """Arena blocks consumed so far."""
        return self._next - self.arena_start
