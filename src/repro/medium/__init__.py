"""The patterned magnetic medium substrate.

* :mod:`~repro.medium.geometry` — dot matrix shape, physical block
  addressing (PBA -> dot span).
* :mod:`~repro.medium.dot` — per-dot state model (Fig 2).
* :mod:`~repro.medium.medium` — :class:`PatternedMedium`, the heatable
  dot matrix with magnetic read/write, irreversible heating, bulk
  erase and forensic imaging.
* :mod:`~repro.medium.defects` — format-time defect scan / bad blocks.
"""

from .defects import DefectScanReport, scan_for_defects
from .dot import HEATED_SHARPNESS_THRESHOLD, BitState, DotView, classify
from .geometry import MediumGeometry, geometry_for_blocks
from .medium import MediumConfig, PatternedMedium

__all__ = [
    "MediumGeometry",
    "geometry_for_blocks",
    "BitState",
    "DotView",
    "classify",
    "HEATED_SHARPNESS_THRESHOLD",
    "MediumConfig",
    "PatternedMedium",
    "DefectScanReport",
    "scan_for_defects",
]
