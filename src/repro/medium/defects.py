"""Fabrication defects and the bad-block map.

Patterned media have a switching-field distribution (Vallejo et al.
2007, cited by the paper): some dots need more field than the writer
can apply.  Section 3 notes that "bad block handling is a challenge,
because a heated block should not be misinterpreted as a bad block" —
so the defect scan below runs at *format time*, before any line can
have been heated, and its output (the bad-block map) is stored by the
device, never inferred later from read failures alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from .medium import PatternedMedium


@dataclass
class DefectScanReport:
    """Result of a format-time write/readback surface scan.

    Attributes:
        bad_blocks: PBAs containing at least ``tolerance+1`` unwritable
            dots (the sector ECC can absorb up to ``tolerance``).
        fragile_blocks: PBAs with *any* unwritable dot inside the
            block's electrical region.  A stuck dot fails the erb
            verification exactly like a heated dot, and the electrical
            payload has no error correction (only a CRC), so these
            blocks must never serve as the hash block of a line.
        defective_dots: total unwritable dot count found.
        scanned_blocks: number of blocks scanned.
    """

    bad_blocks: Set[int]
    fragile_blocks: Set[int]
    defective_dots: int
    scanned_blocks: int

    @property
    def bad_fraction(self) -> float:
        """Fraction of scanned blocks marked bad."""
        if not self.scanned_blocks:
            return 0.0
        return len(self.bad_blocks) / self.scanned_blocks


def scan_for_defects(medium: PatternedMedium, tolerance: int = 4,
                     e_region_dots: int = 4096,
                     ecc_word_bits: int = 72) -> DefectScanReport:
    """Write/readback scan of the whole medium.

    Writes a 10-pattern and then an 01-pattern to every block span and
    reads each back; dots that fail either polarity are defective.  A
    block is *bad* when it exceeds the ``tolerance`` of total defects
    **or** when any single ECC codeword (``ecc_word_bits`` consecutive
    dots) contains two defects — SECDED corrects only one error per
    word, so two stuck dots in one word make the block unreadable no
    matter how few defects it has in total.  A block with any
    defective dot among its first ``e_region_dots`` becomes *fragile*
    (unusable as a line head, see :class:`DefectScanReport`).

    The scan is destructive of data (it is a format-time operation) and
    restores an erased (all-zero) state afterwards.
    """
    geometry = medium.geometry
    bad: Set[int] = set()
    fragile: Set[int] = set()
    defective_total = 0
    for pba in range(geometry.total_blocks):
        start, end = geometry.block_span(pba)
        n = end - start
        pattern_a = [i % 2 for i in range(n)]
        pattern_b = [1 - b for b in pattern_a]
        failures = 0
        word_counts: dict = {}
        medium.write_mag_span(start, pattern_a)
        read_a = medium.read_mag_span(start, end)
        medium.write_mag_span(start, pattern_b)
        read_b = medium.read_mag_span(start, end)
        for i in range(n):
            # the two patterns are complementary, so a stuck-at dot
            # always matches one of them; failing *either* pass marks
            # the dot defective
            if read_a[i] != pattern_a[i] or read_b[i] != pattern_b[i]:
                failures += 1
                word = i // ecc_word_bits
                word_counts[word] = word_counts.get(word, 0) + 1
                if i < e_region_dots:
                    fragile.add(pba)
        defective_total += failures
        if failures > tolerance or any(c >= 2 for c in word_counts.values()):
            bad.add(pba)
        medium.write_mag_span(start, [0] * n)
    return DefectScanReport(bad_blocks=bad, fragile_blocks=fragile,
                            defective_dots=defective_total,
                            scanned_blocks=geometry.total_blocks)


def defective_dots_in_block(medium: PatternedMedium, pba: int) -> List[int]:
    """Ground-truth list of unwritable (non-heated) dots in a block."""
    start, end = medium.geometry.block_span(pba)
    return [i for i in range(start, end)
            if not medium.is_writable(i) and not medium.is_heated(i)]
