"""Fabrication defects and the bad-block map.

Patterned media have a switching-field distribution (Vallejo et al.
2007, cited by the paper): some dots need more field than the writer
can apply.  Section 3 notes that "bad block handling is a challenge,
because a heated block should not be misinterpreted as a bad block" —
so the defect scan below runs at *format time*, before any line can
have been heated, and its output (the bad-block map) is stored by the
device, never inferred later from read failures alone.

The scan has two implementations sharing the exact same medium I/O
sequence (per-block write/readback spans): a scalar *reference* that
classifies dots one at a time, and a vectorized path that records the
readbacks into whole-medium arrays and classifies everything with a
handful of numpy passes.  The lazily resolved execution policy
(:func:`repro.api.resolve_vectorized`) selects the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from ..api.policy import resolve_vectorized
from .medium import PatternedMedium


@dataclass
class DefectScanReport:
    """Result of a format-time write/readback surface scan.

    Attributes:
        bad_blocks: PBAs containing at least ``tolerance+1`` unwritable
            dots (the sector ECC can absorb up to ``tolerance``).
        fragile_blocks: PBAs with *any* unwritable dot inside the
            block's electrical region.  A stuck dot fails the erb
            verification exactly like a heated dot, and the electrical
            payload has no error correction (only a CRC), so these
            blocks must never serve as the hash block of a line.
        defective_dots: total unwritable dot count found.
        scanned_blocks: number of blocks scanned.
    """

    bad_blocks: Set[int]
    fragile_blocks: Set[int]
    defective_dots: int
    scanned_blocks: int

    @property
    def bad_fraction(self) -> float:
        """Fraction of scanned blocks marked bad."""
        if not self.scanned_blocks:
            return 0.0
        return len(self.bad_blocks) / self.scanned_blocks


def scan_for_defects(medium: PatternedMedium, tolerance: int = 4,
                     e_region_dots: int = 4096,
                     ecc_word_bits: int = 72,
                     vectorized: Optional[bool] = None) -> DefectScanReport:
    """Write/readback scan of the whole medium.

    Writes a 10-pattern and then an 01-pattern to every block span and
    reads each back; dots that fail either polarity are defective.  A
    block is *bad* when it exceeds the ``tolerance`` of total defects
    **or** when any single ECC codeword (``ecc_word_bits`` consecutive
    dots) contains two defects — SECDED corrects only one error per
    word, so two stuck dots in one word make the block unreadable no
    matter how few defects it has in total.  A block with any
    defective dot among its first ``e_region_dots`` becomes *fragile*
    (unusable as a line head, see :class:`DefectScanReport`).

    The scan is destructive of data (it is a format-time operation) and
    restores an erased (all-zero) state afterwards.

    With ``vectorized`` left at None the classification runs as
    whole-medium numpy passes (unless the lazily resolved execution
    policy — ``repro.engine(...)`` context, installed policy, or the
    ``REPRO_SPAN_ENGINE`` variable read at call time — selects the
    scalar engine); both paths issue an identical per-block span I/O
    sequence, so their counters and reports agree exactly.
    """
    if vectorized is None:
        vectorized = resolve_vectorized()
    geometry = medium.geometry
    dpb = geometry.dots_per_block
    # The test patterns depend only on the (uniform) span length, so
    # they are built once, not once per block.
    pattern_a = np.arange(dpb, dtype=np.int8) % 2
    pattern_b = (1 - pattern_a).astype(np.int8)
    erased = np.zeros(dpb, dtype=np.int8)
    if not vectorized:
        return _scan_scalar(medium, tolerance, e_region_dots, ecc_word_bits,
                            pattern_a, pattern_b, erased)

    n_blocks = geometry.total_blocks
    mismatch = np.empty(n_blocks * dpb, dtype=bool)
    for pba in range(n_blocks):
        start, end = geometry.block_span(pba)
        medium.write_mag_span(start, pattern_a)
        read_a = medium.read_mag_span(start, end)
        medium.write_mag_span(start, pattern_b)
        read_b = medium.read_mag_span(start, end)
        mismatch[start:end] = (read_a != pattern_a) | (read_b != pattern_b)
        medium.write_mag_span(start, erased)

    counts = mismatch.astype(np.int64)
    block_bounds = np.arange(n_blocks, dtype=np.int64) * dpb
    failures = np.add.reduceat(counts, block_bounds)
    # Fragile: any defect among the first e_region_dots of its block.
    offsets = np.arange(counts.size, dtype=np.int64) % dpb
    in_e_region = counts * (offsets < e_region_dots)
    fragile_counts = np.add.reduceat(in_e_region, block_bounds)
    # Double defects inside one SECDED codeword.
    words_per_block = -(-dpb // ecc_word_bits)
    word_bounds = (block_bounds[:, None]
                   + np.arange(words_per_block, dtype=np.int64)
                   * ecc_word_bits).ravel()
    word_counts = np.add.reduceat(counts, word_bounds)
    double_word = (word_counts.reshape(n_blocks, words_per_block) >= 2
                   ).any(axis=1)
    bad_mask = (failures > tolerance) | double_word
    return DefectScanReport(
        bad_blocks=set(np.flatnonzero(bad_mask).tolist()),
        fragile_blocks=set(np.flatnonzero(fragile_counts > 0).tolist()),
        defective_dots=int(counts.sum()),
        scanned_blocks=n_blocks)


def _scan_scalar(medium: PatternedMedium, tolerance: int,
                 e_region_dots: int, ecc_word_bits: int,
                 pattern_a: np.ndarray, pattern_b: np.ndarray,
                 erased: np.ndarray) -> DefectScanReport:
    """Scalar reference scan: classify dot by dot, block by block."""
    geometry = medium.geometry
    bad: Set[int] = set()
    fragile: Set[int] = set()
    defective_total = 0
    for pba in range(geometry.total_blocks):
        start, end = geometry.block_span(pba)
        n = end - start
        failures = 0
        word_counts: dict = {}
        medium.write_mag_span(start, pattern_a)
        read_a = medium.read_mag_span(start, end)
        medium.write_mag_span(start, pattern_b)
        read_b = medium.read_mag_span(start, end)
        for i in range(n):
            # the two patterns are complementary, so a stuck-at dot
            # always matches one of them; failing *either* pass marks
            # the dot defective
            if read_a[i] != pattern_a[i] or read_b[i] != pattern_b[i]:
                failures += 1
                word = i // ecc_word_bits
                word_counts[word] = word_counts.get(word, 0) + 1
                if i < e_region_dots:
                    fragile.add(pba)
        defective_total += failures
        if failures > tolerance or any(c >= 2 for c in word_counts.values()):
            bad.add(pba)
        medium.write_mag_span(start, erased)
    return DefectScanReport(bad_blocks=bad, fragile_blocks=fragile,
                            defective_dots=defective_total,
                            scanned_blocks=geometry.total_blocks)


def defective_dots_in_block(medium: PatternedMedium, pba: int) -> List[int]:
    """Ground-truth list of unwritable (non-heated) dots in a block.

    One pass over the medium's snapshot arrays
    (:meth:`~repro.medium.medium.PatternedMedium.defect_map`) instead
    of per-index ``is_writable``/``is_heated`` calls.
    """
    start, end = medium.geometry.block_span(pba)
    return (start + np.flatnonzero(medium.defect_map(start, end))).tolist()
