"""Single-dot state view (Fig 2's three-state bit).

The medium stores dot state in flat numpy arrays for scale; this module
provides the per-dot object view used by tests, examples and the Fig 2
bench, plus the canonical state classification:

* ``0`` / ``1`` — healthy perpendicular dot magnetised down / up,
* ``H`` — heated: interfaces mixed, easy axis in plane, no stable
  perpendicular remanence (reads back "more or less random"),
* ``U`` is not a separate physical state — it simply denotes any
  un-heated dot when only the heated/unheated distinction matters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BitState(enum.Enum):
    """Logical state of one dot (top of Fig 2)."""

    ZERO = "0"
    ONE = "1"
    HEATED = "H"


#: Sharpness below which a dot's easy axis has fallen in plane and the
#: dot counts as heated.  Derived from the dot anisotropy balance (see
#: ``repro.physics.anisotropy``): with default parameters the easy axis
#: flips at sharpness ~0.15; 0.15 is used as the hard classification
#: threshold throughout the medium.
HEATED_SHARPNESS_THRESHOLD = 0.15


def classify(magnetization: int, sharpness: float) -> BitState:
    """Classify a dot from its stored magnetisation and sharpness."""
    if sharpness < HEATED_SHARPNESS_THRESHOLD:
        return BitState.HEATED
    return BitState.ONE if magnetization > 0 else BitState.ZERO


@dataclass
class DotView:
    """Read-only snapshot of one dot, for inspection and display.

    Attributes:
        index: dot index on the medium.
        magnetization: +1 (up) / -1 (down); meaningless when heated.
        sharpness: interface sharpness in [0, 1].
    """

    index: int
    magnetization: int
    sharpness: float

    @property
    def heated(self) -> bool:
        """True when the dot's multilayer structure is destroyed."""
        return self.sharpness < HEATED_SHARPNESS_THRESHOLD

    @property
    def state(self) -> BitState:
        """Fig 2 state of the dot."""
        return classify(self.magnetization, self.sharpness)

    def __str__(self) -> str:
        return self.state.value
