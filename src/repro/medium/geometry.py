"""Dot-matrix geometry and physical addressing.

The medium is "a regular arrangement of magnetic dots" (Section 1).
Physical addressing matters for tamper evidence: "a SERO device and
the SERO file system should use physical block addresses (PBA) rather
than logical block addresses" (Section 3), so the mapping from dot
index to matrix coordinate and from block number to dot span is fixed,
explicit and bijective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError, DotAddressError
from ..physics.constants import DEFAULT_DOT, DotGeometry


@dataclass(frozen=True)
class MediumGeometry:
    """Shape of the dot matrix and its mapping to blocks.

    Dots are numbered row-major: dot ``i`` sits at row ``i // cols``,
    column ``i % cols``.  Blocks occupy ``dots_per_block`` consecutive
    dots; rows are sized to hold a whole number of blocks so a block
    never straddles a row (a seek boundary).

    Attributes:
        cols: dots per row (one row = one mechanical scan line).
        rows: number of rows.
        dots_per_block: physical dots consumed by one block frame
            (payload + header + CRC + ECC; about 15% over the 4096
            payload bits, per Section 3).
        dot: physical dot geometry (pitch etc.).
    """

    cols: int
    rows: int
    dots_per_block: int
    dot: DotGeometry = DEFAULT_DOT

    def __post_init__(self) -> None:
        if self.cols <= 0 or self.rows <= 0 or self.dots_per_block <= 0:
            raise ConfigurationError("geometry dimensions must be positive")
        if self.cols % self.dots_per_block:
            raise ConfigurationError(
                "a row must hold a whole number of blocks: "
                f"cols={self.cols} dots_per_block={self.dots_per_block}")

    @property
    def total_dots(self) -> int:
        """Total dot count of the medium."""
        return self.cols * self.rows

    @property
    def blocks_per_row(self) -> int:
        """Blocks on one scan row."""
        return self.cols // self.dots_per_block

    @property
    def total_blocks(self) -> int:
        """Total block capacity."""
        return self.blocks_per_row * self.rows

    def dot_position(self, index: int) -> Tuple[int, int]:
        """(row, col) of dot ``index``."""
        if not 0 <= index < self.total_dots:
            raise DotAddressError(f"dot index {index} out of range")
        return divmod(index, self.cols)

    def dot_index(self, row: int, col: int) -> int:
        """Dot index at (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise DotAddressError(f"dot position ({row}, {col}) out of range")
        return row * self.cols + col

    def block_span(self, pba: int) -> Tuple[int, int]:
        """Half-open dot-index range ``(start, end)`` of block ``pba``."""
        if not 0 <= pba < self.total_blocks:
            raise DotAddressError(f"physical block address {pba} out of range")
        start = pba * self.dots_per_block
        return (start, start + self.dots_per_block)

    def block_of_dot(self, index: int) -> int:
        """Physical block address containing dot ``index``."""
        if not 0 <= index < self.total_dots:
            raise DotAddressError(f"dot index {index} out of range")
        return index // self.dots_per_block

    def physical_coordinates(self, index: int) -> Tuple[float, float]:
        """(x, y) position [m] of dot ``index`` on the medium sled."""
        row, col = self.dot_position(index)
        return (col * self.dot.pitch_x, row * self.dot.pitch_y)

    def neighbors(self, index: int) -> Tuple[int, ...]:
        """Dot indices of the 4-neighbourhood (for collateral heating)."""
        row, col = self.dot_position(index)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            r, c = row + dr, col + dc
            if 0 <= r < self.rows and 0 <= c < self.cols:
                out.append(self.dot_index(r, c))
        return tuple(out)


def geometry_for_blocks(total_blocks: int, dots_per_block: int,
                        blocks_per_row: int = 8,
                        dot: DotGeometry = DEFAULT_DOT) -> MediumGeometry:
    """Convenience constructor: a matrix holding ``total_blocks``.

    Rows hold ``blocks_per_row`` blocks; the row count is rounded up so
    capacity is at least ``total_blocks``.
    """
    if total_blocks <= 0:
        raise ConfigurationError("total_blocks must be positive")
    blocks_per_row = min(blocks_per_row, total_blocks)
    rows = (total_blocks + blocks_per_row - 1) // blocks_per_row
    return MediumGeometry(cols=blocks_per_row * dots_per_block, rows=rows,
                          dots_per_block=dots_per_block, dot=dot)
