"""The patterned magnetic medium: a matrix of heatable single-domain dots.

This is the physical substrate everything else sits on.  It enforces
exactly the physics of Sections 3 and 7 and nothing more:

* magnetic writes set the perpendicular magnetisation of *healthy*
  dots; on a heated dot they have no effect (there is no stable
  perpendicular state to write);
* magnetic reads of a healthy dot return the stored bit; of a heated
  dot they return "a more or less random result" (Fig 2, bottom);
* :meth:`heat_dot` destroys a dot irreversibly — **no method of this
  class can restore sharpness**, which is the physical root of the
  tamper evidence;
* optional collateral heating damages neighbouring dots through the
  thermal model, and an optional switching-field distribution makes a
  small population of dots unwritable (fabrication defects).

The class deliberately has no notion of blocks-with-meaning, hashes or
files; those live in :mod:`repro.device` and :mod:`repro.fs`.  It does
expose :meth:`image_heated` — the *forensic* capability of magnetic
imaging (Section 8) that sees which dots are destroyed without any
magnetic write, used by investigators and by the bulk-erase analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import DotAddressError
from ..physics.anisotropy import AnisotropyModel
from ..physics.annealing import DEFAULT_KINETICS, AnnealingKinetics
from ..physics.constants import DEFAULT_STACK, MultilayerStack
from ..physics.thermal import (
    DEFAULT_THERMAL,
    HeatPulse,
    ThermalParameters,
    default_pulse,
    temperature_at_distance_c,
)
from ..units import KB, celsius_to_kelvin
from ..api.policy import resolve_vectorized
from .dot import HEATED_SHARPNESS_THRESHOLD, DotView
from .geometry import MediumGeometry

import math


@dataclass
class MediumConfig:
    """Physical configuration knobs of a medium instance.

    Attributes:
        stack: multilayer recipe.
        thermal: tip-heating parameters.
        kinetics: interface-mixing kinetics.
        pulse: heat pulse used by :meth:`PatternedMedium.heat_dot`
            (None = derive a just-sufficient pulse from the kinetics).
        collateral_heating: when True, heating a dot also anneals its
            matrix neighbours with the temperature the thermal model
            predicts at one pitch distance.  Off by default because the
            default layout is engineered safe (Section 7's heat-sink
            design); the ablation bench switches it on.
        switching_sigma: relative sigma of the lognormal switching
            field distribution (0 disables fabrication defects).
        write_field: available write field as a multiple of the nominal
            anisotropy field (dots needing more are unwritable).
        seed: RNG seed for heated-dot read noise and defects.
    """

    stack: MultilayerStack = field(default_factory=lambda: DEFAULT_STACK)
    thermal: ThermalParameters = field(default_factory=lambda: DEFAULT_THERMAL)
    kinetics: AnnealingKinetics = field(default_factory=lambda: DEFAULT_KINETICS)
    pulse: Optional[HeatPulse] = None
    collateral_heating: bool = False
    switching_sigma: float = 0.0
    write_field: float = 1.2
    seed: int = 2008


#: Process-wide cache of regenerated switching-field scales, keyed by
#: ``(seed, sigma, total_dots)``.  The array is a pure function of the
#: key and is only ever *read* (every consumer compares it against the
#: write field), so fleet workers — which receive media as compact
#: snapshots and would otherwise regenerate the same draw on every
#: pass — share one copy per distinct medium configuration.
_K_SCALE_CACHE: dict = {}
_K_SCALE_CACHE_MAX = 64


def _k_scale_for(seed: int, sigma: float, n: int) -> np.ndarray:
    key = (seed, sigma, n)
    arr = _K_SCALE_CACHE.get(key)
    if arr is None:
        arr = np.random.default_rng(seed).lognormal(
            mean=0.0, sigma=sigma, size=n).astype(np.float32)
        if len(_K_SCALE_CACHE) >= _K_SCALE_CACHE_MAX:
            _K_SCALE_CACHE.pop(next(iter(_K_SCALE_CACHE)))
        _K_SCALE_CACHE[key] = arr
    return arr


class PatternedMedium:
    """A rectangular matrix of heatable magnetic dots.

    Args:
        geometry: dot-matrix shape and block mapping.
        config: physical parameters (defaults are the paper's).
    """

    def __init__(self, geometry: MediumGeometry,
                 config: Optional[MediumConfig] = None) -> None:
        self.geometry = geometry
        self.config = config or MediumConfig()
        n = geometry.total_dots
        # -1 = down (logical 0) everywhere after fabrication AC erase.
        self._mag = np.full(n, -1, dtype=np.int8)
        self._sharpness = np.ones(n, dtype=np.float32)
        self._rng = np.random.default_rng(self.config.seed)
        self._anisotropy = AnisotropyModel(stack=self.config.stack,
                                           dot=geometry.dot)
        if self.config.pulse is None:
            self.config.pulse = default_pulse(self.config.thermal,
                                              self.config.kinetics)
        if self.config.switching_sigma > 0.0:
            self._k_scale = self._rng.lognormal(
                mean=0.0, sigma=self.config.switching_sigma,
                size=n).astype(np.float32)
        else:
            self._k_scale = None
        # Operation counters (the timing model consumes these).
        self.counters = {"mrb": 0, "mwb": 0, "heat": 0}
        # Monotone mutation epoch: bumped by every operation that can
        # change the magnetisation or sharpness arrays (writes, heat
        # pulses, bulk erase) and never by reads.  The remote session
        # layer fingerprints it to decide whether a worker-pinned
        # snapshot of this medium is still current.
        self._mut_epoch = 0

    @property
    def _k_scale(self) -> Optional[np.ndarray]:
        """Per-dot switching-field scale (None when defect-free).

        Materialised eagerly at construction (the draw must be the
        seeded RNG's first, so read-noise sequencing stays put) but
        *lazily* after unpickling: the snapshot omits the array — it
        regenerates bit-exactly from the config seed, via the
        process-wide :data:`_K_SCALE_CACHE` so repeated snapshot
        restores of the same medium pay the draw once — and a restored
        medium only pays anything if something actually consults it.
        """
        if self._k_scale_cache is None and \
                self.config.switching_sigma > 0.0:
            self._k_scale_cache = _k_scale_for(
                self.config.seed, self.config.switching_sigma,
                self.geometry.total_dots)
        return self._k_scale_cache

    @_k_scale.setter
    def _k_scale(self, value: Optional[np.ndarray]) -> None:
        self._k_scale_cache = value

    # -- classification ------------------------------------------------------

    def _check(self, index: int) -> None:
        if not 0 <= index < self.geometry.total_dots:
            raise DotAddressError(f"dot index {index} out of range")

    def is_heated(self, index: int) -> bool:
        """True when dot ``index`` has lost its perpendicular easy axis.

        NOTE: this is the *ground-truth* physical state.  Normal device
        operation must discover it through the erb protocol; direct
        calls model forensic magnetic imaging (Section 8).
        """
        self._check(index)
        return bool(self._sharpness[index] < HEATED_SHARPNESS_THRESHOLD)

    def is_writable(self, index: int) -> bool:
        """True when a magnetic write can switch dot ``index``.

        A dot is unwritable when heated, or when its switching field
        (scaled by the fabrication k-scale) exceeds the available
        write field.
        """
        self._check(index)
        if self._sharpness[index] < HEATED_SHARPNESS_THRESHOLD:
            return False
        if self._k_scale is not None:
            return bool(self._k_scale[index] <= self.config.write_field)
        return True

    def dot(self, index: int) -> DotView:
        """Snapshot view of one dot."""
        self._check(index)
        return DotView(index=index,
                       magnetization=int(self._mag[index]),
                       sharpness=float(self._sharpness[index]))

    # -- magnetic bit operations ---------------------------------------------

    def read_mag(self, index: int) -> int:
        """Magnetic read (mrb): the stored bit as 0/1.

        A heated dot has no out-of-plane remanence; the read channel
        thresholds noise and returns a coin flip, faithfully modelling
        Fig 2's "more or less random result".
        """
        self._check(index)
        self.counters["mrb"] += 1
        if self._sharpness[index] < HEATED_SHARPNESS_THRESHOLD:
            return int(self._rng.integers(0, 2))
        return 1 if self._mag[index] > 0 else 0

    def write_mag(self, index: int, bit: int) -> None:
        """Magnetic write (mwb): set the dot to ``bit`` (0 or 1).

        Writing a heated or defective dot silently does nothing — the
        field finds no stable perpendicular state to latch.  (The
        *device* layer detects this through verification; the physics
        cannot refuse a field pulse.)
        """
        self._check(index)
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self.counters["mwb"] += 1
        self._mut_epoch += 1
        if not self.is_writable(index):
            return
        self._mag[index] = 1 if bit else -1

    # -- the write-once operation ---------------------------------------------

    def heat_dot(self, index: int) -> None:
        """Electrical write (ewb): destroy dot ``index`` irreversibly.

        Applies the configured tip pulse: the contact temperature mixes
        the dot's interfaces (sharpness multiplies by the Arrhenius
        factor, which for the default pulse is ~0), and when
        ``collateral_heating`` is enabled the 4-neighbours receive the
        pulse attenuated to one pitch distance.
        """
        self._check(index)
        self.counters["heat"] += 1
        self._mut_epoch += 1
        pulse = self.config.pulse
        self._apply_pulse(index, pulse, distance=0.0)
        if self.config.collateral_heating:
            for neighbor in self.geometry.neighbors(index):
                self._apply_pulse(neighbor, pulse,
                                  distance=self.geometry.dot.pitch_x)

    def _apply_pulse(self, index: int, pulse: HeatPulse,
                     distance: float) -> None:
        temp_c = temperature_at_distance_c(pulse.power_w, distance,
                                           self.config.thermal)
        rate = self.config.kinetics.mixing_rate(celsius_to_kelvin(temp_c))
        factor = math.exp(-rate * pulse.duration_s)
        self._sharpness[index] *= factor
        if self._sharpness[index] < HEATED_SHARPNESS_THRESHOLD:
            # no stable perpendicular state survives
            self._mag[index] = 0

    # -- bulk / forensic operations --------------------------------------------

    def bulk_erase(self) -> None:
        """Degauss the whole medium (Section 5.2's bulk-eraser attack).

        All *magnetic* information is cleared; the heated pattern — a
        structural, not magnetic, property — survives untouched, which
        is exactly why the attack leaves evidence.
        """
        healthy = self._sharpness >= HEATED_SHARPNESS_THRESHOLD
        self._mag[healthy] = -1
        self._mut_epoch += 1

    def image_heated(self, indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Forensic magnetic imaging: the heated map as a bool array.

        Models Section 8's "magnetic imaging techniques": an
        investigator (not the normal read channel) can always see which
        dots are destroyed.
        """
        if indices is None:
            return (self._sharpness < HEATED_SHARPNESS_THRESHOLD).copy()
        idx = np.asarray(list(indices), dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.geometry.total_dots):
            raise DotAddressError("dot index out of range")
        return self._sharpness[idx] < HEATED_SHARPNESS_THRESHOLD

    def heated_count(self) -> int:
        """Number of destroyed dots on the whole medium."""
        return int((self._sharpness < HEATED_SHARPNESS_THRESHOLD).sum())

    def defect_map(self, start: int, end: int) -> np.ndarray:
        """Ground-truth fabrication-defect map for dots [start, end).

        True where a dot is unwritable (its switching field exceeds the
        available write field) but *not* heated — the distinction the
        format-time scan must draw.  Like :meth:`image_heated` this is
        a forensic/diagnostic capability, one whole-array pass over the
        snapshot state instead of per-dot ``is_writable``/``is_heated``
        calls.
        """
        if not (0 <= start <= end <= self.geometry.total_dots):
            raise DotAddressError("dot span out of range")
        span = slice(start, end)
        healthy = self._sharpness[span] >= HEATED_SHARPNESS_THRESHOLD
        if self._k_scale is None:
            return np.zeros(end - start, dtype=bool)
        return healthy & (self._k_scale[span] > self.config.write_field)

    def sharpness_of(self, index: int) -> float:
        """Ground-truth interface sharpness of one dot (diagnostics)."""
        self._check(index)
        return float(self._sharpness[index])

    # -- vectorised block helpers (fast paths for the device layer) -----------

    def read_mag_span(self, start: int, end: int) -> np.ndarray:
        """Vectorised mrb over dots [start, end): returns a 0/1 array.

        Heated dots inside the span read as independent coin flips.
        Counts ``end - start`` mrb operations.
        """
        if not (0 <= start <= end <= self.geometry.total_dots):
            raise DotAddressError("dot span out of range")
        self.counters["mrb"] += end - start
        mag = self._mag[start:end]
        bits = (mag > 0).astype(np.uint8)
        heated = self._sharpness[start:end] < HEATED_SHARPNESS_THRESHOLD
        if heated.any():
            noise = self._rng.integers(0, 2, size=int(heated.sum()),
                                       dtype=np.uint8)
            bits = bits.copy()
            bits[heated] = noise
        return bits

    def write_mag_span(self, start: int, bits: Sequence[int]) -> None:
        """Vectorised mwb: write ``bits`` at consecutive dots from
        ``start``.  Heated/defective dots silently keep their state."""
        arr = np.asarray(bits, dtype=np.int8)
        end = start + len(arr)
        if not (0 <= start <= end <= self.geometry.total_dots):
            raise DotAddressError("dot span out of range")
        if arr.size and (arr.min() < 0 or arr.max() > 1):
            raise ValueError("bits must be 0 or 1")
        self.counters["mwb"] += len(arr)
        self._mut_epoch += 1
        span = slice(start, end)
        writable = self._sharpness[span] >= HEATED_SHARPNESS_THRESHOLD
        if self._k_scale is not None:
            writable &= self._k_scale[span] <= self.config.write_field
        target = np.where(arr > 0, 1, -1).astype(np.int8)
        # in-place masked store: the unwritable dots keep their state
        np.copyto(self._mag[span], target, where=writable)

    def heat_span(self, start: int, end: int,
                  pattern: Optional[Sequence[bool]] = None,
                  vectorized: Optional[bool] = None) -> None:
        """Heat every dot in [start, end) where ``pattern`` is True
        (or all of them when ``pattern`` is None).

        With ``vectorized`` left at None the Arrhenius factor is
        batched over the whole pattern with numpy (unless the lazily
        resolved execution policy selects the scalar engine);
        ``collateral_heating``
        always takes the scalar per-dot path because each heated dot
        must also pulse its matrix neighbours.
        """
        if not (0 <= start <= end <= self.geometry.total_dots):
            raise DotAddressError("dot span out of range")
        if pattern is None:
            idx = np.arange(start, end, dtype=np.int64)
        else:
            if len(pattern) != end - start:
                raise ValueError("pattern length must match span")
            idx = start + np.flatnonzero(np.asarray(pattern, dtype=bool))
        if vectorized is None:
            vectorized = resolve_vectorized()
        if self.config.collateral_heating or not vectorized:
            for index in idx:
                self.heat_dot(int(index))
            return
        self._heat_many(idx)

    def _heat_many(self, idx: np.ndarray) -> None:
        """Vectorised heat pulses at dot indices ``idx`` (no collateral).

        The pulse, and therefore the mixing rate and Arrhenius factor,
        is identical for every target dot, so the factor is computed
        once and applied as one array multiply instead of one
        ``math.exp`` per dot.
        """
        if idx.size == 0:
            return
        self.counters["heat"] += int(idx.size)
        self._mut_epoch += 1
        pulse = self.config.pulse
        temp_c = temperature_at_distance_c(pulse.power_w, 0.0,
                                           self.config.thermal)
        rate = self.config.kinetics.mixing_rate(celsius_to_kelvin(temp_c))
        factor = math.exp(-rate * pulse.duration_s)
        self._sharpness[idx] *= factor
        destroyed = idx[self._sharpness[idx] < HEATED_SHARPNESS_THRESHOLD]
        # no stable perpendicular state survives
        self._mag[destroyed] = 0

    # -- the electrical-read span engine ---------------------------------------

    def erb_span(self, start: int, end: int, rounds: int = 1) -> np.ndarray:
        """Vectorised erb over dots [start, end).

        Performs the paper's five-step invert/verify protocol (plus
        ``rounds - 1`` repeats) as whole-array operations and returns a
        bool array where True means the dot failed a verification
        (``"H"``).  Semantics match :meth:`repro.device.bitops.BitOps.erb`
        per dot: a heated dot escapes with probability
        ``(1/4)**rounds``, and the mrb/mwb counters advance exactly as
        the scalar sequence would, including the early exit at the
        first failed verification read.
        """
        if not (0 <= start <= end <= self.geometry.total_dots):
            raise DotAddressError("dot span out of range")
        return self._erb_many(np.arange(start, end, dtype=np.int64), rounds)

    def erb_at(self, indices: Sequence[int], rounds: int = 1) -> np.ndarray:
        """Vectorised erb at (unique) scattered dot ``indices``."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.geometry.total_dots):
            raise DotAddressError("dot index out of range")
        return self._erb_many(idx, rounds)

    def _erb_many(self, idx: np.ndarray, rounds: int) -> np.ndarray:
        if rounds < 1:
            raise ValueError("erb needs at least one verification round")
        n = int(idx.size)
        if n == 0:
            return np.zeros(0, dtype=bool)
        heated = self._sharpness[idx] < HEATED_SHARPNESS_THRESHOLD
        writable = ~heated
        if self._k_scale is not None:
            writable &= self._k_scale[idx] <= self.config.write_field
        n_verifies = 2 * rounds
        # Index of the first failed verification read per dot;
        # n_verifies means every verification passed ("U").
        fail_at = np.full(n, n_verifies, dtype=np.int64)
        # A defective (unwritable, unheated) dot fails the very first
        # verification: the inverse write latches nothing and the
        # stored bit reads back unchanged.
        fail_at[~heated & ~writable] = 0
        n_heated = int(heated.sum())
        if n_heated:
            # Every verification read of a heated dot is a coin flip
            # that matches the expected value with probability 1/2, so
            # the whole sequence passes with probability (1/4)**rounds.
            passes = self._rng.integers(
                0, 2, size=(n_heated, n_verifies), dtype=np.uint8)
            fails = passes == 0
            any_fail = fails.any(axis=1)
            first_fail = np.where(any_fail, fails.argmax(axis=1), n_verifies)
            fail_at[heated] = first_fail
        # No physical write is needed: heated and defective dots never
        # latch a field pulse, and each writable dot's inverse write is
        # exactly undone by its restore write, so the net magnetisation
        # is provably unchanged ("the two inversions ensure that the
        # original magnetic data is restored", Section 3).
        # Counters: a dot whose first failure is verification v consumed
        # v+1 inverse/restore writes and 1 + (v+1) reads before the
        # scalar sequence returns "H"; a passing dot consumed the full
        # 2*rounds writes and 1 + 2*rounds reads.
        verifies = np.minimum(fail_at + 1, n_verifies)
        total_verifies = int(verifies.sum())
        self.counters["mrb"] += n + total_verifies
        self.counters["mwb"] += total_verifies
        return fail_at < n_verifies

    # -- snapshot transport ------------------------------------------------------

    def __getstate__(self) -> dict:
        """Compact pickled form: the medium as a *snapshot*, not a dump.

        A fleet's process executor ships member state to workers and
        back on every pass, so the pickled size is a real throughput
        knob.  Three observations make the snapshot ~10x smaller than
        the raw arrays:

        * magnetisation is ternary with an invariant — a dot's
          magnetisation is 0 exactly when it is heated below the
          sharpness threshold (nothing can write a heated dot) — so
          one packed sign bit per dot plus the sharpness map
          reconstructs it exactly;
        * sharpness is exactly 1.0 for every dot never touched by a
          heat pulse; only the touched entries need to travel — as a
          packed touched-dot bitmap (one bit per dot) plus their
          float32 values.  And because every dot is normally heated
          exactly once by the same pulse, those values are usually
          *one* repeated float, which then travels as a single scalar
          (media with collateral or repeated heating fall back to the
          full value array);
        * the fabrication k-scale is the *first* draw of the seeded
          RNG, so it regenerates bit-exactly from the config instead
          of travelling (the anisotropy model is likewise derived
          state).

        The live RNG travels by value, so a restored medium continues
        the exact random sequence — per-member results stay
        byte-identical to the serial pass.
        """
        touched = self._sharpness != np.float32(1.0)
        vals = self._sharpness[touched]
        uniform = bool(vals.size) and bool((vals == vals[0]).all())
        return {
            "geometry": self.geometry,
            "config": self.config,
            "rng": self._rng,
            "counters": self.counters,
            "mut_epoch": self._mut_epoch,
            "mag_bits": np.packbits(self._mag > 0),
            "touched_bits": np.packbits(touched),
            "sharp_vals": vals[:1] if uniform else vals,
            "sharp_uniform": uniform,
        }

    def __setstate__(self, state: dict) -> None:
        self.geometry = state["geometry"]
        self.config = state["config"]
        n = self.geometry.total_dots
        mag = np.where(
            np.unpackbits(state["mag_bits"], count=n).astype(bool),
            1, -1).astype(np.int8)
        sharpness = np.ones(n, dtype=np.float32)
        touched = np.unpackbits(state["touched_bits"], count=n).astype(bool)
        if state["sharp_uniform"]:
            sharpness[touched] = state["sharp_vals"][0]
        else:
            sharpness[touched] = state["sharp_vals"]
        mag[sharpness < HEATED_SHARPNESS_THRESHOLD] = 0
        self._mag = mag
        self._sharpness = sharpness
        self._rng = state["rng"]
        self.counters = state["counters"]
        self._mut_epoch = state.get("mut_epoch", 0)
        self._anisotropy = AnisotropyModel(stack=self.config.stack,
                                           dot=self.geometry.dot)
        # regenerated lazily on first access: the construction-time
        # draw was the seeded generator's first sample, so a fresh
        # generator replays it bit-exactly (see the _k_scale property)
        self._k_scale = None

    # -- statistics -------------------------------------------------------------

    def snapshot_states(self, start: int, end: int) -> List[str]:
        """Fig 2 state letters ('0'/'1'/'H') for dots [start, end)."""
        if not (0 <= start <= end <= self.geometry.total_dots):
            raise DotAddressError("dot span out of range")
        span = slice(start, end)
        out = np.where(self._mag[span] > 0, "1", "0")
        out[self._sharpness[span] < HEATED_SHARPNESS_THRESHOLD] = "H"
        return out.tolist()
