"""``repro.parallel`` — the fleet execution layer.

Executors (:class:`SerialExecutor` / :class:`ThreadExecutor` /
:class:`ProcessExecutor` / :class:`~repro.parallel.remote.RpcExecutor`)
dispatch per-member fleet tasks, a registry makes them selectable by
name through the execution-policy chain
(:func:`resolve_fleet_executor`), and :class:`HashRing` provides the
content-addressed shard routing the
:class:`~repro.api.fleet.FleetStore` spreads objects with.  The
``rpc`` executor ships members to worker daemons on other machines
(``python -m repro.parallel.remote serve``) over a framed pickle
protocol; see :mod:`repro.parallel.remote`.

This package sits just above :mod:`repro.api.policy` in the import
graph and imports nothing else from the package at import time, so the
policy layer can resolve executor names lazily without cycles.
"""

from __future__ import annotations

from .executor import (
    ExecutionOutcome,
    ExecutorSpec,
    FleetExecutor,
    MemberFailure,
    MemberTask,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerWall,
    available_executors,
    close_executors,
    get_executor_spec,
    make_executor,
    register_executor,
    resolve_fleet_executor,
    unregister_executor,
)
from .locks import MemberLockSet
from .ring import HashRing, shard_key

#: Remote-executor names, imported lazily (PEP 562): the wire-protocol
#: module only loads when rpc dispatch is actually used, and
#: ``python -m repro.parallel.remote`` does not double-import it.
_REMOTE_EXPORTS = (
    "HOSTS_ENV_VAR",
    "LocalWorker",
    "RemoteTaskError",
    "RpcConnectionError",
    "RpcError",
    "RpcExecutor",
    "RpcProtocolError",
    "RpcTimeoutError",
    "close_connection_pools",
    "host_health_snapshot",
    "parse_hosts",
    "reset_host_health",
    "spawn_local_worker",
)


def __getattr__(name: str):
    if name in _REMOTE_EXPORTS:
        from . import remote as _remote

        value = getattr(_remote, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_REMOTE_EXPORTS))


__all__ = [
    "HOSTS_ENV_VAR",
    "LocalWorker",
    "RemoteTaskError",
    "RpcConnectionError",
    "RpcError",
    "RpcExecutor",
    "RpcProtocolError",
    "RpcTimeoutError",
    "close_connection_pools",
    "host_health_snapshot",
    "parse_hosts",
    "reset_host_health",
    "spawn_local_worker",
    "ExecutionOutcome",
    "ExecutorSpec",
    "FleetExecutor",
    "HashRing",
    "MemberFailure",
    "MemberLockSet",
    "MemberTask",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkerWall",
    "available_executors",
    "close_executors",
    "get_executor_spec",
    "make_executor",
    "register_executor",
    "resolve_fleet_executor",
    "shard_key",
    "unregister_executor",
]
