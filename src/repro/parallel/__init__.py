"""``repro.parallel`` — the fleet execution layer.

Executors (:class:`SerialExecutor` / :class:`ThreadExecutor` /
:class:`ProcessExecutor`) dispatch per-member fleet tasks, a registry
makes them selectable by name through the execution-policy chain
(:func:`resolve_fleet_executor`), and :class:`HashRing` provides the
content-addressed shard routing the
:class:`~repro.api.fleet.FleetStore` spreads objects with.

This package sits just above :mod:`repro.api.policy` in the import
graph and imports nothing else from the package, so the policy layer
can resolve executor names lazily without cycles.
"""

from __future__ import annotations

from .executor import (
    ExecutionOutcome,
    ExecutorSpec,
    FleetExecutor,
    MemberTask,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerWall,
    available_executors,
    close_executors,
    get_executor_spec,
    make_executor,
    register_executor,
    resolve_fleet_executor,
    unregister_executor,
)
from .ring import HashRing, shard_key

__all__ = [
    "ExecutionOutcome",
    "ExecutorSpec",
    "FleetExecutor",
    "HashRing",
    "MemberTask",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkerWall",
    "available_executors",
    "close_executors",
    "get_executor_spec",
    "make_executor",
    "register_executor",
    "resolve_fleet_executor",
    "shard_key",
    "unregister_executor",
]
