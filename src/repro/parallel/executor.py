"""Fleet executors: how a pass over many stores is dispatched.

The scheduler and the :class:`~repro.api.fleet.FleetStore` express a
fleet pass as a list of independent *member tasks* — zero-argument
callables, one per fleet member, each returning ``(payload, state)``
where ``payload`` is the typed per-member result and ``state`` is the
(possibly relocated) member object to reinstall.  A
:class:`FleetExecutor` decides *where* those tasks run:

* :class:`SerialExecutor` — in order, in the calling thread (the
  reference dispatch; every other executor must match its per-member
  results byte for byte);
* :class:`ThreadExecutor` — a thread pool.  The ambient
  :mod:`contextvars` context (``with repro.engine(...):`` overrides)
  is captured per task, so policy scopes behave exactly as they do
  serially;
* :class:`ProcessExecutor` — a process pool.  Tasks must be picklable
  (``functools.partial`` over module-level functions); member state
  travels to the worker as a compact snapshot (see
  :meth:`repro.medium.medium.PatternedMedium.__getstate__`) and the
  mutated state travels back, so the caller's fleet ends the pass in
  exactly the state a serial pass would have produced.

Executors are *registered by name* (:func:`register_executor`) and
selected through the same lazy resolution chain as every other engine
switch — explicit argument > ``with repro.engine(executor="thread"):``
context > installed :class:`~repro.api.policy.ExecutionPolicy` >
``REPRO_FLEET_EXECUTOR`` (read at dispatch time) > ``"serial"`` — via
:func:`resolve_fleet_executor`.

Every run returns an :class:`ExecutionOutcome` carrying, besides the
in-order task results, the per-worker wall-clock breakdown and the
task→worker assignment.  The scheduler folds those into its
:class:`~repro.workloads.fleet.FleetReport` so an operator can see not
just *that* a pass was parallel but how the work actually spread.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

#: A member task: zero-argument callable returning ``(payload, state)``.
MemberTask = Callable[[], Tuple[Any, Any]]


@dataclass(frozen=True)
class MemberFailure:
    """Typed record of one member task an executor could not complete.

    Produced only in the ``rpc`` executor's *degraded* mode
    (``on_failure="degrade"``): a member whose dispatch exhausted its
    failover retries — or whose task raised on a worker — comes back as
    this record in the task's result slot instead of aborting the whole
    pass.  The fleet layers skip folding for it (the caller-held member
    keeps its pre-pass state) and surface it in
    :attr:`~repro.workloads.fleet.FleetReport.failures` /
    :attr:`~repro.api.fleet.FleetOpStats.failures`.

    Attributes:
        index: position of the member's task in the pass.
        error_type: class name of the final error.
        message: final error message.
        hosts_tried: worker addresses that failed this member, in
            dispatch order (empty when the task itself raised).
        attempts: dispatch attempts made (1 = no retry happened).
        timed_out: the final failure was an
            :class:`~repro.parallel.remote.RpcTimeoutError`.
    """

    index: int
    error_type: str
    message: str
    hosts_tried: Tuple[str, ...] = ()
    attempts: int = 1
    timed_out: bool = False


@dataclass(frozen=True)
class WorkerWall:
    """Wall-clock share of one worker in one fleet pass.

    Attributes:
        worker: stable worker label (``"serial-0"``, ``"thread-3"``,
            ``"pid-4242"``).
        tasks: member tasks this worker executed.
        wall_seconds: host wall-clock the worker spent inside tasks.
    """

    worker: str
    tasks: int
    wall_seconds: float


@dataclass
class ExecutionOutcome:
    """What one executor run produced.

    Attributes:
        results: per-task ``(payload, state)`` tuples, in task order.
        assignments: worker label per task, in task order.
        worker_walls: per-worker wall-clock breakdown.
        workers: workers the pass actually used.
        hosts: remote worker addresses the pass dispatched to (empty
            for in-host executors).
        bytes_out: wire payload bytes sent per remote host this pass
            (empty for in-host executors).
        bytes_back: wire payload bytes received per remote host.
        retries: member re-dispatches per *failed* host — ``{addr: n}``
            means ``n`` member tasks had to fail over off ``addr``
            (empty when the pass saw no faults).
        timeouts: per-host count of request deadlines that expired
            (:class:`~repro.parallel.remote.RpcTimeoutError`).
        failures: degraded-mode :class:`MemberFailure` records, member
            order.  When non-empty, the corresponding ``results`` slots
            hold the failure record instead of ``(payload, state)``.
    """

    results: List[Tuple[Any, Any]] = field(default_factory=list)
    assignments: List[str] = field(default_factory=list)
    worker_walls: List[WorkerWall] = field(default_factory=list)
    workers: int = 1
    hosts: Tuple[str, ...] = ()
    bytes_out: Dict[str, int] = field(default_factory=dict)
    bytes_back: Dict[str, int] = field(default_factory=dict)
    retries: Dict[str, int] = field(default_factory=dict)
    timeouts: Dict[str, int] = field(default_factory=dict)
    failures: List[MemberFailure] = field(default_factory=list)


def _effective_workers(max_workers: Optional[int], n_tasks: int) -> int:
    """Workers a pool pass should use: never more than tasks, default
    one per core."""
    cap = max_workers if max_workers is not None else (os.cpu_count() or 1)
    return max(1, min(cap, n_tasks))


def _collect_walls(per_worker: Dict[str, List[float]]) -> List[WorkerWall]:
    return [WorkerWall(worker=label, tasks=len(walls),
                       wall_seconds=sum(walls))
            for label, walls in sorted(per_worker.items())]


class FleetExecutor:
    """Dispatch strategy for a fleet pass (base class).

    Subclasses implement :meth:`run`; ``name`` is the registry key the
    resolution chain selects them by.
    """

    name: str = "abstract"

    #: True when tasks run in another process (member state returned
    #: by value).  Task builders use this to decide between returning
    #: the member itself (cheap in-process) and a compact snapshot or
    #: state patch (what must cross a process boundary).
    crosses_process: bool = False

    def run(self, tasks: Sequence[MemberTask]) -> ExecutionOutcome:
        raise NotImplementedError


class SerialExecutor(FleetExecutor):
    """The reference dispatch: tasks run in order, in-thread."""

    name = "serial"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        # accepted (and ignored) so every factory has one signature
        self.max_workers = 1

    def run(self, tasks: Sequence[MemberTask]) -> ExecutionOutcome:
        outcome = ExecutionOutcome(workers=1)
        wall = 0.0
        for task in tasks:
            t0 = time.perf_counter()
            outcome.results.append(task())
            wall += time.perf_counter() - t0
            outcome.assignments.append("serial-0")
        outcome.worker_walls = [
            WorkerWall(worker="serial-0", tasks=len(tasks),
                       wall_seconds=wall)]
        return outcome


def _timed_in_context(ctx: contextvars.Context,
                      task: MemberTask) -> Tuple[str, float, Tuple[Any, Any]]:
    """Thread-pool task wrapper: run under the submitter's contextvars
    snapshot and report (worker label, wall, result)."""
    t0 = time.perf_counter()
    result = ctx.run(task)
    wall = time.perf_counter() - t0
    ident = threading.current_thread().name
    return ident, wall, result


class ThreadExecutor(FleetExecutor):
    """Thread-pool dispatch.

    Useful when the per-member work releases the GIL (the span/batched
    engines spend their time inside numpy) or waits on I/O; the ambient
    ``repro.engine(...)`` context is propagated to every task, so a
    pass scoped to the scalar engine stays scalar on every worker.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def run(self, tasks: Sequence[MemberTask]) -> ExecutionOutcome:
        n = len(tasks)
        if n == 0:
            return ExecutionOutcome(workers=0)
        workers = _effective_workers(self.max_workers, n)
        outcome = ExecutionOutcome(workers=workers)
        futures = []
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix=f"{self.name}-pool") as pool:
            for task in tasks:
                # one context copy per task: a Context cannot be
                # entered concurrently from two threads
                ctx = contextvars.copy_context()
                futures.append(pool.submit(_timed_in_context, ctx, task))
            per_worker: Dict[str, List[float]] = {}
            for future in futures:
                ident, wall, result = future.result()
                label = "thread-" + ident.rsplit("_", 1)[-1]
                outcome.results.append(result)
                outcome.assignments.append(label)
                per_worker.setdefault(label, []).append(wall)
        outcome.worker_walls = _collect_walls(per_worker)
        return outcome


def _process_task(task: MemberTask) -> Tuple[str, float, Tuple[Any, Any]]:
    """Process-pool task wrapper (module-level for picklability)."""
    t0 = time.perf_counter()
    result = task()
    wall = time.perf_counter() - t0
    return f"pid-{os.getpid()}", wall, result


class ProcessExecutor(FleetExecutor):
    """Process-pool dispatch: real CPU parallelism.

    Each task's arguments (the member store) are pickled to the
    worker — the medium pickles as a compact snapshot, and the RNG
    state rides along, so the worker continues the member's exact
    random sequence — and the mutated store is pickled back and
    reinstalled by the caller.  Per-member results are therefore
    byte-identical to a serial pass.

    ``with repro.engine(...):`` *context* overrides do not cross the
    process boundary (contextvars are per-process); fleet members carry
    their resolved engine in ``DeviceConfig.span_engine``, so member
    behaviour is unaffected.  Environment-variable policy layers
    propagate to workers as part of the inherited environment.
    """

    name = "process"
    crosses_process = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        self._pool_lock = threading.Lock()

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        """The persistent pool (spawning workers per *pass* would make
        pool startup, not the fleet, the measured quantity).  Guarded:
        cached instances are shared across gateway handler threads, and
        two unlocked creators would leak a pool."""
        with self._pool_lock:
            if self._pool is not None and self._pool_workers < workers:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=workers)
                self._pool_workers = workers
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._pool_lock:
            pool, self._pool, self._pool_workers = self._pool, None, 0
        if pool is not None:
            pool.shutdown(wait=True)

    def run(self, tasks: Sequence[MemberTask]) -> ExecutionOutcome:
        n = len(tasks)
        if n == 0:
            return ExecutionOutcome(workers=0)
        workers = _effective_workers(self.max_workers, n)
        outcome = ExecutionOutcome(workers=workers)
        per_worker: Dict[str, List[float]] = {}
        pool = self._ensure_pool(workers)
        try:
            futures = [pool.submit(_process_task, task) for task in tasks]
            for future in futures:
                label, wall, result = future.result()
                outcome.results.append(result)
                outcome.assignments.append(label)
                per_worker.setdefault(label, []).append(wall)
        except BaseException:
            self.close()  # a broken pool must not poison the next pass
            raise
        outcome.worker_walls = _collect_walls(per_worker)
        return outcome


# ---------------------------------------------------------------------------
# Executor registry


@dataclass(frozen=True)
class ExecutorSpec:
    """One registered fleet executor.

    Attributes:
        name: registry key, as accepted by
            ``repro.engine(executor=...)`` and
            :attr:`~repro.api.policy.ExecutionPolicy.executor`.
        factory: ``factory(max_workers=None) -> FleetExecutor``.
        description: one-line human description.
    """

    name: str
    factory: Callable[..., FleetExecutor]
    description: str = ""


_EXECUTORS: Dict[str, ExecutorSpec] = {}

_BUILTIN_EXECUTORS = ("serial", "thread", "process", "rpc")


#: Instances handed out by :func:`make_executor`, keyed by
#: ``(name, max_workers)``.  Name-resolved executors are shared so a
#: process executor's worker pool stays warm across fleet passes.
#: Concurrent gateway handler threads resolve executors per pass, so
#: the cache is guarded: an unlocked check-then-set would let two
#: threads build two process pools and leak one.
_INSTANCES: Dict[Tuple[str, Optional[int]], FleetExecutor] = {}

_INSTANCES_LOCK = threading.Lock()


def _drop_instances(name: str) -> None:
    with _INSTANCES_LOCK:
        dropped = [_INSTANCES.pop(k)
                   for k in [k for k in _INSTANCES if k[0] == name]]
    for instance in dropped:
        close = getattr(instance, "close", None)
        if close is not None:
            close()


def close_executors() -> None:
    """Shut down and evict every cached executor instance.

    Cached process executors keep their worker pools alive between
    passes (that is the point); a long-lived service that is done with
    fleet work — or that swept many distinct ``max_workers`` bounds —
    calls this to release the pools.  The next resolution simply
    builds fresh instances.

    The rpc executor's worker *connections* are pooled module-wide in
    :mod:`repro.parallel.remote` (its host list resolves lazily, so
    sockets key by address, not by executor instance); dropping cached
    instances alone would leak those sockets, so the connection pool is
    closed here too — including when every rpc dispatch went through
    explicit (never-cached) executor instances.
    """
    with _INSTANCES_LOCK:
        names = {key[0] for key in _INSTANCES}
    for name in names:
        _drop_instances(name)
    import sys

    remote = sys.modules.get(__package__ + ".remote")
    if remote is not None:  # never imported → no pools to close
        remote.close_connection_pools()


def register_executor(spec: ExecutorSpec, *,
                      replace: bool = False) -> ExecutorSpec:
    """Register an executor so policies/contexts can select it by name.

    Raises ``ValueError`` for a duplicate name unless ``replace``.
    """
    if not spec.name or not spec.name.isidentifier() or \
            spec.name != spec.name.lower():
        raise ValueError(
            "executor name must be a lowercase identifier (the "
            f"REPRO_FLEET_EXECUTOR layer matches case-insensitively): "
            f"{spec.name!r}")
    if spec.name in _EXECUTORS and not replace:
        raise ValueError(f"executor {spec.name!r} already registered")
    _drop_instances(spec.name)  # a replaced factory must take effect
    _EXECUTORS[spec.name] = spec
    return spec


def unregister_executor(name: str) -> None:
    """Remove a registered executor (built-ins are protected)."""
    if name in _BUILTIN_EXECUTORS:
        raise ValueError(f"cannot unregister built-in executor {name!r}")
    _drop_instances(name)
    _EXECUTORS.pop(name, None)


def available_executors() -> Tuple[str, ...]:
    """Names of all registered executors, registration order."""
    return tuple(_EXECUTORS)


def get_executor_spec(name: str) -> ExecutorSpec:
    """Look up a registered executor by name."""
    try:
        return _EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; registered: {', '.join(_EXECUTORS)}"
        ) from None


def make_executor(name: str,
                  max_workers: Optional[int] = None) -> FleetExecutor:
    """A registered executor instance for ``(name, max_workers)``.

    Instances are cached: every pass that resolves the same name and
    worker bound shares one executor, so stateful dispatchers (the
    process pool) stay warm between passes instead of respawning
    workers per call.
    """
    spec = get_executor_spec(name)
    key = (name, max_workers)
    with _INSTANCES_LOCK:
        instance = _INSTANCES.get(key)
        if instance is None:
            instance = spec.factory(max_workers=max_workers)
            _INSTANCES[key] = instance
    return instance


def _rpc_factory(max_workers: Optional[int] = None) -> FleetExecutor:
    """Build the remote executor (imported lazily so the wire-protocol
    module only loads when rpc dispatch is actually selected)."""
    from .remote import RpcExecutor

    return RpcExecutor(max_workers=max_workers)


register_executor(ExecutorSpec(
    "serial", SerialExecutor,
    "in-order dispatch in the calling thread (the reference)"))
register_executor(ExecutorSpec(
    "thread", ThreadExecutor,
    "thread pool; contextvars-propagating, numpy releases the GIL"))
register_executor(ExecutorSpec(
    "process", ProcessExecutor,
    "process pool; members travel as compact pickled snapshots"))
register_executor(ExecutorSpec(
    "rpc", _rpc_factory,
    "TCP dispatch to remote worker daemons (REPRO_FLEET_HOSTS)"))


def resolve_fleet_executor(
        explicit: Union[None, str, FleetExecutor] = None,
        max_workers: Optional[int] = None) -> FleetExecutor:
    """Resolve the executor a fleet pass should dispatch on.

    ``explicit`` may be a ready :class:`FleetExecutor` instance (used
    as-is), a registered name, or None to defer to the lazy policy
    chain (context > installed policy > ``REPRO_FLEET_EXECUTOR`` read
    now > ``"serial"``).  ``max_workers`` resolves through the same
    chain independently, so ``REPRO_FLEET_WORKERS=4`` bounds whichever
    executor wins.
    """
    if isinstance(explicit, FleetExecutor):
        if max_workers is not None and \
                getattr(explicit, "max_workers", None) != max_workers:
            raise ValueError(
                "pass the worker bound on the executor instance itself "
                f"({type(explicit).__name__}(max_workers={max_workers})); "
                "a ready instance is used as-is and would silently "
                "ignore a conflicting max_workers argument")
        return explicit
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    # lazy: this module must stay importable before repro.api finishes
    # initialising (repro.api re-exports the executor registry)
    from ..api import policy as _policy

    name, _source = _policy.resolve_executor_name(explicit)
    if max_workers is None:
        max_workers, _ = _policy.resolve_max_workers(None)
    return make_executor(name, max_workers)
