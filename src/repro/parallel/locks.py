"""Shard-grained locking for fleet façades.

The determinism contract of the paper's protocol is *per member*: each
member store owns its RNG stream, counters, and medium state, so two
operations touching disjoint members share no mutable state and have
no reason to queue behind each other.  :class:`MemberLockSet` encodes
that contract as a locking discipline:

* one reentrant lock per member, multi-member footprints always
  acquired in **ascending member-index order** — two ``seal_many``
  calls whose batches cover members ``{0, 2}`` and ``{2, 0}`` both
  sort to ``0 < 2``, so reverse-footprint races cannot deadlock;
* a fleet-wide **exclusive mode** for whole-fleet passes (audit,
  format, growth, rebalance), implemented as a writer-preferring
  read/write gate: shard operations hold the gate *shared*, exclusive
  passes hold it alone — no shard operation can overlap an exclusive
  pass in either direction, and a waiting exclusive pass blocks new
  shard entrants so audits cannot starve under tenant load;
* a ``serialize`` switch that turns **every** acquisition into the
  exclusive mode — the forced single-lock baseline the gateway bench
  measures its concurrency floor against.

Lock order is always *gate before member locks*, and member locks are
only ever held either one at a time (the lock-step ``_locate`` walk)
or as one ascending batch, so the discipline is deadlock-free by
construction.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterable, Iterator, List, Tuple


class MemberLockSet:
    """Per-member reentrant locks plus a fleet-wide exclusive mode.

    Args:
        count: number of members (one lock each).
        serialize: force every acquisition — shard or exclusive — into
            the exclusive whole-fleet mode.  This restores the single
            global lock the gateway shipped with, and exists so the
            shard-parallel path can be benchmarked against it.
    """

    def __init__(self, count: int, *, serialize: bool = False) -> None:
        if count < 1:
            raise ValueError("a MemberLockSet needs at least one member")
        self._locks: List[threading.RLock] = [
            threading.RLock() for _ in range(count)]
        self._serialize = bool(serialize)
        # writer-preferring read/write gate
        self._gate = threading.Condition()
        self._shared = 0
        self._writer: int = 0          # thread ident holding exclusive
        self._writer_depth = 0         # reentrant exclusive entries
        self._writers_waiting = 0

    @property
    def count(self) -> int:
        return len(self._locks)

    @property
    def serialize(self) -> bool:
        return self._serialize

    # -- the fleet gate -----------------------------------------------------

    def _acquire_gate_shared(self) -> None:
        me = threading.get_ident()
        with self._gate:
            if self._writer == me:
                # the exclusive holder may run shard-grained helpers
                self._writer_depth += 1
                return
            while self._writer or self._writers_waiting:
                self._gate.wait()
            self._shared += 1

    def _release_gate_shared(self) -> None:
        me = threading.get_ident()
        with self._gate:
            if self._writer == me:
                self._writer_depth -= 1
                return
            self._shared -= 1
            if self._shared == 0:
                self._gate.notify_all()

    def _acquire_gate_exclusive(self) -> None:
        me = threading.get_ident()
        with self._gate:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer or self._shared:
                    self._gate.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def _release_gate_exclusive(self) -> None:
        with self._gate:
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = 0
                self._gate.notify_all()

    @contextmanager
    def shared(self) -> Iterator[None]:
        """Hold the fleet gate shared: excluded by (and excluding)
        exclusive passes, concurrent with other shard operations.
        Member locks may only be taken while the gate is held; in
        ``serialize`` mode this *is* the exclusive mode."""
        if self._serialize:
            self._acquire_gate_exclusive()
            try:
                yield
            finally:
                self._release_gate_exclusive()
            return
        self._acquire_gate_shared()
        try:
            yield
        finally:
            self._release_gate_shared()

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """Whole-fleet exclusive mode: no shard operation overlaps.
        Reentrant within the holding thread."""
        self._acquire_gate_exclusive()
        try:
            yield
        finally:
            self._release_gate_exclusive()

    # -- member locks (held under the shared gate) --------------------------

    def acquire_member(self, index: int) -> None:
        """Take one member's lock (caller holds the gate).  Use either
        one lock at a time (lock-step walks) or through
        :meth:`members` — never hand-roll a descending multi-acquire."""
        self._locks[index].acquire()

    def release_member(self, index: int) -> None:
        self._locks[index].release()

    def acquire_ascending(self, indices: Iterable[int]) -> Tuple[int, ...]:
        """Take a footprint's member locks in ascending index order;
        returns the acquisition order for the matching release."""
        order = tuple(sorted(set(indices)))
        for index in order:
            self._locks[index].acquire()
        return order

    def release_descending(self, order: Tuple[int, ...]) -> None:
        for index in reversed(order):
            self._locks[index].release()

    @contextmanager
    def members(self, indices: Iterable[int]) -> Iterator[None]:
        """Shared gate + the footprint's member locks (ascending)."""
        with self.shared():
            order = self.acquire_ascending(indices)
            try:
                yield
            finally:
                self.release_descending(order)

    @contextmanager
    def member(self, index: int) -> Iterator[None]:
        """Shared gate + one member's lock."""
        with self.members((index,)):
            yield

    # -- growth -------------------------------------------------------------

    def grow(self) -> int:
        """Add one member lock; call only while holding
        :meth:`exclusive` (the same discipline as mutating the member
        list itself).  Returns the new member index."""
        if self._writer != threading.get_ident():
            raise RuntimeError(
                "MemberLockSet.grow() requires the exclusive mode "
                "(grow the lock set where you grow the member list)")
        self._locks.append(threading.RLock())
        return len(self._locks) - 1
