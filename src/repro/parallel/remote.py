"""Remote RPC fleet executor: fleet members across machines.

PR 4 left the executor registry open and made the transport
network-shaped — a member ships to a worker as a compact pickled
snapshot (~1.3 MB for the bench fleet, see
:meth:`repro.medium.medium.PatternedMedium.__getstate__`) and a
read-only pass sends home a ~1 kB
:class:`~repro.api.store.StoreStatePatch`.  This module closes the
loop: the same member tasks, dispatched over TCP to worker daemons on
other hosts, byte-identical to the ``serial`` reference.

Three pieces:

* **wire protocol** — length-prefixed pickle frames
  (:func:`send_frame` / :func:`recv_frame`): a 4-byte magic, an 8-byte
  big-endian length, the protocol-5 pickle body, then the frame's
  out-of-band buffer segments (a 4-byte count, each segment
  length-prefixed).  Large buffer-protocol payloads — the packed
  mag-bit and touched-bitmap arrays of a member snapshot — travel as
  raw segments via :class:`pickle.PickleBuffer` instead of being
  memcpy'd into the pickle stream, and are reconstructed on the
  receiver over the segment buffers directly.  Requests are small
  tagged tuples (``("run", task)``, ``("ping",)``, the session verbs
  below); responses carry the task's result or a portable description
  of the exception it raised.  Pickle is the member transport the
  in-host ``process`` executor already rides on, so the *same* compact
  snapshots cross the network.  When a ``fleet_secret`` is configured
  (``RpcExecutor(secret=...)`` > ``repro.engine(fleet_secret=...)`` >
  installed policy > ``REPRO_FLEET_SECRET``) every frame is
  HMAC-SHA256 signed — magic ``SRPH``, a 32-byte digest after the
  buffer segments covering the header, body and every segment — and
  verified with a constant-time compare *before* the body is
  unpickled; unsigned frames are rejected outright, so a peer that
  does not hold the shared secret can neither issue requests nor
  forge replies.  Without a secret the protocol still authenticates
  nobody (bare ``SRPC`` frames): reserve unsigned mode for loopback
  development (documented in API.md).

* **sessions** — the ``pin``/``unpin``/``run_pinned`` verbs.  A pin
  ships a member snapshot once and caches it on the worker under a
  ``(client, member)`` key and a client-assigned *generation*; later
  passes send only a task descriptor (the store swapped for a
  placeholder, see :mod:`repro.parallel.session`) and fold the
  returned :class:`~repro.api.store.StoreStatePatch` — or, for a
  mutating pass, the returned snapshot — into the caller-held store.
  A ``run_pinned`` that finds no pin of the requested generation
  (worker restarted, cache evicted, client-side mutation bumped the
  generation) answers ``("nopin",)`` **without running the task**, so
  the client can re-pin and resend without ever violating the
  never-retry-after-delivery rule.  Session mode also *pipelines*: one
  socket per host per pass, all frames written by a writer thread
  while replies drain in order, so N members on one host cost ~one
  round trip plus compute.  Enable with
  ``repro.engine(fleet_sessions=True)`` / ``REPRO_FLEET_SESSIONS=1``
  or ``RpcExecutor(sessions=True)``.

* **worker daemon** — :func:`serve`, exposed as
  ``python -m repro.parallel.remote serve --bind HOST:PORT``.  A
  threaded TCP server that hosts member stores for the duration of a
  pass: each connection unpickles tasks, executes them, and replies
  with ``(wall_seconds, (payload, state))`` or the raised exception.
  A member raising inside a pass travels back as the original
  exception object (plus the remote traceback text), so a fleet pass
  fails with the *same* error type whichever executor dispatched it.

* **client executor** — :class:`RpcExecutor` (registered as ``rpc``),
  a :class:`~repro.parallel.executor.FleetExecutor` that resolves its
  host list lazily at each dispatch (explicit ``hosts=`` argument >
  ``with repro.engine(fleet_hosts=...):`` > installed policy >
  ``REPRO_FLEET_HOSTS``), assigns member *i* to the host a
  :class:`~repro.parallel.ring.HashRing` over the host set owns —
  deterministic and stable under host lists given in any order — and
  drives the per-host connections from a thread pool.  Connections are
  pooled module-wide (:data:`_POOL`) so repeated passes reuse warm
  sockets; a stale pooled connection is redialled once *before* the
  request is delivered, while any failure after delivery raises
  :class:`RpcConnectionError` — a task that may have executed is never
  silently retried (a seal pass must not heat a line twice).

Failure semantics (the fault-injection contract):

* worker process killed → the next frame on its connections hits EOF:
  :class:`RpcConnectionError` naming the host, no member state folded
  back (caller-held references keep their pre-pass state), and the
  surviving hosts' pooled connections stay reusable;
* connection dropped mid-frame (truncated header or body) →
  :class:`RpcConnectionError`; a half-received frame is never
  interpreted;
* member raising inside a pass → the original exception re-raised at
  the caller, ``__cause__``-chained to a :class:`RemoteTaskError`
  carrying the remote traceback and host — and in session mode the
  worker *drops the pin* (its copy may be half-mutated) while the
  client folds nothing;
* session pass failing on any host → no member state folded anywhere,
  every session touched by the pass invalidated (the pinned copies may
  have advanced without a client fold), so the next pass re-pins from
  the caller-held state — degraded to re-shipping, never to a stale
  result.
"""

from __future__ import annotations

import argparse
import hashlib
import hmac
import os
import pickle
import random
import socket
import socketserver
import struct
import subprocess
import sys
import threading
import time
import traceback
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError, ReproError
from .executor import (
    ExecutionOutcome,
    FleetExecutor,
    MemberFailure,
    MemberTask,
    _collect_walls,
)
from .ring import HashRing

#: Environment variable naming the worker hosts (``host:port`` items,
#: comma-separated), read lazily at each dispatch.
HOSTS_ENV_VAR = "REPRO_FLEET_HOSTS"

#: Frame header: magic + 8-byte big-endian payload length.  ``SRPC``
#: frames are unsigned; ``SRPH`` frames carry a trailing HMAC-SHA256
#: digest over everything before it.
_MAGIC = b"SRPC"
_MAGIC_SIGNED = b"SRPH"
_HEADER = struct.Struct(">4sQ")

#: Trailing signature size of an ``SRPH`` frame (HMAC-SHA256).
_DIGEST_BYTES = 32

#: Refuse absurd frames (a desynchronised peer must fail fast, not
#: allocate gigabytes).  Generous: a bench member snapshot is ~1.3 MB.
MAX_FRAME_BYTES = 1 << 30

#: Buffers below this stay inside the pickle body; at or above it they
#: travel as raw out-of-band segments (the packed snapshot bitmaps).
INLINE_BUFFER_BYTES = 4096

#: Cap on out-of-band segments per frame (desync protection, like
#: :data:`MAX_FRAME_BYTES`).
MAX_FRAME_BUFFERS = 1 << 16

_BUF_COUNT = struct.Struct(">I")
_BUF_LEN = struct.Struct(">Q")

#: Dial attempts for a *fresh* connection (a worker still starting up
#: refuses a few times before it listens).
DIAL_RETRIES = 10
DIAL_RETRY_DELAY_S = 0.2

#: Failover re-dispatch backoff: wave ``k`` sleeps
#: ``base * 2**k`` seconds (capped), stretched by up to ``JITTER``
#: so a rack of clients re-dispatching off one dead host does not
#: stampede the survivors in lockstep.
FAILOVER_BACKOFF_BASE_S = 0.05
FAILOVER_BACKOFF_CAP_S = 2.0
FAILOVER_BACKOFF_JITTER = 0.25

#: Consecutive wire failures that open a host's circuit breaker.
HEALTH_FAILURE_THRESHOLD = 3

#: Seconds an open breaker keeps a host out of dispatch before a
#: probation ``ping`` may re-admit it.
HEALTH_PROBATION_S = 2.0


class RpcError(ReproError):
    """Base class for remote-fleet RPC failures."""


class RpcConnectionError(RpcError):
    """A worker connection failed: dial refused, worker died, or a
    frame was cut short.  The message names the host."""


class RpcTimeoutError(RpcConnectionError):
    """A per-request socket deadline expired: the worker accepted the
    connection but stopped sending (hung task, wedged process, black-
    holed network).  Subclasses :class:`RpcConnectionError` — a hung
    worker gets the same no-fold/failover treatment as a dead one —
    but stays distinguishable for the per-host timeout stats."""


class RpcProtocolError(RpcError):
    """The peer spoke something that is not the SRPC framing."""


class RemoteTaskError(RpcError):
    """A member task raised on a worker.

    The original exception is re-raised at the caller with this as its
    ``__cause__``; :attr:`host` and :attr:`remote_traceback` preserve
    where and how it failed.
    """

    def __init__(self, message: str, *, host: str = "",
                 remote_traceback: str = "") -> None:
        super().__init__(message)
        self.host = host
        self.remote_traceback = remote_traceback


# ---------------------------------------------------------------------------
# Wire protocol


class _Ambient:
    """Sentinel: resolve the frame secret through the policy chain at
    call time (context > installed policy > ``REPRO_FLEET_SECRET``).
    Distinct from ``None``, which means *explicitly unsigned*."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "<ambient fleet secret>"


#: Default for every ``secret=`` parameter in this module.  The worker
#: daemon always runs with the ambient default, so exporting
#: ``REPRO_FLEET_SECRET`` to the worker process is the whole
#: deployment story; the client executor resolves the chain *once* per
#: pass and threads the value explicitly, because context-variable
#: overrides do not propagate into its dispatch threads.
_AMBIENT = _Ambient()


def _resolve_secret(secret: Any) -> Optional[str]:
    if isinstance(secret, _Ambient):
        from ..api import policy as _policy  # lazy: avoids a cycle

        return _policy.resolve_fleet_secret(None)[0]
    return secret


def _frame_mac(secret: str) -> "hmac.HMAC":
    return hmac.new(secret.encode("utf-8"), digestmod=hashlib.sha256)


def send_frame(sock: socket.socket, message: Any, *,
               secret: Any = _AMBIENT) -> int:
    """Pickle ``message`` and send it as one length-prefixed frame.

    Pickles at protocol 5 with a buffer callback: large
    buffer-protocol payloads (numpy arrays of
    :data:`INLINE_BUFFER_BYTES` or more — a snapshot's packed bitmaps)
    are *not* copied into the pickle stream but travel after the body
    as raw length-prefixed segments, gathered into the socket in one
    ``sendall``.  Returns the payload size in bytes — body plus
    segments, excluding framing overhead (the transport-accounting
    hook the benchmarks and the per-pass byte counters use).

    With a ``secret`` (explicit string, or the ambient policy chain
    when one is configured) the frame goes out under the ``SRPH``
    magic with a trailing HMAC-SHA256 digest over the header, body,
    buffer count and every length-prefixed segment.  ``secret=None``
    forces an unsigned ``SRPC`` frame.
    """
    resolved = _resolve_secret(secret)
    segments: List[memoryview] = []

    def _collect(buffer: pickle.PickleBuffer):
        try:
            raw = buffer.raw()
        except BufferError:  # non-contiguous: let pickle copy it
            return True
        if raw.nbytes < INLINE_BUFFER_BYTES:
            return True  # small: in-band is cheaper than a segment
        segments.append(raw)
        return False

    body = pickle.dumps(message, protocol=5, buffer_callback=_collect)
    magic = _MAGIC if resolved is None else _MAGIC_SIGNED
    parts: List[Any] = [_HEADER.pack(magic, len(body)), body,
                        _BUF_COUNT.pack(len(segments))]
    payload = len(body)
    for raw in segments:
        parts.append(_BUF_LEN.pack(raw.nbytes))
        parts.append(raw)
        payload += raw.nbytes
    if resolved is not None:
        mac = _frame_mac(resolved)
        for part in parts:
            mac.update(part)
        parts.append(mac.digest())
    sock.sendall(b"".join(parts))
    return payload


def _recv_exact(sock: socket.socket, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`RpcConnectionError`.

    A connection dropped mid-frame surfaces here: the peer closed (or
    died) with ``what`` only partially delivered, and a partial frame
    must never be interpreted.
    """
    chunks: List[bytes] = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(n - got, 1 << 20))
        except TimeoutError as exc:  # the per-request socket deadline
            raise RpcTimeoutError(
                f"socket deadline expired mid-frame ({got}/{n} bytes of "
                f"{what}); the peer is hung or the network stalled"
            ) from exc
        if not chunk:
            raise RpcConnectionError(
                f"connection closed mid-frame ({got}/{n} bytes of {what}); "
                "the peer dropped the link or its process died")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def _recv_exact_into(sock: socket.socket, view: memoryview,
                     what: str) -> None:
    """Fill ``view`` from the socket or raise, like :func:`_recv_exact`
    but without an intermediate copy (out-of-band segments)."""
    n = len(view)
    got = 0
    while got < n:
        try:
            read = sock.recv_into(view[got:], min(n - got, 1 << 20))
        except TimeoutError as exc:
            raise RpcTimeoutError(
                f"socket deadline expired mid-frame ({got}/{n} bytes of "
                f"{what}); the peer is hung or the network stalled"
            ) from exc
        if not read:
            raise RpcConnectionError(
                f"connection closed mid-frame ({got}/{n} bytes of {what}); "
                "the peer dropped the link or its process died")
        got += read


def _recv_frame_counted(sock: socket.socket, *,
                        secret: Any = _AMBIENT) -> Tuple[Any, int]:
    """(message, payload bytes received) for one frame.

    The out-of-band segments are received into writable buffers the
    unpickled arrays map directly — the body never contains, and the
    receiver never re-copies, the bulk payload.

    With a ``secret`` in force, only ``SRPH`` frames are accepted and
    the trailing digest is checked with :func:`hmac.compare_digest`
    *before* ``pickle.loads`` runs — an unauthenticated peer never
    reaches the deserialiser.  An unsigned ``SRPC`` frame is rejected
    when a secret is set, and a signed frame is rejected when no
    secret is configured (this peer cannot verify it): both sides must
    agree on the secret, which is the point.
    """
    resolved = _resolve_secret(secret)
    try:
        first = sock.recv(1)
    except TimeoutError as exc:
        raise RpcTimeoutError(
            "socket deadline expired waiting for a frame; the peer is "
            "hung or the network stalled") from exc
    if not first:
        raise EOFError("peer closed between frames")
    header = first + _recv_exact(sock, _HEADER.size - 1, "frame header")
    magic, length = _HEADER.unpack(header)
    if magic not in (_MAGIC, _MAGIC_SIGNED):
        raise RpcProtocolError(
            f"bad frame magic {magic!r} (not an SRPC peer, or the "
            "stream desynchronised)")
    if resolved is not None and magic != _MAGIC_SIGNED:
        raise RpcProtocolError(
            "unsigned SRPC frame rejected: this peer requires "
            "HMAC-signed frames (a fleet secret is configured; the "
            "sender has none, or a stale one-sided deployment)")
    if resolved is None and magic == _MAGIC_SIGNED:
        raise RpcProtocolError(
            "HMAC-signed SRPH frame received but this peer has no "
            "fleet secret to verify it; configure the shared "
            "REPRO_FLEET_SECRET on both sides")
    if length > MAX_FRAME_BYTES:
        raise RpcProtocolError(f"frame of {length} bytes exceeds the "
                               f"{MAX_FRAME_BYTES}-byte cap")
    mac = _frame_mac(resolved) if resolved is not None else None
    if mac is not None:
        mac.update(header)
    body = _recv_exact(sock, int(length), "frame body")
    raw_count = _recv_exact(sock, _BUF_COUNT.size, "buffer count")
    count = _BUF_COUNT.unpack(raw_count)[0]
    if mac is not None:
        mac.update(body)
        mac.update(raw_count)
    if count > MAX_FRAME_BUFFERS:
        raise RpcProtocolError(f"frame with {count} out-of-band buffers "
                               f"exceeds the {MAX_FRAME_BUFFERS} cap")
    payload = int(length)
    buffers: List[bytearray] = []
    for _ in range(count):
        raw_len = _recv_exact(sock, _BUF_LEN.size, "buffer header")
        nbytes = _BUF_LEN.unpack(raw_len)[0]
        if nbytes > MAX_FRAME_BYTES:
            raise RpcProtocolError(
                f"out-of-band buffer of {nbytes} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte cap")
        segment = bytearray(int(nbytes))
        _recv_exact_into(sock, memoryview(segment), "buffer segment")
        if mac is not None:
            mac.update(raw_len)
            mac.update(segment)
        buffers.append(segment)
        payload += int(nbytes)
    if mac is not None:
        digest = _recv_exact(sock, _DIGEST_BYTES, "frame signature")
        if not hmac.compare_digest(mac.digest(), digest):
            raise RpcProtocolError(
                "frame signature mismatch: the peer signed with a "
                "different fleet secret, or the frame was tampered "
                "with in transit")
    return pickle.loads(body, buffers=buffers), payload


def recv_frame(sock: socket.socket, *, secret: Any = _AMBIENT) -> Any:
    """Receive one frame and unpickle it.

    Raises :class:`RpcConnectionError` on a truncated frame and
    :class:`RpcProtocolError` on bad framing — including a missing,
    unverifiable, or wrong HMAC signature when a secret is in force
    (see :func:`_recv_frame_counted`).  Returns the sentinel ``None``
    is a valid message; end-of-stream *between* frames raises
    ``EOFError`` (the orderly-shutdown signal the server loop uses).
    """
    return _recv_frame_counted(sock, secret=secret)[0]


# ---------------------------------------------------------------------------
# Worker daemon

#: Worker-global pin cache: ``(client, member) key -> (generation,
#: pinned store)``.  LRU-capped so an abandoned client cannot grow a
#: worker without bound; an evicted pin costs the owner one ``nopin``
#: round trip and a re-pin, never a wrong result.
PIN_CACHE_CAP = 1024
_PINS: "OrderedDict[Any, Tuple[int, Any]]" = OrderedDict()
_PINS_LOCK = threading.Lock()


def _pinned_members() -> int:
    """Entries in this process's pin cache (diagnostics/tests)."""
    with _PINS_LOCK:
        return len(_PINS)


def _run_task(task: Any) -> Tuple[Any, bool]:
    t0 = time.perf_counter()
    try:
        result = task()
    except BaseException as exc:  # noqa: BLE001 — shipped to caller
        try:
            portable: Optional[BaseException] = pickle.loads(
                pickle.dumps(exc, pickle.HIGHEST_PROTOCOL))
        except Exception:
            portable = None
        return ("err", portable, type(exc).__name__, str(exc),
                traceback.format_exc()), True
    wall = time.perf_counter() - t0
    return ("ok", wall, result), True


def _execute_request(request: Any) -> Tuple[Any, bool]:
    """(response, keep_serving) for one request tuple."""
    if not isinstance(request, tuple) or not request:
        return ("err", None, "RpcProtocolError",
                f"malformed request: {type(request).__name__}", ""), True
    if len(request) == 2 and isinstance(request[0], int) \
            and isinstance(request[1], tuple):
        # tagged request: the pipelined client matches each reply to
        # its in-flight request by id; untagged peers get untagged
        # replies (backward compatible)
        response, keep = _execute_request(request[1])
        return (request[0], response), keep
    op = request[0]
    if op == "ping":
        return ("pong", os.getpid()), True
    if op == "run":
        return _run_task(request[1])
    if op == "pin":
        _op, key, generation, snapshot = request
        with _PINS_LOCK:
            _PINS[key] = (generation, snapshot)
            _PINS.move_to_end(key)
            while len(_PINS) > PIN_CACHE_CAP:
                _PINS.popitem(last=False)
        return ("pinned",), True
    if op == "unpin":
        with _PINS_LOCK:
            dropped = _PINS.pop(request[1], None) is not None
        return ("unpinned", dropped), True
    if op == "run_pinned":
        _op, key, generation, task = request
        with _PINS_LOCK:
            entry = _PINS.get(key)
            if entry is not None and entry[0] == generation:
                _PINS.move_to_end(key)
                pinned = entry[1]
            else:
                pinned = None
        if pinned is None:
            # missing or stale pin: the task did NOT run, which is
            # what makes a client-side re-pin + resend safe
            return ("nopin",), True
        from .session import bind_pinned

        response, keep = _run_task(bind_pinned(task, pinned))
        if response[0] == "err":
            # the pinned copy may be half-mutated: never serve it again
            with _PINS_LOCK:
                _PINS.pop(key, None)
        return response, keep
    return ("err", None, "RpcProtocolError",
            f"unknown request op {op!r}", ""), True


class _WorkerHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # one connection: frames until EOF
        while True:
            try:
                request = recv_frame(self.request)
            except (EOFError, RpcConnectionError, ConnectionError,
                    OSError):
                return
            except RpcProtocolError:
                return  # a non-SRPC peer gets silence, not a stack dump
            response, keep = _execute_request(request)
            try:
                send_frame(self.request, response)
            except (ConnectionError, OSError):
                return
            if not keep:
                return


class _WorkerServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve(bind: str, *, announce=print) -> None:
    """Run a worker daemon on ``bind`` (``host:port``; port 0 picks a
    free one) until interrupted.  ``announce`` receives one
    ``"SRPC listening on host:port"`` line once the socket accepts —
    launchers parse it to learn an ephemeral port.
    """
    host, port = parse_host(bind)
    with _WorkerServer((host, port), _WorkerHandler) as server:
        bound_host, bound_port = server.server_address[:2]
        announce(f"SRPC listening on {bound_host}:{bound_port}")
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            pass


# ---------------------------------------------------------------------------
# Host parsing


def parse_host(spec: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` with validation."""
    host, sep, port_text = str(spec).strip().rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"fleet host must be 'host:port', got {spec!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"fleet host port must be an integer, got {spec!r}") from None
    if not 0 <= port <= 65535:
        raise ConfigurationError(f"fleet host port out of range: {spec!r}")
    return host, port


def parse_hosts(spec: Union[str, Sequence[str]]) -> Tuple[str, ...]:
    """Normalise a host list (string ``"h:p,h:p"`` or sequence) to a
    canonical tuple: validated, sorted, duplicates rejected.

    Sorting makes everything downstream order-independent: two nodes
    configured with the same hosts in different orders build the same
    :class:`HashRing` and assign members identically.  A *duplicated*
    host is a configuration error, not a bigger host: silently
    de-duplicating would let two nodes that disagree about the list
    believe they agree, and the placement/health layers key per
    address — so it is rejected outright.
    """
    if isinstance(spec, str):
        items = [item for item in spec.replace(",", " ").split() if item]
    else:
        items = [str(item) for item in spec]
    if not items:
        raise ConfigurationError("fleet host list is empty")
    canonical: List[str] = []
    seen: Dict[str, str] = {}
    for item in items:
        host, port = parse_host(item)
        key = f"{host}:{port}"
        if key in seen:
            duplicate = f" (as {seen[key]!r} and {item!r})" \
                if {seen[key], str(item).strip()} != {key} else ""
            raise ConfigurationError(
                f"duplicate fleet host {key!r}{duplicate}: each worker "
                "may be listed once — listing it twice would skew "
                "HashRing placement and double-count its health")
        seen[key] = str(item).strip()
        canonical.append(key)
    return tuple(sorted(canonical))


# ---------------------------------------------------------------------------
# Client connection pool (module-wide: RpcExecutor instances resolve
# their hosts lazily, so the sockets — keyed by address, not by
# instance — are shared and survive between passes.
# repro.parallel.close_executors() closes this pool too.)

_POOL: Dict[str, List[socket.socket]] = {}
_POOL_LOCK = threading.Lock()


def _pooled_connections(addr: Optional[str] = None) -> int:
    """Idle pooled connections (diagnostics/tests)."""
    with _POOL_LOCK:
        if addr is not None:
            return len(_POOL.get(addr, ()))
        return sum(len(socks) for socks in _POOL.values())


def close_connection_pools() -> int:
    """Close every idle pooled worker connection; returns the count.

    Connections checked out by an in-flight pass are not touched —
    they return to a now-empty pool when the pass completes.
    """
    with _POOL_LOCK:
        sockets = [s for socks in _POOL.values() for s in socks]
        _POOL.clear()
    for sock in sockets:
        try:
            sock.close()
        except OSError:
            pass
    return len(sockets)


def _dial(addr: str, *, retries: int = DIAL_RETRIES,
          timeout: Optional[float] = None) -> socket.socket:
    """Fresh connection to ``addr``, retrying brief refusals."""
    host, port = parse_host(addr)
    last: Optional[Exception] = None
    for attempt in range(max(1, retries)):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            if attempt + 1 < retries:
                time.sleep(DIAL_RETRY_DELAY_S)
    raise RpcConnectionError(
        f"cannot reach fleet worker at {addr}: {last}") from last


def _borrow(addr: str,
            deadline: Optional[float] = None) -> Tuple[socket.socket, bool]:
    """A connection to ``addr``: pooled (True) or freshly dialled.

    ``deadline`` is the per-request socket timeout in seconds (None =
    block forever, the pre-fault-tolerance behaviour); it is re-armed
    on every borrow, so a socket parked in the pool with a deadline
    set never surprises its next, deadline-free borrower.
    """
    with _POOL_LOCK:
        pooled = _POOL.get(addr)
        if pooled:
            sock = pooled.pop()
            sock.settimeout(deadline)
            return sock, True
    sock = _dial(addr, timeout=deadline if deadline else None)
    sock.settimeout(deadline)
    return sock, False


def _give_back(addr: str, sock: socket.socket) -> None:
    with _POOL_LOCK:
        _POOL.setdefault(addr, []).append(sock)


def _discard(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


def _recv_reply(addr: str, sock: socket.socket, *,
                secret: Any = _AMBIENT) -> Tuple[Any, int]:
    """(reply, bytes received) after a delivered request; any failure
    discards the socket and raises :class:`RpcConnectionError` (the
    task may have run, so the caller must never silently retry a
    non-session request).  An expired socket deadline keeps its
    :class:`RpcTimeoutError` type for the per-host timeout stats."""
    try:
        return _recv_frame_counted(sock, secret=secret)
    except EOFError as exc:
        _discard(sock)
        raise RpcConnectionError(
            f"fleet worker at {addr} closed the connection before "
            "replying (worker killed mid-task?)") from exc
    except RpcTimeoutError as exc:
        _discard(sock)
        raise RpcTimeoutError(
            f"no reply from fleet worker at {addr} within the request "
            f"deadline; the worker is hung or the network stalled"
        ) from exc
    except (RpcConnectionError, RpcProtocolError):
        _discard(sock)
        raise RpcConnectionError(
            f"reply from fleet worker at {addr} was cut short or "
            "malformed; the connection dropped mid-frame")
    except (ConnectionError, OSError) as exc:
        _discard(sock)
        raise RpcConnectionError(
            f"connection to fleet worker at {addr} failed mid-reply: "
            f"{exc}") from exc


def _call_worker_counted(addr: str, request: Any,
                         deadline: Optional[float] = None,
                         secret: Any = _AMBIENT
                         ) -> Tuple[Any, int, int]:
    """(reply, bytes out, bytes back) for one pooled round trip."""
    sock, from_pool = _borrow(addr, deadline)
    try:
        sent = send_frame(sock, request, secret=secret)
    except TimeoutError as exc:
        _discard(sock)
        raise RpcTimeoutError(
            f"request to fleet worker at {addr} stalled past the "
            f"socket deadline while sending") from exc
    except (ConnectionError, OSError) as exc:
        _discard(sock)
        if not from_pool:
            raise RpcConnectionError(
                f"fleet worker at {addr} rejected the request: "
                f"{exc}") from exc
        # stale pooled socket: one reconnect
        sock = _dial(addr, timeout=deadline if deadline else None)
        sock.settimeout(deadline)
        try:
            sent = send_frame(sock, request, secret=secret)
        except (ConnectionError, OSError) as exc2:
            _discard(sock)
            raise RpcConnectionError(
                f"fleet worker at {addr} rejected the request after "
                f"reconnect: {exc2}") from exc2
    response, received = _recv_reply(addr, sock, secret=secret)
    _give_back(addr, sock)
    return response, sent, received


def call_worker(addr: str, request: Any, *,
                deadline: Optional[float] = None,
                secret: Any = _AMBIENT) -> Any:
    """One request/response round trip with ``addr``, via the pool.

    A *stale* pooled connection (the worker restarted since the last
    pass) fails while the request is being sent; since an undelivered
    request cannot have executed, it is retried once on a fresh
    connection.  Any failure after the request was delivered — EOF or
    a truncated reply — raises :class:`RpcConnectionError` instead:
    the task may have run, and mutating passes must never run twice.
    ``deadline`` bounds every blocking socket operation of the round
    trip; expiry raises :class:`RpcTimeoutError`.
    """
    return _call_worker_counted(addr, request, deadline, secret)[0]


def ping(addr: str, *, timeout: float = 5.0,
         secret: Any = _AMBIENT) -> int:
    """Round-trip a ping; returns the worker's PID.  Waits up to
    ``timeout`` seconds for the worker to start listening; each round
    trip also carries ``timeout`` as its socket deadline, so a worker
    that *accepts* but never answers (hung event loop) fails the ping
    instead of blocking it forever.  The probe frame is signed like
    any other when a secret is in force — a secret-bearing worker
    would reject an unsigned ping, and an unverifiable probe must
    read as *down*, not healthy."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            response = call_worker(addr, ("ping",), deadline=timeout,
                                   secret=secret)
        except RpcConnectionError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(DIAL_RETRY_DELAY_S)
            continue
        if not (isinstance(response, tuple) and response[0] == "pong"):
            raise RpcProtocolError(f"unexpected ping reply: {response!r}")
        return int(response[1])


# ---------------------------------------------------------------------------
# Per-host health (module-wide, like the connection pool: executor
# instances come and go, the rack's health does not)


class _HostHealth:
    """Mutable health book entry for one worker address."""

    __slots__ = ("consecutive_failures", "open_until",
                 "total_failures", "total_timeouts")

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.total_failures = 0
        self.total_timeouts = 0


_HEALTH: Dict[str, _HostHealth] = {}
_HEALTH_LOCK = threading.Lock()


def record_host_success(addr: str) -> None:
    """A round trip with ``addr`` completed: close its breaker."""
    with _HEALTH_LOCK:
        entry = _HEALTH.get(addr)
        if entry is not None:
            entry.consecutive_failures = 0
            entry.open_until = 0.0


def record_host_failure(addr: str, *, timed_out: bool = False) -> None:
    """A wire round trip with ``addr`` failed.  After
    :data:`HEALTH_FAILURE_THRESHOLD` *consecutive* failures the host's
    circuit breaker opens for :data:`HEALTH_PROBATION_S` seconds:
    dispatch stops routing members to it until a probation
    :func:`ping` proves it back."""
    with _HEALTH_LOCK:
        entry = _HEALTH.setdefault(addr, _HostHealth())
        entry.consecutive_failures += 1
        entry.total_failures += 1
        if timed_out:
            entry.total_timeouts += 1
        if entry.consecutive_failures >= HEALTH_FAILURE_THRESHOLD:
            entry.open_until = time.monotonic() + HEALTH_PROBATION_S


def host_breaker_open(addr: str) -> bool:
    """Is ``addr`` currently excluded from dispatch?"""
    with _HEALTH_LOCK:
        entry = _HEALTH.get(addr)
        if entry is None or \
                entry.consecutive_failures < HEALTH_FAILURE_THRESHOLD:
            return False
    return True


def reset_host_health() -> None:
    """Forget all recorded host health (tests, fresh soak runs)."""
    with _HEALTH_LOCK:
        _HEALTH.clear()


def host_health_snapshot() -> Dict[str, Dict[str, float]]:
    """Diagnostics: per-host failure/timeout counters and breaker
    state, for operators and the soak report."""
    with _HEALTH_LOCK:
        return {
            addr: {
                "consecutive_failures": entry.consecutive_failures,
                "total_failures": entry.total_failures,
                "total_timeouts": entry.total_timeouts,
                "breaker_open": entry.consecutive_failures
                >= HEALTH_FAILURE_THRESHOLD,
            }
            for addr, entry in _HEALTH.items()
        }


def usable_hosts(hosts: Sequence[str], *,
                 probe_timeout: float = 1.0,
                 force_probe: bool = False,
                 secret: Any = _AMBIENT) -> Tuple[str, ...]:
    """The subset of ``hosts`` dispatch may route members to.

    Hosts with a closed breaker pass straight through (the common,
    lock-only path).  A host whose breaker is open is skipped while
    its probation window runs; once the window elapses it gets one
    :func:`ping` probe — success closes the breaker and re-admits it,
    failure re-opens the window.  Order is preserved (the host list is
    canonical/sorted, and placement must stay a pure function of it).

    ``force_probe`` probes open-breaker hosts even inside their
    probation window — the desperation path a failover wave takes
    when every admitted host just failed, so a freshly restarted
    worker can be re-admitted immediately rather than the pass dying
    while a live host waits out its window.
    """
    admitted: List[str] = []
    for addr in hosts:
        with _HEALTH_LOCK:
            entry = _HEALTH.get(addr)
            open_ = entry is not None and \
                entry.consecutive_failures >= HEALTH_FAILURE_THRESHOLD
            on_probation = open_ and time.monotonic() >= entry.open_until
        if not open_:
            admitted.append(addr)
            continue
        if not (on_probation or force_probe):
            continue
        try:
            ping(addr, timeout=probe_timeout, secret=secret)
        except (RpcError, OSError):
            record_host_failure(addr)  # re-opens the probation window
            continue
        record_host_success(addr)
        admitted.append(addr)
    return tuple(admitted)


# ---------------------------------------------------------------------------
# The executor


def _worker_label(addr: str) -> str:
    return f"rpc-{addr}"


class _TaskPlan:
    """One member task's dispatch plan inside a session pass."""

    __slots__ = ("index", "task", "store", "stripped", "session")

    def __init__(self, index: int, task: MemberTask, store: Any = None,
                 stripped: Any = None, session: Any = None) -> None:
        self.index = index
        self.task = task
        self.store = store
        self.stripped = stripped
        self.session = session


class _RoundFailed(Exception):
    """Internal: one host's wire round died.

    ``retry_safe`` means every delivered request was a session verb —
    a re-pin from caller-held state plus a resend cannot double-run
    anything, because nothing from the failed round is ever folded.
    ``nothing_delivered`` marks the classic stale-pooled-socket case.
    """

    def __init__(self, error: RpcConnectionError, *, retry_safe: bool,
                 nothing_delivered: bool) -> None:
        super().__init__(str(error))
        self.error = error
        self.retry_safe = retry_safe
        self.nothing_delivered = nothing_delivered


class RpcExecutor(FleetExecutor):
    """Dispatch fleet passes to remote worker daemons over TCP.

    Args:
        hosts: worker addresses (``"host:port"`` items, or one
            comma-separated string).  None resolves lazily at *each*
            dispatch through the policy chain
            (``repro.engine(fleet_hosts=...)`` > installed policy >
            ``REPRO_FLEET_HOSTS``), so exporting the variable after the
            scheduler exists still works.
        max_workers: bound on concurrent in-flight tasks (default: one
            per resolved host).
        sessions: pin members on their assigned workers and dispatch
            passes as pipelined task descriptors instead of re-shipped
            snapshots.  None resolves lazily through the policy chain
            (``repro.engine(fleet_sessions=...)`` > installed policy >
            ``REPRO_FLEET_SESSIONS``; default off).
        pipeline: in session mode, keep every request of a host's
            batch in flight on one socket (default).  ``False`` falls
            back to one blocking round trip per request — the bench's
            comparison baseline.  Ignored outside session mode.
        timeout: per-request socket deadline in seconds; a worker that
            stops sending for this long surfaces as
            :class:`RpcTimeoutError` instead of blocking the pass
            forever.  None resolves through the policy chain
            (``repro.engine(fleet_timeout=...)`` > installed policy >
            ``REPRO_FLEET_TIMEOUT``; default: no deadline).
        retries: failover re-dispatch waves for members whose host
            failed mid-pass.  A failed host folds zero partial state,
            so its members re-place on a :class:`HashRing` over the
            surviving hosts (exponential backoff + jitter between
            waves) and re-run byte-identically from caller-held state.
            None resolves through the chain
            (``repro.engine(fleet_retries=...)`` >
            ``REPRO_FLEET_RETRIES``; default 0 — fail fast, the PR 5
            contract).
        on_failure: ``"raise"`` (default) aborts the pass on the first
            exhausted member; ``"degrade"`` returns exhausted members
            as typed :class:`~repro.parallel.MemberFailure` records in
            their result slots so the surviving members' pass still
            folds.  Resolves through the chain
            (``repro.engine(fleet_on_failure=...)`` >
            ``REPRO_FLEET_ON_FAILURE``).
        secret: shared HMAC secret for signed SRPC frames.  None
            resolves through the chain
            (``repro.engine(fleet_secret=...)`` > installed policy >
            ``REPRO_FLEET_SECRET``; default: unsigned).  Resolved
            *once* per pass and threaded explicitly through every
            dispatch thread and health probe — a context-scoped
            secret must hold even though context variables do not
            cross into the executor's thread pool.

    Member *i* goes to the host that owns ``"member-i"`` on a
    consistent-hash ring over the host set — a pure function of the
    canonicalised host list, so every node that knows the same hosts
    (in any order) computes the same placement, and growing the host
    list remaps only its ring share of members.  Hosts whose circuit
    breaker is open (:data:`HEALTH_FAILURE_THRESHOLD` consecutive
    failures) are excluded from the ring until a probation ``ping``
    re-admits them, so a dead host stops receiving work instead of
    charging every pass a timeout.
    """

    name = "rpc"
    crosses_process = True  # results cross a machine boundary

    def __init__(self, hosts: Union[None, str, Sequence[str]] = None,
                 max_workers: Optional[int] = None, *,
                 sessions: Optional[bool] = None,
                 pipeline: Optional[bool] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 on_failure: Optional[str] = None,
                 secret: Optional[str] = None) -> None:
        self.hosts = parse_hosts(hosts) if hosts is not None else None
        self.max_workers = max_workers
        self.sessions = sessions
        self.pipeline = pipeline
        self.timeout = timeout
        self.retries = retries
        self.on_failure = on_failure
        self.secret = secret

    def _resolve_hosts(self) -> Tuple[str, ...]:
        if self.hosts is not None:
            return self.hosts
        # lazy, like every other policy switch: read at dispatch time
        from ..api import policy as _policy

        hosts, _source = _policy.resolve_fleet_hosts(None)
        if not hosts:
            raise ConfigurationError(
                "the rpc executor needs worker hosts: pass "
                "RpcExecutor(hosts=[...]), scope "
                "repro.engine(fleet_hosts=...), or export "
                f"{HOSTS_ENV_VAR}=host:port,host:port (start workers "
                "with `python -m repro.parallel.remote serve`)")
        return parse_hosts(hosts)

    def close(self) -> None:
        """Release the pooled worker connections (idempotent)."""
        close_connection_pools()

    @staticmethod
    def _member_error(addr: str, response: Tuple) -> BaseException:
        """The exception to raise for an ``("err", ...)`` reply: the
        original (portable) exception ``__cause__``-chained to a
        :class:`RemoteTaskError` naming the worker."""
        _tag, portable, etype, message, tb = response
        cause = RemoteTaskError(
            f"member task raised {etype} on fleet worker {addr}: "
            f"{message}\n--- remote traceback ---\n{tb}",
            host=addr, remote_traceback=tb)
        if isinstance(portable, BaseException):
            portable.__cause__ = cause
            return portable
        return cause

    def _resolve_fault_policy(
            self) -> Tuple[Optional[float], int, str, Optional[str]]:
        """(timeout, retries, on_failure, secret) through the policy
        chain — the secret resolved here, on the caller's thread, so a
        ``repro.engine(fleet_secret=...)`` scope reaches the dispatch
        threads it would otherwise never propagate into."""
        from ..api import policy as _policy

        deadline, _src = _policy.resolve_fleet_timeout(self.timeout)
        retries, _src = _policy.resolve_fleet_retries(self.retries)
        on_failure, _src = _policy.resolve_fleet_on_failure(
            self.on_failure)
        secret, _src = _policy.resolve_fleet_secret(self.secret)
        return deadline, retries, on_failure, secret

    @staticmethod
    def _backoff_sleep(wave: int) -> None:
        """Exponential backoff with jitter between failover waves —
        gives a briefly wedged host (GC pause, packet loss) room to
        come back before its members re-place, and decorrelates the
        retry stampede when several clients share a fleet."""
        delay = min(FAILOVER_BACKOFF_CAP_S,
                    FAILOVER_BACKOFF_BASE_S * (2 ** wave))
        time.sleep(delay * (1.0 + FAILOVER_BACKOFF_JITTER
                            * random.random()))

    @staticmethod
    def _run_one(addr: str, task: MemberTask,
                 deadline: Optional[float] = None,
                 secret: Any = _AMBIENT
                 ) -> Tuple[str, float, Any, int, int]:
        response, sent, received = _call_worker_counted(
            addr, ("run", task), deadline, secret)
        if not isinstance(response, tuple) or not response:
            raise RpcProtocolError(
                f"malformed reply from fleet worker at {addr}: "
                f"{type(response).__name__}")
        if response[0] == "ok":
            _tag, wall, result = response
            return addr, float(wall), result, sent, received
        if response[0] == "err":
            raise RpcExecutor._member_error(addr, response)
        raise RpcProtocolError(
            f"unknown reply tag {response[0]!r} from worker at {addr}")

    def run(self, tasks: Sequence[MemberTask]) -> ExecutionOutcome:
        n = len(tasks)
        hosts = self._resolve_hosts()
        if n == 0:
            return ExecutionOutcome(workers=0, hosts=hosts)
        from ..api import policy as _policy

        use_sessions, _source = _policy.resolve_fleet_sessions(
            self.sessions)
        deadline, retries, on_failure, secret = \
            self._resolve_fault_policy()
        live = list(usable_hosts(hosts, secret=secret))
        if not live:
            # every breaker is open: probe them all right now rather
            # than failing a pass that a restarted worker could serve
            live = list(usable_hosts(hosts, force_probe=True,
                                     secret=secret))
        if not live:
            raise RpcConnectionError(
                "no usable fleet worker hosts: every host's circuit "
                f"breaker is open ({', '.join(hosts)}) and none "
                "answered a probe; restart the workers")
        if use_sessions:
            return self._run_session_pass(
                tasks, hosts, live, deadline, retries, on_failure,
                secret)
        return self._run_snapshot_pass(
            tasks, hosts, live, deadline, retries, on_failure, secret)

    def _run_snapshot_pass(self, tasks: Sequence[MemberTask],
                           hosts: Tuple[str, ...], live: List[str],
                           deadline: Optional[float], retries: int,
                           on_failure: str,
                           secret: Optional[str] = None
                           ) -> ExecutionOutcome:
        """Snapshot dispatch with bounded failover waves.

        Wave *k* places every still-pending member on a
        :class:`HashRing` over the hosts that survived waves
        ``0..k-1``.  Safe because a failed ``run`` request folds
        nothing anywhere — the member snapshot travelled by value and
        the caller still holds the only authoritative copy — so a
        re-dispatch to another host is byte-identical to a first
        dispatch.  Member *task* exceptions are deterministic and are
        never retried; they raise (or degrade) immediately.
        """
        n = len(tasks)
        bound = self.max_workers if self.max_workers is not None \
            else len(hosts)
        workers = max(1, min(bound, n))
        outcome = ExecutionOutcome(workers=workers, hosts=hosts)
        results: List[Any] = [None] * n
        labels: List[str] = [""] * n
        per_worker: Dict[str, List[float]] = {}
        tried: Dict[int, List[str]] = {i: [] for i in range(n)}
        last_error: Dict[int, BaseException] = {}
        pending = list(range(n))
        wave = 0
        with ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="rpc-client") as pool:
            while pending:
                ring = HashRing(tuple(live))
                placement = {i: ring.lookup(f"member-{i}")
                             for i in pending}
                futures = {
                    i: pool.submit(self._run_one, placement[i],
                                   tasks[i], deadline, secret)
                    for i in pending}
                failed: List[int] = []
                failed_hosts: set = set()
                for i in pending:
                    addr = placement[i]
                    try:
                        _addr, wall, result, sent, received = \
                            futures[i].result()
                    except RpcConnectionError as exc:
                        timed_out = isinstance(exc, RpcTimeoutError)
                        record_host_failure(addr, timed_out=timed_out)
                        if timed_out:
                            outcome.timeouts[addr] = \
                                outcome.timeouts.get(addr, 0) + 1
                        tried[i].append(addr)
                        last_error[i] = exc
                        failed.append(i)
                        failed_hosts.add(addr)
                        continue
                    except RpcProtocolError:
                        raise  # a bug, not a fault: never degrade
                    except BaseException as exc:  # noqa: BLE001
                        # the member task itself raised: the wire
                        # round trip worked, so the host is healthy —
                        # and the error is deterministic, so a retry
                        # would only reproduce it
                        record_host_success(addr)
                        if on_failure != "degrade":
                            raise
                        results[i] = MemberFailure(
                            index=i, error_type=type(exc).__name__,
                            message=str(exc),
                            hosts_tried=tuple(tried[i]) + (addr,),
                            attempts=len(tried[i]) + 1)
                        labels[i] = _worker_label(addr)
                        continue
                    record_host_success(addr)
                    label = _worker_label(addr)
                    results[i] = result
                    labels[i] = label
                    per_worker.setdefault(label, []).append(wall)
                    outcome.bytes_out[addr] = \
                        outcome.bytes_out.get(addr, 0) + sent
                    outcome.bytes_back[addr] = \
                        outcome.bytes_back.get(addr, 0) + received
                pending = failed
                if not pending:
                    break
                survivors = [h for h in live if h not in failed_hosts]
                if not survivors and wave < retries:
                    # every admitted host just failed: desperation
                    # probe — a restarted worker still waiting out
                    # its probation window beats aborting the pass
                    survivors = [
                        h for h in usable_hosts(hosts,
                                                force_probe=True,
                                                secret=secret)
                        if h not in failed_hosts]
                if wave >= retries or not survivors:
                    break
                for i in pending:
                    addr = tried[i][-1]
                    outcome.retries[addr] = \
                        outcome.retries.get(addr, 0) + 1
                live = survivors
                self._backoff_sleep(wave)
                wave += 1
        if pending:
            if on_failure != "degrade":
                raise last_error[min(pending)]
            for i in pending:
                exc = last_error[i]
                results[i] = MemberFailure(
                    index=i, error_type=type(exc).__name__,
                    message=str(exc), hosts_tried=tuple(tried[i]),
                    attempts=len(tried[i]),
                    timed_out=isinstance(exc, RpcTimeoutError))
                labels[i] = _worker_label(tried[i][-1])
        outcome.results = results
        outcome.assignments = labels
        outcome.failures = [r for r in results
                            if isinstance(r, MemberFailure)]
        outcome.worker_walls = _collect_walls(per_worker)
        return outcome

    # -- session mode -----------------------------------------------------------

    def _run_session_pass(self, tasks: Sequence[MemberTask],
                          hosts: Tuple[str, ...], live: List[str],
                          deadline: Optional[float], retries: int,
                          on_failure: str,
                          secret: Optional[str] = None
                          ) -> ExecutionOutcome:
        """One pass in pinned-session mode: a dedicated (pipelined)
        socket per host, member state folded only after *every* host
        round settled, every touched session invalidated on any
        raise-mode failure.

        Failover works per *host round*: a host whose wire round died
        folds zero partial state (the fold is the client-side
        ``_fold_result``, which never ran), so its members' sessions
        invalidate and the members re-place on a ring over the
        surviving hosts — where they re-pin from caller-held state and
        re-run byte-identically.  Member *task* errors are
        deterministic and never requeue.
        """
        from . import session as _session

        pipeline = self.pipeline if self.pipeline is not None else True
        plans: List[_TaskPlan] = []
        for index, task in enumerate(tasks):
            split = _session.split_task(task)
            if split is None:
                plans.append(_TaskPlan(index, task))
            else:
                stripped, store = split
                plans.append(_TaskPlan(index, task, store, stripped,
                                       _session.session_for(store)))

        completed: Dict[int, Tuple[str, float, Any]] = {}
        member_failed: Dict[int, Tuple[str, BaseException]] = {}
        wire_failed: Dict[int, Tuple[List[str], BaseException]] = {}
        tried: Dict[int, List[str]] = {p.index: [] for p in plans}
        bytes_out: Dict[str, int] = {}
        bytes_back: Dict[str, int] = {}
        retry_stats: Dict[str, int] = {}
        timeout_stats: Dict[str, int] = {}
        fatal: List[BaseException] = []
        pending = list(plans)
        wave = 0

        while pending and not fatal:
            ring = HashRing(tuple(live))
            by_host: "OrderedDict[str, List[_TaskPlan]]" = OrderedDict()
            for plan in pending:
                addr = ring.lookup(f"member-{plan.index}")
                by_host.setdefault(addr, []).append(plan)

            round_results: Dict[str, Tuple[List, List, int, int]] = {}
            round_errors: Dict[str, RpcConnectionError] = {}
            gate = threading.Lock()

            def drive(addr: str, host_plans: List[_TaskPlan]) -> None:
                try:
                    result = self._drive_host(
                        addr, host_plans, pipeline, deadline, secret)
                except RpcConnectionError as exc:
                    with gate:
                        round_errors[addr] = exc
                except BaseException as exc:  # noqa: BLE001
                    with gate:
                        fatal.append(exc)
                else:
                    with gate:
                        round_results[addr] = result

            threads = [threading.Thread(target=drive, args=item,
                                        name=f"rpc-session-{item[0]}",
                                        daemon=True)
                       for item in by_host.items()]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            requeue: List[_TaskPlan] = []
            for addr, host_plans in by_host.items():
                if addr in round_results:
                    items, errs, sent, received = round_results[addr]
                    record_host_success(addr)
                    bytes_out[addr] = bytes_out.get(addr, 0) + sent
                    bytes_back[addr] = \
                        bytes_back.get(addr, 0) + received
                    for index, wall, result in items:
                        completed[index] = (addr, wall, result)
                    for plan, exc in errs:
                        member_failed[plan.index] = (addr, exc)
                elif addr in round_errors:
                    exc = round_errors[addr]
                    timed_out = isinstance(exc, RpcTimeoutError)
                    record_host_failure(addr, timed_out=timed_out)
                    if timed_out:
                        timeout_stats[addr] = \
                            timeout_stats.get(addr, 0) + 1
                    for plan in host_plans:
                        tried[plan.index].append(addr)
                        if plan.session is not None:
                            # the pinned copy's state is unknowable:
                            # the next dispatch must re-pin from the
                            # caller-held store
                            plan.session.invalidate()
                        requeue.append(plan)
                # hosts in neither dict hit the fatal path

            pending = requeue
            if not pending or fatal:
                break
            survivors = [h for h in live if h not in round_errors]
            if not survivors and wave < retries:
                # desperation probe, as in the snapshot pass: re-admit
                # a restarted worker ahead of its probation window
                # rather than abort with live hosts in reach
                survivors = [
                    h for h in usable_hosts(hosts, force_probe=True,
                                            secret=secret)
                    if h not in round_errors]
            if wave >= retries or not survivors:
                for plan in pending:
                    addr = tried[plan.index][-1]
                    wire_failed[plan.index] = (
                        list(tried[plan.index]), round_errors[addr])
                pending = []
                break
            for plan in pending:
                addr = tried[plan.index][-1]
                retry_stats[addr] = retry_stats.get(addr, 0) + 1
            live = survivors
            self._backoff_sleep(wave)
            wave += 1

        if fatal or ((wire_failed or member_failed)
                     and on_failure != "degrade"):
            # the pinned copies may have advanced without a client
            # fold: nothing is folded, and every session this pass
            # touched must re-pin from caller-held state next time
            for plan in plans:
                if plan.session is not None:
                    plan.session.invalidate()
            if fatal:
                raise fatal[0]
            failures: Dict[int, BaseException] = {
                i: exc for i, (_hosts, exc) in wire_failed.items()}
            for i, (_addr, exc) in member_failed.items():
                failures.setdefault(i, exc)
            raise failures[min(failures)]

        outcome = ExecutionOutcome(workers=1, hosts=hosts)
        outcome.bytes_out = bytes_out
        outcome.bytes_back = bytes_back
        outcome.retries = retry_stats
        outcome.timeouts = timeout_stats
        per_worker: Dict[str, List[float]] = {}
        for plan in plans:
            if plan.index in completed:
                addr, wall, result = completed[plan.index]
                label = _worker_label(addr)
                per_worker.setdefault(label, []).append(wall)
                outcome.results.append(self._fold_result(plan, result))
                outcome.assignments.append(label)
                continue
            if plan.index in member_failed:
                addr, exc = member_failed[plan.index]
                if plan.session is not None:
                    # the worker ran the task far enough to raise: the
                    # pinned copy's state is unknowable
                    plan.session.invalidate()
                failure = MemberFailure(
                    index=plan.index, error_type=type(exc).__name__,
                    message=str(exc),
                    hosts_tried=tuple(tried[plan.index]) + (addr,),
                    attempts=len(tried[plan.index]) + 1)
                label = _worker_label(addr)
            else:
                hosts_tried, exc = wire_failed[plan.index]
                failure = MemberFailure(
                    index=plan.index, error_type=type(exc).__name__,
                    message=str(exc), hosts_tried=tuple(hosts_tried),
                    attempts=len(hosts_tried),
                    timed_out=isinstance(exc, RpcTimeoutError))
                label = _worker_label(hosts_tried[-1])
            outcome.results.append(failure)
            outcome.assignments.append(label)
            outcome.failures.append(failure)
        outcome.workers = max(1, len(per_worker))
        outcome.worker_walls = _collect_walls(per_worker)
        return outcome

    @staticmethod
    def _fold_result(plan: _TaskPlan, result: Any) -> Any:
        """Fold a pinned task's returned state into the caller-held
        store and re-arm the session for the next pass."""
        if plan.store is None:
            return result
        from . import session as _session

        if not (isinstance(result, tuple) and len(result) == 2):
            # not the (payload, state) member contract: nothing to
            # fold, and the pinned copy's state is unknowable
            plan.session.invalidate()
            return result
        from ..api.fleet import fold_member_state

        payload, state = result
        fold_member_state(plan.store, state)
        # worker copy and caller store advanced identically (the
        # byte-identity contract of the patch transport): re-capture
        # the fingerprint so the next pass reuses the pin
        plan.session.fingerprint = _session.store_fingerprint(plan.store)
        # hand the *original* store back so the scheduler-level fold
        # (fold_member_state(original, state)) is a no-op
        return payload, plan.store

    def _drive_host(self, addr: str, plans: List[_TaskPlan],
                    pipeline: bool, deadline: Optional[float] = None,
                    secret: Any = _AMBIENT
                    ) -> Tuple[List, List, int, int]:
        """All of one host's requests for a pass, with one same-host
        retry when the failed round provably could not have folded or
        double-run anything (stale pooled socket before delivery, or a
        round of pure session verbs — re-pinning from caller state is
        safe even if the worker executed some of them).  Deadline
        expiries never retry on the same host: a hung worker would
        just eat a second deadline — failover handles it instead."""
        for attempt in (0, 1):
            sock, from_pool = _borrow(addr, deadline)
            try:
                return self._host_round(addr, sock, plans, pipeline,
                                        secret)
            except _RoundFailed as failure:
                retriable = (failure.retry_safe or
                             (failure.nothing_delivered and from_pool)) \
                    and not isinstance(failure.error, RpcTimeoutError)
                if attempt == 0 and retriable:
                    for plan in plans:
                        if plan.session is not None:
                            plan.session.invalidate()
                    continue
                raise failure.error
        raise AssertionError("unreachable")  # pragma: no cover

    def _host_round(self, addr: str, sock: socket.socket,
                    plans: List[_TaskPlan], pipeline: bool,
                    secret: Any = _AMBIENT
                    ) -> Tuple[List, List, int, int]:
        from . import session as _session

        requests: List[Tuple[str, _TaskPlan, Tuple]] = []
        for plan in plans:
            if plan.store is None:
                requests.append(("run", plan, ("run", plan.task)))
                continue
            sess = plan.session
            current = sess.pin_current(addr) and \
                sess.fingerprint is not None and \
                sess.fingerprint == _session.store_fingerprint(plan.store)
            if not current:
                # new generation: any pin of the old state, on any
                # worker, must never serve again
                sess.invalidate()
                requests.append(("pin", plan, (
                    "pin", sess.key, sess.generation, plan.store)))
            requests.append(("runp", plan, (
                "run_pinned", sess.key, sess.generation, plan.stripped)))
        session_only = all(kind != "run" for kind, _p, _q in requests)

        counters = {"sent": 0, "received": 0, "delivered": 0}
        items: List[Tuple[int, float, Any]] = []
        member_errors: List[Tuple[_TaskPlan, BaseException]] = []
        nopins: List[_TaskPlan] = []

        def wire_failed(error: RpcConnectionError) -> "_RoundFailed":
            return _RoundFailed(
                error, retry_safe=session_only,
                nothing_delivered=counters["delivered"] == 0)

        def send_one(rid: int, payload: Tuple) -> None:
            try:
                nbytes = send_frame(sock, (rid, payload),
                                    secret=secret)
            except (ConnectionError, OSError) as exc:
                _discard(sock)
                raise wire_failed(RpcConnectionError(
                    f"fleet worker at {addr} rejected the request: "
                    f"{exc}")) from exc
            counters["sent"] += nbytes
            counters["delivered"] += 1

        def recv_one(rid: int, kind: str, plan: _TaskPlan) -> None:
            try:
                reply, nbytes = _recv_reply(addr, sock, secret=secret)
            except RpcConnectionError as exc:
                raise wire_failed(exc) from exc
            counters["received"] += nbytes
            if not (isinstance(reply, tuple) and len(reply) == 2
                    and reply[0] == rid):
                _discard(sock)
                raise RpcProtocolError(
                    f"fleet worker at {addr} answered out of order "
                    f"(expected request {rid}, got {reply!r})")
            response = reply[1]
            tag = response[0] if isinstance(response, tuple) and response \
                else None
            if kind == "pin":
                if tag != "pinned":
                    _discard(sock)
                    raise RpcProtocolError(
                        f"unexpected pin reply {response!r} from "
                        f"worker at {addr}")
                plan.session.pins[addr] = plan.session.generation
                return
            if tag == "ok":
                _tag, wall, result = response
                items.append((plan.index, float(wall), result))
                return
            if tag == "nopin" and kind == "runp":
                nopins.append(plan)
                return
            if tag == "err":
                member_errors.append(
                    (plan, self._member_error(addr, response)))
                return
            _discard(sock)
            raise RpcProtocolError(
                f"unknown reply tag {tag!r} from worker at {addr}")

        def run_round(batch: List[Tuple[str, _TaskPlan, Tuple]]) -> None:
            if pipeline and len(batch) > 1:
                send_error: List[BaseException] = []

                def pump() -> None:
                    try:
                        for rid, (_kind, _plan, payload) in \
                                enumerate(batch):
                            send_one(rid, payload)
                    except BaseException as exc:  # noqa: BLE001
                        send_error.append(exc)
                        _discard(sock)  # unblocks the reply reader

                writer = threading.Thread(
                    target=pump, name=f"rpc-writer-{addr}", daemon=True)
                writer.start()
                try:
                    for rid, (kind, plan, _payload) in enumerate(batch):
                        recv_one(rid, kind, plan)
                finally:
                    writer.join()
                if send_error and not isinstance(
                        send_error[0], _RoundFailed):
                    raise send_error[0]
            else:
                for rid, (kind, plan, payload) in enumerate(batch):
                    send_one(rid, payload)
                    recv_one(rid, kind, plan)

        run_round(requests)
        retried = set()
        while nopins:
            # a run_pinned missed (worker restarted or evicted the
            # pin) without running the task: re-pin from caller state
            # on the same, still-healthy connection and resend
            missed, nopins = nopins, []
            batch: List[Tuple[str, _TaskPlan, Tuple]] = []
            for plan in missed:
                if plan.index in retried:
                    _discard(sock)
                    raise RpcProtocolError(
                        f"worker at {addr} dropped a freshly shipped "
                        f"pin for member {plan.index}")
                retried.add(plan.index)
                sess = plan.session
                sess.invalidate()
                batch.append(("pin", plan, (
                    "pin", sess.key, sess.generation, plan.store)))
                batch.append(("runp", plan, (
                    "run_pinned", sess.key, sess.generation,
                    plan.stripped)))
            run_round(batch)
        _give_back(addr, sock)
        return (items, member_errors,
                counters["sent"], counters["received"])


# The ``rpc`` registry entry lives in :mod:`repro.parallel.executor`
# (a lazy factory over :class:`RpcExecutor`), so selecting any other
# executor never loads the wire protocol — and ``python -m
# repro.parallel.remote`` can execute this module as ``__main__``
# without a duplicate registration.


# ---------------------------------------------------------------------------
# Local worker management (examples, benchmarks, CI)


class LocalWorker:
    """Handle on a worker daemon subprocess on this machine."""

    def __init__(self, process: subprocess.Popen, address: str) -> None:
        self.process = process
        self.address = address

    def kill(self) -> None:
        """SIGKILL the worker (fault injection: no orderly goodbye)."""
        self.process.kill()
        try:
            self.process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            # SIGKILL cannot be refused; an unreaped zombie here means
            # the host is in deep trouble — don't hang teardown on it
            pass
        self._close_pipes()

    def stop(self) -> None:
        """Terminate the worker and reap it (idempotent).  A worker
        that ignores SIGTERM past the grace window is escalated to
        :meth:`kill` so a wedged daemon cannot hang test teardown."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.kill()
        self._close_pipes()

    def _close_pipes(self) -> None:
        if self.process.stdout is not None:
            try:
                self.process.stdout.close()
            except OSError:  # pragma: no cover
                pass


def spawn_local_worker(bind: str = "127.0.0.1:0", *,
                       timeout: float = 30.0,
                       secret: Optional[str] = None) -> LocalWorker:
    """Start ``python -m repro.parallel.remote serve`` as a subprocess
    and wait for its announce line; returns the :class:`LocalWorker`
    with the actual ``host:port`` (port 0 picks a free one).

    ``secret`` exports ``REPRO_FLEET_SECRET`` into the worker's
    environment (the daemon reads it per frame through the policy
    chain) and signs the startup ping with it; None inherits whatever
    this process's environment already carries.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    if secret is not None:
        from ..api.policy import FLEET_SECRET_ENV_VAR

        env[FLEET_SECRET_ENV_VAR] = secret
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.parallel.remote", "serve",
         "--bind", bind],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True)
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("SRPC listening on "):
            address = line.strip().rpartition(" ")[2]
            worker = LocalWorker(process, address)
            # the announce proves the socket is bound, not that the
            # daemon answers: confirm with a ping so a wedged child
            # is reaped here instead of orphaned for the caller
            try:
                ping(address,
                     timeout=max(1.0, deadline - time.monotonic()),
                     secret=secret if secret is not None else _AMBIENT)
            except RpcConnectionError as exc:
                worker.kill()
                raise RpcConnectionError(
                    f"local worker at {address} announced but never "
                    f"answered the startup ping: {exc}") from exc
            return worker
        if process.poll() is not None:
            break
    process.kill()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:  # pragma: no cover
        pass
    if process.stdout is not None:
        process.stdout.close()
    raise RpcConnectionError(
        f"local worker failed to start (last output: {line!r})")


# ---------------------------------------------------------------------------
# CLI


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.remote",
        description="SERO fleet RPC worker daemon")
    sub = parser.add_subparsers(dest="command", required=True)
    serve_p = sub.add_parser("serve", help="host fleet member passes")
    serve_p.add_argument("--bind", default="127.0.0.1:0",
                         help="host:port to listen on (port 0 = free)")
    ping_p = sub.add_parser("ping", help="wait for a worker to answer")
    ping_p.add_argument("address", help="worker host:port")
    ping_p.add_argument("--timeout", type=float, default=15.0)
    args = parser.parse_args(argv)
    if args.command == "serve":
        serve(args.bind)
        return 0
    pid = ping(args.address, timeout=args.timeout)
    print(f"worker at {args.address} alive (pid {pid})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
