"""Remote RPC fleet executor: fleet members across machines.

PR 4 left the executor registry open and made the transport
network-shaped — a member ships to a worker as a compact pickled
snapshot (~1.3 MB for the bench fleet, see
:meth:`repro.medium.medium.PatternedMedium.__getstate__`) and a
read-only pass sends home a ~1 kB
:class:`~repro.api.store.StoreStatePatch`.  This module closes the
loop: the same member tasks, dispatched over TCP to worker daemons on
other hosts, byte-identical to the ``serial`` reference.

Three pieces:

* **wire protocol** — length-prefixed pickle frames
  (:func:`send_frame` / :func:`recv_frame`): a 4-byte magic, an 8-byte
  big-endian length, then the pickled message.  Requests are small
  tagged tuples (``("run", task)``, ``("ping",)``); responses carry
  the task's result or a portable description of the exception it
  raised.  Pickle is the member transport the in-host ``process``
  executor already rides on, so the *same* compact snapshots cross the
  network — but pickle also means the protocol authenticates nobody:
  run workers only on trusted hosts/loopback (documented in API.md).

* **worker daemon** — :func:`serve`, exposed as
  ``python -m repro.parallel.remote serve --bind HOST:PORT``.  A
  threaded TCP server that hosts member stores for the duration of a
  pass: each connection unpickles tasks, executes them, and replies
  with ``(wall_seconds, (payload, state))`` or the raised exception.
  A member raising inside a pass travels back as the original
  exception object (plus the remote traceback text), so a fleet pass
  fails with the *same* error type whichever executor dispatched it.

* **client executor** — :class:`RpcExecutor` (registered as ``rpc``),
  a :class:`~repro.parallel.executor.FleetExecutor` that resolves its
  host list lazily at each dispatch (explicit ``hosts=`` argument >
  ``with repro.engine(fleet_hosts=...):`` > installed policy >
  ``REPRO_FLEET_HOSTS``), assigns member *i* to the host a
  :class:`~repro.parallel.ring.HashRing` over the host set owns —
  deterministic and stable under host lists given in any order — and
  drives the per-host connections from a thread pool.  Connections are
  pooled module-wide (:data:`_POOL`) so repeated passes reuse warm
  sockets; a stale pooled connection is redialled once *before* the
  request is delivered, while any failure after delivery raises
  :class:`RpcConnectionError` — a task that may have executed is never
  silently retried (a seal pass must not heat a line twice).

Failure semantics (the fault-injection contract):

* worker process killed → the next frame on its connections hits EOF:
  :class:`RpcConnectionError` naming the host, no member state folded
  back (caller-held references keep their pre-pass state), and the
  surviving hosts' pooled connections stay reusable;
* connection dropped mid-frame (truncated header or body) →
  :class:`RpcConnectionError`; a half-received frame is never
  interpreted;
* member raising inside a pass → the original exception re-raised at
  the caller, ``__cause__``-chained to a :class:`RemoteTaskError`
  carrying the remote traceback and host.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import socketserver
import struct
import subprocess
import sys
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError, ReproError
from .executor import (
    ExecutionOutcome,
    FleetExecutor,
    MemberTask,
    _collect_walls,
)
from .ring import HashRing

#: Environment variable naming the worker hosts (``host:port`` items,
#: comma-separated), read lazily at each dispatch.
HOSTS_ENV_VAR = "REPRO_FLEET_HOSTS"

#: Frame header: magic + 8-byte big-endian payload length.
_MAGIC = b"SRPC"
_HEADER = struct.Struct(">4sQ")

#: Refuse absurd frames (a desynchronised peer must fail fast, not
#: allocate gigabytes).  Generous: a bench member snapshot is ~1.3 MB.
MAX_FRAME_BYTES = 1 << 30

#: Dial attempts for a *fresh* connection (a worker still starting up
#: refuses a few times before it listens).
DIAL_RETRIES = 10
DIAL_RETRY_DELAY_S = 0.2


class RpcError(ReproError):
    """Base class for remote-fleet RPC failures."""


class RpcConnectionError(RpcError):
    """A worker connection failed: dial refused, worker died, or a
    frame was cut short.  The message names the host."""


class RpcProtocolError(RpcError):
    """The peer spoke something that is not the SRPC framing."""


class RemoteTaskError(RpcError):
    """A member task raised on a worker.

    The original exception is re-raised at the caller with this as its
    ``__cause__``; :attr:`host` and :attr:`remote_traceback` preserve
    where and how it failed.
    """

    def __init__(self, message: str, *, host: str = "",
                 remote_traceback: str = "") -> None:
        super().__init__(message)
        self.host = host
        self.remote_traceback = remote_traceback


# ---------------------------------------------------------------------------
# Wire protocol


def send_frame(sock: socket.socket, message: Any) -> int:
    """Pickle ``message`` and send it as one length-prefixed frame.

    Returns the payload size in bytes (the transport-accounting hook
    the benchmarks use).
    """
    payload = pickle.dumps(message, pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(_MAGIC, len(payload)) + payload)
    return len(payload)


def _recv_exact(sock: socket.socket, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`RpcConnectionError`.

    A connection dropped mid-frame surfaces here: the peer closed (or
    died) with ``what`` only partially delivered, and a partial frame
    must never be interpreted.
    """
    chunks: List[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            raise RpcConnectionError(
                f"connection closed mid-frame ({got}/{n} bytes of {what}); "
                "the peer dropped the link or its process died")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Any:
    """Receive one frame and unpickle it.

    Raises :class:`RpcConnectionError` on a truncated frame and
    :class:`RpcProtocolError` on bad framing.  Returns the sentinel
    ``None`` is a valid message; end-of-stream *between* frames raises
    ``EOFError`` (the orderly-shutdown signal the server loop uses).
    """
    first = sock.recv(1)
    if not first:
        raise EOFError("peer closed between frames")
    header = first + _recv_exact(sock, _HEADER.size - 1, "frame header")
    magic, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise RpcProtocolError(
            f"bad frame magic {magic!r} (not an SRPC peer, or the "
            "stream desynchronised)")
    if length > MAX_FRAME_BYTES:
        raise RpcProtocolError(f"frame of {length} bytes exceeds the "
                               f"{MAX_FRAME_BYTES}-byte cap")
    return pickle.loads(_recv_exact(sock, int(length), "frame body"))


# ---------------------------------------------------------------------------
# Worker daemon


def _execute_request(request: Any) -> Tuple[Any, bool]:
    """(response, keep_serving) for one request tuple."""
    if not isinstance(request, tuple) or not request:
        return ("err", None, "RpcProtocolError",
                f"malformed request: {type(request).__name__}", ""), True
    op = request[0]
    if op == "ping":
        return ("pong", os.getpid()), True
    if op == "run":
        task = request[1]
        t0 = time.perf_counter()
        try:
            result = task()
        except BaseException as exc:  # noqa: BLE001 — shipped to caller
            try:
                portable: Optional[BaseException] = pickle.loads(
                    pickle.dumps(exc, pickle.HIGHEST_PROTOCOL))
            except Exception:
                portable = None
            return ("err", portable, type(exc).__name__, str(exc),
                    traceback.format_exc()), True
        wall = time.perf_counter() - t0
        return ("ok", wall, result), True
    return ("err", None, "RpcProtocolError",
            f"unknown request op {op!r}", ""), True


class _WorkerHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # one connection: frames until EOF
        while True:
            try:
                request = recv_frame(self.request)
            except (EOFError, RpcConnectionError, ConnectionError,
                    OSError):
                return
            except RpcProtocolError:
                return  # a non-SRPC peer gets silence, not a stack dump
            response, keep = _execute_request(request)
            try:
                send_frame(self.request, response)
            except (ConnectionError, OSError):
                return
            if not keep:
                return


class _WorkerServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve(bind: str, *, announce=print) -> None:
    """Run a worker daemon on ``bind`` (``host:port``; port 0 picks a
    free one) until interrupted.  ``announce`` receives one
    ``"SRPC listening on host:port"`` line once the socket accepts —
    launchers parse it to learn an ephemeral port.
    """
    host, port = parse_host(bind)
    with _WorkerServer((host, port), _WorkerHandler) as server:
        bound_host, bound_port = server.server_address[:2]
        announce(f"SRPC listening on {bound_host}:{bound_port}")
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            pass


# ---------------------------------------------------------------------------
# Host parsing


def parse_host(spec: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` with validation."""
    host, sep, port_text = str(spec).strip().rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"fleet host must be 'host:port', got {spec!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"fleet host port must be an integer, got {spec!r}") from None
    if not 0 <= port <= 65535:
        raise ConfigurationError(f"fleet host port out of range: {spec!r}")
    return host, port


def parse_hosts(spec: Union[str, Sequence[str]]) -> Tuple[str, ...]:
    """Normalise a host list (string ``"h:p,h:p"`` or sequence) to a
    canonical tuple: validated, de-duplicated, sorted.

    Sorting makes everything downstream order-independent: two nodes
    configured with the same hosts in different orders build the same
    :class:`HashRing` and assign members identically.
    """
    if isinstance(spec, str):
        items = [item for item in spec.replace(",", " ").split() if item]
    else:
        items = [str(item) for item in spec]
    if not items:
        raise ConfigurationError("fleet host list is empty")
    canonical = {f"{host}:{port}" for host, port in map(parse_host, items)}
    return tuple(sorted(canonical))


# ---------------------------------------------------------------------------
# Client connection pool (module-wide: RpcExecutor instances resolve
# their hosts lazily, so the sockets — keyed by address, not by
# instance — are shared and survive between passes.
# repro.parallel.close_executors() closes this pool too.)

_POOL: Dict[str, List[socket.socket]] = {}
_POOL_LOCK = threading.Lock()


def _pooled_connections(addr: Optional[str] = None) -> int:
    """Idle pooled connections (diagnostics/tests)."""
    with _POOL_LOCK:
        if addr is not None:
            return len(_POOL.get(addr, ()))
        return sum(len(socks) for socks in _POOL.values())


def close_connection_pools() -> int:
    """Close every idle pooled worker connection; returns the count.

    Connections checked out by an in-flight pass are not touched —
    they return to a now-empty pool when the pass completes.
    """
    with _POOL_LOCK:
        sockets = [s for socks in _POOL.values() for s in socks]
        _POOL.clear()
    for sock in sockets:
        try:
            sock.close()
        except OSError:
            pass
    return len(sockets)


def _dial(addr: str, *, retries: int = DIAL_RETRIES,
          timeout: Optional[float] = None) -> socket.socket:
    """Fresh connection to ``addr``, retrying brief refusals."""
    host, port = parse_host(addr)
    last: Optional[Exception] = None
    for attempt in range(max(1, retries)):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            if attempt + 1 < retries:
                time.sleep(DIAL_RETRY_DELAY_S)
    raise RpcConnectionError(
        f"cannot reach fleet worker at {addr}: {last}") from last


def _borrow(addr: str) -> Tuple[socket.socket, bool]:
    """A connection to ``addr``: pooled (True) or freshly dialled."""
    with _POOL_LOCK:
        pooled = _POOL.get(addr)
        if pooled:
            return pooled.pop(), True
    return _dial(addr), False


def _give_back(addr: str, sock: socket.socket) -> None:
    with _POOL_LOCK:
        _POOL.setdefault(addr, []).append(sock)


def _discard(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


def call_worker(addr: str, request: Any) -> Any:
    """One request/response round trip with ``addr``, via the pool.

    A *stale* pooled connection (the worker restarted since the last
    pass) fails while the request is being sent; since an undelivered
    request cannot have executed, it is retried once on a fresh
    connection.  Any failure after the request was delivered — EOF or
    a truncated reply — raises :class:`RpcConnectionError` instead:
    the task may have run, and mutating passes must never run twice.
    """
    sock, from_pool = _borrow(addr)
    try:
        send_frame(sock, request)
    except (ConnectionError, OSError) as exc:
        _discard(sock)
        if not from_pool:
            raise RpcConnectionError(
                f"fleet worker at {addr} rejected the request: "
                f"{exc}") from exc
        sock = _dial(addr)  # stale pooled socket: one reconnect
        try:
            send_frame(sock, request)
        except (ConnectionError, OSError) as exc2:
            _discard(sock)
            raise RpcConnectionError(
                f"fleet worker at {addr} rejected the request after "
                f"reconnect: {exc2}") from exc2
    try:
        response = recv_frame(sock)
    except EOFError as exc:
        _discard(sock)
        raise RpcConnectionError(
            f"fleet worker at {addr} closed the connection before "
            "replying (worker killed mid-task?)") from exc
    except (RpcConnectionError, RpcProtocolError):
        _discard(sock)
        raise RpcConnectionError(
            f"reply from fleet worker at {addr} was cut short or "
            "malformed; the connection dropped mid-frame")
    except (ConnectionError, OSError) as exc:
        _discard(sock)
        raise RpcConnectionError(
            f"connection to fleet worker at {addr} failed mid-reply: "
            f"{exc}") from exc
    _give_back(addr, sock)
    return response


def ping(addr: str, *, timeout: float = 5.0) -> int:
    """Round-trip a ping; returns the worker's PID.  Waits up to
    ``timeout`` seconds for the worker to start listening."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            response = call_worker(addr, ("ping",))
        except RpcConnectionError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(DIAL_RETRY_DELAY_S)
            continue
        if not (isinstance(response, tuple) and response[0] == "pong"):
            raise RpcProtocolError(f"unexpected ping reply: {response!r}")
        return int(response[1])


# ---------------------------------------------------------------------------
# The executor


def _worker_label(addr: str) -> str:
    return f"rpc-{addr}"


class RpcExecutor(FleetExecutor):
    """Dispatch fleet passes to remote worker daemons over TCP.

    Args:
        hosts: worker addresses (``"host:port"`` items, or one
            comma-separated string).  None resolves lazily at *each*
            dispatch through the policy chain
            (``repro.engine(fleet_hosts=...)`` > installed policy >
            ``REPRO_FLEET_HOSTS``), so exporting the variable after the
            scheduler exists still works.
        max_workers: bound on concurrent in-flight tasks (default: one
            per resolved host).

    Member *i* goes to the host that owns ``"member-i"`` on a
    consistent-hash ring over the host set — a pure function of the
    canonicalised host list, so every node that knows the same hosts
    (in any order) computes the same placement, and growing the host
    list remaps only its ring share of members.
    """

    name = "rpc"
    crosses_process = True  # results cross a machine boundary

    def __init__(self, hosts: Union[None, str, Sequence[str]] = None,
                 max_workers: Optional[int] = None) -> None:
        self.hosts = parse_hosts(hosts) if hosts is not None else None
        self.max_workers = max_workers

    def _resolve_hosts(self) -> Tuple[str, ...]:
        if self.hosts is not None:
            return self.hosts
        # lazy, like every other policy switch: read at dispatch time
        from ..api import policy as _policy

        hosts, _source = _policy.resolve_fleet_hosts(None)
        if not hosts:
            raise ConfigurationError(
                "the rpc executor needs worker hosts: pass "
                "RpcExecutor(hosts=[...]), scope "
                "repro.engine(fleet_hosts=...), or export "
                f"{HOSTS_ENV_VAR}=host:port,host:port (start workers "
                "with `python -m repro.parallel.remote serve`)")
        return parse_hosts(hosts)

    def close(self) -> None:
        """Release the pooled worker connections (idempotent)."""
        close_connection_pools()

    @staticmethod
    def _run_one(addr: str, task: MemberTask) -> Tuple[str, float, Any]:
        response = call_worker(addr, ("run", task))
        if not isinstance(response, tuple) or not response:
            raise RpcProtocolError(
                f"malformed reply from fleet worker at {addr}: "
                f"{type(response).__name__}")
        if response[0] == "ok":
            _tag, wall, result = response
            return _worker_label(addr), float(wall), result
        if response[0] == "err":
            _tag, portable, etype, message, tb = response
            cause = RemoteTaskError(
                f"member task raised {etype} on fleet worker {addr}: "
                f"{message}\n--- remote traceback ---\n{tb}",
                host=addr, remote_traceback=tb)
            if isinstance(portable, BaseException):
                raise portable from cause
            raise cause
        raise RpcProtocolError(
            f"unknown reply tag {response[0]!r} from worker at {addr}")

    def run(self, tasks: Sequence[MemberTask]) -> ExecutionOutcome:
        n = len(tasks)
        hosts = self._resolve_hosts()
        if n == 0:
            return ExecutionOutcome(workers=0, hosts=hosts)
        ring = HashRing(hosts)
        assignment = [ring.lookup(f"member-{i}") for i in range(n)]
        bound = self.max_workers if self.max_workers is not None \
            else len(hosts)
        workers = max(1, min(bound, n))
        outcome = ExecutionOutcome(workers=workers, hosts=hosts)
        per_worker: Dict[str, List[float]] = {}
        with ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="rpc-client") as pool:
            futures = [pool.submit(self._run_one, addr, task)
                       for addr, task in zip(assignment, tasks)]
            for future in futures:
                label, wall, result = future.result()
                outcome.results.append(result)
                outcome.assignments.append(label)
                per_worker.setdefault(label, []).append(wall)
        outcome.worker_walls = _collect_walls(per_worker)
        return outcome


# The ``rpc`` registry entry lives in :mod:`repro.parallel.executor`
# (a lazy factory over :class:`RpcExecutor`), so selecting any other
# executor never loads the wire protocol — and ``python -m
# repro.parallel.remote`` can execute this module as ``__main__``
# without a duplicate registration.


# ---------------------------------------------------------------------------
# Local worker management (examples, benchmarks, CI)


class LocalWorker:
    """Handle on a worker daemon subprocess on this machine."""

    def __init__(self, process: subprocess.Popen, address: str) -> None:
        self.process = process
        self.address = address

    def kill(self) -> None:
        """SIGKILL the worker (fault injection: no orderly goodbye)."""
        self.process.kill()
        self.process.wait(timeout=10)

    def stop(self) -> None:
        """Terminate the worker and reap it (idempotent)."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.kill()


def spawn_local_worker(bind: str = "127.0.0.1:0", *,
                       timeout: float = 30.0) -> LocalWorker:
    """Start ``python -m repro.parallel.remote serve`` as a subprocess
    and wait for its announce line; returns the :class:`LocalWorker`
    with the actual ``host:port`` (port 0 picks a free one).
    """
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.parallel.remote", "serve",
         "--bind", bind],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True)
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("SRPC listening on "):
            address = line.strip().rpartition(" ")[2]
            return LocalWorker(process, address)
        if process.poll() is not None:
            break
    process.kill()
    raise RpcConnectionError(
        f"local worker failed to start (last output: {line!r})")


# ---------------------------------------------------------------------------
# CLI


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.remote",
        description="SERO fleet RPC worker daemon")
    sub = parser.add_subparsers(dest="command", required=True)
    serve_p = sub.add_parser("serve", help="host fleet member passes")
    serve_p.add_argument("--bind", default="127.0.0.1:0",
                         help="host:port to listen on (port 0 = free)")
    ping_p = sub.add_parser("ping", help="wait for a worker to answer")
    ping_p.add_argument("address", help="worker host:port")
    ping_p.add_argument("--timeout", type=float, default=15.0)
    args = parser.parse_args(argv)
    if args.command == "serve":
        serve(args.bind)
        return 0
    pid = ping(args.address, timeout=args.timeout)
    print(f"worker at {args.address} alive (pid {pid})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
