"""Remote RPC fleet executor: fleet members across machines.

PR 4 left the executor registry open and made the transport
network-shaped — a member ships to a worker as a compact pickled
snapshot (~1.3 MB for the bench fleet, see
:meth:`repro.medium.medium.PatternedMedium.__getstate__`) and a
read-only pass sends home a ~1 kB
:class:`~repro.api.store.StoreStatePatch`.  This module closes the
loop: the same member tasks, dispatched over TCP to worker daemons on
other hosts, byte-identical to the ``serial`` reference.

Three pieces:

* **wire protocol** — length-prefixed pickle frames
  (:func:`send_frame` / :func:`recv_frame`): a 4-byte magic, an 8-byte
  big-endian length, the protocol-5 pickle body, then the frame's
  out-of-band buffer segments (a 4-byte count, each segment
  length-prefixed).  Large buffer-protocol payloads — the packed
  mag-bit and touched-bitmap arrays of a member snapshot — travel as
  raw segments via :class:`pickle.PickleBuffer` instead of being
  memcpy'd into the pickle stream, and are reconstructed on the
  receiver over the segment buffers directly.  Requests are small
  tagged tuples (``("run", task)``, ``("ping",)``, the session verbs
  below); responses carry the task's result or a portable description
  of the exception it raised.  Pickle is the member transport the
  in-host ``process`` executor already rides on, so the *same* compact
  snapshots cross the network — but pickle also means the protocol
  authenticates nobody: run workers only on trusted hosts/loopback
  (documented in API.md).

* **sessions** — the ``pin``/``unpin``/``run_pinned`` verbs.  A pin
  ships a member snapshot once and caches it on the worker under a
  ``(client, member)`` key and a client-assigned *generation*; later
  passes send only a task descriptor (the store swapped for a
  placeholder, see :mod:`repro.parallel.session`) and fold the
  returned :class:`~repro.api.store.StoreStatePatch` — or, for a
  mutating pass, the returned snapshot — into the caller-held store.
  A ``run_pinned`` that finds no pin of the requested generation
  (worker restarted, cache evicted, client-side mutation bumped the
  generation) answers ``("nopin",)`` **without running the task**, so
  the client can re-pin and resend without ever violating the
  never-retry-after-delivery rule.  Session mode also *pipelines*: one
  socket per host per pass, all frames written by a writer thread
  while replies drain in order, so N members on one host cost ~one
  round trip plus compute.  Enable with
  ``repro.engine(fleet_sessions=True)`` / ``REPRO_FLEET_SESSIONS=1``
  or ``RpcExecutor(sessions=True)``.

* **worker daemon** — :func:`serve`, exposed as
  ``python -m repro.parallel.remote serve --bind HOST:PORT``.  A
  threaded TCP server that hosts member stores for the duration of a
  pass: each connection unpickles tasks, executes them, and replies
  with ``(wall_seconds, (payload, state))`` or the raised exception.
  A member raising inside a pass travels back as the original
  exception object (plus the remote traceback text), so a fleet pass
  fails with the *same* error type whichever executor dispatched it.

* **client executor** — :class:`RpcExecutor` (registered as ``rpc``),
  a :class:`~repro.parallel.executor.FleetExecutor` that resolves its
  host list lazily at each dispatch (explicit ``hosts=`` argument >
  ``with repro.engine(fleet_hosts=...):`` > installed policy >
  ``REPRO_FLEET_HOSTS``), assigns member *i* to the host a
  :class:`~repro.parallel.ring.HashRing` over the host set owns —
  deterministic and stable under host lists given in any order — and
  drives the per-host connections from a thread pool.  Connections are
  pooled module-wide (:data:`_POOL`) so repeated passes reuse warm
  sockets; a stale pooled connection is redialled once *before* the
  request is delivered, while any failure after delivery raises
  :class:`RpcConnectionError` — a task that may have executed is never
  silently retried (a seal pass must not heat a line twice).

Failure semantics (the fault-injection contract):

* worker process killed → the next frame on its connections hits EOF:
  :class:`RpcConnectionError` naming the host, no member state folded
  back (caller-held references keep their pre-pass state), and the
  surviving hosts' pooled connections stay reusable;
* connection dropped mid-frame (truncated header or body) →
  :class:`RpcConnectionError`; a half-received frame is never
  interpreted;
* member raising inside a pass → the original exception re-raised at
  the caller, ``__cause__``-chained to a :class:`RemoteTaskError`
  carrying the remote traceback and host — and in session mode the
  worker *drops the pin* (its copy may be half-mutated) while the
  client folds nothing;
* session pass failing on any host → no member state folded anywhere,
  every session touched by the pass invalidated (the pinned copies may
  have advanced without a client fold), so the next pass re-pins from
  the caller-held state — degraded to re-shipping, never to a stale
  result.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import socketserver
import struct
import subprocess
import sys
import threading
import time
import traceback
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError, ReproError
from .executor import (
    ExecutionOutcome,
    FleetExecutor,
    MemberTask,
    _collect_walls,
)
from .ring import HashRing

#: Environment variable naming the worker hosts (``host:port`` items,
#: comma-separated), read lazily at each dispatch.
HOSTS_ENV_VAR = "REPRO_FLEET_HOSTS"

#: Frame header: magic + 8-byte big-endian payload length.
_MAGIC = b"SRPC"
_HEADER = struct.Struct(">4sQ")

#: Refuse absurd frames (a desynchronised peer must fail fast, not
#: allocate gigabytes).  Generous: a bench member snapshot is ~1.3 MB.
MAX_FRAME_BYTES = 1 << 30

#: Buffers below this stay inside the pickle body; at or above it they
#: travel as raw out-of-band segments (the packed snapshot bitmaps).
INLINE_BUFFER_BYTES = 4096

#: Cap on out-of-band segments per frame (desync protection, like
#: :data:`MAX_FRAME_BYTES`).
MAX_FRAME_BUFFERS = 1 << 16

_BUF_COUNT = struct.Struct(">I")
_BUF_LEN = struct.Struct(">Q")

#: Dial attempts for a *fresh* connection (a worker still starting up
#: refuses a few times before it listens).
DIAL_RETRIES = 10
DIAL_RETRY_DELAY_S = 0.2


class RpcError(ReproError):
    """Base class for remote-fleet RPC failures."""


class RpcConnectionError(RpcError):
    """A worker connection failed: dial refused, worker died, or a
    frame was cut short.  The message names the host."""


class RpcProtocolError(RpcError):
    """The peer spoke something that is not the SRPC framing."""


class RemoteTaskError(RpcError):
    """A member task raised on a worker.

    The original exception is re-raised at the caller with this as its
    ``__cause__``; :attr:`host` and :attr:`remote_traceback` preserve
    where and how it failed.
    """

    def __init__(self, message: str, *, host: str = "",
                 remote_traceback: str = "") -> None:
        super().__init__(message)
        self.host = host
        self.remote_traceback = remote_traceback


# ---------------------------------------------------------------------------
# Wire protocol


def send_frame(sock: socket.socket, message: Any) -> int:
    """Pickle ``message`` and send it as one length-prefixed frame.

    Pickles at protocol 5 with a buffer callback: large
    buffer-protocol payloads (numpy arrays of
    :data:`INLINE_BUFFER_BYTES` or more — a snapshot's packed bitmaps)
    are *not* copied into the pickle stream but travel after the body
    as raw length-prefixed segments, gathered into the socket in one
    ``sendall``.  Returns the payload size in bytes — body plus
    segments, excluding framing overhead (the transport-accounting
    hook the benchmarks and the per-pass byte counters use).
    """
    segments: List[memoryview] = []

    def _collect(buffer: pickle.PickleBuffer):
        try:
            raw = buffer.raw()
        except BufferError:  # non-contiguous: let pickle copy it
            return True
        if raw.nbytes < INLINE_BUFFER_BYTES:
            return True  # small: in-band is cheaper than a segment
        segments.append(raw)
        return False

    body = pickle.dumps(message, protocol=5, buffer_callback=_collect)
    parts: List[Any] = [_HEADER.pack(_MAGIC, len(body)), body,
                        _BUF_COUNT.pack(len(segments))]
    payload = len(body)
    for raw in segments:
        parts.append(_BUF_LEN.pack(raw.nbytes))
        parts.append(raw)
        payload += raw.nbytes
    sock.sendall(b"".join(parts))
    return payload


def _recv_exact(sock: socket.socket, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`RpcConnectionError`.

    A connection dropped mid-frame surfaces here: the peer closed (or
    died) with ``what`` only partially delivered, and a partial frame
    must never be interpreted.
    """
    chunks: List[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            raise RpcConnectionError(
                f"connection closed mid-frame ({got}/{n} bytes of {what}); "
                "the peer dropped the link or its process died")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def _recv_exact_into(sock: socket.socket, view: memoryview,
                     what: str) -> None:
    """Fill ``view`` from the socket or raise, like :func:`_recv_exact`
    but without an intermediate copy (out-of-band segments)."""
    n = len(view)
    got = 0
    while got < n:
        read = sock.recv_into(view[got:], min(n - got, 1 << 20))
        if not read:
            raise RpcConnectionError(
                f"connection closed mid-frame ({got}/{n} bytes of {what}); "
                "the peer dropped the link or its process died")
        got += read


def _recv_frame_counted(sock: socket.socket) -> Tuple[Any, int]:
    """(message, payload bytes received) for one frame.

    The out-of-band segments are received into writable buffers the
    unpickled arrays map directly — the body never contains, and the
    receiver never re-copies, the bulk payload.
    """
    first = sock.recv(1)
    if not first:
        raise EOFError("peer closed between frames")
    header = first + _recv_exact(sock, _HEADER.size - 1, "frame header")
    magic, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise RpcProtocolError(
            f"bad frame magic {magic!r} (not an SRPC peer, or the "
            "stream desynchronised)")
    if length > MAX_FRAME_BYTES:
        raise RpcProtocolError(f"frame of {length} bytes exceeds the "
                               f"{MAX_FRAME_BYTES}-byte cap")
    body = _recv_exact(sock, int(length), "frame body")
    count = _BUF_COUNT.unpack(
        _recv_exact(sock, _BUF_COUNT.size, "buffer count"))[0]
    if count > MAX_FRAME_BUFFERS:
        raise RpcProtocolError(f"frame with {count} out-of-band buffers "
                               f"exceeds the {MAX_FRAME_BUFFERS} cap")
    payload = int(length)
    buffers: List[bytearray] = []
    for _ in range(count):
        nbytes = _BUF_LEN.unpack(
            _recv_exact(sock, _BUF_LEN.size, "buffer header"))[0]
        if nbytes > MAX_FRAME_BYTES:
            raise RpcProtocolError(
                f"out-of-band buffer of {nbytes} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte cap")
        segment = bytearray(int(nbytes))
        _recv_exact_into(sock, memoryview(segment), "buffer segment")
        buffers.append(segment)
        payload += int(nbytes)
    return pickle.loads(body, buffers=buffers), payload


def recv_frame(sock: socket.socket) -> Any:
    """Receive one frame and unpickle it.

    Raises :class:`RpcConnectionError` on a truncated frame and
    :class:`RpcProtocolError` on bad framing.  Returns the sentinel
    ``None`` is a valid message; end-of-stream *between* frames raises
    ``EOFError`` (the orderly-shutdown signal the server loop uses).
    """
    return _recv_frame_counted(sock)[0]


# ---------------------------------------------------------------------------
# Worker daemon

#: Worker-global pin cache: ``(client, member) key -> (generation,
#: pinned store)``.  LRU-capped so an abandoned client cannot grow a
#: worker without bound; an evicted pin costs the owner one ``nopin``
#: round trip and a re-pin, never a wrong result.
PIN_CACHE_CAP = 1024
_PINS: "OrderedDict[Any, Tuple[int, Any]]" = OrderedDict()
_PINS_LOCK = threading.Lock()


def _pinned_members() -> int:
    """Entries in this process's pin cache (diagnostics/tests)."""
    with _PINS_LOCK:
        return len(_PINS)


def _run_task(task: Any) -> Tuple[Any, bool]:
    t0 = time.perf_counter()
    try:
        result = task()
    except BaseException as exc:  # noqa: BLE001 — shipped to caller
        try:
            portable: Optional[BaseException] = pickle.loads(
                pickle.dumps(exc, pickle.HIGHEST_PROTOCOL))
        except Exception:
            portable = None
        return ("err", portable, type(exc).__name__, str(exc),
                traceback.format_exc()), True
    wall = time.perf_counter() - t0
    return ("ok", wall, result), True


def _execute_request(request: Any) -> Tuple[Any, bool]:
    """(response, keep_serving) for one request tuple."""
    if not isinstance(request, tuple) or not request:
        return ("err", None, "RpcProtocolError",
                f"malformed request: {type(request).__name__}", ""), True
    if len(request) == 2 and isinstance(request[0], int) \
            and isinstance(request[1], tuple):
        # tagged request: the pipelined client matches each reply to
        # its in-flight request by id; untagged peers get untagged
        # replies (backward compatible)
        response, keep = _execute_request(request[1])
        return (request[0], response), keep
    op = request[0]
    if op == "ping":
        return ("pong", os.getpid()), True
    if op == "run":
        return _run_task(request[1])
    if op == "pin":
        _op, key, generation, snapshot = request
        with _PINS_LOCK:
            _PINS[key] = (generation, snapshot)
            _PINS.move_to_end(key)
            while len(_PINS) > PIN_CACHE_CAP:
                _PINS.popitem(last=False)
        return ("pinned",), True
    if op == "unpin":
        with _PINS_LOCK:
            dropped = _PINS.pop(request[1], None) is not None
        return ("unpinned", dropped), True
    if op == "run_pinned":
        _op, key, generation, task = request
        with _PINS_LOCK:
            entry = _PINS.get(key)
            if entry is not None and entry[0] == generation:
                _PINS.move_to_end(key)
                pinned = entry[1]
            else:
                pinned = None
        if pinned is None:
            # missing or stale pin: the task did NOT run, which is
            # what makes a client-side re-pin + resend safe
            return ("nopin",), True
        from .session import bind_pinned

        response, keep = _run_task(bind_pinned(task, pinned))
        if response[0] == "err":
            # the pinned copy may be half-mutated: never serve it again
            with _PINS_LOCK:
                _PINS.pop(key, None)
        return response, keep
    return ("err", None, "RpcProtocolError",
            f"unknown request op {op!r}", ""), True


class _WorkerHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # one connection: frames until EOF
        while True:
            try:
                request = recv_frame(self.request)
            except (EOFError, RpcConnectionError, ConnectionError,
                    OSError):
                return
            except RpcProtocolError:
                return  # a non-SRPC peer gets silence, not a stack dump
            response, keep = _execute_request(request)
            try:
                send_frame(self.request, response)
            except (ConnectionError, OSError):
                return
            if not keep:
                return


class _WorkerServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve(bind: str, *, announce=print) -> None:
    """Run a worker daemon on ``bind`` (``host:port``; port 0 picks a
    free one) until interrupted.  ``announce`` receives one
    ``"SRPC listening on host:port"`` line once the socket accepts —
    launchers parse it to learn an ephemeral port.
    """
    host, port = parse_host(bind)
    with _WorkerServer((host, port), _WorkerHandler) as server:
        bound_host, bound_port = server.server_address[:2]
        announce(f"SRPC listening on {bound_host}:{bound_port}")
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            pass


# ---------------------------------------------------------------------------
# Host parsing


def parse_host(spec: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` with validation."""
    host, sep, port_text = str(spec).strip().rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"fleet host must be 'host:port', got {spec!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"fleet host port must be an integer, got {spec!r}") from None
    if not 0 <= port <= 65535:
        raise ConfigurationError(f"fleet host port out of range: {spec!r}")
    return host, port


def parse_hosts(spec: Union[str, Sequence[str]]) -> Tuple[str, ...]:
    """Normalise a host list (string ``"h:p,h:p"`` or sequence) to a
    canonical tuple: validated, de-duplicated, sorted.

    Sorting makes everything downstream order-independent: two nodes
    configured with the same hosts in different orders build the same
    :class:`HashRing` and assign members identically.
    """
    if isinstance(spec, str):
        items = [item for item in spec.replace(",", " ").split() if item]
    else:
        items = [str(item) for item in spec]
    if not items:
        raise ConfigurationError("fleet host list is empty")
    canonical = {f"{host}:{port}" for host, port in map(parse_host, items)}
    return tuple(sorted(canonical))


# ---------------------------------------------------------------------------
# Client connection pool (module-wide: RpcExecutor instances resolve
# their hosts lazily, so the sockets — keyed by address, not by
# instance — are shared and survive between passes.
# repro.parallel.close_executors() closes this pool too.)

_POOL: Dict[str, List[socket.socket]] = {}
_POOL_LOCK = threading.Lock()


def _pooled_connections(addr: Optional[str] = None) -> int:
    """Idle pooled connections (diagnostics/tests)."""
    with _POOL_LOCK:
        if addr is not None:
            return len(_POOL.get(addr, ()))
        return sum(len(socks) for socks in _POOL.values())


def close_connection_pools() -> int:
    """Close every idle pooled worker connection; returns the count.

    Connections checked out by an in-flight pass are not touched —
    they return to a now-empty pool when the pass completes.
    """
    with _POOL_LOCK:
        sockets = [s for socks in _POOL.values() for s in socks]
        _POOL.clear()
    for sock in sockets:
        try:
            sock.close()
        except OSError:
            pass
    return len(sockets)


def _dial(addr: str, *, retries: int = DIAL_RETRIES,
          timeout: Optional[float] = None) -> socket.socket:
    """Fresh connection to ``addr``, retrying brief refusals."""
    host, port = parse_host(addr)
    last: Optional[Exception] = None
    for attempt in range(max(1, retries)):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            if attempt + 1 < retries:
                time.sleep(DIAL_RETRY_DELAY_S)
    raise RpcConnectionError(
        f"cannot reach fleet worker at {addr}: {last}") from last


def _borrow(addr: str) -> Tuple[socket.socket, bool]:
    """A connection to ``addr``: pooled (True) or freshly dialled."""
    with _POOL_LOCK:
        pooled = _POOL.get(addr)
        if pooled:
            return pooled.pop(), True
    return _dial(addr), False


def _give_back(addr: str, sock: socket.socket) -> None:
    with _POOL_LOCK:
        _POOL.setdefault(addr, []).append(sock)


def _discard(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


def _recv_reply(addr: str, sock: socket.socket) -> Tuple[Any, int]:
    """(reply, bytes received) after a delivered request; any failure
    discards the socket and raises :class:`RpcConnectionError` (the
    task may have run, so the caller must never silently retry a
    non-session request)."""
    try:
        return _recv_frame_counted(sock)
    except EOFError as exc:
        _discard(sock)
        raise RpcConnectionError(
            f"fleet worker at {addr} closed the connection before "
            "replying (worker killed mid-task?)") from exc
    except (RpcConnectionError, RpcProtocolError):
        _discard(sock)
        raise RpcConnectionError(
            f"reply from fleet worker at {addr} was cut short or "
            "malformed; the connection dropped mid-frame")
    except (ConnectionError, OSError) as exc:
        _discard(sock)
        raise RpcConnectionError(
            f"connection to fleet worker at {addr} failed mid-reply: "
            f"{exc}") from exc


def _call_worker_counted(addr: str, request: Any) -> Tuple[Any, int, int]:
    """(reply, bytes out, bytes back) for one pooled round trip."""
    sock, from_pool = _borrow(addr)
    try:
        sent = send_frame(sock, request)
    except (ConnectionError, OSError) as exc:
        _discard(sock)
        if not from_pool:
            raise RpcConnectionError(
                f"fleet worker at {addr} rejected the request: "
                f"{exc}") from exc
        sock = _dial(addr)  # stale pooled socket: one reconnect
        try:
            sent = send_frame(sock, request)
        except (ConnectionError, OSError) as exc2:
            _discard(sock)
            raise RpcConnectionError(
                f"fleet worker at {addr} rejected the request after "
                f"reconnect: {exc2}") from exc2
    response, received = _recv_reply(addr, sock)
    _give_back(addr, sock)
    return response, sent, received


def call_worker(addr: str, request: Any) -> Any:
    """One request/response round trip with ``addr``, via the pool.

    A *stale* pooled connection (the worker restarted since the last
    pass) fails while the request is being sent; since an undelivered
    request cannot have executed, it is retried once on a fresh
    connection.  Any failure after the request was delivered — EOF or
    a truncated reply — raises :class:`RpcConnectionError` instead:
    the task may have run, and mutating passes must never run twice.
    """
    return _call_worker_counted(addr, request)[0]


def ping(addr: str, *, timeout: float = 5.0) -> int:
    """Round-trip a ping; returns the worker's PID.  Waits up to
    ``timeout`` seconds for the worker to start listening."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            response = call_worker(addr, ("ping",))
        except RpcConnectionError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(DIAL_RETRY_DELAY_S)
            continue
        if not (isinstance(response, tuple) and response[0] == "pong"):
            raise RpcProtocolError(f"unexpected ping reply: {response!r}")
        return int(response[1])


# ---------------------------------------------------------------------------
# The executor


def _worker_label(addr: str) -> str:
    return f"rpc-{addr}"


class _TaskPlan:
    """One member task's dispatch plan inside a session pass."""

    __slots__ = ("index", "task", "store", "stripped", "session")

    def __init__(self, index: int, task: MemberTask, store: Any = None,
                 stripped: Any = None, session: Any = None) -> None:
        self.index = index
        self.task = task
        self.store = store
        self.stripped = stripped
        self.session = session


class _RoundFailed(Exception):
    """Internal: one host's wire round died.

    ``retry_safe`` means every delivered request was a session verb —
    a re-pin from caller-held state plus a resend cannot double-run
    anything, because nothing from the failed round is ever folded.
    ``nothing_delivered`` marks the classic stale-pooled-socket case.
    """

    def __init__(self, error: RpcConnectionError, *, retry_safe: bool,
                 nothing_delivered: bool) -> None:
        super().__init__(str(error))
        self.error = error
        self.retry_safe = retry_safe
        self.nothing_delivered = nothing_delivered


class RpcExecutor(FleetExecutor):
    """Dispatch fleet passes to remote worker daemons over TCP.

    Args:
        hosts: worker addresses (``"host:port"`` items, or one
            comma-separated string).  None resolves lazily at *each*
            dispatch through the policy chain
            (``repro.engine(fleet_hosts=...)`` > installed policy >
            ``REPRO_FLEET_HOSTS``), so exporting the variable after the
            scheduler exists still works.
        max_workers: bound on concurrent in-flight tasks (default: one
            per resolved host).
        sessions: pin members on their assigned workers and dispatch
            passes as pipelined task descriptors instead of re-shipped
            snapshots.  None resolves lazily through the policy chain
            (``repro.engine(fleet_sessions=...)`` > installed policy >
            ``REPRO_FLEET_SESSIONS``; default off).
        pipeline: in session mode, keep every request of a host's
            batch in flight on one socket (default).  ``False`` falls
            back to one blocking round trip per request — the bench's
            comparison baseline.  Ignored outside session mode.

    Member *i* goes to the host that owns ``"member-i"`` on a
    consistent-hash ring over the host set — a pure function of the
    canonicalised host list, so every node that knows the same hosts
    (in any order) computes the same placement, and growing the host
    list remaps only its ring share of members.
    """

    name = "rpc"
    crosses_process = True  # results cross a machine boundary

    def __init__(self, hosts: Union[None, str, Sequence[str]] = None,
                 max_workers: Optional[int] = None, *,
                 sessions: Optional[bool] = None,
                 pipeline: Optional[bool] = None) -> None:
        self.hosts = parse_hosts(hosts) if hosts is not None else None
        self.max_workers = max_workers
        self.sessions = sessions
        self.pipeline = pipeline

    def _resolve_hosts(self) -> Tuple[str, ...]:
        if self.hosts is not None:
            return self.hosts
        # lazy, like every other policy switch: read at dispatch time
        from ..api import policy as _policy

        hosts, _source = _policy.resolve_fleet_hosts(None)
        if not hosts:
            raise ConfigurationError(
                "the rpc executor needs worker hosts: pass "
                "RpcExecutor(hosts=[...]), scope "
                "repro.engine(fleet_hosts=...), or export "
                f"{HOSTS_ENV_VAR}=host:port,host:port (start workers "
                "with `python -m repro.parallel.remote serve`)")
        return parse_hosts(hosts)

    def close(self) -> None:
        """Release the pooled worker connections (idempotent)."""
        close_connection_pools()

    @staticmethod
    def _member_error(addr: str, response: Tuple) -> BaseException:
        """The exception to raise for an ``("err", ...)`` reply: the
        original (portable) exception ``__cause__``-chained to a
        :class:`RemoteTaskError` naming the worker."""
        _tag, portable, etype, message, tb = response
        cause = RemoteTaskError(
            f"member task raised {etype} on fleet worker {addr}: "
            f"{message}\n--- remote traceback ---\n{tb}",
            host=addr, remote_traceback=tb)
        if isinstance(portable, BaseException):
            portable.__cause__ = cause
            return portable
        return cause

    @staticmethod
    def _run_one(addr: str, task: MemberTask
                 ) -> Tuple[str, float, Any, int, int]:
        response, sent, received = _call_worker_counted(
            addr, ("run", task))
        if not isinstance(response, tuple) or not response:
            raise RpcProtocolError(
                f"malformed reply from fleet worker at {addr}: "
                f"{type(response).__name__}")
        if response[0] == "ok":
            _tag, wall, result = response
            return addr, float(wall), result, sent, received
        if response[0] == "err":
            raise RpcExecutor._member_error(addr, response)
        raise RpcProtocolError(
            f"unknown reply tag {response[0]!r} from worker at {addr}")

    def run(self, tasks: Sequence[MemberTask]) -> ExecutionOutcome:
        n = len(tasks)
        hosts = self._resolve_hosts()
        if n == 0:
            return ExecutionOutcome(workers=0, hosts=hosts)
        ring = HashRing(hosts)
        assignment = [ring.lookup(f"member-{i}") for i in range(n)]
        from ..api import policy as _policy

        use_sessions, _source = _policy.resolve_fleet_sessions(
            self.sessions)
        if use_sessions:
            return self._run_session_pass(tasks, hosts, assignment)
        bound = self.max_workers if self.max_workers is not None \
            else len(hosts)
        workers = max(1, min(bound, n))
        outcome = ExecutionOutcome(workers=workers, hosts=hosts)
        per_worker: Dict[str, List[float]] = {}
        with ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="rpc-client") as pool:
            futures = [pool.submit(self._run_one, addr, task)
                       for addr, task in zip(assignment, tasks)]
            for future in futures:
                addr, wall, result, sent, received = future.result()
                label = _worker_label(addr)
                outcome.results.append(result)
                outcome.assignments.append(label)
                per_worker.setdefault(label, []).append(wall)
                outcome.bytes_out[addr] = \
                    outcome.bytes_out.get(addr, 0) + sent
                outcome.bytes_back[addr] = \
                    outcome.bytes_back.get(addr, 0) + received
        outcome.worker_walls = _collect_walls(per_worker)
        return outcome

    # -- session mode -----------------------------------------------------------

    def _run_session_pass(self, tasks: Sequence[MemberTask],
                          hosts: Tuple[str, ...],
                          assignment: List[str]) -> ExecutionOutcome:
        """One pass in pinned-session mode: a dedicated (pipelined)
        socket per host, member state folded only after *every* host
        completed, every touched session invalidated on any failure.
        """
        from . import session as _session

        pipeline = self.pipeline if self.pipeline is not None else True
        plans: List[_TaskPlan] = []
        for index, task in enumerate(tasks):
            split = _session.split_task(task)
            if split is None:
                plans.append(_TaskPlan(index, task))
            else:
                stripped, store = split
                plans.append(_TaskPlan(index, task, store, stripped,
                                       _session.session_for(store)))
        by_host: "OrderedDict[str, List[_TaskPlan]]" = OrderedDict()
        for plan, addr in zip(plans, assignment):
            by_host.setdefault(addr, []).append(plan)

        host_results: Dict[str, Tuple[List, int, int]] = {}
        errors: List[BaseException] = []
        gate = threading.Lock()

        def drive(addr: str, host_plans: List[_TaskPlan]) -> None:
            try:
                result = self._drive_host(addr, host_plans, pipeline)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                with gate:
                    errors.append(exc)
                return
            with gate:
                host_results[addr] = result

        threads = [threading.Thread(target=drive, args=item,
                                    name=f"rpc-session-{item[0]}",
                                    daemon=True)
                   for item in by_host.items()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if errors:
            # the pinned copies may have advanced without a client
            # fold: nothing is folded, and every session this pass
            # touched must re-pin from caller-held state next time
            for plan in plans:
                if plan.session is not None:
                    plan.session.invalidate()
            raise errors[0]

        outcome = ExecutionOutcome(workers=len(by_host), hosts=hosts)
        per_worker: Dict[str, List[float]] = {}
        by_index: Dict[int, Tuple[str, Any]] = {}
        for addr, (items, sent, received) in host_results.items():
            label = _worker_label(addr)
            outcome.bytes_out[addr] = sent
            outcome.bytes_back[addr] = received
            for index, wall, result in items:
                per_worker.setdefault(label, []).append(wall)
                by_index[index] = (label, result)
        for plan in plans:
            label, result = by_index[plan.index]
            outcome.results.append(self._fold_result(plan, result))
            outcome.assignments.append(label)
        outcome.worker_walls = _collect_walls(per_worker)
        return outcome

    @staticmethod
    def _fold_result(plan: _TaskPlan, result: Any) -> Any:
        """Fold a pinned task's returned state into the caller-held
        store and re-arm the session for the next pass."""
        if plan.store is None:
            return result
        from . import session as _session

        if not (isinstance(result, tuple) and len(result) == 2):
            # not the (payload, state) member contract: nothing to
            # fold, and the pinned copy's state is unknowable
            plan.session.invalidate()
            return result
        from ..api.fleet import fold_member_state

        payload, state = result
        fold_member_state(plan.store, state)
        # worker copy and caller store advanced identically (the
        # byte-identity contract of the patch transport): re-capture
        # the fingerprint so the next pass reuses the pin
        plan.session.fingerprint = _session.store_fingerprint(plan.store)
        # hand the *original* store back so the scheduler-level fold
        # (fold_member_state(original, state)) is a no-op
        return payload, plan.store

    def _drive_host(self, addr: str, plans: List[_TaskPlan],
                    pipeline: bool) -> Tuple[List, int, int]:
        """All of one host's requests for a pass, with one retry when
        the failed round provably could not have folded or double-run
        anything (stale pooled socket before delivery, or a round of
        pure session verbs — re-pinning from caller state is safe
        even if the worker executed some of them)."""
        for attempt in (0, 1):
            sock, from_pool = _borrow(addr)
            try:
                return self._host_round(addr, sock, plans, pipeline)
            except _RoundFailed as failure:
                retriable = failure.retry_safe or \
                    (failure.nothing_delivered and from_pool)
                if attempt == 0 and retriable:
                    for plan in plans:
                        if plan.session is not None:
                            plan.session.invalidate()
                    continue
                raise failure.error
        raise AssertionError("unreachable")  # pragma: no cover

    def _host_round(self, addr: str, sock: socket.socket,
                    plans: List[_TaskPlan], pipeline: bool
                    ) -> Tuple[List, int, int]:
        from . import session as _session

        requests: List[Tuple[str, _TaskPlan, Tuple]] = []
        for plan in plans:
            if plan.store is None:
                requests.append(("run", plan, ("run", plan.task)))
                continue
            sess = plan.session
            current = sess.pin_current(addr) and \
                sess.fingerprint is not None and \
                sess.fingerprint == _session.store_fingerprint(plan.store)
            if not current:
                # new generation: any pin of the old state, on any
                # worker, must never serve again
                sess.invalidate()
                requests.append(("pin", plan, (
                    "pin", sess.key, sess.generation, plan.store)))
            requests.append(("runp", plan, (
                "run_pinned", sess.key, sess.generation, plan.stripped)))
        session_only = all(kind != "run" for kind, _p, _q in requests)

        counters = {"sent": 0, "received": 0, "delivered": 0}
        items: List[Tuple[int, float, Any]] = []
        member_errors: List[BaseException] = []
        nopins: List[_TaskPlan] = []

        def wire_failed(error: RpcConnectionError) -> "_RoundFailed":
            return _RoundFailed(
                error, retry_safe=session_only,
                nothing_delivered=counters["delivered"] == 0)

        def send_one(rid: int, payload: Tuple) -> None:
            try:
                nbytes = send_frame(sock, (rid, payload))
            except (ConnectionError, OSError) as exc:
                _discard(sock)
                raise wire_failed(RpcConnectionError(
                    f"fleet worker at {addr} rejected the request: "
                    f"{exc}")) from exc
            counters["sent"] += nbytes
            counters["delivered"] += 1

        def recv_one(rid: int, kind: str, plan: _TaskPlan) -> None:
            try:
                reply, nbytes = _recv_reply(addr, sock)
            except RpcConnectionError as exc:
                raise wire_failed(exc) from exc
            counters["received"] += nbytes
            if not (isinstance(reply, tuple) and len(reply) == 2
                    and reply[0] == rid):
                _discard(sock)
                raise RpcProtocolError(
                    f"fleet worker at {addr} answered out of order "
                    f"(expected request {rid}, got {reply!r})")
            response = reply[1]
            tag = response[0] if isinstance(response, tuple) and response \
                else None
            if kind == "pin":
                if tag != "pinned":
                    _discard(sock)
                    raise RpcProtocolError(
                        f"unexpected pin reply {response!r} from "
                        f"worker at {addr}")
                plan.session.pins[addr] = plan.session.generation
                return
            if tag == "ok":
                _tag, wall, result = response
                items.append((plan.index, float(wall), result))
                return
            if tag == "nopin" and kind == "runp":
                nopins.append(plan)
                return
            if tag == "err":
                member_errors.append(self._member_error(addr, response))
                return
            _discard(sock)
            raise RpcProtocolError(
                f"unknown reply tag {tag!r} from worker at {addr}")

        def run_round(batch: List[Tuple[str, _TaskPlan, Tuple]]) -> None:
            if pipeline and len(batch) > 1:
                send_error: List[BaseException] = []

                def pump() -> None:
                    try:
                        for rid, (_kind, _plan, payload) in \
                                enumerate(batch):
                            send_one(rid, payload)
                    except BaseException as exc:  # noqa: BLE001
                        send_error.append(exc)
                        _discard(sock)  # unblocks the reply reader

                writer = threading.Thread(
                    target=pump, name=f"rpc-writer-{addr}", daemon=True)
                writer.start()
                try:
                    for rid, (kind, plan, _payload) in enumerate(batch):
                        recv_one(rid, kind, plan)
                finally:
                    writer.join()
                if send_error and not isinstance(
                        send_error[0], _RoundFailed):
                    raise send_error[0]
            else:
                for rid, (kind, plan, payload) in enumerate(batch):
                    send_one(rid, payload)
                    recv_one(rid, kind, plan)

        run_round(requests)
        retried = set()
        while nopins:
            # a run_pinned missed (worker restarted or evicted the
            # pin) without running the task: re-pin from caller state
            # on the same, still-healthy connection and resend
            missed, nopins = nopins, []
            batch: List[Tuple[str, _TaskPlan, Tuple]] = []
            for plan in missed:
                if plan.index in retried:
                    _discard(sock)
                    raise RpcProtocolError(
                        f"worker at {addr} dropped a freshly shipped "
                        f"pin for member {plan.index}")
                retried.add(plan.index)
                sess = plan.session
                sess.invalidate()
                batch.append(("pin", plan, (
                    "pin", sess.key, sess.generation, plan.store)))
                batch.append(("runp", plan, (
                    "run_pinned", sess.key, sess.generation,
                    plan.stripped)))
            run_round(batch)
        _give_back(addr, sock)
        if member_errors:
            raise member_errors[0]
        return items, counters["sent"], counters["received"]


# The ``rpc`` registry entry lives in :mod:`repro.parallel.executor`
# (a lazy factory over :class:`RpcExecutor`), so selecting any other
# executor never loads the wire protocol — and ``python -m
# repro.parallel.remote`` can execute this module as ``__main__``
# without a duplicate registration.


# ---------------------------------------------------------------------------
# Local worker management (examples, benchmarks, CI)


class LocalWorker:
    """Handle on a worker daemon subprocess on this machine."""

    def __init__(self, process: subprocess.Popen, address: str) -> None:
        self.process = process
        self.address = address

    def kill(self) -> None:
        """SIGKILL the worker (fault injection: no orderly goodbye)."""
        self.process.kill()
        self.process.wait(timeout=10)

    def stop(self) -> None:
        """Terminate the worker and reap it (idempotent)."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.kill()


def spawn_local_worker(bind: str = "127.0.0.1:0", *,
                       timeout: float = 30.0) -> LocalWorker:
    """Start ``python -m repro.parallel.remote serve`` as a subprocess
    and wait for its announce line; returns the :class:`LocalWorker`
    with the actual ``host:port`` (port 0 picks a free one).
    """
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.parallel.remote", "serve",
         "--bind", bind],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True)
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("SRPC listening on "):
            address = line.strip().rpartition(" ")[2]
            return LocalWorker(process, address)
        if process.poll() is not None:
            break
    process.kill()
    raise RpcConnectionError(
        f"local worker failed to start (last output: {line!r})")


# ---------------------------------------------------------------------------
# CLI


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.remote",
        description="SERO fleet RPC worker daemon")
    sub = parser.add_subparsers(dest="command", required=True)
    serve_p = sub.add_parser("serve", help="host fleet member passes")
    serve_p.add_argument("--bind", default="127.0.0.1:0",
                         help="host:port to listen on (port 0 = free)")
    ping_p = sub.add_parser("ping", help="wait for a worker to answer")
    ping_p.add_argument("address", help="worker host:port")
    ping_p.add_argument("--timeout", type=float, default=15.0)
    args = parser.parse_args(argv)
    if args.command == "serve":
        serve(args.bind)
        return 0
    pid = ping(args.address, timeout=args.timeout)
    print(f"worker at {args.address} alive (pid {pid})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
