"""Consistent-hash ring: the FleetStore's shard router.

A fleet spreads objects across member stores by hashing each object's
key onto a ring of 2**64 points and walking clockwise to the first
*virtual node*.  Each member owns ``replicas`` virtual nodes, so load
spreads evenly, and — the property the fleet cares about — adding or
removing one member remaps only ~1/n of the keyspace instead of
reshuffling everything (the classic Karger construction; the same
shape openaleph uses to shard index traffic, and the natural fit for
the Venti-style content addressing already in the stack: the shard key
*is* a hash).

Hashing uses :mod:`hashlib` SHA-256 directly rather than the policy-
routed device backend: routing is host-side bookkeeping, not device
protocol, and must not change meaning under ``repro.engine(...)``
scopes.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple, Union


def _point(label: bytes) -> int:
    """Ring coordinate of a label: first 8 bytes of its SHA-256."""
    return int.from_bytes(hashlib.sha256(label).digest()[:8], "big")


def shard_key(key: Union[str, bytes]) -> bytes:
    """Canonical shard key: the SHA-256 of the (encoded) key.

    Object paths route through their name's hash; archive snapshots
    route through their content score — either way the ring only ever
    sees uniformly distributed 32-byte keys.
    """
    if isinstance(key, str):
        key = key.encode("utf-8")
    return hashlib.sha256(key).digest()


class HashRing:
    """A consistent-hash ring over named nodes.

    Args:
        nodes: initial node names.
        replicas: virtual nodes per name (more = smoother balance;
            64 keeps the max/min member load within ~2x at fleet
            sizes of interest).
    """

    def __init__(self, nodes: Sequence[str] = (),
                 replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        self._nodes: List[str] = []
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Node names, insertion order."""
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def _vnode_points(self, name: str) -> List[int]:
        return [_point(f"{name}#{i}".encode("utf-8"))
                for i in range(self.replicas)]

    def add_node(self, name: str) -> None:
        """Add a node (its virtual nodes claim their ring arcs)."""
        if name in self._nodes:
            raise ValueError(f"node {name!r} already on the ring")
        self._nodes.append(name)
        for pt in self._vnode_points(name):
            if pt in self._owners:
                # 64-bit collision between distinct labels: effectively
                # unreachable, but never silently reroute an arc
                raise ValueError(f"virtual-node collision at {pt}")
            bisect.insort(self._points, pt)
            self._owners[pt] = name

    def remove_node(self, name: str) -> None:
        """Remove a node; its arcs fall to the clockwise successors."""
        if name not in self._nodes:
            raise ValueError(f"node {name!r} not on the ring")
        self._nodes.remove(name)
        for pt in self._vnode_points(name):
            del self._owners[pt]
            idx = bisect.bisect_left(self._points, pt)
            self._points.pop(idx)

    def lookup(self, key: Union[str, bytes]) -> str:
        """Owner of ``key``: first virtual node clockwise of its point."""
        for owner in self.successors(key):
            return owner
        raise ValueError("lookup on an empty ring")

    def successors(self, key: Union[str, bytes]):
        """Distinct owners clockwise of ``key``'s point, nearest first.

        The standard replica/capability walk: the first yielded owner
        is :meth:`lookup`'s answer; callers needing a node with a
        particular capability take the first acceptable one, which
        stays deterministic and rebalance-stable exactly like the
        primary route.
        """
        if not self._nodes:
            return
        pt = _point(shard_key(key))
        start = bisect.bisect_right(self._points, pt)
        seen = set()
        npoints = len(self._points)
        for offset in range(npoints):
            owner = self._owners[self._points[(start + offset) % npoints]]
            if owner not in seen:
                seen.add(owner)
                yield owner
                if len(seen) == len(self._nodes):
                    return

    def distribution(self, keys: Sequence[Union[str, bytes]]) -> Dict[str, int]:
        """How ``keys`` spread over the nodes (diagnostics)."""
        counts = {name: 0 for name in self._nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts
