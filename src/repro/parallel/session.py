"""Client-side member sessions for the ``rpc`` executor's pinned mode.

Session mode ships a member's snapshot to its ring-assigned worker
*once* (``pin``); every later pass sends only a small ``run_pinned``
task descriptor and folds the returned
:class:`~repro.api.store.StoreStatePatch` (or, for a mutating pass,
the returned snapshot) into the caller-held store.  That only stays
correct if a stale pin is never silently reused, so this module keeps
the client's books:

* a :class:`MemberSession` per live member store, holding the wire key
  the worker caches the snapshot under, a monotone **generation**
  (bumped whenever the pinned copy can no longer be trusted), and the
  set of workers currently holding a pin of that generation;

* a **fingerprint** of everything a member pass can change
  (:func:`store_fingerprint`): the medium's mutation epoch and
  operation counters, the live RNG state, the cost account, the sled
  position, the heated-line registry, the bad/fragile block sets and
  the façade's instruction tick.  Any client-side mutation between
  passes — a direct ``seal``, a migration, an attack helper poking the
  medium — changes the fingerprint, which forces a re-pin instead of a
  wrong result.

The invariant the executor maintains: after a successful pinned pass
*and* fold, the worker's pinned copy and the client's store are
state-equivalent (the byte-identity contract of the patch transport),
so the recorded fingerprint is simply re-captured from the client
store.  On any failure mid-pass the executor calls
:func:`invalidate`, which bumps the generation — the worker copy may
have advanced without a client fold and must never serve again.

Tasks cross the wire with the member store replaced by the picklable
:class:`PinnedStoreRef` placeholder; the worker substitutes its pinned
copy (:func:`bind_pinned`) before running the task.
"""

from __future__ import annotations

import functools
import itertools
import os
import sys
import threading
import weakref
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "MemberSession",
    "PinnedStoreRef",
    "bind_pinned",
    "invalidate",
    "session_for",
    "split_task",
    "store_fingerprint",
]


class PinnedStoreRef:
    """Placeholder marking where a member store sat in a task's
    arguments; the worker swaps in its pinned copy."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<pinned member store>"


_REF = PinnedStoreRef()


def _is_store(obj: Any) -> bool:
    # sys.modules, not an import: a task that closes over a store can
    # only exist if the store module is already loaded, and plain tasks
    # must not drag the whole api layer in.
    mod = sys.modules.get("repro.api.store")
    return mod is not None and isinstance(obj, mod.TamperEvidentStore)


def split_task(task: Any) -> Optional[Tuple[Any, Any]]:
    """``(stripped_task, store)`` when ``task`` is a partial closing
    over exactly one member store, else None (the task then travels on
    the plain snapshot path).

    The stripped task is the same callable with the store replaced by
    the :class:`PinnedStoreRef` placeholder — a few hundred bytes on
    the wire instead of the snapshot.
    """
    fn = getattr(task, "func", None)
    args = getattr(task, "args", None)
    kwargs = getattr(task, "keywords", None)
    if fn is None or args is None or kwargs is None:
        return None
    arg_hits = [i for i, a in enumerate(args) if _is_store(a)]
    key_hits = [k for k, v in kwargs.items() if _is_store(v)]
    if len(arg_hits) + len(key_hits) != 1:
        return None
    if arg_hits:
        store = args[arg_hits[0]]
        args = tuple(_REF if i == arg_hits[0] else a
                     for i, a in enumerate(args))
        kwargs = dict(kwargs)
    else:
        store = kwargs[key_hits[0]]
        kwargs = dict(kwargs)
        kwargs[key_hits[0]] = _REF
    return functools.partial(fn, *args, **kwargs), store


def bind_pinned(task: Any, store: Any) -> Any:
    """Worker side of :func:`split_task`: substitute the pinned store
    back where the placeholder travels."""
    args = tuple(store if isinstance(a, PinnedStoreRef) else a
                 for a in task.args)
    kwargs = {key: store if isinstance(value, PinnedStoreRef) else value
              for key, value in task.keywords.items()}
    return functools.partial(task.func, *args, **kwargs)


# ---------------------------------------------------------------------------
# Fingerprints


def _device_fingerprint(device: Any) -> Tuple:
    medium = device.medium
    return (
        medium._mut_epoch,
        tuple(sorted(medium.counters.items())),
        medium._rng.bit_generator.state,
        device.account.elapsed,
        device.scanner._x,
        device.scanner._y,
        device.scanner._last_block,
        tuple(sorted(device._lines)),
        tuple(sorted(device.bad_blocks)),
        tuple(sorted(device.fragile_blocks)),
    )


def store_fingerprint(store: Any) -> Tuple:
    """Cheap equality token over everything a member pass can change.

    Compared with ``==`` (the RNG state is a nested dict of ints), not
    hashed.  Two captures are equal iff no mutating *or* read-path
    operation (reads advance the RNG, the counters, the cost account
    and the sled) touched the store in between — exactly the condition
    under which a worker-pinned snapshot is still this store.
    """
    archive = store.archive_device
    return (
        _device_fingerprint(store.device),
        _device_fingerprint(archive) if archive is not None else None,
        store._tick,
    )


# ---------------------------------------------------------------------------
# The registry


class MemberSession:
    """The client's book entry for one pinnable member store."""

    __slots__ = ("key", "ref", "generation", "fingerprint", "pins",
                 "__weakref__")

    def __init__(self, key: Tuple[str, int], store: Any) -> None:
        self.key = key
        self.ref = weakref.ref(store)
        self.generation = 0
        self.fingerprint: Optional[Tuple] = None
        #: worker address -> generation pinned there
        self.pins: Dict[str, int] = {}

    def pin_current(self, addr: str) -> bool:
        """Does ``addr`` hold a pin of the current generation?"""
        return self.pins.get(addr) == self.generation

    def invalidate(self) -> None:
        """The pinned copies can no longer be trusted: bump the
        generation so every worker's next ``run_pinned`` misses."""
        self.generation += 1
        self.pins.clear()
        self.fingerprint = None


#: Distinguishes this client process on shared workers (two clients
#: pinning members on one worker must never collide).
_CLIENT_TOKEN = f"{os.getpid():d}-{os.urandom(6).hex()}"

_SESSIONS: Dict[int, MemberSession] = {}
#: Reentrant: registering a finalizer inside :func:`session_for` can
#: allocate, allocation can trigger a GC cycle, and that cycle can run
#: a *previous* store's :func:`_forget` finalizer on this very thread
#: while the lock is already held — a plain Lock deadlocks there.
_SESSIONS_LOCK = threading.RLock()
_KEY_COUNTER = itertools.count(1)


def _forget(ident: int, record: MemberSession) -> None:
    with _SESSIONS_LOCK:
        if _SESSIONS.get(ident) is record:
            del _SESSIONS[ident]


def session_for(store: Any) -> MemberSession:
    """The (one) session record for ``store``, created on first use."""
    ident = id(store)
    with _SESSIONS_LOCK:
        record = _SESSIONS.get(ident)
        if record is not None and record.ref() is store:
            return record
        record = MemberSession((_CLIENT_TOKEN, next(_KEY_COUNTER)), store)
        _SESSIONS[ident] = record
        weakref.finalize(store, _forget, ident, record)
        return record


def invalidate(store: Any) -> None:
    """Force the next pinned pass over ``store`` to re-pin."""
    with _SESSIONS_LOCK:
        record = _SESSIONS.get(id(store))
    if record is not None and record.ref() is store:
        record.invalidate()


def _live_sessions() -> int:
    """Registered sessions whose store is still alive (tests)."""
    with _SESSIONS_LOCK:
        return sum(1 for rec in _SESSIONS.values() if rec.ref() is not None)
