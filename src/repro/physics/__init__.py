"""Material-science simulation of the Co/Pt patterned medium.

This package reproduces the physics half of the paper (Sections 6-7):

* :mod:`~repro.physics.constants` — Co/Pt stack and dot geometry.
* :mod:`~repro.physics.anisotropy` — interface/shape anisotropy balance.
* :mod:`~repro.physics.annealing` — Arrhenius interface mixing (the
  irreversible heat operation) and fct CoPt crystallisation.
* :mod:`~repro.physics.torque` — torque-magnetometry measurement of K
  (Fig 7's method).
* :mod:`~repro.physics.xrd` — low/high-angle diffraction (Figs 8, 9).
* :mod:`~repro.physics.thermal` — tip-current heating and neighbour
  damage.
* :mod:`~repro.physics.stoner_wohlfarth` — single-domain switching.
* :mod:`~repro.physics.mfm` — MFM read-back signal (Fig 1).
"""

from .anisotropy import AnisotropyModel, calibrated_model, shape_anisotropy
from .annealing import (
    DEFAULT_KINETICS,
    AnnealingKinetics,
    FilmEnsemble,
    FilmState,
    anneal,
    anneal_series,
    destruction_temperature,
)
from .constants import (
    AS_GROWN_K,
    DEFAULT_DOT,
    DEFAULT_STACK,
    TORQUE_FIELD,
    DotGeometry,
    MultilayerStack,
)
from .mfm import ReadHead, ScanLine, detect_bits, scan_dots
from .stoner_wohlfarth import SwitchingModel, astroid_switching_field
from .thermal import (
    DEFAULT_THERMAL,
    HeatPulse,
    ThermalParameters,
    contact_temperature_c,
    default_pulse,
    neighbor_damage,
    power_for_temperature,
    safe_pitch,
)
from .torque import (
    TorqueMeasurement,
    measure_anisotropy,
    measure_anisotropy_batch,
    torque_curve,
)
from .xrd import (
    XRDScan,
    XRDScanSet,
    bragg_two_theta,
    high_angle_scan,
    high_angle_scan_set,
    low_angle_scan,
    low_angle_scan_set,
)

__all__ = [
    "MultilayerStack",
    "DotGeometry",
    "DEFAULT_STACK",
    "DEFAULT_DOT",
    "AS_GROWN_K",
    "TORQUE_FIELD",
    "AnisotropyModel",
    "calibrated_model",
    "shape_anisotropy",
    "AnnealingKinetics",
    "DEFAULT_KINETICS",
    "FilmEnsemble",
    "FilmState",
    "anneal",
    "anneal_series",
    "destruction_temperature",
    "TorqueMeasurement",
    "measure_anisotropy",
    "measure_anisotropy_batch",
    "torque_curve",
    "XRDScan",
    "XRDScanSet",
    "bragg_two_theta",
    "low_angle_scan",
    "high_angle_scan",
    "high_angle_scan_set",
    "low_angle_scan_set",
    "ThermalParameters",
    "DEFAULT_THERMAL",
    "HeatPulse",
    "default_pulse",
    "contact_temperature_c",
    "power_for_temperature",
    "neighbor_damage",
    "safe_pitch",
    "SwitchingModel",
    "astroid_switching_field",
    "ReadHead",
    "ScanLine",
    "scan_dots",
    "detect_bits",
]
