"""Magnetic anisotropy of the Co/Pt multilayer dots.

Section 7 of the paper explains the energy balance that makes the SERO
medium possible:

* shape (stray-field) anisotropy prefers in-plane magnetisation for a
  flat dot: ``K_shape = -1/2 * mu0 * Ms^2 * (N_perp - N_par)``,
* the many Co/Pt *interfaces* contribute a strong perpendicular
  surface term ``2 K_s / t_Co`` per magnetic layer,
* heating mixes the interfaces, destroying the surface term
  irreversibly, so the easy axis rotates back in-plane.

The effective perpendicular anisotropy per unit magnetic volume is

``K_eff(s) = s * 2*K_s/t_Co + K_v - Kd``

where ``s`` in [0, 1] is the *interface sharpness* (1 = as grown, 0 =
fully mixed; evolved by :mod:`repro.physics.annealing`) and ``Kd`` the
demagnetising energy.  ``K_eff > 0`` means a perpendicular easy axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..units import MU0
from .constants import DEFAULT_STACK, DotGeometry, MultilayerStack


def demagnetizing_factors(diameter: float, thickness: float) -> tuple:
    """Approximate demagnetising factors (N_par, N_par, N_perp) of a
    cylindrical dot, using the thin-oblate-spheroid approximation.

    For a flat cylinder (thickness << diameter) N_perp -> 1 and
    N_par -> 0; the approximation interpolates smoothly in between and
    keeps the trace equal to 1.
    """
    if diameter <= 0 or thickness <= 0:
        raise ValueError("dot dimensions must be positive")
    aspect = thickness / diameter
    # Empirical fit for oblate spheroids: N_perp = 1/(1 + 1.6 * aspect)
    n_perp = 1.0 / (1.0 + 1.6 * aspect)
    n_par = (1.0 - n_perp) / 2.0
    return (n_par, n_par, n_perp)


def shape_anisotropy(ms: float, diameter: float, thickness: float) -> float:
    """Demagnetising (shape) anisotropy K_d [J/m^3] of a dot.

    Positive K_d penalises perpendicular magnetisation (it is
    subtracted from the interface term).
    """
    n_par, _, n_perp = demagnetizing_factors(diameter, thickness)
    return 0.5 * MU0 * ms * ms * (n_perp - n_par)


@dataclass
class AnisotropyModel:
    """Effective-anisotropy calculator for a dot made of a given stack.

    Args:
        stack: the Co/Pt multilayer recipe.
        dot: dot geometry; when None the film is treated as continuous
            (the torque samples of Fig 7 are unpatterned films) and the
            demagnetising term is the thin-film limit ``1/2 mu0 Ms^2``
            scaled by the magnetic fill fraction.
    """

    stack: MultilayerStack = None  # type: ignore[assignment]
    dot: DotGeometry = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.stack is None:
            self.stack = DEFAULT_STACK

    def interface_term(self, sharpness: float = 1.0) -> float:
        """Perpendicular interface anisotropy [J/m^3 of magnetic layer].

        Two interfaces per Co layer; scaled by the interface
        ``sharpness`` in [0, 1].
        """
        if not 0.0 <= sharpness <= 1.0:
            raise ValueError("interface sharpness must lie in [0, 1]")
        return sharpness * 2.0 * self.stack.k_s / self.stack.t_co

    def demagnetizing_term(self) -> float:
        """Shape penalty K_d [J/m^3] for perpendicular magnetisation."""
        ms = self.stack.ms
        if self.dot is None:
            # Continuous film: N_perp = 1, N_par = 0.
            return 0.5 * MU0 * ms * ms
        return shape_anisotropy(ms, self.dot.diameter, self.dot.thickness)

    def k_eff(self, sharpness: float = 1.0, crystalline_fraction: float = 0.0) -> float:
        """Effective perpendicular anisotropy [J/m^3].

        Args:
            sharpness: interface sharpness from the annealing model.
            crystalline_fraction: fraction of the film converted to fct
                CoPt grains.  Per Fig 9's discussion these grains have
                *tilted* [001] easy axes ("not perpendicular, not in
                plane"), so their net contribution to the perpendicular
                anisotropy is zero — conversion simply removes volume
                from the multilayer phase.
        """
        if not 0.0 <= crystalline_fraction <= 1.0:
            raise ValueError("crystalline fraction must lie in [0, 1]")
        multilayer_fraction = 1.0 - crystalline_fraction
        k_interface = self.interface_term(sharpness)
        k_volume = self.stack.k_v
        return multilayer_fraction * (k_interface + k_volume) - self.demagnetizing_term()

    def k_eff_array(self, sharpness, crystalline_fraction=0.0):
        """Vectorised :meth:`k_eff` over sample arrays.

        Evaluates a whole :class:`~repro.physics.annealing.FilmEnsemble`
        (or any broadcastable pair of arrays) in one array expression
        instead of one Python call per sample.
        """
        import numpy as np

        s = np.asarray(sharpness, dtype=float)
        cf = np.asarray(crystalline_fraction, dtype=float)
        if np.any((s < 0.0) | (s > 1.0)):
            raise ValueError("interface sharpness must lie in [0, 1]")
        if np.any((cf < 0.0) | (cf > 1.0)):
            raise ValueError("crystalline fraction must lie in [0, 1]")
        k_interface = s * (2.0 * self.stack.k_s / self.stack.t_co)
        return (1.0 - cf) * (k_interface + self.stack.k_v) \
            - self.demagnetizing_term()

    def is_perpendicular(self, sharpness: float = 1.0,
                         crystalline_fraction: float = 0.0) -> bool:
        """True when the easy axis is out of plane (K_eff > 0)."""
        return self.k_eff(sharpness, crystalline_fraction) > 0.0

    def easy_axis_angle(self, sharpness: float = 1.0,
                        crystalline_fraction: float = 0.0) -> float:
        """Polar angle of the easy axis from the film normal [rad].

        0 for a healthy perpendicular dot, pi/2 once heating has
        destroyed the interfaces (easy axis in plane).
        """
        return 0.0 if self.is_perpendicular(sharpness, crystalline_fraction) else math.pi / 2.0

    def anisotropy_field(self, sharpness: float = 1.0) -> float:
        """Anisotropy field H_K = 2 K_eff / (mu0 Ms) [A/m] (used by the
        Stoner-Wohlfarth switching model)."""
        k = self.k_eff(sharpness)
        return 2.0 * max(k, 0.0) / (MU0 * self.stack.ms)


def calibrated_model(target_k: float = 80.0e3,
                     stack: MultilayerStack = None) -> AnisotropyModel:
    """Return a film model whose as-grown K_eff equals ``target_k``.

    Fig 7 reports 80 kJ/m^3 for the unannealed film; this helper
    rescales the interface anisotropy so the model reproduces that
    value exactly, keeping every other parameter.
    """
    base = stack or DEFAULT_STACK
    model = AnisotropyModel(stack=base)
    demag = model.demagnetizing_term()
    needed_interface = target_k + demag - base.k_v
    if needed_interface <= 0:
        raise ValueError("target K unreachable with this stack")
    k_s = needed_interface * base.t_co / 2.0
    from dataclasses import replace

    return AnisotropyModel(stack=replace(base, k_s=k_s))
