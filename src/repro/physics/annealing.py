"""Arrhenius interface-mixing kinetics (the heat / annealing process).

The write-once physics of the whole paper reduces to one irreversible
solid-state process: above a threshold temperature the Co and Pt atoms
at each interface interdiffuse, the interface anisotropy disappears and
the easy axis falls in plane (Section 7, Fig 7).  We model this with
first-order Arrhenius kinetics:

``ds/dt = -k(T) * s``  with  ``k(T) = k0 * exp(-Ea / (kB * T))``

where ``s`` is the interface *sharpness* (1 = as grown).  A second,
slower channel converts mixed material into fct CoPt grains (the Fig 9
crystallisation), which can never restore perpendicular anisotropy
because the grains' easy axes are tilted.

The default constants are calibrated so that a 30-minute anneal leaves
``K`` untouched up to 500 degC and destroys it above 600 degC, exactly
the shape of Fig 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..units import KB, celsius_to_kelvin
from ..api.policy import resolve_vectorized

EV = 1.602176634e-19


@dataclass(frozen=True)
class AnnealingKinetics:
    """Rate parameters for interface mixing and crystallisation.

    Attributes:
        mixing_ea: activation energy of interface interdiffusion [J].
        mixing_prefactor: Arrhenius attempt rate for mixing [1/s].
        crystallization_ea: activation energy of fct CoPt grain
            formation [J] (higher: grains only grow near 700 degC,
            matching "at 700 degC grains start to grow").
        crystallization_prefactor: attempt rate for crystallisation [1/s].
    """

    mixing_ea: float = 1.68 * EV
    mixing_prefactor: float = 2.4e6
    crystallization_ea: float = 2.05 * EV
    crystallization_prefactor: float = 1.1e7

    def mixing_rate(self, temperature_k: float) -> float:
        """Interface-mixing rate k(T) [1/s]."""
        if temperature_k <= 0:
            raise ValueError("temperature must be positive kelvin")
        return self.mixing_prefactor * math.exp(-self.mixing_ea / (KB * temperature_k))

    def crystallization_rate(self, temperature_k: float) -> float:
        """fct CoPt crystallisation rate [1/s]."""
        if temperature_k <= 0:
            raise ValueError("temperature must be positive kelvin")
        return self.crystallization_prefactor * math.exp(
            -self.crystallization_ea / (KB * temperature_k))


DEFAULT_KINETICS = AnnealingKinetics()


@dataclass
class FilmState:
    """Mutable microstructural state of (a region of) the film.

    Attributes:
        sharpness: interface sharpness in [0, 1]; 1 = as grown.
        crystalline_fraction: fraction converted to fct CoPt grains.
        thermal_history: list of (temperature_k, duration_s) applied.
    """

    sharpness: float = 1.0
    crystalline_fraction: float = 0.0
    thermal_history: List = field(default_factory=list)

    @property
    def is_destroyed(self) -> bool:
        """True once the interfaces are effectively gone (< 5% left).

        This is the physical meaning of a *heated* dot: the multilayer
        structure is irreversibly destroyed (Fig 8's vanished
        superlattice peak).
        """
        return self.sharpness < 0.05


def anneal(state: FilmState, temperature_c: float, duration_s: float,
           kinetics: AnnealingKinetics = DEFAULT_KINETICS) -> FilmState:
    """Apply an isothermal anneal to ``state`` in place and return it.

    The mixing ODE integrates exactly for an isothermal step:
    ``s -> s * exp(-k(T) * t)``.  Crystallisation follows
    Johnson-Mehl-Avrami with exponent 1 on the *mixed* fraction (grains
    nucleate from mixed material).  Both are one-way: nothing in this
    module can raise ``sharpness`` — that is the irreversibility the
    tamper evidence rests on.
    """
    if duration_s < 0:
        raise ValueError("anneal duration must be non-negative")
    temperature_k = celsius_to_kelvin(temperature_c)
    k_mix = kinetics.mixing_rate(temperature_k)
    state.sharpness *= math.exp(-k_mix * duration_s)
    k_cry = kinetics.crystallization_rate(temperature_k)
    mixed = 1.0 - state.sharpness
    growth = 1.0 - math.exp(-k_cry * duration_s)
    state.crystalline_fraction += (mixed - state.crystalline_fraction) * growth
    state.crystalline_fraction = min(max(state.crystalline_fraction, 0.0), 1.0)
    state.thermal_history.append((temperature_k, duration_s))
    return state


@dataclass
class FilmEnsemble:
    """Struct-of-arrays microstructure of N independent film samples.

    The array-native counterpart of :class:`FilmState` for the Fig 7/8/9
    sweeps: instead of annealing one ``FilmState`` per temperature point
    in a Python loop, a whole temperature grid anneals in a handful of
    whole-array operations.

    Attributes:
        sharpness: per-sample interface sharpness in [0, 1].
        crystalline_fraction: per-sample fct CoPt fraction.
        thermal_history: list of (temperatures_k, duration_s) steps
            applied to the ensemble; ``temperatures_k`` is a scalar
            (same for every sample) or a per-sample array.
    """

    sharpness: np.ndarray
    crystalline_fraction: np.ndarray
    thermal_history: List = field(default_factory=list)

    @classmethod
    def fresh(cls, n_samples: int) -> "FilmEnsemble":
        """N as-grown samples (sharpness 1, nothing crystallised)."""
        if n_samples < 0:
            raise ValueError("sample count must be non-negative")
        return cls(sharpness=np.ones(n_samples, dtype=float),
                   crystalline_fraction=np.zeros(n_samples, dtype=float))

    def __post_init__(self) -> None:
        self.sharpness = np.asarray(self.sharpness, dtype=float)
        self.crystalline_fraction = np.asarray(self.crystalline_fraction,
                                               dtype=float)
        if self.sharpness.shape != self.crystalline_fraction.shape:
            raise ValueError("ensemble arrays must have matching shapes")

    def __len__(self) -> int:
        return int(self.sharpness.size)

    @property
    def is_destroyed(self) -> np.ndarray:
        """Per-sample destroyed flag (< 5% interface left)."""
        return self.sharpness < 0.05

    def anneal(self, temperatures_c: Union[float, Sequence[float]],
               duration_s: float = 1800.0,
               kinetics: AnnealingKinetics = DEFAULT_KINETICS) -> "FilmEnsemble":
        """Isothermal anneal of every sample, in place; returns self.

        ``temperatures_c`` may be a scalar (every sample sees the same
        anneal) or one temperature per sample (the Fig 7 protocol).
        The kinetics are exactly :func:`anneal`'s, evaluated as array
        expressions: ``s -> s * exp(-k_mix(T) * t)`` and the JMA
        crystallisation step on the mixed fraction.
        """
        if duration_s < 0:
            raise ValueError("anneal duration must be non-negative")
        temps_c = np.asarray(temperatures_c, dtype=float)
        if temps_c.ndim not in (0, 1) or \
                (temps_c.ndim == 1 and temps_c.size != len(self)):
            raise ValueError(
                "temperatures must be a scalar or one per sample")
        temps_k = temps_c + 273.15
        if np.any(temps_k <= 0):
            raise ValueError("temperature must be positive kelvin")
        k_mix = kinetics.mixing_prefactor * np.exp(
            -kinetics.mixing_ea / (KB * temps_k))
        self.sharpness *= np.exp(-k_mix * duration_s)
        k_cry = kinetics.crystallization_prefactor * np.exp(
            -kinetics.crystallization_ea / (KB * temps_k))
        mixed = 1.0 - self.sharpness
        growth = 1.0 - np.exp(-k_cry * duration_s)
        self.crystalline_fraction += \
            (mixed - self.crystalline_fraction) * growth
        np.clip(self.crystalline_fraction, 0.0, 1.0,
                out=self.crystalline_fraction)
        self.thermal_history.append((temps_k, duration_s))
        return self

    def state(self, i: int) -> FilmState:
        """Snapshot of sample ``i`` as a scalar :class:`FilmState`."""
        history = []
        for temps_k, duration in self.thermal_history:
            t_k = float(temps_k[i]) if np.ndim(temps_k) else float(temps_k)
            history.append((t_k, duration))
        return FilmState(sharpness=float(self.sharpness[i]),
                         crystalline_fraction=float(
                             self.crystalline_fraction[i]),
                         thermal_history=history)

    def states(self) -> List[FilmState]:
        """All samples as scalar :class:`FilmState` snapshots."""
        return [self.state(i) for i in range(len(self))]


def anneal_series(temperatures_c: Sequence[float], duration_s: float = 1800.0,
                  kinetics: AnnealingKinetics = DEFAULT_KINETICS,
                  vectorized: Optional[bool] = None) -> List[FilmState]:
    """Anneal one fresh sample per temperature (the Fig 7 protocol:
    "samples subjected to six different temperatures").

    With ``vectorized`` left at None the whole series anneals as one
    :class:`FilmEnsemble` pass (unless the lazily resolved execution
    policy selects the scalar engine); the scalar loop remains as the
    reference path.
    """
    if vectorized is None:
        vectorized = resolve_vectorized()
    temps = list(temperatures_c)
    if vectorized:
        ensemble = FilmEnsemble.fresh(len(temps))
        ensemble.anneal(temps, duration_s, kinetics)
        return ensemble.states()
    samples = []
    for t_c in temps:
        sample = FilmState()
        anneal(sample, t_c, duration_s, kinetics)
        samples.append(sample)
    return samples


def destruction_temperature(kinetics: AnnealingKinetics = DEFAULT_KINETICS,
                            duration_s: float = 1800.0,
                            threshold: float = 0.05):
    """Lowest temperature [degC] whose anneal drives sharpness below
    ``threshold`` — i.e. the minimum usable heat-operation temperature.

    Solved analytically from ``exp(-k(T) t) = threshold``.  Accepts a
    scalar ``duration_s``/``threshold`` (returns a float) or arrays
    (returns the broadcast array), so whole duration sweeps evaluate in
    one pass.
    """
    duration = np.asarray(duration_s, dtype=float)
    thresh = np.asarray(threshold, dtype=float)
    needed_rate = -np.log(thresh) / duration
    t_kelvin = kinetics.mixing_ea / (
        KB * np.log(kinetics.mixing_prefactor / needed_rate))
    out = t_kelvin - 273.15
    if out.ndim == 0:
        return float(out)
    return out
