"""Arrhenius interface-mixing kinetics (the heat / annealing process).

The write-once physics of the whole paper reduces to one irreversible
solid-state process: above a threshold temperature the Co and Pt atoms
at each interface interdiffuse, the interface anisotropy disappears and
the easy axis falls in plane (Section 7, Fig 7).  We model this with
first-order Arrhenius kinetics:

``ds/dt = -k(T) * s``  with  ``k(T) = k0 * exp(-Ea / (kB * T))``

where ``s`` is the interface *sharpness* (1 = as grown).  A second,
slower channel converts mixed material into fct CoPt grains (the Fig 9
crystallisation), which can never restore perpendicular anisotropy
because the grains' easy axes are tilted.

The default constants are calibrated so that a 30-minute anneal leaves
``K`` untouched up to 500 degC and destroys it above 600 degC, exactly
the shape of Fig 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

from ..units import KB, celsius_to_kelvin

EV = 1.602176634e-19


@dataclass(frozen=True)
class AnnealingKinetics:
    """Rate parameters for interface mixing and crystallisation.

    Attributes:
        mixing_ea: activation energy of interface interdiffusion [J].
        mixing_prefactor: Arrhenius attempt rate for mixing [1/s].
        crystallization_ea: activation energy of fct CoPt grain
            formation [J] (higher: grains only grow near 700 degC,
            matching "at 700 degC grains start to grow").
        crystallization_prefactor: attempt rate for crystallisation [1/s].
    """

    mixing_ea: float = 1.68 * EV
    mixing_prefactor: float = 2.4e6
    crystallization_ea: float = 2.05 * EV
    crystallization_prefactor: float = 1.1e7

    def mixing_rate(self, temperature_k: float) -> float:
        """Interface-mixing rate k(T) [1/s]."""
        if temperature_k <= 0:
            raise ValueError("temperature must be positive kelvin")
        return self.mixing_prefactor * math.exp(-self.mixing_ea / (KB * temperature_k))

    def crystallization_rate(self, temperature_k: float) -> float:
        """fct CoPt crystallisation rate [1/s]."""
        if temperature_k <= 0:
            raise ValueError("temperature must be positive kelvin")
        return self.crystallization_prefactor * math.exp(
            -self.crystallization_ea / (KB * temperature_k))


DEFAULT_KINETICS = AnnealingKinetics()


@dataclass
class FilmState:
    """Mutable microstructural state of (a region of) the film.

    Attributes:
        sharpness: interface sharpness in [0, 1]; 1 = as grown.
        crystalline_fraction: fraction converted to fct CoPt grains.
        thermal_history: list of (temperature_k, duration_s) applied.
    """

    sharpness: float = 1.0
    crystalline_fraction: float = 0.0
    thermal_history: List = field(default_factory=list)

    @property
    def is_destroyed(self) -> bool:
        """True once the interfaces are effectively gone (< 5% left).

        This is the physical meaning of a *heated* dot: the multilayer
        structure is irreversibly destroyed (Fig 8's vanished
        superlattice peak).
        """
        return self.sharpness < 0.05


def anneal(state: FilmState, temperature_c: float, duration_s: float,
           kinetics: AnnealingKinetics = DEFAULT_KINETICS) -> FilmState:
    """Apply an isothermal anneal to ``state`` in place and return it.

    The mixing ODE integrates exactly for an isothermal step:
    ``s -> s * exp(-k(T) * t)``.  Crystallisation follows
    Johnson-Mehl-Avrami with exponent 1 on the *mixed* fraction (grains
    nucleate from mixed material).  Both are one-way: nothing in this
    module can raise ``sharpness`` — that is the irreversibility the
    tamper evidence rests on.
    """
    if duration_s < 0:
        raise ValueError("anneal duration must be non-negative")
    temperature_k = celsius_to_kelvin(temperature_c)
    k_mix = kinetics.mixing_rate(temperature_k)
    state.sharpness *= math.exp(-k_mix * duration_s)
    k_cry = kinetics.crystallization_rate(temperature_k)
    mixed = 1.0 - state.sharpness
    growth = 1.0 - math.exp(-k_cry * duration_s)
    state.crystalline_fraction += (mixed - state.crystalline_fraction) * growth
    state.crystalline_fraction = min(max(state.crystalline_fraction, 0.0), 1.0)
    state.thermal_history.append((temperature_k, duration_s))
    return state


def anneal_series(temperatures_c: Sequence[float], duration_s: float = 1800.0,
                  kinetics: AnnealingKinetics = DEFAULT_KINETICS) -> List[FilmState]:
    """Anneal one fresh sample per temperature (the Fig 7 protocol:
    "samples subjected to six different temperatures")."""
    samples = []
    for t_c in temperatures_c:
        sample = FilmState()
        anneal(sample, t_c, duration_s, kinetics)
        samples.append(sample)
    return samples


def destruction_temperature(kinetics: AnnealingKinetics = DEFAULT_KINETICS,
                            duration_s: float = 1800.0,
                            threshold: float = 0.05) -> float:
    """Lowest temperature [degC] whose anneal drives sharpness below
    ``threshold`` — i.e. the minimum usable heat-operation temperature.

    Solved analytically from ``exp(-k(T) t) = threshold``.
    """
    needed_rate = -math.log(threshold) / duration_s
    t_kelvin = kinetics.mixing_ea / (
        KB * math.log(kinetics.mixing_prefactor / needed_rate))
    return t_kelvin - 273.15
