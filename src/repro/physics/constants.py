"""Material parameters for the Co/Pt multilayer patterned medium.

The numbers are taken from the paper where it states them (80 kJ/m^3
as-grown perpendicular anisotropy, 0.6 nm layers, 1350 kA/m torque
field, 200 nm dot pitch, collapse of K between 500 and 700 degC) and
from the standard Co/Pt multilayer literature (Vallejo et al. 2007,
Spoerl & Weller 1991) for the rest.  Everything is SI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import KA_PER_M, KJ_PER_M3, NM


@dataclass(frozen=True)
class MultilayerStack:
    """Geometry and magnetics of the Co/Pt multilayer film.

    Attributes:
        t_co: thickness of one Co layer [m].
        t_pt: thickness of one Pt layer [m].
        n_bilayers: number of Co/Pt repeats in the stack.
        ms: saturation magnetisation of the stack, averaged over
            magnetic + non-magnetic layers [A/m].
        k_s: interface anisotropy energy per Co/Pt interface [J/m^2].
        k_v: volume (magnetocrystalline) anisotropy of the Co [J/m^3].
    """

    t_co: float = 0.55 * NM
    t_pt: float = 0.55 * NM
    n_bilayers: int = 20
    ms: float = 360.0 * KA_PER_M
    # k_s is tuned so that the *film* K_eff is the paper's 80 kJ/m^3;
    # k_v is deliberately below the demagnetising energy so that a
    # fully mixed film (or dot) has an in-plane easy axis — without
    # that, heating would not destroy perpendicular storage and the
    # whole SERO premise would fail.
    k_s: float = 3.614e-5
    k_v: float = 30.0 * KJ_PER_M3

    @property
    def bilayer_period(self) -> float:
        """Multilayer period Lambda = t_co + t_pt [m].

        With the default 0.55 nm layers the period is 1.1 nm, which
        puts the low-angle superlattice Bragg peak at 2-theta of about
        8 degrees for Cu K-alpha, matching Fig 8 ("we can calculate
        that layer has a thickness of 0.6 nm").
        """
        return self.t_co + self.t_pt

    @property
    def total_thickness(self) -> float:
        """Full stack thickness [m]."""
        return self.n_bilayers * self.bilayer_period

    @property
    def magnetic_thickness(self) -> float:
        """Total Co thickness [m] (the magnetic volume)."""
        return self.n_bilayers * self.t_co


@dataclass(frozen=True)
class DotGeometry:
    """Geometry of one patterned dot and the dot matrix.

    Defaults follow Section 6: 200 nm pitch demonstrated, 100 nm
    (50 nm dot + 50 nm spacing) "should be achievable".
    """

    diameter: float = 100.0 * NM
    pitch_x: float = 200.0 * NM
    pitch_y: float = 200.0 * NM
    thickness: float = 22.0 * NM  # 20 bilayers x 1.1 nm

    @property
    def area(self) -> float:
        """Dot top-surface area [m^2]."""
        import math

        return math.pi * (self.diameter / 2.0) ** 2

    @property
    def volume(self) -> float:
        """Dot volume [m^3]."""
        return self.area * self.thickness


#: Default film stack used throughout the library.
DEFAULT_STACK = MultilayerStack()

#: Default dot geometry used throughout the library.
DEFAULT_DOT = DotGeometry()

#: Torque-magnetometry applied field from the paper [A/m].
TORQUE_FIELD = 1350.0 * KA_PER_M

#: As-grown perpendicular anisotropy reported in Fig 7 [J/m^3].
AS_GROWN_K = 80.0 * KJ_PER_M3

#: d-spacing of the fct CoPt (111) plane that appears after annealing
#: (back-computed from the 41.7 degree 2-theta peak of Fig 9) [m].
COPT_111_D_SPACING = 2.164e-10

#: d-spacings of the as-grown constituents' (111) planes [m].
CO_FCC_111_D_SPACING = 2.047e-10
PT_FCC_111_D_SPACING = 2.265e-10
