"""Magnetic force microscopy read-back model (Fig 1 and Fig 6).

The uSPAM reads by the MFM principle: a magnetic tip on a cantilever
senses the stray field of each dot.  A healthy perpendicular dot
appears as a point dipole normal to the medium, giving the read head a
positive or negative peak depending on the stored bit; a *heated* dot
has its moment in plane, which produces a weak antisymmetric wiggle
instead of a peak — the "disappeared peak" in the lower half of Fig 1.

The signal model treats each dot as a point dipole at its centre and
evaluates the vertical stray-field derivative at tip height (the
quantity a frequency-modulated cantilever responds to).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..units import MU0, NM
from .constants import DEFAULT_DOT, DEFAULT_STACK, DotGeometry, MultilayerStack


@dataclass(frozen=True)
class ReadHead:
    """MFM tip parameters.

    Attributes:
        fly_height: tip-medium distance [m] (30 nm in Section 6).
        tip_moment: effective magnetic moment of the tip [A m^2].
    """

    fly_height: float = 30.0 * NM
    tip_moment: float = 1.0e-16


DEFAULT_HEAD = ReadHead()


def _dipole_bz_gradient(moment_vec, dx: float, dz: float) -> float:
    """d(Bz)/dz of a point dipole ``moment_vec`` = (mx, mz) evaluated at
    lateral offset ``dx`` and height ``dz`` above it (2-D scan line)."""
    mx, mz = moment_vec
    r2 = dx * dx + dz * dz
    r = math.sqrt(r2)
    if r < 1e-12:
        r = 1e-12
        r2 = r * r
    # Field of a dipole: B = mu0/(4 pi) * (3 (m.r) r / r^5 - m / r^3)
    # We need dBz/dz; differentiate analytically.
    pref = MU0 / (4.0 * math.pi)
    r5 = r2 * r2 * r
    r7 = r5 * r2
    m_dot_r = mx * dx + mz * dz
    # Bz = pref * (3 m_dot_r dz / r^5 - mz / r^3)
    dbz_dz = pref * (
        3.0 * (mx * dx + 2.0 * mz * dz) / r5
        - 15.0 * m_dot_r * dz * dz / r7
        + 3.0 * mz * dz / r5
    )
    # Detector convention: report the signal so that an up-magnetised
    # dot gives a positive peak (on axis dBz/dz = -6 mu0 mz/(4 pi z^4),
    # i.e. negative for mz > 0; the read channel inverts).
    return -dbz_dz


def dot_moment(magnetization: int, heated: bool,
               stack: MultilayerStack = None,
               dot: DotGeometry = None,
               in_plane_fraction: float = 0.15) -> tuple:
    """Magnetic moment vector (mx, mz) [A m^2] of one dot.

    A healthy dot carries its full moment out of plane with the stored
    sign.  A heated dot keeps its material (the atoms do not leave) but
    the easy axis is in plane and, with circular dots, the in-plane
    orientation is essentially random — the read-back therefore sees
    only a small residual ``in_plane_fraction`` of signal projected
    into the scan line, with indeterminate sign.
    """
    film = stack or DEFAULT_STACK
    geometry = dot or DEFAULT_DOT
    magnetic_volume = geometry.volume * (
        film.magnetic_thickness / film.total_thickness)
    m_total = film.ms * magnetic_volume
    if heated:
        return (in_plane_fraction * m_total, 0.0)
    if magnetization not in (-1, 1):
        raise ValueError("magnetization must be +1 or -1")
    return (0.0, magnetization * m_total)


@dataclass
class ScanLine:
    """One simulated read-back trace.

    Attributes:
        x: lateral positions [m].
        signal: cantilever signal (dBz/dz at tip height, arbitrary
            scale after multiplying by tip moment).
    """

    x: np.ndarray
    signal: np.ndarray

    def peak_at(self, x_center: float, window: float) -> float:
        """Extremum (signed, largest magnitude) within +-window of
        ``x_center`` — how the detector samples a dot position."""
        mask = np.abs(self.x - x_center) <= window
        if not mask.any():
            raise ValueError("window contains no samples")
        segment = self.signal[mask]
        return float(segment[np.argmax(np.abs(segment))])


def scan_dots(states: Sequence[tuple], head: ReadHead = DEFAULT_HEAD,
              stack: MultilayerStack = None, dot: DotGeometry = None,
              samples_per_pitch: int = 32) -> ScanLine:
    """Scan a row of dots and return the read-back trace.

    Args:
        states: sequence of ``(magnetization, heated)`` tuples, one per
            dot along the track; ``magnetization`` is +1/-1 (ignored
            for heated dots).
        samples_per_pitch: lateral sampling density.
    """
    film = stack or DEFAULT_STACK
    geometry = dot or DEFAULT_DOT
    pitch = geometry.pitch_x
    n = len(states)
    x = np.linspace(-0.5 * pitch, (n - 0.5) * pitch, n * samples_per_pitch)
    signal = np.zeros_like(x)
    moments = [
        dot_moment(mag, heated, stack=film, dot=geometry)
        for mag, heated in states
    ]
    for index, moment in enumerate(moments):
        cx = index * pitch
        for i, xi in enumerate(x):
            signal[i] += head.tip_moment * _dipole_bz_gradient(
                moment, xi - cx, head.fly_height + geometry.thickness / 2.0)
    return ScanLine(x=x, signal=signal)


def detect_bits(line: ScanLine, n_dots: int, pitch: float = None,
                dot: DotGeometry = None,
                threshold_fraction: float = 0.4) -> List[str]:
    """Classify each dot position from a scan line.

    Returns one of ``"1"`` (positive peak), ``"0"`` (negative peak) or
    ``"H"`` (no significant peak) per dot.  The threshold is the given
    fraction of the strongest peak on the line; an all-heated line
    would classify everything as ``"H"`` only if the caller supplies an
    absolute reference, so detector calibration uses the healthy-dot
    amplitude from :func:`healthy_peak_amplitude`.
    """
    geometry = dot or DEFAULT_DOT
    pitch = pitch or geometry.pitch_x
    reference = healthy_peak_amplitude(dot=geometry)
    bits: List[str] = []
    for index in range(n_dots):
        peak = line.peak_at(index * pitch, 0.3 * pitch)
        if abs(peak) < threshold_fraction * reference:
            bits.append("H")
        elif peak > 0:
            bits.append("1")
        else:
            bits.append("0")
    return bits


def healthy_peak_amplitude(head: ReadHead = DEFAULT_HEAD,
                           stack: MultilayerStack = None,
                           dot: DotGeometry = None) -> float:
    """Reference |signal| of an isolated healthy dot (detector cal)."""
    line = scan_dots([(1, False)], head=head, stack=stack, dot=dot)
    return float(np.max(np.abs(line.signal)))
