"""Stoner-Wohlfarth single-domain switching model.

The dots are single magnetic domains (Section 6), so magnetic writing
(``mwb``) is coherent-rotation switching described by the classic
Stoner-Wohlfarth astroid.  The model supplies:

* the switching field of a dot as a function of the write-field angle,
* thermal stability (Neel-Arrhenius) of stored bits, and
* the switching-field distribution across a dot population (used by
  :mod:`repro.medium.defects` to decide which dots are unreliable and
  must be handled as bad blocks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..units import KB, MU0
from .constants import DEFAULT_DOT, DEFAULT_STACK, DotGeometry, MultilayerStack

#: Neel attempt frequency [Hz].
ATTEMPT_FREQUENCY = 1.0e9


def anisotropy_field(k_eff: float, ms: float) -> float:
    """H_K = 2 K / (mu0 Ms) [A/m]; zero when K is not perpendicular."""
    return 2.0 * max(k_eff, 0.0) / (MU0 * ms)


def astroid_switching_field(h_k: float, angle_rad: float) -> float:
    """Switching field [A/m] at write-field ``angle_rad`` off easy axis.

    The Stoner-Wohlfarth astroid:
    ``h_sw = h_K / (cos^(2/3) psi + sin^(2/3) psi)^(3/2)``.
    At 0 and 90 degrees this is h_K; at 45 degrees it drops to h_K/2.
    """
    psi = abs(angle_rad) % math.pi
    if psi > math.pi / 2.0:
        psi = math.pi - psi
    c = math.cos(psi) ** (2.0 / 3.0)
    s = math.sin(psi) ** (2.0 / 3.0)
    return h_k / (c + s) ** 1.5


@dataclass
class SwitchingModel:
    """Switching behaviour of one dot.

    Attributes:
        k_eff: effective perpendicular anisotropy [J/m^3].
        stack: film recipe (for Ms).
        dot: geometry (for the thermally relevant volume).
    """

    k_eff: float
    stack: MultilayerStack = None  # type: ignore[assignment]
    dot: DotGeometry = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.stack is None:
            self.stack = DEFAULT_STACK
        if self.dot is None:
            self.dot = DEFAULT_DOT

    @property
    def h_k(self) -> float:
        """Anisotropy field [A/m]."""
        return anisotropy_field(self.k_eff, self.stack.ms)

    def switching_field(self, angle_rad: float = math.radians(15.0)) -> float:
        """Field needed to switch at the writer's effective angle."""
        return astroid_switching_field(self.h_k, angle_rad)

    def can_write(self, write_field: float,
                  angle_rad: float = math.radians(15.0)) -> bool:
        """True when ``write_field`` [A/m] switches the dot."""
        if self.k_eff <= 0.0:
            # destroyed dot: no stable perpendicular state to write
            return False
        return write_field >= self.switching_field(angle_rad)

    def energy_barrier(self) -> float:
        """Zero-field reversal barrier K V [J] over the magnetic volume."""
        magnetic_volume = self.dot.volume * (
            self.stack.magnetic_thickness / self.stack.total_thickness)
        return max(self.k_eff, 0.0) * magnetic_volume

    def thermal_stability_ratio(self, temperature_k: float = 300.0) -> float:
        """The figure of merit Delta = K V / (k_B T); > 40 is archival."""
        return self.energy_barrier() / (KB * temperature_k)

    def retention_time(self, temperature_k: float = 300.0) -> float:
        """Neel-Arrhenius mean time before a thermally activated flip [s]."""
        delta = self.thermal_stability_ratio(temperature_k)
        if delta > 700.0:  # avoid overflow; practically infinite
            return math.inf
        return math.exp(delta) / ATTEMPT_FREQUENCY

    def flip_probability(self, duration_s: float,
                         temperature_k: float = 300.0) -> float:
        """Probability that the stored bit flips within ``duration_s``."""
        tau = self.retention_time(temperature_k)
        if math.isinf(tau):
            return 0.0
        return 1.0 - math.exp(-duration_s / tau)
