"""Probe-tip heating: the physical realisation of ``ewb``.

Section 7: "heating of the magnetic dots will be realised by passing a
current from the probe tip to the dot", and earlier work showed such
currents "are even capable of evaporating the material".  The open
questions the paper lists — energy needed, lateral spread, neighbour
damage — are exactly what this module models:

* Joule power dissipated at the tip-dot contact produces a peak
  contact temperature via the classic spreading-resistance formula
  ``dT = P / (4 k a)`` for a circular contact of radius ``a`` on a
  half-space of conductivity ``k``.
* Away from the contact the steady-state excess temperature decays as
  ``dT(r) = dT * a / r`` (point source on a half-space), *reduced* by a
  heat-sinking factor when the substrate is engineered to conduct heat
  down instead of sideways (the magneto-optic trick the paper cites).
* A neighbour dot at pitch distance experiences that reduced
  temperature for the pulse duration; feeding it through the annealing
  kinetics yields the probability of collateral damage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .annealing import DEFAULT_KINETICS, AnnealingKinetics, FilmState, anneal
from .constants import DEFAULT_DOT, DotGeometry


@dataclass(frozen=True)
class ThermalParameters:
    """Thermal model parameters.

    Attributes:
        contact_radius: electrical/thermal contact radius [m].
        conductivity: effective thermal conductivity of the dot +
            substrate system [W/m/K].
        ambient_c: ambient temperature [degC].
        heat_sink_factor: lateral-decay suppression in (0, 1]; 1 means
            unengineered (pure half-space spreading), smaller values
            model a substrate that conducts heat away vertically
            (Section 7's mitigation).
    """

    contact_radius: float = 15e-9
    conductivity: float = 20.0
    ambient_c: float = 25.0
    heat_sink_factor: float = 0.35


DEFAULT_THERMAL = ThermalParameters()


def contact_temperature_c(power_w: float,
                          params: ThermalParameters = DEFAULT_THERMAL) -> float:
    """Peak temperature [degC] at the tip-dot contact for ``power_w``."""
    if power_w < 0:
        raise ValueError("power must be non-negative")
    delta = power_w / (4.0 * params.conductivity * params.contact_radius)
    return params.ambient_c + delta


def power_for_temperature(target_c: float,
                          params: ThermalParameters = DEFAULT_THERMAL) -> float:
    """Tip power [W] needed to reach ``target_c`` at the contact."""
    if target_c < params.ambient_c:
        raise ValueError("target below ambient")
    return (target_c - params.ambient_c) * 4.0 * params.conductivity * params.contact_radius


def temperature_at_distance_c(power_w: float, distance: float,
                              params: ThermalParameters = DEFAULT_THERMAL) -> float:
    """Steady-state temperature [degC] at lateral ``distance`` [m]."""
    if distance <= 0:
        return contact_temperature_c(power_w, params)
    peak = contact_temperature_c(power_w, params) - params.ambient_c
    if distance <= params.contact_radius:
        return params.ambient_c + peak
    decay = params.heat_sink_factor * params.contact_radius / distance
    return params.ambient_c + peak * decay


@dataclass
class HeatPulse:
    """One ewb heating pulse.

    Attributes:
        power_w: dissipated tip power [W].
        duration_s: pulse length [s].
    """

    power_w: float
    duration_s: float

    @property
    def energy_j(self) -> float:
        """Total pulse energy [J]."""
        return self.power_w * self.duration_s


def default_pulse(params: ThermalParameters = DEFAULT_THERMAL,
                  kinetics: AnnealingKinetics = DEFAULT_KINETICS,
                  margin: float = 1.15) -> HeatPulse:
    """A pulse hot enough to destroy a dot in ~100 microseconds.

    The contact is driven ``margin`` times past the temperature at
    which a 100 us exposure mixes the interfaces to below 5%.
    """
    from .annealing import destruction_temperature

    duration = 100e-6
    needed_c = destruction_temperature(kinetics, duration_s=duration)
    power = power_for_temperature(needed_c * margin, params)
    return HeatPulse(power_w=power, duration_s=duration)


def apply_pulse_to_dot(state: FilmState, pulse: HeatPulse,
                       distance: float = 0.0,
                       params: ThermalParameters = DEFAULT_THERMAL,
                       kinetics: AnnealingKinetics = DEFAULT_KINETICS) -> FilmState:
    """Anneal ``state`` with the temperature the pulse produces at
    lateral ``distance`` from the heated dot (0 = the dot itself)."""
    temp_c = temperature_at_distance_c(pulse.power_w, distance, params)
    return anneal(state, temp_c, pulse.duration_s, kinetics)


def neighbor_damage(pulse: HeatPulse,
                    dot: DotGeometry = DEFAULT_DOT,
                    params: ThermalParameters = DEFAULT_THERMAL,
                    kinetics: AnnealingKinetics = DEFAULT_KINETICS) -> float:
    """Fractional anisotropy loss suffered by the nearest neighbour.

    Returns ``1 - sharpness`` of a pristine dot one pitch away after
    the pulse; values near 0 mean the layout is safe, values near 1
    mean heating one dot destroys its neighbours too (the reliability
    worry that motivates the Manchester spreading of heated bits).
    """
    neighbor = FilmState()
    apply_pulse_to_dot(neighbor, pulse, distance=dot.pitch_x,
                       params=params, kinetics=kinetics)
    return 1.0 - neighbor.sharpness


def safe_pitch(pulse: HeatPulse,
               params: ThermalParameters = DEFAULT_THERMAL,
               kinetics: AnnealingKinetics = DEFAULT_KINETICS,
               max_damage: float = 0.01,
               search_max: float = 2e-6) -> float:
    """Smallest pitch [m] at which neighbour damage stays below
    ``max_damage``, found by bisection."""
    lo, hi = params.contact_radius, search_max

    def damage_at(pitch: float) -> float:
        probe = FilmState()
        apply_pulse_to_dot(probe, pulse, distance=pitch,
                           params=params, kinetics=kinetics)
        return 1.0 - probe.sharpness

    if damage_at(hi) > max_damage:
        raise ValueError("no safe pitch within search range")
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if damage_at(mid) > max_damage:
            lo = mid
        else:
            hi = mid
    return hi
