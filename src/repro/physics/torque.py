"""Torque magnetometry simulation (the Fig 7 measurement method).

The paper: "The anisotropy constants were calculated by a Fourier
transformation of the torque curve obtained with an applied field of
1350 kA/m."  We reproduce that *procedure*, not just the answer:

1. For each applied-field angle ``theta_H`` the magnetisation angle
   ``theta_M`` minimises the free energy
   ``E = K_u sin^2(theta_M) - mu0 Ms H cos(theta_M - theta_H)``.
2. The measured torque per unit volume is
   ``L = -mu0 Ms H sin(theta_M - theta_H)`` (the field pulling the
   magnetisation back is balanced by the anisotropy torque).
3. The ``sin(2 theta_H)`` Fourier component of the torque curve gives
   the measured anisotropy constant (with the classic finite-field
   shearing correction applied optionally).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..units import MU0
from .constants import DEFAULT_STACK, TORQUE_FIELD, MultilayerStack


def equilibrium_angle(k_u: float, ms: float, h_field: float,
                      theta_h: float) -> float:
    """Magnetisation angle minimising the uniaxial + Zeeman energy.

    Solved by damped Newton iteration on the torque-balance equation
    ``K_u sin(2 theta_M) = mu0 Ms H sin(theta_H - theta_M)``.
    """
    if h_field <= 0:
        raise ValueError("applied field must be positive")
    zeeman = MU0 * ms * h_field
    theta_m = theta_h  # strong-field starting guess
    for _ in range(100):
        f = k_u * math.sin(2.0 * theta_m) - zeeman * math.sin(theta_h - theta_m)
        fprime = 2.0 * k_u * math.cos(2.0 * theta_m) + zeeman * math.cos(theta_h - theta_m)
        if abs(fprime) < 1e-30:
            break
        step = f / fprime
        theta_m -= step
        if abs(step) < 1e-14:
            break
    return theta_m


def torque_curve(k_u: float, angles_h: Sequence[float],
                 ms: float = None, h_field: float = TORQUE_FIELD,
                 stack: MultilayerStack = None) -> np.ndarray:
    """Torque per unit volume [J/m^3] at each applied-field angle [rad]."""
    film = stack or DEFAULT_STACK
    ms_val = ms if ms is not None else film.ms
    zeeman = MU0 * ms_val * h_field
    torques = []
    for theta_h in angles_h:
        theta_m = equilibrium_angle(k_u, ms_val, h_field, theta_h)
        # Torque balance at equilibrium: the Zeeman torque equals the
        # anisotropy torque K sin(2 theta_M); the magnetometer reads
        # the latter, which tends to +K sin(2 theta_H) at high field.
        torques.append(zeeman * math.sin(theta_h - theta_m))
    return np.asarray(torques)


@dataclass
class TorqueMeasurement:
    """One simulated torque-magnetometer run.

    Attributes:
        angles_h: applied-field angles [rad].
        torque: torque curve [J/m^3].
        k_measured: anisotropy extracted from the sin(2 theta) Fourier
            component.
    """

    angles_h: np.ndarray
    torque: np.ndarray
    k_measured: float


def measure_anisotropy(k_true: float, n_angles: int = 360,
                       ms: float = None, h_field: float = TORQUE_FIELD,
                       noise_level: float = 0.0,
                       shearing_correction: bool = True,
                       rng: "np.random.Generator | None" = None,
                       stack: MultilayerStack = None) -> TorqueMeasurement:
    """Run the full Fig 7 measurement procedure on a film with ``k_true``.

    Args:
        k_true: the film's actual uniaxial anisotropy [J/m^3].
        n_angles: sample count over a full rotation.
        noise_level: relative RMS instrument noise added to the curve.
        shearing_correction: apply the first-order finite-field
            correction ``K = K_meas / (1 - K_meas/(mu0 Ms H))`` that a
            careful experimentalist applies.

    Returns:
        A :class:`TorqueMeasurement` whose ``k_measured`` should agree
        with ``k_true`` to well under a percent at 1350 kA/m.
    """
    film = stack or DEFAULT_STACK
    ms_val = ms if ms is not None else film.ms
    angles = np.linspace(0.0, 2.0 * math.pi, n_angles, endpoint=False)
    torque = torque_curve(k_true, angles, ms=ms_val, h_field=h_field, stack=film)
    if noise_level > 0.0:
        generator = rng or np.random.default_rng(0)
        scale = noise_level * max(abs(k_true), 1.0)
        torque = torque + generator.normal(0.0, scale, size=torque.shape)
    # Fourier sin(2 theta) component: L(theta) ~ +K sin(2 theta) for
    # small shearing, so K_meas = (2/N) sum L sin(2 theta).
    sin2 = np.sin(2.0 * angles)
    k_meas = 2.0 * float(np.dot(torque, sin2)) / len(angles)
    if shearing_correction:
        # Finite-field shearing is second order in K/(mu0 Ms H): the
        # sin(2 theta_H) amplitude is K (1 - (K/h)^2 / 2 + ...).
        zeeman = MU0 * ms_val * h_field
        ratio = k_meas / zeeman
        denom = 1.0 - 0.5 * ratio * ratio
        if denom > 0.5:
            k_meas = k_meas / denom
    return TorqueMeasurement(angles_h=angles, torque=torque, k_measured=k_meas)


def measure_anisotropy_batch(k_true, n_angles: int = 360,
                             ms: float = None, h_field: float = TORQUE_FIELD,
                             shearing_correction: bool = True,
                             stack: MultilayerStack = None,
                             max_iter: int = 100) -> np.ndarray:
    """Vectorised :func:`measure_anisotropy` over many films at once.

    Runs the whole Fig 7 measurement pipeline — equilibrium angles,
    torque curves, Fourier extraction, shearing correction — for every
    ``k_true`` sample as ``(n_states, n_angles)`` array operations: the
    damped Newton iteration on the torque-balance equation advances all
    states and angles together until every element has converged.
    Returns the ``k_measured`` array.  (Instrument noise belongs to the
    scalar single-measurement path; sweeps measure the clean curves.)
    """
    film = stack or DEFAULT_STACK
    ms_val = ms if ms is not None else film.ms
    if h_field <= 0:
        raise ValueError("applied field must be positive")
    zeeman = MU0 * ms_val * h_field
    k = np.asarray(k_true, dtype=float).reshape(-1, 1)
    angles = np.linspace(0.0, 2.0 * math.pi, n_angles, endpoint=False)
    theta_h = angles[None, :]
    theta_m = np.broadcast_to(theta_h, (k.shape[0], n_angles)).copy()
    for _ in range(max_iter):
        f = k * np.sin(2.0 * theta_m) - zeeman * np.sin(theta_h - theta_m)
        fprime = 2.0 * k * np.cos(2.0 * theta_m) \
            + zeeman * np.cos(theta_h - theta_m)
        step = np.divide(f, fprime, out=np.zeros_like(f),
                         where=np.abs(fprime) >= 1e-30)
        theta_m -= step
        if np.max(np.abs(step)) < 1e-14:
            break
    torque = zeeman * np.sin(theta_h - theta_m)
    k_meas = 2.0 * (torque @ np.sin(2.0 * angles)) / n_angles
    if shearing_correction:
        ratio = k_meas / zeeman
        denom = 1.0 - 0.5 * ratio * ratio
        k_meas = np.where(denom > 0.5, k_meas / np.where(denom > 0.5,
                                                         denom, 1.0), k_meas)
    return k_meas


def fourier_components(angles: Sequence[float], torque: Sequence[float],
                       max_harmonic: int = 4) -> List[float]:
    """Sine-series amplitudes of a torque curve (diagnostics).

    Returns ``[a1, a2, ...]`` where ``L = sum a_n sin(n theta)``; for a
    pure uniaxial film everything but ``a2`` vanishes.
    """
    angles_arr = np.asarray(angles)
    torque_arr = np.asarray(torque)
    comps = []
    for harmonic in range(1, max_harmonic + 1):
        basis = np.sin(harmonic * angles_arr)
        comps.append(2.0 * float(np.dot(torque_arr, basis)) / len(angles_arr))
    return comps
