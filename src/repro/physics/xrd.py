"""Kinematic X-ray diffraction of the multilayer (Figs 8 and 9).

Two scans are simulated with the same Cu K-alpha source the paper's
diffractometer used:

* **Low angle** (2-theta from 2 to 14 degrees): reflectivity from the
  multilayer's periodic electron-density modulation.  A superlattice
  Bragg peak sits at ``2 theta = 2 asin(lambda / (2 Lambda))`` — about
  8 degrees for the 1.1 nm Co/Pt period, exactly Fig 8's peak.  The
  modulation amplitude scales with the interface sharpness, so the
  annealed sample's peak vanishes.

* **High angle** (2-theta from 30 to 55 degrees): powder-style crystal
  reflections.  The as-grown 0.55 nm layers give only extremely broad,
  weak Co and Pt (111) humps (Scherrer broadening from sub-nm
  crystallites); after annealing, 20 nm fct CoPt grains produce the
  sharp (111) peak at 41.7 degrees of Fig 9.

Both are pure kinematic sums — adequate because we only need peak
*positions* and their appearance/disappearance, not absolute
reflectivities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..units import CU_KALPHA_WAVELENGTH, NM
from .annealing import FilmEnsemble, FilmState
from .constants import (
    CO_FCC_111_D_SPACING,
    COPT_111_D_SPACING,
    DEFAULT_STACK,
    PT_FCC_111_D_SPACING,
    MultilayerStack,
)

# Relative electron densities (arbitrary units, ~Z/atomic volume).
_RHO_PT = 5.2
_RHO_CO = 2.3


@dataclass
class XRDScan:
    """A simulated diffraction scan.

    Attributes:
        two_theta_deg: scan abscissa [degrees].
        intensity: diffracted intensity [arbitrary units].
    """

    two_theta_deg: np.ndarray
    intensity: np.ndarray

    def peak_two_theta(self, lo: float = None, hi: float = None) -> float:
        """2-theta of the highest intensity inside [lo, hi] degrees."""
        mask = np.ones_like(self.two_theta_deg, dtype=bool)
        if lo is not None:
            mask &= self.two_theta_deg >= lo
        if hi is not None:
            mask &= self.two_theta_deg <= hi
        if not mask.any():
            raise ValueError("empty 2-theta window")
        idx = int(np.argmax(np.where(mask, self.intensity, -np.inf)))
        return float(self.two_theta_deg[idx])

    def peak_intensity(self, lo: float = None, hi: float = None) -> float:
        """Maximum intensity inside [lo, hi] degrees."""
        mask = np.ones_like(self.two_theta_deg, dtype=bool)
        if lo is not None:
            mask &= self.two_theta_deg >= lo
        if hi is not None:
            mask &= self.two_theta_deg <= hi
        return float(self.intensity[mask].max())


def bragg_two_theta(d_spacing: float,
                    wavelength: float = CU_KALPHA_WAVELENGTH) -> float:
    """First-order Bragg angle 2-theta [degrees] for ``d_spacing`` [m]."""
    s = wavelength / (2.0 * d_spacing)
    if s >= 1.0:
        raise ValueError("d-spacing below lambda/2: no reflection")
    return math.degrees(2.0 * math.asin(s))


def _density_profile(stack: MultilayerStack, sharpness: float,
                     dz: float) -> np.ndarray:
    """Electron-density profile rho(z) through the stack, with the
    Co/Pt contrast reduced towards the mean as interfaces mix."""
    mean = (_RHO_CO * stack.t_co + _RHO_PT * stack.t_pt) / stack.bilayer_period
    n_co = max(int(round(stack.t_co / dz)), 1)
    n_pt = max(int(round(stack.t_pt / dz)), 1)
    co = mean + sharpness * (_RHO_CO - mean)
    pt = mean + sharpness * (_RHO_PT - mean)
    bilayer = np.concatenate([np.full(n_co, co), np.full(n_pt, pt)])
    return np.tile(bilayer, stack.n_bilayers)


def low_angle_scan(state: FilmState = None,
                   stack: MultilayerStack = None,
                   two_theta_deg: Sequence[float] = None,
                   wavelength: float = CU_KALPHA_WAVELENGTH) -> XRDScan:
    """Simulate the Fig 8 low-angle reflectivity scan.

    Args:
        state: microstructure (defaults to as-grown); its ``sharpness``
            sets the multilayer contrast.
        two_theta_deg: abscissa; defaults to 2..14 degrees.
    """
    film = stack or DEFAULT_STACK
    sharpness = 1.0 if state is None else state.sharpness
    if two_theta_deg is None:
        two_theta_deg = np.linspace(2.0, 14.0, 481)
    angles = np.asarray(two_theta_deg, dtype=float)
    dz = 0.05 * NM
    rho = _density_profile(film, sharpness, dz)
    rho = rho - rho.mean()  # only the modulation diffracts off-specular
    z = np.arange(len(rho)) * dz
    theta = np.radians(angles / 2.0)
    q = 4.0 * math.pi * np.sin(theta) / wavelength  # [1/m]
    phases = np.exp(1j * np.outer(q, z))
    amplitude = phases @ rho * dz
    intensity = np.abs(amplitude) ** 2
    # Instrument background + Fresnel-like decay envelope.
    background = 1e-21 * (angles.min() / angles) ** 2
    return XRDScan(two_theta_deg=angles, intensity=intensity + background)


def _scherrer_fwhm_deg(grain_size: float, two_theta_deg: float,
                       wavelength: float) -> float:
    """Scherrer peak width (FWHM, degrees of 2-theta)."""
    theta = math.radians(two_theta_deg / 2.0)
    beta = 0.9 * wavelength / (grain_size * math.cos(theta))  # radians
    return math.degrees(beta)


def _gaussian_peak(angles: np.ndarray, center: float, fwhm: float,
                   height: float) -> np.ndarray:
    sigma = fwhm / 2.35482
    return height * np.exp(-0.5 * ((angles - center) / sigma) ** 2)


def high_angle_scan(state: FilmState = None,
                    stack: MultilayerStack = None,
                    two_theta_deg: Sequence[float] = None,
                    wavelength: float = CU_KALPHA_WAVELENGTH,
                    annealed_grain_size: float = 20.0 * NM) -> XRDScan:
    """Simulate the Fig 9 high-angle scan.

    The as-grown film contributes broad, weak Co(111)/Pt(111) humps
    whose crystallite size equals the individual layer thickness; the
    crystallised fraction contributes a sharp fct CoPt (111) peak at
    41.7 degrees whose width is set by ``annealed_grain_size``.
    """
    film = stack or DEFAULT_STACK
    if state is None:
        state = FilmState()
    if two_theta_deg is None:
        two_theta_deg = np.linspace(30.0, 55.0, 1001)
    angles = np.asarray(two_theta_deg, dtype=float)
    intensity = np.full_like(angles, 5.0)  # flat instrument background

    multilayer_fraction = 1.0 - state.crystalline_fraction
    if multilayer_fraction > 0:
        for d_spacing, thickness, weight in (
            (CO_FCC_111_D_SPACING, film.t_co, _RHO_CO),
            (PT_FCC_111_D_SPACING, film.t_pt, _RHO_PT),
        ):
            center = bragg_two_theta(d_spacing, wavelength)
            fwhm = _scherrer_fwhm_deg(thickness, center, wavelength)
            height = 40.0 * weight * multilayer_fraction / fwhm
            intensity += _gaussian_peak(angles, center, fwhm, height)

    if state.crystalline_fraction > 0:
        center = bragg_two_theta(COPT_111_D_SPACING, wavelength)
        fwhm = _scherrer_fwhm_deg(annealed_grain_size, center, wavelength)
        height = 4000.0 * state.crystalline_fraction / fwhm
        intensity += _gaussian_peak(angles, center, fwhm, height)

    return XRDScan(two_theta_deg=angles, intensity=intensity)


@dataclass
class XRDScanSet:
    """A batch of diffraction scans sharing one abscissa.

    Attributes:
        two_theta_deg: common scan abscissa [degrees], shape
            ``(n_angles,)``.
        intensity: per-state intensities, shape ``(n_states, n_angles)``.
    """

    two_theta_deg: np.ndarray
    intensity: np.ndarray

    def __len__(self) -> int:
        return int(self.intensity.shape[0])

    def scan(self, i: int) -> XRDScan:
        """State ``i``'s scan as a scalar :class:`XRDScan`."""
        return XRDScan(two_theta_deg=self.two_theta_deg,
                       intensity=self.intensity[i])

    def scans(self) -> "list[XRDScan]":
        """All states as scalar :class:`XRDScan` objects."""
        return [self.scan(i) for i in range(len(self))]


def low_angle_scan_set(ensemble: FilmEnsemble,
                       stack: MultilayerStack = None,
                       two_theta_deg: Sequence[float] = None,
                       wavelength: float = CU_KALPHA_WAVELENGTH) -> XRDScanSet:
    """Batched Fig 8 low-angle scans of a whole :class:`FilmEnsemble`.

    The off-specular modulation amplitude is *linear* in the interface
    sharpness (the density profile is ``mean + s * contrast``), so the
    kinematic sum is evaluated once for a fully sharp film and every
    state's intensity is the base curve scaled by ``sharpness**2`` —
    an ``(n_states, n_angles)`` broadcast instead of one profile
    synthesis and phase matrix per state.
    """
    film = stack or DEFAULT_STACK
    if two_theta_deg is None:
        two_theta_deg = np.linspace(2.0, 14.0, 481)
    angles = np.asarray(two_theta_deg, dtype=float)
    dz = 0.05 * NM
    rho = _density_profile(film, 1.0, dz)
    rho = rho - rho.mean()
    z = np.arange(len(rho)) * dz
    theta = np.radians(angles / 2.0)
    q = 4.0 * math.pi * np.sin(theta) / wavelength  # [1/m]
    phases = np.exp(1j * np.outer(q, z))
    base = np.abs(phases @ rho * dz) ** 2
    background = 1e-21 * (angles.min() / angles) ** 2
    sharpness = np.asarray(ensemble.sharpness, dtype=float)
    intensity = np.outer(sharpness * sharpness, base) + background[None, :]
    return XRDScanSet(two_theta_deg=angles, intensity=intensity)


def high_angle_scan_set(ensemble: FilmEnsemble,
                        stack: MultilayerStack = None,
                        two_theta_deg: Sequence[float] = None,
                        wavelength: float = CU_KALPHA_WAVELENGTH,
                        annealed_grain_size: float = 20.0 * NM) -> XRDScanSet:
    """Batched Fig 9 high-angle scans of a whole :class:`FilmEnsemble`.

    Both peak families are linear in their phase fraction — the broad
    Co/Pt humps in the multilayer fraction, the sharp fct CoPt (111)
    peak in the crystalline fraction — so each peak shape is synthesised
    once and the ensemble intensity is two rank-1 outer products over
    the state fractions.
    """
    film = stack or DEFAULT_STACK
    if two_theta_deg is None:
        two_theta_deg = np.linspace(30.0, 55.0, 1001)
    angles = np.asarray(two_theta_deg, dtype=float)
    multilayer_peaks = np.zeros_like(angles)
    for d_spacing, thickness, weight in (
        (CO_FCC_111_D_SPACING, film.t_co, _RHO_CO),
        (PT_FCC_111_D_SPACING, film.t_pt, _RHO_PT),
    ):
        center = bragg_two_theta(d_spacing, wavelength)
        fwhm = _scherrer_fwhm_deg(thickness, center, wavelength)
        multilayer_peaks += _gaussian_peak(angles, center, fwhm,
                                           40.0 * weight / fwhm)
    center = bragg_two_theta(COPT_111_D_SPACING, wavelength)
    fwhm = _scherrer_fwhm_deg(annealed_grain_size, center, wavelength)
    crystal_peak = _gaussian_peak(angles, center, fwhm, 4000.0 / fwhm)
    cf = np.asarray(ensemble.crystalline_fraction, dtype=float)
    fractions = np.stack([1.0 - cf, cf], axis=1)
    intensity = fractions @ np.stack([multilayer_peaks, crystal_peak])
    intensity += 5.0
    return XRDScanSet(two_theta_deg=angles, intensity=intensity)


def multilayer_peak_visible(scan: XRDScan, lo: float = 6.0, hi: float = 10.0,
                            contrast: float = 3.0) -> bool:
    """Decide whether the Fig 8 superlattice peak is visible: peak
    intensity inside [lo, hi] must exceed ``contrast`` times the median
    background of the scan."""
    background = float(np.median(scan.intensity))
    return scan.peak_intensity(lo, hi) > contrast * background
