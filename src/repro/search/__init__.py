"""Searchable evidence index with standing tamper alerts.

An inverted index over sealed-object metadata, per-member audit
verdicts, placement, and evidence exports:

- :class:`EvidenceIndex` — the index itself: journaled ingest,
  postings-backed :meth:`~EvidenceIndex.search` (term/field filters,
  facets, snippet highlighting), :meth:`~EvidenceIndex.rebuild` from
  the hash-chained journal, and the percolator hooks.
- :func:`scan_search` — the naive full-scan equivalent (bench
  baseline and oracle: both paths return identical results).
- :class:`Percolator` / :class:`StandingQuery` /
  :class:`TamperAlert` — standing queries that fire typed alerts on
  the audit fold that flips a document into matching.

Incremental maintenance rides the fleet's existing passes: call
``FleetStore.attach_indexer(index)`` and every put/seal/delete/
export/audit feeds the index from payloads the fleet already
computed — no extra fleet traffic.  The gateway exposes the index at
``/v1/t/<tenant>/search`` (tenant-confined) and ``/v1/admin/alerts``.

Highlighting knobs (`fragment_size`, `fragment_count`, `max_hits`)
resolve through the five-layer policy chain — explicit argument >
``repro.engine(...)`` context > installed policy > ``REPRO_SEARCH_*``
env vars > defaults.
"""

from .index import (
    EvidenceIndex,
    IndexJournal,
    JournalEntry,
    JournalError,
    MAX_TEXT_CHARS,
)
from .percolator import Percolator, StandingQuery, TamperAlert
from .query import (
    Query,
    SearchHit,
    SearchResult,
    as_query,
    doc_terms,
    highlight_fragments,
    normalize,
    scan_search,
    tokenize,
)

__all__ = [
    "EvidenceIndex",
    "IndexJournal",
    "JournalEntry",
    "JournalError",
    "MAX_TEXT_CHARS",
    "Percolator",
    "StandingQuery",
    "TamperAlert",
    "Query",
    "SearchHit",
    "SearchResult",
    "as_query",
    "doc_terms",
    "highlight_fragments",
    "normalize",
    "scan_search",
    "tokenize",
]
