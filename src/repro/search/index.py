"""The evidence index: hash-chained journal, inverted index, rebuild.

Everything the index knows arrives as a *journaled event* — a
``(kind, payload)`` record appended to a SHA-256 hash chain before it
is folded into the in-memory structures (the same journal-then-fold
discipline the store applies to its self-securing instruction log).
Incremental maintenance rides the fleet's own operation results: a
:class:`repro.api.FleetStore` with an attached indexer calls the
``note_*`` hooks with payloads the fleet already computed (seal
receipts, per-member audit verdicts folded back through
``StoreStatePatch``), so index updates cost **no extra fleet
traffic**.

Because the journal is the single source of truth,
:meth:`EvidenceIndex.rebuild` replays it into a fresh index that is
byte-identical (:meth:`EvidenceIndex.canonical_bytes`) to the
incrementally maintained one — including the percolator's standing
queries, transition memory, and fired-alert log, which are themselves
journaled events.  The index is never a second source of truth.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .percolator import Percolator, StandingQuery, TamperAlert
from .query import (
    Query,
    SearchResult,
    as_query,
    assemble_result,
    doc_terms,
    normalize,
)

_JOURNAL_SEED = hashlib.sha256(b"repro-search-journal").digest()

#: Maximum evidence text retained per exhibit document — enough for
#: snippet highlighting without the index swallowing whole exports.
MAX_TEXT_CHARS = 4096


def _record_bytes(kind: str, payload: Mapping[str, object],
                  tick: int) -> bytes:
    return json.dumps({"kind": kind, "payload": payload, "tick": tick},
                      sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class JournalEntry:
    """One journaled index event, chained to its predecessor."""

    tick: int
    kind: str
    payload: Dict[str, object]
    digest: bytes


class JournalError(Exception):
    """The index journal's hash chain failed to verify."""


class IndexJournal:
    """An append-only hash chain of index events.

    Each entry's digest covers the previous digest plus the canonical
    JSON of the record, so any splice, drop, or edit breaks
    :meth:`verify` — the journal inherits the store's tamper-evidence
    discipline.
    """

    def __init__(self) -> None:
        self.entries: List[JournalEntry] = []
        self._head = _JOURNAL_SEED

    @property
    def head(self) -> bytes:
        return self._head

    def append(self, kind: str, payload: Mapping[str, object],
               tick: int) -> JournalEntry:
        digest = hashlib.sha256(
            self._head + _record_bytes(kind, payload, tick)).digest()
        entry = JournalEntry(tick=tick, kind=kind,
                             payload=dict(payload), digest=digest)
        self.entries.append(entry)
        self._head = digest
        return entry

    def verify(self) -> None:
        """Recompute the chain; raise :class:`JournalError` on any
        mismatch."""
        head = _JOURNAL_SEED
        for position, entry in enumerate(self.entries):
            expected = hashlib.sha256(
                head + _record_bytes(entry.kind, entry.payload,
                                     entry.tick)).digest()
            if expected != entry.digest:
                raise JournalError(
                    f"journal entry {position} ({entry.kind!r}, tick "
                    f"{entry.tick}) breaks the hash chain")
            head = expected
        if head != self._head:
            raise JournalError("journal head does not match the chain")

    def __len__(self) -> int:
        return len(self.entries)


def _tenant_of(path: str) -> Optional[str]:
    """Tenant namespace of a gateway-style ``/t/<tenant>/…`` path."""
    parts = path.split("/")
    if len(parts) >= 4 and parts[0] == "" and parts[1] == "t" \
            and parts[2]:
        return parts[2]
    return None


class EvidenceIndex:
    """Inverted index over store evidence, with standing alerts.

    Thread-safe: the fleet's notify hooks may land from worker
    threads; one re-entrant lock guards ingest and search.  Journal
    order under concurrency is whatever the threads produce — the
    rebuild identity holds for *that* order, which is the property
    the soak asserts at every checkpoint.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.journal = IndexJournal()
        self.documents: Dict[str, Dict[str, object]] = {}
        self._value_postings: Dict[Tuple[str, str], Set[str]] = {}
        self._term_postings: Dict[str, Set[str]] = {}
        self._doc_terms: Dict[str, Dict[str, int]] = {}
        self._doc_values: Dict[str, List[Tuple[str, str]]] = {}
        # (member index, line_start) → doc id, so audit verdicts find
        # the object document their receipt sealed.
        self._line_to_doc: Dict[Tuple[int, int], str] = {}
        self.percolator = Percolator()
        self.epoch = 0
        self._tick = 0

    # -- ingest -----------------------------------------------------------

    def _ingest(self, kind: str,
                payload: Dict[str, object]) -> List[TamperAlert]:
        with self._lock:
            self._tick += 1
            self.journal.append(kind, payload, self._tick)
            return self._fold(kind, payload, self._tick)

    def note_put(self, path: str, *, size: int,
                 member: Optional[int] = None) -> None:
        """An object was written (or overwritten, un-sealing it)."""
        self._ingest("put", {"path": path, "size": size,
                             "member": member})

    def note_seal(self, receipt, *,
                  member: Optional[int] = None) -> None:
        """An object was sealed; ``receipt`` is a
        :class:`repro.api.SealReceipt`."""
        self._ingest("seal", {
            "path": receipt.path,
            "line_start": receipt.line_start,
            "n_blocks": receipt.n_blocks,
            "line_hash": receipt.line_hash.hex(),
            "timestamp": receipt.timestamp,
            "member": member,
        })

    def note_delete(self, path: str) -> None:
        """An object was deleted; its document leaves the index."""
        self._ingest("delete", {"path": path})

    def note_export(self, export, *, member: Optional[int] = None,
                    exhibits: Optional[Mapping[str, bytes]] = None
                    ) -> None:
        """An evidence bag was exported; ``export`` is a
        :class:`repro.api.EvidenceExport`.  ``exhibits`` optionally
        maps exhibit names to their bytes so snippets can highlight
        into the evidence text."""
        items = []
        exhibits = exhibits or {}
        # export.reports are labelled "<directory>/<name>" — join them
        # back to the bag items by exhibit name
        reports_by_name = {}
        prefix = f"{export.directory}/"
        for report in export.reports:
            if report.label and report.label.startswith(prefix):
                reports_by_name[report.label[len(prefix):]] = report
        for item in export.items:
            text = ""
            if item.name in exhibits:
                text = exhibits[item.name].decode(
                    "utf-8", "replace")[:MAX_TEXT_CHARS]
            report = reports_by_name.get(item.name)
            items.append({
                "name": item.name,
                "label": f"{export.directory}/{item.name}",
                "intact": report.intact if report else None,
                "verdict": report.status.value if report else None,
                "text": text,
            })
        self._ingest("export", {"case": export.case,
                                "intact": export.intact,
                                "member": member, "items": items})

    def note_audit(self, report, *,
                   failures: Sequence = ()) -> List[TamperAlert]:
        """A fleet audit completed; fold its typed per-member verdict
        records (:class:`repro.api.MemberVerdictRecord`) plus any
        degraded-pass :class:`repro.parallel.MemberFailure` slots.
        Returns the tamper alerts this pass fired."""
        with self._lock:
            return self._note_audit_locked(report, failures)

    def _note_audit_locked(self, report,
                           failures: Sequence) -> List[TamperAlert]:
        verdicts = []
        for record in getattr(report, "member_records", ()):
            verdicts.append({
                "member": record.member,
                "label": record.report.label,
                "status": record.report.status.value,
                "tamper_evident": record.report.tamper_evident,
                "line_start": record.report.line_start,
            })
        failure_payload = []
        for failure in failures:
            failure_payload.append({
                "member": failure.index,
                "error_type": failure.error_type,
                "message": failure.message,
                "timed_out": failure.timed_out,
            })
        return self._ingest("audit", {
            "epoch": self.epoch + 1,
            "clean": bool(getattr(report, "clean", False)),
            "verdicts": verdicts,
            "failures": failure_payload,
        })

    def register_alert(self, name: str, query: Union[str, Query], *,
                       tenant: Optional[str] = None) -> StandingQuery:
        """Register a standing query; journaled so rebuilds reproduce
        the alert sequence."""
        text = as_query(query).to_text() if isinstance(query, Query) \
            else str(query)
        as_query(text)  # validate before journaling
        self._ingest("register", {"name": name, "query": text,
                                  "tenant": tenant})
        return self.percolator.standing[name]

    def unregister_alert(self, name: str) -> bool:
        with self._lock:
            if name not in self.percolator.standing:
                return False
            self._ingest("unregister", {"name": name})
            return True

    # -- fold -------------------------------------------------------------

    def _fold(self, kind: str, payload: Mapping[str, object],
              tick: int) -> List[TamperAlert]:
        fired: List[TamperAlert] = []
        if kind == "put":
            path = str(payload["path"])
            doc_id = f"obj:{path}"
            fields = dict(self.documents.get(doc_id, ()))
            fields.update({"type": "object", "path": path,
                           "size": payload["size"], "sealed": False})
            # A rewrite un-seals: stale seal/verdict facts must go.
            for stale in ("line_start", "line_hash", "sealed_at",
                          "verdict", "tampered"):
                fields.pop(stale, None)
            self._set_doc(doc_id, self._common_fields(
                fields, path, payload.get("member")))
        elif kind == "seal":
            path = str(payload["path"])
            doc_id = f"obj:{path}"
            fields = dict(self.documents.get(doc_id, ()))
            fields.update({
                "type": "object", "path": path, "sealed": True,
                "line_start": payload["line_start"],
                "line_hash": payload["line_hash"],
                "sealed_at": payload["timestamp"],
            })
            fields = self._common_fields(fields, path,
                                         payload.get("member"))
            self._set_doc(doc_id, fields)
            member = payload.get("member")
            if member is not None:
                self._line_to_doc[(int(member),  # type: ignore[arg-type]
                                   int(payload["line_start"])  # type: ignore[arg-type]
                                   )] = doc_id
        elif kind == "delete":
            doc_id = f"obj:{payload['path']}"
            self._drop_doc(doc_id)
            self._line_to_doc = {key: value for key, value
                                 in self._line_to_doc.items()
                                 if value != doc_id}
        elif kind == "export":
            case = str(payload["case"])
            tenant = case.split("--", 1)[0] if "--" in case else None
            for item in payload["items"]:  # type: ignore[union-attr]
                doc_id = f"ev:{case}/{item['name']}"
                fields: Dict[str, object] = {
                    "type": "evidence", "case": case,
                    "name": item["name"], "label": item["label"],
                }
                if item.get("intact") is not None:
                    fields["intact"] = item["intact"]
                if item.get("verdict") is not None:
                    fields["verdict"] = item["verdict"]
                if tenant:
                    fields["tenant"] = tenant
                if payload.get("member") is not None:
                    fields["member"] = f"m{payload['member']}"
                if item["text"]:
                    fields["text"] = item["text"]
                self._set_doc(doc_id, fields)
        elif kind == "audit":
            self.epoch = int(payload["epoch"])  # type: ignore[arg-type]
            changed: List[str] = []
            for verdict in payload["verdicts"]:  # type: ignore[union-attr]
                member = int(verdict["member"])
                line_start = verdict.get("line_start")
                doc_id = None
                if line_start is not None:
                    doc_id = self._line_to_doc.get(
                        (member, int(line_start)))
                if doc_id is None:
                    label = verdict.get("label") or \
                        f"line:{line_start}"
                    doc_id = f"line:m{member}:{label}"
                fields = dict(self.documents.get(doc_id, ()))
                if not fields:
                    fields = {"type": "line", "member": f"m{member}"}
                    if verdict.get("label"):
                        fields["label"] = verdict["label"]
                    if line_start is not None:
                        fields["line_start"] = line_start
                fields["verdict"] = verdict["status"]
                fields["tampered"] = bool(verdict["tamper_evident"])
                fields["epoch"] = self.epoch
                self._set_doc(doc_id, fields)
                changed.append(doc_id)
            for failure in payload["failures"]:  # type: ignore[union-attr]
                member = int(failure["member"])
                doc_id = f"fail:e{self.epoch}:m{member}"
                self._set_doc(doc_id, {
                    "type": "failure", "member": f"m{member}",
                    "epoch": self.epoch,
                    "verdict": "member-failure",
                    "error_type": failure["error_type"],
                    "message": failure["message"],
                    "timed_out": failure["timed_out"],
                })
                changed.append(doc_id)
            for doc_id in changed:
                fired.extend(self.percolator.percolate(
                    doc_id, self.documents[doc_id],
                    epoch=self.epoch, tick=tick))
        elif kind == "register":
            self.percolator.register(StandingQuery(
                name=str(payload["name"]),
                query=str(payload["query"]),
                tenant=(None if payload.get("tenant") is None
                        else str(payload["tenant"]))))
        elif kind == "unregister":
            self.percolator.unregister(str(payload["name"]))
        else:  # pragma: no cover - journals only carry known kinds
            raise ValueError(f"unknown journal kind {kind!r}")
        return fired

    @staticmethod
    def _common_fields(fields: Dict[str, object], path: str,
                       member: Optional[object]) -> Dict[str, object]:
        tenant = _tenant_of(path)
        if tenant:
            fields["tenant"] = tenant
        if member is not None:
            fields["member"] = f"m{member}"
        return fields

    # -- postings maintenance --------------------------------------------

    def _set_doc(self, doc_id: str,
                 fields: Dict[str, object]) -> None:
        self._drop_doc(doc_id)
        self.documents[doc_id] = fields
        values = [(name, normalize(value))
                  for name, value in fields.items()]
        self._doc_values[doc_id] = values
        for key in values:
            self._value_postings.setdefault(key, set()).add(doc_id)
        counts = doc_terms(fields)
        self._doc_terms[doc_id] = counts
        for token in counts:
            self._term_postings.setdefault(token, set()).add(doc_id)

    def _drop_doc(self, doc_id: str) -> None:
        if doc_id not in self.documents:
            return
        for key in self._doc_values.pop(doc_id, ()):
            postings = self._value_postings.get(key)
            if postings is not None:
                postings.discard(doc_id)
                if not postings:
                    del self._value_postings[key]
        for token in self._doc_terms.pop(doc_id, ()):
            postings = self._term_postings.get(token)
            if postings is not None:
                postings.discard(doc_id)
                if not postings:
                    del self._term_postings[token]
        del self.documents[doc_id]

    # -- search -----------------------------------------------------------

    def search(self, query: Union[str, Query] = "", *,
               facets: Sequence[str] = (),
               limit: Optional[int] = None,
               highlight: bool = False,
               fragment_size: Optional[int] = None,
               fragment_count: Optional[int] = None) -> SearchResult:
        """Execute one query against the postings.

        Candidates come from intersecting the filter and term
        postings (the empty query matches every document); the shared
        assembler then orders, bounds, facets and highlights — so the
        result is identical to :func:`repro.search.scan_search` over
        the same documents.
        """
        parsed = as_query(query)
        with self._lock:
            candidate_sets: List[Set[str]] = []
            for name, value in parsed.filters:
                candidate_sets.append(
                    self._value_postings.get((name, value), set()))
            for term in parsed.terms:
                candidate_sets.append(
                    self._term_postings.get(term, set()))
            if candidate_sets:
                candidates: Iterable[str] = set.intersection(
                    *candidate_sets)
            else:
                candidates = self.documents.keys()
            matched = {doc_id: self.documents[doc_id]
                       for doc_id in candidates}
            return assemble_result(
                parsed, matched,
                lambda doc_id: self._doc_terms[doc_id],
                facets=facets, limit=limit, highlight=highlight,
                fragment_size=fragment_size,
                fragment_count=fragment_count)

    # -- integrity --------------------------------------------------------

    def verify_journal(self) -> None:
        with self._lock:
            self.journal.verify()

    def rebuild(self) -> "EvidenceIndex":
        """Replay the journal into a fresh index.

        The journal is the single source of truth: the result is
        byte-identical (:meth:`canonical_bytes`) to this index,
        including fired alerts and percolator transition state.
        """
        with self._lock:
            entries = list(self.journal.entries)
        fresh = EvidenceIndex()
        for entry in entries:
            fresh._tick = entry.tick
            fresh.journal.append(entry.kind, entry.payload, entry.tick)
            fresh._fold(entry.kind, entry.payload, entry.tick)
        return fresh

    def canonical_bytes(self) -> bytes:
        """Canonical JSON of the entire index state — documents,
        postings, epoch/tick, journal head, percolator state — for
        the incremental ≡ rebuild byte-identity checks."""
        with self._lock:
            state = {
                "documents": {doc_id: dict(sorted(fields.items(),
                                                  key=lambda kv: kv[0]))
                              for doc_id, fields
                              in sorted(self.documents.items())},
                "value_postings": {
                    f"{name}={value}": sorted(postings)
                    for (name, value), postings
                    in sorted(self._value_postings.items())},
                "term_postings": {token: sorted(postings)
                                  for token, postings
                                  in sorted(self._term_postings.items())},
                "line_to_doc": {f"m{member}:{line_start}": doc_id
                                for (member, line_start), doc_id
                                in sorted(self._line_to_doc.items())},
                "epoch": self.epoch,
                "tick": self._tick,
                "journal_head": self.journal.head.hex(),
                "journal_len": len(self.journal),
                "percolator": self.percolator.state_digest_payload(),
            }
            return json.dumps(state, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")

    # -- read-only views --------------------------------------------------

    @property
    def alerts(self) -> List[TamperAlert]:
        with self._lock:
            return list(self.percolator.alerts)

    def standing_queries(self) -> List[StandingQuery]:
        with self._lock:
            return [self.percolator.standing[name]
                    for name in sorted(self.percolator.standing)]

    def __len__(self) -> int:
        with self._lock:
            return len(self.documents)
