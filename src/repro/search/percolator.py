"""The percolator: standing queries that fire typed tamper alerts.

The classic search flow asks "which documents match this query?"; the
percolator inverts it — queries are *registered* and every changed
document is matched against the standing set (the index/percolator
split follows openaleph-search).  When an audit fold flips a document
into matching a standing query, a typed :class:`TamperAlert` fires;
the ``(query, document)`` pair is then remembered so the same
unchanged verdict does not re-fire on the next audit pass.  When a
later fold flips the document back out of matching (e.g. the line was
re-sealed clean), the pair is discarded and a future regression fires
again.

That transition discipline is what makes the soak's invariant checks
meaningful: an injected tamper fires its standing alert **exactly
once**, and a clean run fires none.  All state changes flow through
:meth:`Percolator.percolate`, driven by the index's journaled folds,
so a :meth:`repro.search.EvidenceIndex.rebuild` reproduces the exact
alert sequence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from .query import Query, as_query


@dataclass(frozen=True)
class StandingQuery:
    """One registered query, optionally confined to a tenant."""

    name: str
    query: str
    tenant: Optional[str] = None


@dataclass(frozen=True)
class TamperAlert:
    """One standing-query firing, pinned to the epoch and journal
    tick of the audit fold that triggered it."""

    name: str
    query: str
    doc_id: str
    epoch: int
    tick: int
    member: Optional[str] = None
    label: Optional[str] = None
    verdict: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "query": self.query,
            "doc_id": self.doc_id,
            "epoch": self.epoch,
            "tick": self.tick,
            "member": self.member,
            "label": self.label,
            "verdict": self.verdict,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "TamperAlert":
        return cls(
            name=str(payload["name"]),
            query=str(payload["query"]),
            doc_id=str(payload["doc_id"]),
            epoch=int(payload["epoch"]),  # type: ignore[arg-type]
            tick=int(payload["tick"]),  # type: ignore[arg-type]
            member=(None if payload.get("member") is None
                    else str(payload["member"])),
            label=(None if payload.get("label") is None
                   else str(payload["label"])),
            verdict=(None if payload.get("verdict") is None
                     else str(payload["verdict"])),
        )


@dataclass
class Percolator:
    """Standing-query registry plus the fired-alert log."""

    standing: Dict[str, StandingQuery] = field(default_factory=dict)
    alerts: List[TamperAlert] = field(default_factory=list)
    _compiled: Dict[str, Query] = field(default_factory=dict)
    # (query name, doc id) pairs currently matching — the transition
    # memory that makes alerts fire exactly once per flip.
    _matched: Set[Tuple[str, str]] = field(default_factory=set)

    def register(self, standing: StandingQuery) -> None:
        """Register (or replace) a standing query by name."""
        as_query(standing.query)  # validate the grammar up front
        if standing.name in self.standing:
            self._forget(standing.name)
        self.standing[standing.name] = standing
        self._compiled[standing.name] = as_query(standing.query)

    def unregister(self, name: str) -> bool:
        """Drop a standing query; fired alerts stay in the log."""
        if name not in self.standing:
            return False
        del self.standing[name]
        del self._compiled[name]
        self._forget(name)
        return True

    def _forget(self, name: str) -> None:
        self._matched = {pair for pair in self._matched
                         if pair[0] != name}

    def percolate(self, doc_id: str, fields: Mapping[str, object], *,
                  epoch: int, tick: int) -> List[TamperAlert]:
        """Match one changed document against every standing query.

        Fires on the transition *into* matching; forgets on the
        transition out, re-arming the pair.  Returns (and logs) the
        alerts fired by this document change.
        """
        fired: List[TamperAlert] = []
        for name in sorted(self.standing):
            sq = self.standing[name]
            if sq.tenant is not None and \
                    fields.get("tenant") != sq.tenant:
                continue
            key = (name, doc_id)
            if self._compiled[name].matches(fields):
                if key in self._matched:
                    continue
                self._matched.add(key)
                member = fields.get("member")
                label = fields.get("label") or fields.get("path")
                verdict = fields.get("verdict")
                alert = TamperAlert(
                    name=name, query=sq.query, doc_id=doc_id,
                    epoch=epoch, tick=tick,
                    member=None if member is None else str(member),
                    label=None if label is None else str(label),
                    verdict=None if verdict is None else str(verdict))
                self.alerts.append(alert)
                fired.append(alert)
            else:
                self._matched.discard(key)
        return fired

    def state_digest_payload(self) -> Dict[str, object]:
        """The percolator's canonical state, for index fingerprints."""
        return {
            "standing": [
                {"name": sq.name, "query": sq.query,
                 "tenant": sq.tenant}
                for _, sq in sorted(self.standing.items())
            ],
            "alerts": [alert.to_json() for alert in self.alerts],
            "matched": sorted(list(pair) for pair in self._matched),
        }

    def state_digest_bytes(self) -> bytes:
        return json.dumps(self.state_digest_payload(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
