"""The query layer: term/field filters, facets, snippet highlighting.

The grammar is deliberately small — a query string is whitespace-split
into *field filters* (``verdict:cell-tampered``, ``member:m2``,
``tenant:acme``) and *free terms* (bare words, matched against every
tokenised field of a document).  A document matches when **all**
filters and **all** terms match; scoring is the summed occurrence
count of the free terms, with the document id as the deterministic
tie-break, so two runs (or an indexed and a full-scan execution) order
hits identically.

Snippet highlighting follows the openaleph-search parameter surface
(SNIPPETS.md snippet 2): a ``fragment_size`` / ``fragment_count`` pair
resolved through the five-layer policy chain
(:func:`repro.api.policy.resolve_search_fragment_size` /
``REPRO_SEARCH_FRAGMENT_SIZE`` and friends), ``fragment_count=0``
meaning "the whole text, highlighted".  Matches are wrapped in
``<em>`` tags.

:func:`scan_search` is the *naive full-scan equivalent* of
:meth:`repro.search.EvidenceIndex.search` — it re-tokenises every
document per query.  It exists as the honest baseline the search
bench floors the inverted index against (and as an oracle: both paths
must return identical results).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..api.policy import (
    resolve_search_fragment_count,
    resolve_search_fragment_size,
    resolve_search_max_hits,
)

_TOKEN_RE = re.compile(r"[a-z0-9]+")
_FIELD_RE = re.compile(r"^[a-z_][a-z0-9_]*$")


def tokenize(text: str) -> List[str]:
    """Lowercase alphanumeric tokens of ``text``, in order."""
    return _TOKEN_RE.findall(text.lower())


def normalize(value: object) -> str:
    """Canonical match form of one document field value (filters
    compare against this, so ``tampered:true`` matches a bool)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value).lower()


def doc_terms(fields: Mapping[str, object]) -> Dict[str, int]:
    """Token → occurrence count over every value of one document."""
    counts: Dict[str, int] = {}
    for value in fields.values():
        text = value if isinstance(value, str) else normalize(value)
        for token in tokenize(text):
            counts[token] = counts.get(token, 0) + 1
    return counts


@dataclass(frozen=True)
class Query:
    """One parsed query: free terms plus exact field filters."""

    terms: Tuple[str, ...] = ()
    filters: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def parse(cls, text: str) -> "Query":
        """Parse the ``field:value`` / free-term grammar.

        A piece with a colon whose left side is a field identifier
        becomes a filter (value lowercased, matched exactly against
        the normalised field value); everything else tokenises into
        free terms.
        """
        terms: List[str] = []
        filters: List[Tuple[str, str]] = []
        for piece in text.split():
            name, sep, value = piece.partition(":")
            if sep and value and _FIELD_RE.match(name):
                filters.append((name, value.lower()))
            else:
                terms.extend(tokenize(piece))
        return cls(terms=tuple(terms), filters=tuple(filters))

    def to_text(self) -> str:
        """Canonical text form (parses back to an equal query)."""
        return " ".join([f"{name}:{value}"
                         for name, value in self.filters]
                        + list(self.terms))

    def matches(self, fields: Mapping[str, object]) -> bool:
        """Whether one document satisfies every filter and term."""
        for name, value in self.filters:
            if name not in fields or normalize(fields[name]) != value:
                return False
        if self.terms:
            counts = doc_terms(fields)
            for term in self.terms:
                if term not in counts:
                    return False
        return True


def as_query(query: Union[str, Query]) -> Query:
    """Coerce a query string (or pass a parsed query through)."""
    if isinstance(query, Query):
        return query
    if isinstance(query, str):
        return Query.parse(query)
    raise TypeError(
        f"query must be a str or Query, got {type(query).__name__}")


# ---------------------------------------------------------------------------
# Results


@dataclass(frozen=True)
class SearchHit:
    """One matching document, scored and optionally highlighted."""

    doc_id: str
    score: int
    fields: Dict[str, object]
    highlights: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SearchResult:
    """One executed query: ordered hits plus facet aggregations.

    ``total`` counts every match; ``hits`` is bounded by the resolved
    ``max_hits``.  ``facets`` maps each requested facet field to
    ``(value, count)`` pairs over the *full* match set, ordered by
    descending count then value.
    """

    query: str
    total: int
    hits: Tuple[SearchHit, ...]
    facets: Dict[str, Tuple[Tuple[str, int], ...]]


# ---------------------------------------------------------------------------
# Highlighting


def highlight_fragments(text: str, terms: Sequence[str], *,
                        fragment_size: Optional[int] = None,
                        fragment_count: Optional[int] = None
                        ) -> Tuple[str, ...]:
    """Snippets of ``text`` around term matches, matches in ``<em>``.

    ``fragment_size`` / ``fragment_count`` resolve through the policy
    chain when not passed explicitly; ``fragment_count=0`` returns the
    whole text as one highlighted fragment.  No term occurrence →
    no fragments.
    """
    size, _src = resolve_search_fragment_size(fragment_size)
    count, _src = resolve_search_fragment_count(fragment_count)
    lower = text.lower()
    spans: List[Tuple[int, int]] = []
    for term in dict.fromkeys(t.lower() for t in terms if t):
        for match in re.finditer(re.escape(term), lower):
            spans.append(match.span())
    if not spans:
        return ()
    spans.sort()
    if count == 0:
        return (_emphasize(text, spans, 0, len(text),
                           ellipsis=False),)
    fragments: List[str] = []
    covered_to = -1
    for start, end in spans:
        if start < covered_to:
            continue  # this occurrence already sits in a fragment
        window_start = max(0, start - max(0, (size - (end - start))) // 2)
        window_end = min(len(text), window_start + max(size, end - start))
        fragments.append(_emphasize(text, spans, window_start,
                                    window_end, ellipsis=True))
        covered_to = window_end
        if len(fragments) >= count:
            break
    return tuple(fragments)


def _emphasize(text: str, spans: Sequence[Tuple[int, int]],
               window_start: int, window_end: int, *,
               ellipsis: bool) -> str:
    """One window of ``text`` with the spans inside it ``<em>``-wrapped."""
    pieces: List[str] = []
    if ellipsis and window_start > 0:
        pieces.append("…")
    cursor = window_start
    for start, end in spans:
        if end <= window_start or start >= window_end:
            continue
        start, end = max(start, window_start), min(end, window_end)
        pieces.append(text[cursor:start])
        pieces.append(f"<em>{text[start:end]}</em>")
        cursor = end
    pieces.append(text[cursor:window_end])
    if ellipsis and window_end < len(text):
        pieces.append("…")
    return "".join(pieces)


# ---------------------------------------------------------------------------
# Shared result assembly (indexed and full-scan paths must agree)


def assemble_result(query: Query,
                    matched: Mapping[str, Mapping[str, object]],
                    term_counts: Callable[[str], Mapping[str, int]], *,
                    facets: Sequence[str] = (),
                    limit: Optional[int] = None,
                    highlight: bool = False,
                    fragment_size: Optional[int] = None,
                    fragment_count: Optional[int] = None
                    ) -> SearchResult:
    """Order, bound, facet and highlight one query's match set.

    ``term_counts(doc_id)`` supplies the token occurrence counts the
    score sums — the inverted index serves its stored counters, the
    full scan recomputes them — so both executions produce identical
    :class:`SearchResult` objects.
    """
    max_hits, _src = resolve_search_max_hits(limit)

    def score(doc_id: str) -> int:
        if not query.terms:
            return 0
        counts = term_counts(doc_id)
        return sum(counts.get(term, 0) for term in query.terms)

    ordered = sorted(matched, key=lambda doc_id: (-score(doc_id),
                                                  doc_id))
    facet_out: Dict[str, Tuple[Tuple[str, int], ...]] = {}
    for facet in facets:
        counts: Dict[str, int] = {}
        for doc_id in matched:
            value = matched[doc_id].get(facet)
            if value is None:
                continue
            key = normalize(value)
            counts[key] = counts.get(key, 0) + 1
        facet_out[facet] = tuple(sorted(
            counts.items(), key=lambda pair: (-pair[1], pair[0])))
    hits: List[SearchHit] = []
    for doc_id in ordered[:max_hits]:
        fields = dict(matched[doc_id])
        highlights: Tuple[str, ...] = ()
        if highlight and query.terms and isinstance(
                fields.get("text"), str):
            highlights = highlight_fragments(
                fields["text"], query.terms,
                fragment_size=fragment_size,
                fragment_count=fragment_count)
        hits.append(SearchHit(doc_id=doc_id, score=score(doc_id),
                              fields=fields, highlights=highlights))
    return SearchResult(query=query.to_text(), total=len(matched),
                        hits=tuple(hits), facets=facet_out)


def scan_search(documents: Mapping[str, Mapping[str, object]],
                query: Union[str, Query], *,
                facets: Sequence[str] = (),
                limit: Optional[int] = None,
                highlight: bool = False,
                fragment_size: Optional[int] = None,
                fragment_count: Optional[int] = None) -> SearchResult:
    """Full-scan execution: test every document against the query.

    The deliberately naive baseline (and oracle) for
    :meth:`repro.search.EvidenceIndex.search` — no postings, every
    document re-tokenised per query.
    """
    parsed = as_query(query)
    matched = {doc_id: fields for doc_id, fields in documents.items()
               if parsed.matches(fields)}
    return assemble_result(
        parsed, matched,
        lambda doc_id: doc_terms(matched[doc_id]),
        facets=facets, limit=limit, highlight=highlight,
        fragment_size=fragment_size, fragment_count=fragment_count)
