"""Security analysis of the SERO system (Section 5).

* :mod:`~repro.security.threat` — the powerful-insider threat model.
* :mod:`~repro.security.attacks` — medium-level attack implementations.
* :mod:`~repro.security.detection` — outcome records and audits.
* :mod:`~repro.security.analysis` — the full Section 5 case matrix.
"""

from .analysis import SCENARIOS, run_attack_matrix
from .detection import (
    AttackOutcome,
    Expectation,
    SecurityReport,
    audit_device,
    verdict_detected,
)
from .threat import POWERFUL_INSIDER, AccessLevel, AttackGoal, ThreatModel

__all__ = [
    "ThreatModel",
    "POWERFUL_INSIDER",
    "AccessLevel",
    "AttackGoal",
    "AttackOutcome",
    "Expectation",
    "SecurityReport",
    "audit_device",
    "verdict_detected",
    "SCENARIOS",
    "run_attack_matrix",
]
