"""The full Section 5 attack matrix, runnable as one call.

Each scenario provisions a fresh :class:`TamperEvidentStore` with a
sealed target object, executes one attack from
:mod:`repro.security.attacks` and checks the observed behaviour
against the paper's prediction.  The attacks themselves manipulate the
medium directly (the insider with a laptop, below any API), while the
*detection* side runs through the façade — exactly the deployment
shape: tampering bypasses the service, auditing uses it.  Used by the
test suite and by ``benchmarks/bench_security_matrix.py``.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Optional, Tuple

from ..api.store import TamperEvidentStore
from ..device.sero import DeviceConfig, SERODevice, VerifyStatus
from ..errors import ImmutableFileError, ReadError
from ..fs.fsck import deep_scan
from ..fs.lfs import FSConfig, SeroFS
from . import attacks
from .detection import AttackOutcome, Expectation, SecurityReport

TARGET = "/ledger.db"


def _fresh_store(total_blocks: int = 256,
                 include_addresses: bool = True) -> TamperEvidentStore:
    """A store with one sealed target object at :data:`TARGET`."""
    store = TamperEvidentStore.create(
        total_blocks=total_blocks,
        device_config=DeviceConfig(
            include_addresses_in_hash=include_addresses))
    store.put(TARGET, b"incriminating-record " * 100)
    store.seal(TARGET, timestamp=1)
    return store


def _fresh_fs(total_blocks: int = 256,
              include_addresses: bool = True
              ) -> Tuple[SERODevice, SeroFS, int]:
    """Deprecated shim for the pre-façade helper: device + FS with one
    heated target file; returns its line start."""
    warnings.warn(
        "repro.security.analysis._fresh_fs is deprecated; use "
        "_fresh_store() and the TamperEvidentStore façade",
        DeprecationWarning, stacklevel=2)
    store = _fresh_store(total_blocks, include_addresses)
    return store.device, store.fs, store.receipts[TARGET].line_start


def scenario_mwb_hash() -> AttackOutcome:
    """5.1 case 1: magnetic writes to the hash block are harmless."""
    store = _fresh_store()
    attacks.mwb_hash(store.device, store.receipts[TARGET].line_start)
    result = store.verify(TARGET)
    return AttackOutcome(
        name="mwb hash", expectation=Expectation.HARMLESS,
        achieved=result.status is VerifyStatus.INTACT,
        verification=result,
        notes="hash is read electrically; magnetisation is irrelevant")


def scenario_mwb_data() -> AttackOutcome:
    """5.1 case 2: magnetic rewrite of heated data -> hash mismatch."""
    store = _fresh_store()
    attacks.mwb_data(store.device, store.receipts[TARGET].line_start)
    result = store.verify(TARGET)
    return AttackOutcome(
        name="mwb inode/data", expectation=Expectation.DETECTED,
        achieved=result.status is VerifyStatus.HASH_MISMATCH,
        verification=result,
        notes="verify recomputes the line hash over the forged block")


def scenario_ewb_hash() -> AttackOutcome:
    """5.1 case 3: heating hash cells produces illegal HH codes."""
    store = _fresh_store()
    attacks.ewb_hash(store.device, store.receipts[TARGET].line_start,
                     n_cells=2)
    result = store.verify(TARGET)
    return AttackOutcome(
        name="ewb hash", expectation=Expectation.DETECTED,
        achieved=result.status is VerifyStatus.CELL_TAMPERED,
        verification=result,
        notes="UH/HU -> HH is the only possible change and is illegal")


def scenario_ewb_data() -> AttackOutcome:
    """5.1 case 4: electrically destroyed data dots -> read error."""
    store = _fresh_store()
    pba = attacks.ewb_data(store.device, store.receipts[TARGET].line_start)
    read_failed = False
    try:
        store.device.read_block(pba)
    except ReadError:
        read_failed = True
    result = store.verify(TARGET)
    return AttackOutcome(
        name="ewb inode/data", expectation=Expectation.DETECTED,
        achieved=read_failed and result.status is VerifyStatus.UNREADABLE,
        verification=result,
        notes="destroyed dots appear as a read error; verify cannot pass")


def scenario_split_file() -> AttackOutcome:
    """5.1 split/coalesce: forged sub-line heat is rejected."""
    store = _fresh_store(total_blocks=512)
    store.put("/big.db", b"x" * (20 * 512))
    receipt = store.seal("/big.db", timestamp=2)
    forged = attacks.split_file(store.device, receipt.line_start)
    result = store.verify("/big.db")
    return AttackOutcome(
        name="split/coalesce", expectation=Expectation.REJECTED,
        achieved=forged is not None and result.status is VerifyStatus.INTACT,
        verification=result,
        notes="hashes must sit at known (aligned) physical addresses")


def scenario_rm() -> AttackOutcome:
    """5.2: rm on a sealed object — refused by the façade, and the
    forced medium-level variant is tamper-evident."""
    store = _fresh_store()
    refused = False
    try:
        store.delete(TARGET)
    except ImmutableFileError:
        refused = True
    attacks.forced_rm(store.fs, TARGET)
    result = store.verify_line(store.receipts[TARGET].line_start)
    return AttackOutcome(
        name="rm heated file", expectation=Expectation.DETECTED,
        achieved=refused and result.status is VerifyStatus.HASH_MISMATCH,
        verification=result,
        notes="link count lives inside the heated line")


def scenario_ln() -> AttackOutcome:
    """5.2: ln on a sealed object is refused (link count immutable)."""
    store = _fresh_store()
    refused = False
    try:
        store.fs.link(TARGET, "/alias.db")
    except ImmutableFileError:
        refused = True
    result = store.verify(TARGET)
    return AttackOutcome(
        name="ln heated file", expectation=Expectation.REJECTED,
        achieved=refused and result.status is VerifyStatus.INTACT,
        verification=result,
        notes="increasing the reference count would rewrite the inode")


def scenario_copy_mask(include_addresses: bool = True) -> AttackOutcome:
    """5.2: an exact copy cannot mask the original — the physical
    addresses inside the hash make copies distinguishable.  With the
    ablated hash (no addresses) the copy *does* pass, which is the
    DESIGN.md ablation."""
    store = _fresh_store(total_blocks=256,
                         include_addresses=include_addresses)
    device = store.device
    line = store.receipts[TARGET].line_start
    record = device.line_of_block(line)
    free_start = None
    for candidate in range(device.total_blocks - record.n_blocks,
                           record.n_blocks, -record.n_blocks):
        span = range(candidate, candidate + record.n_blocks)
        if not any(device.is_block_heated(pba) for pba in span):
            free_start = candidate
            break
    assert free_start is not None
    copy_start = attacks.copy_mask(device, line, free_start)
    original = store.verify_line(line)
    copy = store.verify_line(copy_start)
    copy_meta_differs = (
        copy.stored_hash != original.stored_hash
        if include_addresses else
        copy.stored_hash == original.stored_hash)
    expectation = Expectation.DETECTED if include_addresses else Expectation.HARMLESS
    achieved = (original.status is VerifyStatus.INTACT and copy_meta_differs)
    notes = ("copy's hash covers different PBAs -> distinguishable"
             if include_addresses else
             "ABLATION: without addresses the copy is indistinguishable")
    return AttackOutcome(
        name="copy masking" + ("" if include_addresses else " (no-addr ablation)"),
        expectation=expectation, achieved=achieved,
        verification=copy, notes=notes)


def scenario_clear_directory() -> AttackOutcome:
    """5.2: wiping the directory tree — the deep scan recovers the
    sealed object, name hint and all."""
    store = _fresh_store()
    attacks.clear_directory(store.fs)
    report = deep_scan(store)
    recovered = [f for f in report.recovered if f.name_hint == "ledger.db"]
    achieved = bool(recovered) and recovered[0].data is not None and \
        recovered[0].verification.status is VerifyStatus.INTACT
    return AttackOutcome(
        name="clear directory", expectation=Expectation.RECOVERED,
        achieved=achieved,
        verification=recovered[0].verification if recovered else None,
        notes="fsck deep scan recovers all heated files")


def scenario_bulk_erase() -> AttackOutcome:
    """5.2: bulk erase clears magnetic data but the electrical
    evidence survives — every line still announces itself and fails
    the audit loudly."""
    store = _fresh_store()
    line = store.receipts[TARGET].line_start
    attacks.bulk_erase(store.device)
    recovered = store.device.scan_lines()
    found = any(rec.start == line for rec in recovered)
    audit = store.audit()
    result = next(r for r in audit if r.line_start == line)
    return AttackOutcome(
        name="bulk erase", expectation=Expectation.DETECTED,
        achieved=found and result.tamper_evident,
        verification=result,
        notes="heated pattern is structural, not magnetic; it survives")


SCENARIOS: Dict[str, Callable[[], AttackOutcome]] = {
    "mwb-hash": scenario_mwb_hash,
    "mwb-data": scenario_mwb_data,
    "ewb-hash": scenario_ewb_hash,
    "ewb-data": scenario_ewb_data,
    "split": scenario_split_file,
    "rm": scenario_rm,
    "ln": scenario_ln,
    "copy-mask": scenario_copy_mask,
    "clear-dir": scenario_clear_directory,
    "bulk-erase": scenario_bulk_erase,
}


def run_attack_matrix(names: Optional[list] = None) -> SecurityReport:
    """Run all (or the named) attack scenarios; returns the report."""
    report = SecurityReport()
    for name, scenario in SCENARIOS.items():
        if names is not None and name not in names:
            continue
        report.add(scenario())
    return report
