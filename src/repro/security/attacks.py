"""Attack implementations for the Section 5 security analysis.

Every attack manipulates the *medium* (or issues raw device commands),
modelling the insider who "can disconnect the storage device
temporarily from the system, then connect it to a laptop with the
appropriate interface".  None of them go through driver policy — the
point of the analysis is that policy cannot stop them, only the
physics plus the verify operation can expose them.

The four integrity cases of Section 5.1:

========================= ==========================================
attack                     expected outcome
========================= ==========================================
``mwb_hash``               no effect (hash is read electrically)
``mwb_data``               detected: verify -> HASH_MISMATCH
``ewb_hash``               detected: verify -> CELL_TAMPERED (HH)
``ewb_data``               detected: data block unreadable
========================= ==========================================

plus the availability attacks of Section 5.2 (forced rm, copy-mask,
directory wipe, bulk erase) and the split/coalesce forgery.
"""

from __future__ import annotations

import struct
from typing import List, Optional

import numpy as np

from ..device.sector import BLOCK_SIZE, E_REGION_DOTS, encode_frame
from ..device.sero import SERODevice
from ..fs.lfs import SeroFS
from ..fs.segment import BlockState


# ---------------------------------------------------------------------------
# Section 5.1 — integrity


def mwb_hash(device: SERODevice, line_start: int, n_dots: int = 64) -> int:
    """Magnetically rewrite dots of the electrically written hash block.

    "Changing the magnetisation of an electrically written bit of the
    hash has no effect, as only the presence or the absence of a
    magnetic dot is relevant."  Returns dots written.
    """
    start, _ = device.geometry.block_span(line_start)
    for index in range(start, start + min(n_dots, E_REGION_DOTS)):
        device.medium.write_mag(index, 1)
    return min(n_dots, E_REGION_DOTS)


def mwb_data(device: SERODevice, line_start: int,
             target_offset: int = 1, forged: Optional[bytes] = None) -> int:
    """Magnetically overwrite a data block inside a heated line.

    The forged frame is written with the *correct* physical address
    and CRC (the attacker controls a laptop, not a toy), so only the
    line hash can betray it.  Returns the PBA attacked.
    """
    record = device.line_of_block(line_start)
    if record is None:
        raise ValueError(f"no heated line at {line_start}")
    pba = record.start + target_offset
    payload = forged if forged is not None else b"FORGED!!" * 64
    payload = (payload + b"\x00" * BLOCK_SIZE)[:BLOCK_SIZE]
    bits = encode_frame(pba, payload)
    start, _ = device.geometry.block_span(pba)
    device.medium.write_mag_span(start, bits)
    return pba


def ewb_hash(device: SERODevice, line_start: int, n_cells: int = 1) -> List[int]:
    """Heat the unheated dot of ``n_cells`` hash cells (UH/HU -> HH).

    "HH is an illegal code, and thus represents evidence of
    tampering."  Returns the dot indices heated.
    """
    start, _ = device.geometry.block_span(line_start)
    heated_map = device.medium.image_heated(
        range(start, start + E_REGION_DOTS))
    burned: List[int] = []
    for cell in range(E_REGION_DOTS // 2):
        if len(burned) >= n_cells:
            break
        d0, d1 = 2 * cell, 2 * cell + 1
        if heated_map[d0] and not heated_map[d1]:
            device.medium.heat_dot(start + d1)
            burned.append(start + d1)
        elif heated_map[d1] and not heated_map[d0]:
            device.medium.heat_dot(start + d0)
            burned.append(start + d0)
    return burned


def ewb_data(device: SERODevice, line_start: int,
             target_offset: int = 1, n_dots: int = 64) -> int:
    """Electrically destroy dots of a data block.

    "An electrically written bit in the data, which destroys the
    magnetic properties of the relevant dot, appears as a read error."
    Returns the PBA attacked.
    """
    record = device.line_of_block(line_start)
    if record is None:
        raise ValueError(f"no heated line at {line_start}")
    pba = record.start + target_offset
    start, _ = device.geometry.block_span(pba)
    for index in range(start, start + n_dots):
        device.medium.heat_dot(index)
    return pba


def split_file(device: SERODevice, line_start: int) -> Optional[int]:
    """Try the Section 5.1 split attack: craft a fake hash block +
    fake inode in the middle of a heated file's data region and heat
    the sub-line, hoping the device accepts the second half as a
    genuine file.

    The device "insists that hashes are written at known physical
    addresses": sub-line starts are rejected unless aligned, and any
    aligned sub-range overlaps the existing line, which the heat
    operation refuses.  Returns the PBA where the forged heat was
    attempted, or None if no plausible target exists.
    """
    record = device.line_of_block(line_start)
    if record is None or record.n_blocks < 4:
        return None
    forged_start = record.start + record.n_blocks // 2
    from ..errors import AlignmentError, HeatError

    try:
        device.heat_line(forged_start, record.n_blocks // 2)
    except (AlignmentError, HeatError):
        return forged_start
    return forged_start


# ---------------------------------------------------------------------------
# Section 5.2 — availability


def forced_rm(fs: SeroFS, path: str) -> int:
    """Delete a heated file the hard way: wipe the directory entry and
    magnetically rewrite the heated inode with link_count = 0.

    The inode write lands inside the heated line, so the next verify
    shows HASH_MISMATCH — "writing the inode ... will be
    tamper-evident because the hash is invalidated."  Returns the
    inode's PBA.
    """
    ino, inode = fs._lookup(path)
    inode_pba = fs.imap[ino]
    # 1. remove the directory entry through a raw parent rewrite
    parent, name = fs._lookup_parent(path)
    entries = fs._dir_entries(parent)
    entries.pop(name, None)
    from ..fs.directory import pack_entries

    fs._write_file_blocks(parent, pack_entries(entries))
    # 2. force the inode's link count to zero on the medium
    inode.link_count = 0
    bits = encode_frame(inode_pba, inode.pack())
    start, _ = fs.device.geometry.block_span(inode_pba)
    fs.device.medium.write_mag_span(start, bits)
    return inode_pba


def copy_mask(device: SERODevice, line_start: int,
              free_start: int) -> int:
    """Copy a heated file's data blocks to ``free_start`` and heat the
    copy, attempting to pass it off as the original.

    With addresses inside the hash "a copy can always be distinguished
    from an original": the copy's line metadata names different PBAs.
    Returns the copy's line start.
    """
    record = device.line_of_block(line_start)
    if record is None:
        raise ValueError(f"no heated line at {line_start}")
    n = record.n_blocks
    if free_start % n:
        raise ValueError("copy target must be line-aligned")
    for offset in range(1, n):
        payload = device.read_block(record.start + offset)
        device.write_block(free_start + offset, payload)
    device.heat_line(free_start, n, timestamp=record.timestamp)
    return free_start


def clear_directory(fs: SeroFS) -> None:
    """Wipe the root directory (and the checkpoint copies) on the
    medium, destroying every path to every file.

    The heated files themselves remain recoverable: "a fsck style scan
    of the medium would definitely recover (albeit slowly) all the
    heated files."
    """
    from ..fs.directory import pack_entries
    from ..fs.lfs import ROOT_INO

    root = fs._read_inode(ROOT_INO)
    fs._write_file_blocks(root, pack_entries({}))
    # and the checkpoints, for good measure
    for copy in (0, 1):
        start = fs._checkpoint_region(copy)
        bits = encode_frame(start, b"\x00" * BLOCK_SIZE)
        dot_start, _ = fs.device.geometry.block_span(start)
        fs.device.medium.write_mag_span(dot_start, bits)


def bulk_erase(device: SERODevice) -> None:
    """Degauss the whole medium (Gutmann-style, done properly).

    "This would clear all magnetically written information.  However
    all electrically written information is still present, thus
    providing the required evidence of tampering."
    """
    device.medium.bulk_erase()
