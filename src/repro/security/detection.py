"""Detection harness: run an attack, then look for the evidence.

Each :class:`AttackOutcome` records what the paper predicts for that
attack (detected / harmless / recovered) and what the verification
machinery actually observed, so the Section 5 benchmark can print the
full case matrix and the test suite can assert every row.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..device.sero import SERODevice, VerificationResult, VerifyStatus


class Expectation(enum.Enum):
    """What Section 5 says should happen."""

    HARMLESS = "harmless"     # the attack has no semantic effect
    DETECTED = "detected"     # verify exposes it
    REJECTED = "rejected"     # the device refuses the operation
    RECOVERED = "recovered"   # fsck/scan restores availability


@dataclass
class AttackOutcome:
    """Result of one attack scenario.

    Attributes:
        name: scenario identifier (matches Section 5 cases).
        expectation: the paper's predicted outcome.
        achieved: True when the observed behaviour matches it.
        verification: the relevant verify result, when applicable.
        notes: free-form explanation for the report.
    """

    name: str
    expectation: Expectation
    achieved: bool
    verification: Optional[VerificationResult] = None
    notes: str = ""


def verdict_detected(result: VerificationResult,
                     *statuses: VerifyStatus) -> bool:
    """True when ``result`` lands in one of the tamper-evident
    ``statuses`` (default: any tamper-evident status)."""
    if statuses:
        return result.status in statuses
    return result.tamper_evident


def audit_device(device: SERODevice) -> List[VerificationResult]:
    """Verify every registered heated line (the auditor's sweep)."""
    return device.verify_all()


@dataclass
class SecurityReport:
    """Aggregated outcome of the whole attack matrix."""

    outcomes: List[AttackOutcome] = field(default_factory=list)

    def add(self, outcome: AttackOutcome) -> None:
        """Record one scenario outcome."""
        self.outcomes.append(outcome)

    @property
    def all_achieved(self) -> bool:
        """True when every scenario matched the paper's prediction."""
        return all(outcome.achieved for outcome in self.outcomes)

    def rows(self) -> List[tuple]:
        """(name, expectation, achieved, status) rows for tabulation."""
        out = []
        for outcome in self.outcomes:
            status = (outcome.verification.status.value
                      if outcome.verification else "-")
            out.append((outcome.name, outcome.expectation.value,
                        "yes" if outcome.achieved else "NO", status))
        return out
