"""The threat model of Section 5 (after Hsu & Ong / Hasan et al.).

A powerful insider — "a disgruntled employee, or a dishonest CEO" —
"regrets the existence of a certain stored record" and wants the
system to forget it without drawing attention.  He has root on every
connected host, can detach the device and drive it raw from a laptop
for a limited time, but will not physically destroy the device or
remove it for long (that *would* draw attention).

The asset is the integrity and availability of specific heated files.
Confidentiality and authenticity are explicitly out of scope (no
cryptographic keys anywhere in the system).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class AccessLevel(enum.Enum):
    """How deep the attacker reaches."""

    FILE_SYSTEM = "file-system"     # normal FS calls with root
    DEVICE = "device"               # raw block commands to the device
    MEDIUM = "medium"               # laptop-with-interface: raw dot access


class AttackGoal(enum.Enum):
    """What the attacker is trying to achieve."""

    ALTER = "alter"       # change a record's content
    DELETE = "delete"     # make a record unavailable
    MASK = "mask"         # hide a record behind a forged substitute
    DESTROY_INDEX = "destroy-index"  # remove the paths to the record


@dataclass(frozen=True)
class ThreatModel:
    """Capabilities assumed for the Section 5 analysis."""

    access: AccessLevel = AccessLevel.MEDIUM
    may_remove_device: bool = False       # would draw attention
    may_destroy_physically: bool = False  # would draw attention
    has_focused_ion_beam: bool = False    # Section 8 argues even a FIB
    # operator cannot rebuild a destroyed dot undetectably
    notes: List[str] = field(default_factory=list)


#: The paper's default adversary.
POWERFUL_INSIDER = ThreatModel()
