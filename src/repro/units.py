"""Physical units and constants used across the physics simulation.

All quantities in the library are SI unless a suffix says otherwise
(``_nm``, ``_deg`` ...).  The helpers here keep unit conversions in one
place so the physics modules read like the equations in the paper.
"""

from __future__ import annotations

import math

# -- fundamental constants ---------------------------------------------------

MU0 = 4.0e-7 * math.pi
"""Vacuum permeability [T m / A]."""

KB = 1.380649e-23
"""Boltzmann constant [J / K]."""

ELEMENTARY_CHARGE = 1.602176634e-19
"""Elementary charge [C]."""

CU_KALPHA_WAVELENGTH = 1.5406e-10
"""Cu K-alpha X-ray wavelength [m] (standard lab diffractometer source)."""

# -- unit conversion helpers -------------------------------------------------

NM = 1e-9
UM = 1e-6
MM = 1e-3
ANGSTROM = 1e-10

KJ_PER_M3 = 1e3
"""Multiplier converting kJ/m^3 to J/m^3 (anisotropy constants in the
paper are quoted in kJ/m^3, e.g. the 80 kJ/m^3 of the as-grown film)."""

KA_PER_M = 1e3
"""Multiplier converting kA/m to A/m (the torque measurements use an
applied field of 1350 kA/m)."""


def celsius_to_kelvin(t_celsius: float) -> float:
    """Convert a temperature from degrees Celsius to Kelvin."""
    return t_celsius + 273.15


def kelvin_to_celsius(t_kelvin: float) -> float:
    """Convert a temperature from Kelvin to degrees Celsius."""
    return t_kelvin - 273.15


def deg_to_rad(angle_deg: float) -> float:
    """Convert degrees to radians."""
    return math.radians(angle_deg)


def rad_to_deg(angle_rad: float) -> float:
    """Convert radians to degrees."""
    return math.degrees(angle_rad)


# -- storage-unit helpers ----------------------------------------------------

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def bits_to_bytes(nbits: int) -> int:
    """Number of whole bytes needed to hold ``nbits`` bits."""
    return (nbits + 7) // 8


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive integral power of two."""
    return n > 0 and (n & (n - 1)) == 0
