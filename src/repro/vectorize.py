"""Central switch for the vectorized span-engine fast paths.

The hot electrical paths (erb spans, Manchester coding, CRCs, bulk
heating) each have two implementations: a scalar *reference* path that
follows the paper's per-dot protocol literally, and a numpy *span*
path that performs the same protocol as whole-array operations.  The
span path is the default; the scalar path stays available so tests can
assert scalar<->span equivalence and so a reader can always fall back
to the literal protocol.

Setting the environment variable ``REPRO_SPAN_ENGINE`` to ``0``,
``false``, ``no``, ``off`` or ``scalar`` before import makes every
module default to the scalar reference path.  Individual layers can
also be switched at runtime:

* :class:`repro.device.sero.DeviceConfig` has a ``span_engine`` field;
* :mod:`repro.crypto.manchester` / :mod:`repro.crypto.crc` expose a
  module-level ``USE_VECTORIZED`` flag;
* :meth:`repro.medium.medium.PatternedMedium.heat_span` takes a
  ``vectorized`` keyword.
"""

from __future__ import annotations

import os

_FALSEY = ("0", "false", "no", "off", "scalar")


def span_engine_default() -> bool:
    """Whether the vectorized span engine is enabled by default."""
    value = os.environ.get("REPRO_SPAN_ENGINE")
    if value is None:
        return True
    return value.strip().lower() not in _FALSEY
