"""Deprecated shim for the pre-``repro.api`` engine switch.

The hot paths each have two implementations: a scalar *reference* path
that follows the paper's per-dot protocol literally, and a numpy
*span* path that performs the same protocol as whole-array operations.
Which one runs is now decided by :mod:`repro.api.policy` — one lazy
resolution order (explicit argument > ``with repro.engine("scalar"):``
context > installed :class:`~repro.api.policy.ExecutionPolicy` >
``REPRO_SPAN_ENGINE`` environment variable, read at *call* time).

:func:`span_engine_default` remains only for backwards compatibility;
new code should call :func:`repro.api.resolve_vectorized` (for the
bare flag) or :func:`repro.api.resolve_engine` (for the full engine
spec).  The old import-time environment read is gone: flipping
``REPRO_SPAN_ENGINE`` after import now takes effect everywhere.
"""

from __future__ import annotations

import warnings

from .api.policy import resolve_vectorized


def span_engine_default() -> bool:
    """Deprecated: use :func:`repro.api.resolve_vectorized`.

    Returns the same answer as the policy chain (so existing callers
    keep working, now with lazy semantics) and emits a
    :class:`DeprecationWarning`.
    """
    warnings.warn(
        "repro.vectorize.span_engine_default() is deprecated; use "
        "repro.api.resolve_vectorized() (or an ExecutionPolicy / "
        "repro.engine(...) context)",
        DeprecationWarning, stacklevel=2)
    return resolve_vectorized()
