"""Workload generators for the evaluation benchmarks.

* :mod:`~repro.workloads.synthetic` — seeded file-operation mixes.
* :mod:`~repro.workloads.database` — the paper's motivating database +
  audit-snapshot application.
* :mod:`~repro.workloads.archival` — SOX-style compliance retention.
* :mod:`~repro.workloads.traces` — record / serialise / replay.
* :mod:`~repro.workloads.fleet` — multi-device batch format/audit
  scheduling with aggregate throughput reporting.
"""

from .archival import ComplianceArchive, RetentionBatch
from .fleet import DeviceReport, FleetReport, FleetScheduler
from .database import SimpleDatabase, oltp_then_snapshot
from .synthetic import FileOp, OpKind, SyntheticWorkload, apply_op, payload_for, run_workload
from .traces import Trace, record_workload

__all__ = [
    "FileOp",
    "OpKind",
    "SyntheticWorkload",
    "apply_op",
    "payload_for",
    "run_workload",
    "SimpleDatabase",
    "oltp_then_snapshot",
    "ComplianceArchive",
    "RetentionBatch",
    "Trace",
    "record_workload",
    "DeviceReport",
    "FleetReport",
    "FleetScheduler",
]
