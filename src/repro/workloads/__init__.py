"""Workload generators for the evaluation benchmarks.

* :mod:`~repro.workloads.synthetic` — seeded file-operation mixes.
* :mod:`~repro.workloads.database` — the paper's motivating database +
  audit-snapshot application.
* :mod:`~repro.workloads.archival` — SOX-style compliance retention.
* :mod:`~repro.workloads.traces` — record / serialise / replay.
* :mod:`~repro.workloads.fleet` — multi-device batch format/audit
  scheduling with aggregate throughput reporting.
* :mod:`~repro.workloads.soak` — trace-driven chaos soak: mixed fleet
  pressure under scheduled worker kills/restarts, invariant-checked
  against a serial shadow fleet.
"""

from .archival import ComplianceArchive, RetentionBatch
from .fleet import DeviceReport, FleetReport, FleetScheduler
from .database import SimpleDatabase, oltp_then_snapshot
from .synthetic import FileOp, OpKind, SyntheticWorkload, apply_op, payload_for, run_workload
from .traces import Trace, record_workload

#: Soak-harness names, imported lazily (PEP 562): ``python -m
#: repro.workloads.soak`` must not double-import the module.
_SOAK_EXPORTS = (
    "SoakConfig",
    "SoakFault",
    "SoakReport",
    "build_trace",
    "run_soak",
)


def __getattr__(name: str):
    if name in _SOAK_EXPORTS:
        from . import soak as _soak

        value = getattr(_soak, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SOAK_EXPORTS))


__all__ = [
    "FileOp",
    "OpKind",
    "SyntheticWorkload",
    "apply_op",
    "payload_for",
    "run_workload",
    "SimpleDatabase",
    "oltp_then_snapshot",
    "ComplianceArchive",
    "RetentionBatch",
    "Trace",
    "record_workload",
    "DeviceReport",
    "FleetReport",
    "FleetScheduler",
    "SoakConfig",
    "SoakFault",
    "SoakReport",
    "build_trace",
    "run_soak",
]
