"""Compliance / retention workload (Sections 1, 2 and 8).

SOX-style regulation produces a steady stream of record batches that
must become immutable on arrival and stay readable for years.  This
workload writes one batch per period and heats it immediately; the
device's WMRM area shrinks monotonically — the Section 8 lifetime
behaviour ("the read/write area gradually shrinks ... until the device
has become a pure read-only device") that ``bench_lifetime.py``
measures.  Batches carry an expiry period so the decommissioning
policy ("data segregated by expiry date") can be exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import NoSpaceError
from ..fs.lfs import SeroFS


@dataclass
class RetentionBatch:
    """One period's sealed compliance batch."""

    period: int
    path: str
    expiry_period: int
    line_start: int


@dataclass
class ComplianceArchive:
    """Writes and seals one record batch per period.

    Args:
        fs: file system to archive into.
        batch_bytes: size of each batch.
        retention_periods: how long batches must be kept.
    """

    fs: SeroFS
    batch_bytes: int = 4096
    retention_periods: int = 100
    _batches: List[RetentionBatch] = field(default_factory=list)

    def __post_init__(self) -> None:
        from ..errors import FileExistsError_

        try:
            self.fs.mkdir("/archive")
        except FileExistsError_:
            pass

    def run_period(self, period: int, seed: Optional[int] = None) -> RetentionBatch:
        """Write and heat one period's batch.

        Raises :class:`~repro.errors.NoSpaceError` when the device's
        WMRM area is exhausted — end of device life.
        """
        rng = np.random.default_rng(seed if seed is not None else period)
        data = rng.integers(0, 256, size=self.batch_bytes,
                            dtype=np.uint8).tobytes()
        path = f"/archive/batch-{period:06d}"
        self.fs.create(path, data)
        record = self.fs.heat_file(path, timestamp=period)
        batch = RetentionBatch(period=period, path=path,
                               expiry_period=period + self.retention_periods,
                               line_start=record.start)
        self._batches.append(batch)
        return batch

    def run_until_full(self, max_periods: int = 10_000) -> int:
        """Run periods until the device fills; returns periods done."""
        done = 0
        for period in range(max_periods):
            try:
                self.run_period(period)
            except NoSpaceError:
                break
            done += 1
        return done

    @property
    def batches(self) -> List[RetentionBatch]:
        """All sealed batches."""
        return list(self._batches)

    def expired(self, current_period: int) -> List[RetentionBatch]:
        """Batches past their retention period.

        Heated data cannot be deleted; expiry only tells the operator
        when the *device* may be decommissioned (Section 8: "the
        lifetime of the data must be matched to the lifetime of the
        medium").
        """
        return [b for b in self._batches if b.expiry_period <= current_period]

    def decommissionable(self, current_period: int) -> bool:
        """True when every sealed batch has expired."""
        return bool(self._batches) and \
            len(self.expired(current_period)) == len(self._batches)

    def audit(self) -> Dict[str, object]:
        """Verify every sealed batch in one batched sweep
        (:meth:`~repro.device.sero.SERODevice.verify_lines`); returns
        {path: VerificationResult}."""
        results = self.fs.device.verify_lines(
            [b.line_start for b in self._batches])
        return {b.path: r for b, r in zip(self._batches, results)}
