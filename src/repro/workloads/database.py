"""The paper's motivating application: a database with snapshots.

Section 1: "Probably most applications use a data base, which requires
efficient random reads and writes ... most data bases support a
snapshot operation that freezes the contents of the data base, for
instance for auditing purposes."  The ideal device lets the live
database stay WMRM while snapshots become tamper-evident.

:class:`SimpleDatabase` is a record store kept in one SeroFS file
(fixed-width records, random in-place updates through whole-file
rewrites — the worst case for a WORM device, the natural case for
SERO).  :meth:`snapshot` serialises the table to a snapshot file and
heats it: "taking a data base snapshot would probably result in a
cluster of related blocks" (Section 4.1).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..device.sero import LineRecord
from ..fs.lfs import SeroFS

RECORD_SIZE = 64
_HEAD = ">QI"  # record id, payload length


@dataclass
class SimpleDatabase:
    """A fixed-width record table stored in a SeroFS file.

    Args:
        fs: the file system.
        table_path: path of the live table file.
    """

    fs: SeroFS
    table_path: str = "/db/table"
    _records: Dict[int, bytes] = field(default_factory=dict)
    _snapshots: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        from ..errors import FileExistsError_, FileNotFoundError_

        try:
            self.fs.mkdir("/db")
        except FileExistsError_:
            pass
        try:
            raw = self.fs.read(self.table_path)
            self._records = _deserialize(raw)
        except FileNotFoundError_:
            self.fs.create(self.table_path, _serialize({}))

    # -- transactions --------------------------------------------------------

    def put(self, record_id: int, payload: bytes) -> None:
        """Insert or update one record and commit the table."""
        if len(payload) > RECORD_SIZE:
            raise ValueError(f"record payload exceeds {RECORD_SIZE} bytes")
        self._records[record_id] = payload
        self._commit()

    def get(self, record_id: int) -> Optional[bytes]:
        """Fetch one record (None when absent)."""
        return self._records.get(record_id)

    def delete(self, record_id: int) -> None:
        """Delete one record and commit."""
        self._records.pop(record_id, None)
        self._commit()

    def _commit(self) -> None:
        self.fs.write(self.table_path, _serialize(self._records))

    def __len__(self) -> int:
        return len(self._records)

    # -- snapshots -------------------------------------------------------------

    def snapshot(self, name: str, timestamp: Optional[int] = None) -> LineRecord:
        """Freeze the current table into a heated snapshot file."""
        path = f"/db/snapshot-{name}"
        self.fs.create(path, _serialize(self._records))
        record = self.fs.heat_file(path, timestamp=timestamp)
        self._snapshots.append(path)
        return record

    def snapshots(self) -> List[str]:
        """Paths of snapshots taken so far."""
        return list(self._snapshots)

    def read_snapshot(self, name: str) -> Dict[int, bytes]:
        """Load a snapshot's records (still a plain magnetic read)."""
        return _deserialize(self.fs.read(f"/db/snapshot-{name}"))

    def verify_snapshot(self, name: str):
        """Verify a snapshot's heated line."""
        return self.fs.verify_file(f"/db/snapshot-{name}")


def _serialize(records: Dict[int, bytes]) -> bytes:
    out = bytearray(struct.pack(">I", len(records)))
    for rid, payload in sorted(records.items()):
        out += struct.pack(_HEAD, rid, len(payload))
        out += payload
    return bytes(out)


def _deserialize(raw: bytes) -> Dict[int, bytes]:
    (count,) = struct.unpack_from(">I", raw, 0)
    offset = 4
    head_size = struct.calcsize(_HEAD)
    records: Dict[int, bytes] = {}
    for _ in range(count):
        rid, length = struct.unpack_from(_HEAD, raw, offset)
        offset += head_size
        records[rid] = raw[offset:offset + length]
        offset += length
    return records


def oltp_then_snapshot(db: SimpleDatabase, n_transactions: int,
                       n_records: int = 50, seed: int = 3,
                       snapshot_every: Optional[int] = None) -> List[LineRecord]:
    """Run an update-heavy OLTP phase with periodic audit snapshots."""
    rng = np.random.default_rng(seed)
    taken: List[LineRecord] = []
    for txn in range(n_transactions):
        rid = int(rng.integers(n_records))
        payload = rng.integers(0, 256, size=48, dtype=np.uint8).tobytes()
        db.put(rid, payload)
        if snapshot_every and (txn + 1) % snapshot_every == 0:
            taken.append(db.snapshot(f"t{txn + 1}", timestamp=txn + 1))
    return taken
